//! B1 — validation throughput: the same documents validated against the
//! DTD of Figure 2, the XSD of Figure 3, and the BonXai schemas of
//! Figures 4/5 (compiled validators, measured per document batch).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use bonxai_core::translate::xsd_to_dfa_xsd;
use bonxai_core::{BonxaiSchema, CompiledBxsd, ValidateOptions};
use bonxai_gen::{sample_document, DocConfig};
use xmltree::{dtd, Document};
use xsd::CompiledXsd;

fn data(name: &str) -> String {
    std::fs::read_to_string(format!("{}/../../data/{name}", env!("CARGO_MANIFEST_DIR")))
        .expect("figure data")
}

fn sample_docs(n: usize) -> Vec<Document> {
    let fig3 = xsd::parse_xsd(&data("figure3.xsd")).expect("figure 3");
    let schema = xsd_to_dfa_xsd(&fig3);
    let mut rng = StdRng::seed_from_u64(5);
    let cfg = DocConfig {
        max_nodes: 400,
        ..DocConfig::default()
    };
    (0..n)
        .map(|_| sample_document(&schema, &cfg, &mut rng).expect("has roots"))
        .collect()
}

fn bench_validation(c: &mut Criterion) {
    let docs = sample_docs(20);
    let total_nodes: usize = docs.iter().map(Document::element_count).sum();

    let fig2 = dtd::parse_dtd(&data("figure2.dtd")).expect("figure 2");
    let fig3 = xsd::parse_xsd(&data("figure3.xsd")).expect("figure 3");
    let fig5 = BonxaiSchema::parse(&data("figure5.bonxai")).expect("figure 5");

    let mut group = c.benchmark_group("validation");
    group.throughput(Throughput::Elements(total_nodes as u64));

    let compiled_dtd = fig2.compile();
    group.bench_function("dtd_fig2", |b| {
        b.iter(|| {
            docs.iter()
                .map(|d| dtd::validator::validate_compiled(&compiled_dtd, d).len())
                .sum::<usize>()
        })
    });

    let compiled_xsd = CompiledXsd::new(&fig3);
    group.bench_function("xsd_fig3", |b| {
        b.iter(|| {
            docs.iter()
                .map(|d| compiled_xsd.validate(d).violations.len())
                .sum::<usize>()
        })
    });

    // BonXai, product fast path (the default): one transition per node.
    let compiled_bxsd = CompiledBxsd::new(&fig5.bxsd);
    assert!(
        compiled_bxsd.product_states().is_some(),
        "figure 5 must fit the product budget"
    );
    group.bench_function("bonxai_fig5", |b| {
        b.iter(|| {
            docs.iter()
                .map(|d| compiled_bxsd.validate(d).violations.len())
                .sum::<usize>()
        })
    });

    // Ablation: the lock-step reference (one DFA step per rule per node).
    let lockstep = ValidateOptions {
        force_lockstep: true,
        ..ValidateOptions::default()
    };
    group.bench_function("bonxai_fig5_lockstep", |b| {
        b.iter(|| {
            docs.iter()
                .map(|d| compiled_bxsd.validate_with(d, lockstep).violations.len())
                .sum::<usize>()
        })
    });

    // Product path with per-node match recording switched on (the cost
    // of rule highlighting).
    let recording = ValidateOptions {
        record_matches: true,
        ..ValidateOptions::default()
    };
    group.bench_function("bonxai_fig5_matches", |b| {
        b.iter(|| {
            docs.iter()
                .map(|d| compiled_bxsd.validate_with(d, recording).matches.len())
                .sum::<usize>()
        })
    });

    // Scoped-thread batch validation over the same documents.
    group.bench_function("bonxai_fig5_batch", |b| {
        b.iter(|| {
            compiled_bxsd
                .validate_batch(&docs, ValidateOptions::default())
                .iter()
                .map(|r| r.violations.len())
                .sum::<usize>()
        })
    });

    // Validation through the DFA-based XSD (the translated form of Fig 5):
    // one automaton instead of one DFA per rule.
    let dfa_schema = bonxai_core::translate::bxsd_to_dfa_xsd(&fig5.bxsd);
    let compiled_dfa = dfa_schema.compile();
    group.bench_function("bonxai_fig5_as_dfa_xsd", |b| {
        b.iter(|| {
            docs.iter()
                .map(|d| compiled_dfa.validate(d).len())
                .sum::<usize>()
        })
    });

    group.finish();

    // Parsing throughput for context.
    let texts: Vec<String> = docs.iter().map(xmltree::to_string).collect();
    let bytes: usize = texts.iter().map(String::len).sum();
    let mut group = c.benchmark_group("xml_parse");
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("parse_documents", |b| {
        b.iter_batched(
            || texts.clone(),
            |texts| {
                texts
                    .iter()
                    .map(|t| xmltree::parse_document(t).expect("parses").len())
                    .sum::<usize>()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);
