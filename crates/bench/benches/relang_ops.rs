//! B3 — the regular-language substrate: determinism (UPA) checking,
//! compiled content-model matching, determinization, minimization, and
//! the DFA → regex elimination that Algorithm 2 leans on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::prelude::*;
use rand::rngs::StdRng;

use bonxai_gen::{random_dre, DreConfig};
use relang::ops::{determinize, dfa_to_regex, minimize, regex_to_dfa};
use relang::regex::determinism::is_deterministic;
use relang::{CompiledDre, Nfa, Regex, Sym};

const N_SYMS: usize = 12;

fn expressions(n: usize, seed: u64) -> Vec<Regex> {
    let mut rng = StdRng::seed_from_u64(seed);
    let syms: Vec<Sym> = (0..N_SYMS as u32).map(Sym).collect();
    (0..n)
        .map(|_| random_dre(&syms, &DreConfig::default(), &mut rng))
        .collect()
}

fn sample_words(r: &Regex, n: usize, seed: u64) -> Vec<Vec<Sym>> {
    let dfa = regex_to_dfa(r, N_SYMS);
    let mut rng = StdRng::seed_from_u64(seed);
    let words = dfa.enumerate_words(12, 200);
    (0..n)
        .map(|_| words.choose(&mut rng).cloned().unwrap_or_default())
        .collect()
}

fn bench_relang(c: &mut Criterion) {
    let exprs = expressions(50, 3);

    let mut group = c.benchmark_group("regex");
    group.bench_function("upa_check_50_exprs", |b| {
        b.iter(|| exprs.iter().filter(|r| is_deterministic(r)).count())
    });
    group.bench_function("compile_50_matchers", |b| {
        b.iter(|| {
            exprs
                .iter()
                .map(|r| CompiledDre::compile(r, N_SYMS))
                .collect::<Vec<_>>()
                .len()
        })
    });
    group.finish();

    // Matching throughput on a single compiled model.
    let model = &exprs[0];
    let matcher = CompiledDre::compile(model, N_SYMS);
    let words = sample_words(model, 500, 7);
    let total: usize = words.iter().map(Vec::len).sum();
    let mut group = c.benchmark_group("matching");
    group.throughput(Throughput::Elements(total.max(1) as u64));
    group.bench_function("compiled_dre_500_words", |b| {
        b.iter(|| words.iter().filter(|w| matcher.matches(w)).count())
    });
    group.bench_function("derivative_500_words", |b| {
        b.iter(|| {
            words
                .iter()
                .filter(|w| relang::regex::derivative::matches(model, w))
                .count()
        })
    });
    group.finish();

    // Automata pipeline on growing expressions.
    let mut group = c.benchmark_group("automata");
    for size in [8usize, 16, 32] {
        let mut rng = StdRng::seed_from_u64(size as u64);
        let syms: Vec<Sym> = (0..size as u32).map(Sym).collect();
        let r = random_dre(
            &syms,
            &DreConfig {
                max_depth: 4,
                ..DreConfig::default()
            },
            &mut rng,
        );
        group.bench_with_input(BenchmarkId::new("determinize", size), &r, |b, r| {
            b.iter(|| determinize(&Nfa::from_regex(r, size, 100_000).expect("fits")).n_states())
        });
        let dfa = determinize(&Nfa::from_regex(&r, size, 100_000).expect("fits"));
        group.bench_with_input(BenchmarkId::new("minimize", size), &dfa, |b, d| {
            b.iter(|| minimize(d).n_states())
        });
        group.bench_with_input(BenchmarkId::new("dfa_to_regex", size), &dfa, |b, d| {
            b.iter(|| dfa_to_regex(d, &d.final_states()).size())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_relang);
criterion_main!(benches);
