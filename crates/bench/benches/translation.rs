//! B2 — translation pipelines: Algorithm 1+2 (XSD → BonXai), Algorithm
//! 3+4 (BonXai → XSD), the Theorem 12 fast path vs. the general Algorithm
//! 3 on the same suffix-based input, and XSD type minimization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use bonxai_core::translate::{
    bxsd_to_dfa_xsd, dfa_xsd_to_bxsd, dfa_xsd_to_xsd, suffix_bxsd_to_dfa_xsd, xsd_to_dfa_xsd,
};
use bonxai_gen::{random_suffix_bxsd, theorem8_xn, theorem9_bn, SchemaConfig};

fn bench_translation(c: &mut Criterion) {
    // Fast path vs. Algorithm 3 on identical suffix-based schemas.
    let mut group = c.benchmark_group("bonxai_to_xsd");
    for n_rules in [8usize, 16, 32] {
        let mut rng = StdRng::seed_from_u64(n_rules as u64);
        let schema = random_suffix_bxsd(
            &SchemaConfig {
                n_names: 10,
                n_rules,
                k: 2,
                ..SchemaConfig::default()
            },
            &mut rng,
        );
        group.bench_with_input(
            BenchmarkId::new("theorem12_fast_path", n_rules),
            &schema,
            |b, s| b.iter(|| suffix_bxsd_to_dfa_xsd(s).expect("suffix-based").n_states()),
        );
        group.bench_with_input(
            BenchmarkId::new("algorithm3_general", n_rules),
            &schema,
            |b, s| b.iter(|| bxsd_to_dfa_xsd(s).n_states()),
        );
    }
    group.finish();

    // The worst-case families at small n (the exponential step itself).
    let mut group = c.benchmark_group("worst_case_families");
    for n in [2usize, 3, 4] {
        let xn = theorem8_xn(n);
        group.bench_with_input(BenchmarkId::new("thm8_xsd_to_bxsd", n), &xn, |b, x| {
            b.iter(|| dfa_xsd_to_bxsd(x).size())
        });
        let bn = theorem9_bn(n);
        group.bench_with_input(BenchmarkId::new("thm9_bxsd_to_xsd", n), &bn, |b, x| {
            b.iter(|| bxsd_to_dfa_xsd(x).n_states())
        });
    }
    group.finish();

    // Linear translations + minimization on Figure 3.
    let fig3 = xsd::parse_xsd(
        &std::fs::read_to_string(format!(
            "{}/../../data/figure3.xsd",
            env!("CARGO_MANIFEST_DIR")
        ))
        .expect("figure 3"),
    )
    .expect("parses");
    let mut group = c.benchmark_group("linear_algorithms");
    group.bench_function("algorithm1_xsd_to_dfa", |b| {
        b.iter(|| xsd_to_dfa_xsd(&fig3).n_states())
    });
    let dfa = xsd_to_dfa_xsd(&fig3);
    group.bench_function("algorithm4_dfa_to_xsd", |b| {
        b.iter(|| dfa_xsd_to_xsd(&dfa).n_types())
    });
    let back = dfa_xsd_to_xsd(&dfa);
    group.bench_function("minimize_types", |b| {
        b.iter(|| xsd::minimize_types(&back).n_types())
    });
    group.finish();
}

criterion_group!(benches, bench_translation);
criterion_main!(benches);
