//! Experiment E20 — schema diff / satisfiability throughput.
//!
//! The diff engine runs the joint ancestor-context construction over a
//! corpus of schema *pairs*: each pair is compared in both directions,
//! every realizable joint context's content models are checked on the
//! children / text / attribute channels, and every difference found is
//! lifted into a complete witness document that must validate against
//! exactly one schema. This harness times that end to end over
//! [`diff_pair_corpus`] — alternating identical pairs (the equivalence
//! fast path) and perturbed ones — and reports per-stage timings
//! (space build vs pair comparison), verdict mix, and witness counts.
//!
//! Run with `--json` for machine-readable output, `--smoke` for a small
//! CI-sized corpus, `--jobs N` for the per-pair comparison worker count,
//! and `--no-cache` to disable the shared [`AutomataCache`] (the
//! cached/uncached delta is the point of the BENCH_diff.json ablation).
//!
//! Pairs run sequentially (each diff parallelizes internally via
//! `core::batch`); the report — timings aside — is byte-identical for
//! any `--jobs` value.

use bonxai_bench::{print_table, timed};
use bonxai_core::{clamp_jobs, diff_bxsd, AnalysisOptions, Evolution};
use bonxai_gen::diff_pair_corpus;
use relang::AutomataCache;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let jobs = clamp_jobs(
        args.iter()
            .position(|a| a == "--jobs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0),
    );
    let n_pairs = if smoke { 12 } else { 60 };
    let corpus = diff_pair_corpus(2015, n_pairs);
    let opts = AnalysisOptions {
        jobs,
        ..AnalysisOptions::default()
    };

    let mut cache = AutomataCache::new();
    // (perturbed, ms, evolution, witnesses, pairs, build_us, compare_us,
    //  hits, misses), in corpus order.
    let mut rows = Vec::new();
    for pair in &corpus {
        let cache_opt = (!no_cache).then_some(&mut cache);
        let (report, ms) =
            timed(|| diff_bxsd(&pair.a, &pair.b, &opts, cache_opt).expect("diff within budget"));
        assert!(
            pair.perturbed || report.evolution == Evolution::Equivalent,
            "identical pair {} must diff equivalent",
            pair.id
        );
        rows.push((
            pair.perturbed,
            ms,
            report.evolution,
            report.witnesses.len(),
            report.stats.pairs,
            report.stats.build_us,
            report.stats.compare_us,
            report.stats.cache_hits,
            report.stats.cache_misses,
        ));
    }

    let total_ms: f64 = rows.iter().map(|r| r.1).sum();
    let build_ms: f64 = rows.iter().map(|r| r.5 as f64 / 1000.0).sum();
    let compare_ms: f64 = rows.iter().map(|r| r.6 as f64 / 1000.0).sum();
    let witnesses: usize = rows.iter().map(|r| r.3).sum();
    let joint_pairs: usize = rows.iter().map(|r| r.4).sum();
    let hits: u64 = rows.iter().map(|r| r.7).sum();
    let misses: u64 = rows.iter().map(|r| r.8).sum();
    let verdicts = [
        Evolution::Equivalent,
        Evolution::BackwardCompatible,
        Evolution::ForwardCompatible,
        Evolution::Incomparable,
    ];
    let verdict_counts: Vec<(Evolution, usize)> = verdicts
        .iter()
        .map(|&v| (v, rows.iter().filter(|r| r.2 == v).count()))
        .collect();

    if json {
        println!("{{");
        println!("  \"experiment\": \"diff_pairs\",");
        println!("  \"pairs\": {},", rows.len());
        println!("  \"cache\": {},", !no_cache);
        println!("  \"jobs\": {jobs},");
        println!("  \"total_ms\": {total_ms:.2},");
        println!("  \"build_ms\": {build_ms:.2},");
        println!("  \"compare_ms\": {compare_ms:.2},");
        println!("  \"joint_contexts\": {joint_pairs},");
        println!("  \"witnesses\": {witnesses},");
        println!("  \"cache_hits\": {hits},");
        println!("  \"cache_misses\": {misses},");
        println!("  \"verdicts\": {{");
        for (i, (v, n)) in verdict_counts.iter().enumerate() {
            println!(
                "    \"{}\": {n}{}",
                v.as_str(),
                if i + 1 < verdict_counts.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        println!("  }}");
        println!("}}");
        return;
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(id, r)| {
            vec![
                id.to_string(),
                if r.0 { "perturbed" } else { "identical" }.to_string(),
                r.2.as_str().to_string(),
                r.3.to_string(),
                r.4.to_string(),
                format!("{:.2}", r.1),
            ]
        })
        .collect();
    print_table(
        "E20 — schema diff over diff_pair_corpus(2015)",
        &["pair", "kind", "evolution", "witnesses", "contexts", "ms"],
        &table,
    );
    println!(
        "\ntotal: {total_ms:.1} ms for {} pairs (build {build_ms:.1} ms, compare {compare_ms:.1} ms)",
        rows.len()
    );
    println!("witnesses: {witnesses} verified, joint contexts: {joint_pairs}");
    println!(
        "automata cache: {} ({hits} hits / {misses} misses)",
        if no_cache { "off" } else { "on" }
    );
    for (v, n) in &verdict_counts {
        println!("  {:<22} {n}", v.as_str());
    }
}
