//! Experiment E21 — incremental revalidation and cross-version compile
//! reuse: cost proportional to the edit, not the document.
//!
//! Part 1 (edit sweep): a figure5-conforming document at several sizes
//! (~100 to ~100k element nodes), edited in place through the
//! `xmltree::Document` mutation API. For each (document size, edit
//! count) cell we measure a full `CompiledBxsd::validate` against
//! `revalidate` over the edit log, plus how many per-element passes the
//! delta run actually executed. The headline criterion: delta cost
//! grows with edit size while full revalidation grows with document
//! size (≥5x advantage for a ≤1% edit on the largest document).
//!
//! Part 2 (recompile reuse): the PR 9 `gen::perturb_bxsd` pair corpus
//! compiled through one [`SchemaCompiler`] session per pair. The warm
//! compile of the perturbed version must answer >50% of its automata
//! constructions from the structural-hash cache, and be faster than a
//! cold compile.
//!
//! Flags: `--json` for machine-readable output (redirect to
//! `BENCH_incremental.json`), `--smoke` for a small CI liveness run.

use bonxai_bench::{print_table, timed};
use bonxai_core::pipeline::SchemaCompiler;
use bonxai_core::{BonxaiSchema, CompiledBxsd};
use bonxai_gen::diff_pair_corpus;
use xmltree::{Document, NodeId};

fn data(name: &str) -> String {
    for base in [".", "..", "../.."] {
        if let Ok(text) = std::fs::read_to_string(format!("{base}/data/{name}")) {
            return text;
        }
    }
    panic!("data file {name} not found (run from the workspace root)");
}

/// Builds a figure5-conforming document of `chunks` content chunks
/// (each chunk is 4 element nodes across 3 nesting levels, so the
/// document stays wide and of constant depth like the streaming-memory
/// corpus in E12).
fn build_doc(chunks: usize) -> Document {
    let mut doc = Document::new("document");
    let root = doc.root();
    doc.add_element(root, "template");
    doc.add_element(root, "userstyles");
    let content = doc.add_element(root, "content");
    for _ in 0..chunks {
        let s1 = doc.add_element(content, "section");
        doc.set_attribute(s1, "title", "Chapter");
        doc.add_text(s1, "intro ");
        let bold = doc.add_element(s1, "bold");
        doc.add_text(bold, "text");
        let s2 = doc.add_element(s1, "section");
        doc.set_attribute(s2, "title", "Part");
        doc.add_text(s2, "body");
        let s3 = doc.add_element(s2, "section");
        doc.set_attribute(s3, "title", "Detail");
        doc.add_text(s3, "deep");
    }
    doc
}

/// One cell of the edit sweep.
struct SweepRow {
    elements: usize,
    edits: usize,
    full_ms: f64,
    delta_ms: f64,
    passes: usize,
}

impl SweepRow {
    fn speedup(&self) -> f64 {
        if self.delta_ms > 0.0 {
            self.full_ms / self.delta_ms
        } else {
            f64::INFINITY
        }
    }
}

/// Measures full-vs-delta revalidation for `edits` attribute toggles
/// spread across a `chunks`-chunk document.
fn sweep_cell(compiled: &CompiledBxsd<'_>, chunks: usize, edits: usize, reps: usize) -> SweepRow {
    let mut doc = build_doc(chunks);
    let elements = doc.element_count();
    // The edit targets: deepest sections of evenly spaced chunks.
    // (Toggling `title` flips each target between conforming and
    // violating, so the delta run does real report maintenance.)
    let targets: Vec<NodeId> = doc
        .iter_elements()
        .filter(|&n| doc.name(n) == Some("section") && doc.attribute(n, "title") == Some("Detail"))
        .collect();
    assert!(!targets.is_empty());

    // Full revalidation cost (what every edit pays without the memo).
    let (_, full_ms) = timed(|| {
        for _ in 0..reps {
            std::hint::black_box(compiled.validate(&doc));
        }
    });

    doc.enable_edit_log();
    let mut state = compiled.validate_persistent(&doc);
    let mut from = state.generation();
    let mut delta_ms = 0.0;
    let mut passes = 0usize;
    for r in 0..reps {
        for e in 0..edits {
            let t = targets[(e * targets.len()) / edits.max(1) % targets.len()];
            if r % 2 == 0 {
                doc.remove_attribute(t, "title");
            } else {
                doc.set_attribute(t, "title", "Detail");
            }
        }
        let edit_slice: Vec<_> = doc.edit_log().unwrap().since(from).to_vec();
        let (report, ms) = timed(|| compiled.revalidate(&doc, &mut state, &edit_slice));
        std::hint::black_box(report);
        from = state.generation();
        delta_ms += ms;
        passes += state.last_passes();
    }
    SweepRow {
        elements,
        edits,
        full_ms: full_ms / reps as f64,
        delta_ms: delta_ms / reps as f64,
        passes: passes / reps,
    }
}

/// Aggregates of the recompile-reuse part.
struct RecompileResult {
    pairs: usize,
    warm_hits: u64,
    warm_misses: u64,
    fresh_ms: f64,
    session_ms: f64,
}

impl RecompileResult {
    fn reuse(&self) -> f64 {
        self.warm_hits as f64 / (self.warm_hits + self.warm_misses).max(1) as f64
    }
}

/// Compiles every perturbed pair of the diff corpus twice: cold (fresh
/// compile of the new version) and warm (through the session cache that
/// already compiled the old version).
fn recompile_reuse(n_pairs: usize) -> RecompileResult {
    let pairs = diff_pair_corpus(2015, n_pairs);
    let mut warm_hits = 0u64;
    let mut warm_misses = 0u64;
    let mut fresh_ms = 0.0;
    let mut session_ms = 0.0;
    let mut measured = 0usize;
    for pair in pairs.iter().filter(|p| p.perturbed) {
        measured += 1;
        let (_, ms) = timed(|| std::hint::black_box(CompiledBxsd::new(&pair.b)));
        fresh_ms += ms;
        let mut session = SchemaCompiler::new();
        let _ = session.compile(&pair.a);
        let (_, ms) = timed(|| std::hint::black_box(session.compile(&pair.b)));
        session_ms += ms;
        let warm = session.last_stats();
        warm_hits += warm.hits();
        warm_misses += warm.misses();
    }
    RecompileResult {
        pairs: measured,
        warm_hits,
        warm_misses,
        fresh_ms,
        session_ms,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");

    let schema = BonxaiSchema::parse(&data("figure5.bonxai")).expect("figure 5");
    let compiled = CompiledBxsd::new(&schema.bxsd);

    let (chunk_sizes, edit_counts, reps, n_pairs): (&[usize], &[usize], usize, usize) = if smoke {
        (&[25, 250], &[1, 8], 3, 8)
    } else {
        (&[25, 250, 2500, 25000], &[1, 4, 16, 64, 256], 5, 60)
    };

    let mut rows: Vec<SweepRow> = Vec::new();
    for &chunks in chunk_sizes {
        for &edits in edit_counts {
            // Editing more distinct nodes than the document has targets
            // would alias; skip cells where edits exceed chunk count.
            if edits > chunks {
                continue;
            }
            rows.push(sweep_cell(&compiled, chunks, edits, reps));
        }
    }

    // Headline cell: the smallest edit on the largest document.
    let headline = rows
        .iter()
        .filter(|r| r.elements == rows.iter().map(|r| r.elements).max().unwrap())
        .min_by_key(|r| r.edits)
        .expect("sweep is non-empty");
    let recompile = recompile_reuse(n_pairs);

    if json {
        println!("{{");
        println!("  \"experiment\": \"incremental\",");
        println!("  \"smoke\": {smoke},");
        println!("  \"edit_sweep\": [");
        for (i, r) in rows.iter().enumerate() {
            println!(
                "    {{ \"elements\": {}, \"edits\": {}, \"full_ms\": {:.4}, \
                 \"delta_ms\": {:.4}, \"speedup\": {:.1}, \"delta_passes\": {} }}{}",
                r.elements,
                r.edits,
                r.full_ms,
                r.delta_ms,
                r.speedup(),
                r.passes,
                if i + 1 < rows.len() { "," } else { "" }
            );
        }
        println!("  ],");
        println!(
            "  \"headline\": {{ \"elements\": {}, \"edits\": {}, \"speedup\": {:.1} }},",
            headline.elements,
            headline.edits,
            headline.speedup()
        );
        println!(
            "  \"recompile\": {{ \"pairs\": {}, \"warm_hits\": {}, \"warm_misses\": {}, \
             \"reuse_fraction\": {:.3}, \"fresh_ms\": {:.2}, \"session_ms\": {:.2} }}",
            recompile.pairs,
            recompile.warm_hits,
            recompile.warm_misses,
            recompile.reuse(),
            recompile.fresh_ms,
            recompile.session_ms,
        );
        println!("}}");
    } else {
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.elements.to_string(),
                    r.edits.to_string(),
                    format!("{:.4}", r.full_ms),
                    format!("{:.4}", r.delta_ms),
                    format!("{:.1}x", r.speedup()),
                    r.passes.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!(
                "E21 — full vs delta revalidation (figure5){}",
                if smoke { " [smoke]" } else { "" }
            ),
            &[
                "elements", "edits", "full ms", "delta ms", "speedup", "passes",
            ],
            &table,
        );
        println!(
            "\nheadline: {} edits on {} elements → {:.1}x over full revalidation",
            headline.edits,
            headline.elements,
            headline.speedup()
        );
        println!(
            "recompile: {} perturbed pairs, warm reuse {:.1}% ({} hits / {} misses), \
             fresh {:.2} ms vs session {:.2} ms",
            recompile.pairs,
            100.0 * recompile.reuse(),
            recompile.warm_hits,
            recompile.warm_misses,
            recompile.fresh_ms,
            recompile.session_ms,
        );
    }

    // The acceptance gates, enforced wherever the bench runs.
    assert!(
        headline.speedup() >= 5.0,
        "delta revalidation must be ≥5x full on the largest document \
         (got {:.1}x)",
        headline.speedup()
    );
    assert!(
        recompile.reuse() > 0.5,
        "perturbed-schema recompile must reuse >50% of constructions \
         (got {:.1}%)",
        100.0 * recompile.reuse()
    );
}
