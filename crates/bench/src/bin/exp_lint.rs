//! Experiment E15 — lint throughput over the generated corpus.
//!
//! The lint pass runs decision procedures (DFA difference/emptiness for
//! dead rules, the tuple-space reachability search, Glushkov determinism
//! with witnesses, the k-suffix classifier, the relevance-product probe)
//! over every rule of every schema, so its cost is the practical face of
//! Theorems 8/9/12/13: polynomial on the k-suffix fragment that covers
//! ~98% of the corpus, with the budgeted analyses catching the
//! exponential tail. This harness lints the 225-schema `web_corpus` and
//! reports per-class timing plus the diagnostic mix.
//!
//! Run with `--json` for machine-readable output, `--jobs N` to set the
//! worker count (default: one per core, clamped to the core count).
//!
//! Schemas are linted in parallel on the `core::batch` work-stealing
//! pool; every job carries its input index and the aggregation below
//! walks results in corpus order, so the report — timings aside — is
//! byte-identical for any `--jobs` value. Each job owns a private
//! [`AutomataCache`] (per-rule DFAs are shared across the checks of one
//! schema; the cache is deliberately not `Sync`).

use bonxai_bench::{print_table, timed};
use bonxai_core::lang::lift;
use bonxai_core::lint::{lint_ast_with, Code, LintOptions, LintReport};
use bonxai_core::{clamp_jobs, map_indexed};
use bonxai_gen::web_corpus;
use relang::AutomataCache;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let jobs = clamp_jobs(
        args.iter()
            .position(|a| a == "--jobs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0),
    );
    let corpus = web_corpus(2015);
    let opts = LintOptions {
        include_notes: true,
        ..LintOptions::default()
    };

    // (k-class, schema size, lint ms, report), in corpus order.
    let linted: Vec<(Option<usize>, usize, f64, LintReport)> =
        map_indexed(corpus.iter().collect(), jobs, |entry| {
            let ast = lift(&entry.bxsd);
            let mut cache = AutomataCache::new();
            let (report, ms) = timed(|| lint_ast_with(&ast, &opts, Some(&mut cache)));
            (entry.k, entry.bxsd.size(), ms, report)
        });

    // (k-class, schema size, lint ms, diagnostics excluding notes)
    let mut rows: Vec<(Option<usize>, usize, f64, usize)> = Vec::new();
    let mut code_counts: Vec<(Code, usize)> = Vec::new();
    for (k, size, ms, report) in &linted {
        let findings = report
            .diagnostics
            .iter()
            .filter(|d| d.severity() > bonxai_core::lint::Severity::Note)
            .count();
        for d in &report.diagnostics {
            match code_counts.iter_mut().find(|(c, _)| *c == d.code) {
                Some((_, n)) => *n += 1,
                None => code_counts.push((d.code, 1)),
            }
        }
        rows.push((*k, *size, *ms, findings));
    }
    code_counts.sort_by_key(|(c, _)| *c);

    // Aggregate per k-class.
    let classes = [Some(1), Some(2), Some(3), None];
    let mut agg = Vec::new();
    for class in classes {
        let in_class: Vec<_> = rows.iter().filter(|r| r.0 == class).collect();
        if in_class.is_empty() {
            continue;
        }
        let n = in_class.len();
        let total_ms: f64 = in_class.iter().map(|r| r.2).sum();
        let max_ms = in_class.iter().map(|r| r.2).fold(0.0f64, f64::max);
        let size: usize = in_class.iter().map(|r| r.1).sum();
        let findings: usize = in_class.iter().map(|r| r.3).sum();
        agg.push((class, n, size, total_ms, max_ms, findings));
    }
    let total_ms: f64 = rows.iter().map(|r| r.2).sum();

    if json {
        println!("{{");
        println!("  \"experiment\": \"lint_corpus\",");
        println!("  \"schemas\": {},", rows.len());
        println!("  \"total_ms\": {total_ms:.2},");
        println!("  \"classes\": [");
        for (i, (class, n, size, ms, max_ms, findings)) in agg.iter().enumerate() {
            let k = class.map_or("null".to_string(), |k| k.to_string());
            println!(
                "    {{ \"k\": {k}, \"schemas\": {n}, \"total_size\": {size}, \
                 \"total_ms\": {ms:.2}, \"max_ms\": {max_ms:.2}, \"findings\": {findings} }}{}",
                if i + 1 < agg.len() { "," } else { "" }
            );
        }
        println!("  ],");
        println!("  \"codes\": {{");
        for (i, (code, n)) in code_counts.iter().enumerate() {
            println!(
                "    \"{}\": {n}{}",
                code.as_str(),
                if i + 1 < code_counts.len() { "," } else { "" }
            );
        }
        println!("  }}");
        println!("}}");
        return;
    }

    let table: Vec<Vec<String>> = agg
        .iter()
        .map(|(class, n, size, ms, max_ms, findings)| {
            vec![
                class.map_or("general".to_string(), |k| format!("{k}-suffix")),
                n.to_string(),
                size.to_string(),
                format!("{ms:.2}"),
                format!("{:.3}", ms / *n as f64),
                format!("{max_ms:.2}"),
                findings.to_string(),
            ]
        })
        .collect();
    print_table(
        "E15 — lint over web_corpus(2015)",
        &[
            "class", "schemas", "Σ size", "total ms", "avg ms", "max ms", "findings",
        ],
        &table,
    );
    println!("\ntotal: {total_ms:.1} ms for {} schemas", rows.len());
    println!("diagnostic mix (notes included):");
    for (code, n) in &code_counts {
        println!("  {} {:<22} {n}", code.as_str(), code.name());
    }
}
