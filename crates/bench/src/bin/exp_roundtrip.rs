//! Experiment E10 — Lemmas 4–7 end to end: the translations preserve the
//! document language. For each corpus schema we translate
//! BonXai → XSD → BonXai, then cross-validate the three schemas on a
//! sample of conforming documents and mutated near-misses, and report the
//! size growth distribution.

use bonxai_bench::print_table;
use bonxai_core::translate::{bxsd_to_dfa_xsd, bxsd_to_xsd, xsd_to_bxsd, TranslateOptions};
use bonxai_core::validate::is_valid as bxsd_valid;
use bonxai_gen::{mutate_document, sample_document, web_corpus, DocConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let take: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let opts = TranslateOptions::default();
    let corpus = web_corpus(2015);
    let mut rng = StdRng::seed_from_u64(77);

    let mut docs_checked = 0usize;
    let mut disagreements = 0usize;
    let mut ratios: Vec<f64> = Vec::new();
    // take a deterministic spread across the corpus
    let step = (corpus.len() / take.max(1)).max(1);
    for entry in corpus.iter().step_by(step).take(take) {
        let (xsd, _) = bxsd_to_xsd(&entry.bxsd, &opts);
        let (back, _) = xsd_to_bxsd(&xsd, &opts);
        ratios.push(back.size() as f64 / entry.bxsd.size() as f64);

        let schema_dfa = bxsd_to_dfa_xsd(&entry.bxsd);
        for i in 0..10 {
            let Some(doc) = sample_document(&schema_dfa, &DocConfig::default(), &mut rng) else {
                continue;
            };
            let doc = if i % 2 == 0 {
                doc
            } else {
                mutate_document(&doc, &mut rng)
            };
            let a = bxsd_valid(&entry.bxsd, &doc);
            let b = xsd::is_valid(&xsd, &doc);
            let c = bxsd_valid(&back, &doc);
            docs_checked += 1;
            if !(a == b && b == c) {
                disagreements += 1;
                eprintln!(
                    "DISAGREEMENT on schema #{}: bxsd={a} xsd={b} back={c}\n{}",
                    entry.id,
                    xmltree::to_string(&doc)
                );
            }
        }
    }

    ratios.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let pct = |p: f64| ratios[(p * (ratios.len() - 1) as f64) as usize];
    print_table(
        "Round-trip BonXai -> XSD -> BonXai over the corpus",
        &[
            "schemas",
            "docs",
            "disagreements",
            "size p50",
            "size p90",
            "size max",
        ],
        &[vec![
            ratios.len().to_string(),
            docs_checked.to_string(),
            disagreements.to_string(),
            format!("{:.2}x", pct(0.5)),
            format!("{:.2}x", pct(0.9)),
            format!("{:.2}x", ratios.last().copied().unwrap_or(0.0)),
        ]],
    );
    println!(
        "\nExpected shape: zero disagreements (Lemmas 4-7: the translations \
         are language-preserving) and modest, flat size growth on the \
         k-suffix corpus."
    );
    assert_eq!(disagreements, 0, "translations must preserve the language");
}
