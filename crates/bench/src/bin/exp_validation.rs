//! Validation-throughput scaling: the same (Figure-3-shaped) language
//! validated as DTD, XSD (typed), BonXai (per-rule), and DFA-based XSD
//! (single automaton), over documents from ~100 to ~100k element nodes.
//!
//! The per-node cost of each validator should be flat (all four are
//! linear-time); the interesting column is the constant: the BonXai
//! validator steps one DFA per rule per node (the price of matched-rule
//! reporting), while the translated DFA-based XSD steps exactly one.

use bonxai_bench::{print_table, timed};
use bonxai_core::translate::bxsd_to_dfa_xsd;
use bonxai_core::{BonxaiSchema, CompiledBxsd};
use bonxai_gen::{sample_document, DocConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xmltree::Document;
use xsd::CompiledXsd;

fn data(name: &str) -> String {
    for base in [".", "..", "../.."] {
        if let Ok(text) = std::fs::read_to_string(format!("{base}/data/{name}")) {
            return text;
        }
    }
    panic!("data file {name} not found (run from the workspace root)");
}

fn main() {
    let fig2 = xmltree::dtd::parse_dtd(&data("figure2.dtd")).expect("figure 2");
    let fig3 = xsd::parse_xsd(&data("figure3.xsd")).expect("figure 3");
    let fig5 = BonxaiSchema::parse(&data("figure5.bonxai")).expect("figure 5");

    let dfa_schema = bxsd_to_dfa_xsd(&fig5.bxsd);
    let compiled_dtd = fig2.compile();
    let compiled_xsd = CompiledXsd::new(&fig3);
    let compiled_bxsd = CompiledBxsd::new(&fig5.bxsd);
    let compiled_dfa = dfa_schema.compile();

    let gen_schema = bonxai_core::translate::xsd_to_dfa_xsd(&fig3);
    let mut rng = StdRng::seed_from_u64(2015);
    let mut rows = Vec::new();
    for target in [100usize, 1_000, 10_000, 100_000] {
        // Build one big document of roughly `target` element nodes by
        // concatenating samples under a shared root.
        let mut doc = Document::new("document");
        let root = doc.root();
        // the Figure-2 DTD requires exactly one section below template
        let template = doc.add_element(root, "template");
        doc.add_element(template, "section");
        doc.add_element(root, "userstyles");
        let content = doc.add_element(root, "content");
        while doc.element_count() < target {
            let sample = sample_document(
                &gen_schema,
                &DocConfig {
                    max_nodes: 400,
                    ..DocConfig::default()
                },
                &mut rng,
            )
            .expect("figure 3 has roots");
            // graft the sample's content sections under our content node
            let sc = sample
                .elements()
                .into_iter()
                .find(|&n| sample.name(n) == Some("content"))
                .expect("content");
            for child in sample.element_children(sc) {
                graft(&sample, child, &mut doc, content);
            }
        }
        let nodes = doc.element_count();

        let (_, dtd_ms) = timed(|| {
            assert!(xmltree::dtd::validator::validate_compiled(&compiled_dtd, &doc).is_empty())
        });
        let (_, xsd_ms) = timed(|| assert!(compiled_xsd.validate(&doc).is_valid()));
        let (_, bxsd_ms) = timed(|| assert!(compiled_bxsd.validate(&doc).is_valid()));
        let (_, dfa_ms) = timed(|| assert!(compiled_dfa.validate(&doc).is_empty()));

        let per = |ms: f64| format!("{:.0}", ms * 1e6 / nodes as f64);
        rows.push(vec![
            nodes.to_string(),
            per(dtd_ms),
            per(xsd_ms),
            per(bxsd_ms),
            per(dfa_ms),
        ]);
    }
    print_table(
        "Validation cost per element node (ns/node)",
        &["nodes", "DTD", "XSD (typed)", "BonXai (rules)", "DFA-based XSD"],
        &rows,
    );
    println!(
        "\nExpected shape: every column flat (linear-time validators); the \
         BonXai column's constant is ~#rules DFA steps per node, the others ~1."
    );
}

/// Copies the subtree rooted at `src_node` under `dst_parent`.
fn graft(
    src: &Document,
    src_node: xmltree::NodeId,
    dst: &mut Document,
    dst_parent: xmltree::NodeId,
) {
    match src.kind(src_node) {
        xmltree::NodeKind::Text(t) => {
            dst.add_text(dst_parent, t);
        }
        xmltree::NodeKind::Element { name, attributes } => {
            let id = dst.add_element(dst_parent, name);
            for a in attributes {
                dst.set_attribute(id, &a.name, &a.value);
            }
            for &c in src.children(src_node) {
                graft(src, c, dst, id);
            }
        }
    }
}
