//! Validation-throughput scaling and the product-vs-lock-step ablation.
//!
//! Part 1 (scaling): the same (Figure-3-shaped) language validated as
//! DTD, XSD (typed), BonXai (product and lock-step), and DFA-based XSD
//! (single automaton), over documents from ~100 to ~100k element nodes.
//! Every validator is linear-time, so each column should be flat; the
//! interesting column is the constant.
//!
//! Part 2 (ablation): three evaluations of the same BXSD semantics on
//! the Figure 4 and Figure 5 schemas:
//!
//! * **seed lock-step** — the pre-product evaluator, reproduced verbatim
//!   below: one DFA step per rule per node, two passes over each node's
//!   children, per-node allocations, unconditional match recording;
//! * **fallback lock-step** — the current Theorem-9 fallback: still one
//!   DFA step per rule per node, but with the fused single child pass,
//!   pooled state vectors, interned-name resolution, and opt-in match
//!   recording this change introduced;
//! * **product** — the relevance product (Lemma 7): exactly one
//!   transition lookup per node.
//!
//! Part 2b (front end): the same corpora lexed only (zero-copy token
//! scan, no tree, no validation) and parsed to trees only, isolating
//! what the event front end costs out of the end-to-end numbers. Every
//! front-end and streamed number is measured under **both** lexer
//! engines — the detected SIMD structural-index engine and the forced
//! scalar fallback ([`XmlReader::set_engine`]) — interleaved within the
//! same timing loop, so the SIMD-vs-scalar delta is immune to the
//! cross-process noise that plagues absolute numbers on shared hosts.
//! `--parse-only` runs just this part and exits (the `check.sh`
//! microbench).
//!
//! Part 2c (batch): the work-stealing pool over the figure-5 corpus at
//! 1/2/4/8 workers, reporting wall time and speedup vs one worker —
//! honest about the host's core count, which bounds the speedup.
//!
//! Part 3 (streaming): end-to-end (parse + validate) throughput of the
//! streaming validator vs the tree pipeline on the same serialized
//! corpora, plus a peak-RSS measurement on a large generated document:
//! each mode runs in a fresh subprocess (`--mem-probe`, a hidden flag)
//! so `VmHWM` isolates that mode's high-water mark. The streamed RSS
//! should be flat in document size (O(depth) frames), the tree RSS
//! proportional to it. `--mem-mb N` sizes the document (default 100).
//!
//! `--json <path>` writes the numbers as `BENCH_validation.json`.

use std::collections::BTreeMap;
use std::io::Write;

use bonxai_bench::{print_table, timed};
use bonxai_core::translate::bxsd_to_dfa_xsd;
use bonxai_core::{BonxaiSchema, Bxsd, CompiledBxsd, ValidateOptions};
use bonxai_gen::{sample_document, DocConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relang::{CompiledDre, Dfa, StateId};
use xmltree::{
    AttrList, Document, Engine, EventSink, NameId, NodeId, TextChunk, TextInterest, XmlReader,
};
use xsd::violation::{Violation, ViolationKind};
use xsd::CompiledXsd;

const LOCKSTEP: ValidateOptions = ValidateOptions {
    record_matches: false,
    force_lockstep: true,
};

fn data(name: &str) -> String {
    for base in [".", "..", "../.."] {
        if let Ok(text) = std::fs::read_to_string(format!("{base}/data/{name}")) {
            return text;
        }
    }
    panic!("data file {name} not found (run from the workspace root)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--mem-probe") {
        // Hidden subprocess mode for the peak-RSS measurement.
        let [mode, schema, doc] = &args[i + 1..i + 4] else {
            panic!("--mem-probe <tree|stream> <schema> <document>");
        };
        mem_probe(mode, schema, doc);
        return;
    }
    // Repetition floor: every interleaved timing loop runs its fixed
    // iteration count AND at least this many seconds, so a noisy host
    // can be answered with a longer measurement instead of a lucky one.
    let min_secs: f64 = args
        .iter()
        .position(|a| a == "--min-secs")
        .map(|i| {
            args.get(i + 1)
                .expect("--min-secs <seconds>")
                .parse()
                .expect("seconds")
        })
        .unwrap_or(0.0);
    if args.iter().any(|a| a == "--parse-only") {
        parse_only_bench(min_secs);
        return;
    }
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).cloned().expect("--json <path>"));
    let mem_mb: usize = args
        .iter()
        .position(|a| a == "--mem-mb")
        .map(|i| args.get(i + 1).expect("--mem-mb <N>").parse().expect("N"))
        .unwrap_or(100);

    // The ablation runs first: its corpora are timed on a fresh heap,
    // before the scaling table's 100k-node documents fragment it.
    let results = ablation(min_secs);
    let batch = batch_scaling();
    let mem = streaming_memory(mem_mb);
    scaling_table();
    if let Some(path) = json_path {
        let json = render_json(&results, &batch, &mem);
        std::fs::write(&path, json).expect("write json");
        println!("\nwrote {path}");
    }
}

fn scaling_table() {
    let fig2 = xmltree::dtd::parse_dtd(&data("figure2.dtd")).expect("figure 2");
    let fig3 = xsd::parse_xsd(&data("figure3.xsd")).expect("figure 3");
    let fig5 = BonxaiSchema::parse(&data("figure5.bonxai")).expect("figure 5");

    let dfa_schema = bxsd_to_dfa_xsd(&fig5.bxsd);
    let compiled_dtd = fig2.compile();
    let compiled_xsd = CompiledXsd::new(&fig3);
    let compiled_bxsd = CompiledBxsd::new(&fig5.bxsd);
    let compiled_dfa = dfa_schema.compile();
    assert!(
        compiled_bxsd.product_states().is_some(),
        "figure 5 fits the product budget"
    );

    let gen_schema = bonxai_core::translate::xsd_to_dfa_xsd(&fig3);
    let mut rng = StdRng::seed_from_u64(2015);
    let mut rows = Vec::new();
    for target in [100usize, 1_000, 10_000, 100_000] {
        // Build one big document of roughly `target` element nodes by
        // concatenating samples under a shared root.
        let mut doc = Document::new("document");
        let root = doc.root();
        // the Figure-2 DTD requires exactly one section below template
        let template = doc.add_element(root, "template");
        doc.add_element(template, "section");
        doc.add_element(root, "userstyles");
        let content = doc.add_element(root, "content");
        while doc.element_count() < target {
            let sample = sample_document(
                &gen_schema,
                &DocConfig {
                    max_nodes: 400,
                    ..DocConfig::default()
                },
                &mut rng,
            )
            .expect("figure 3 has roots");
            // graft the sample's content sections under our content node
            let sc = sample
                .iter_elements()
                .find(|&n| sample.name(n) == Some("content"))
                .expect("content");
            for child in sample.element_children(sc) {
                graft(&sample, child, &mut doc, content);
            }
        }
        let nodes = doc.element_count();

        let (_, dtd_ms) = timed(|| {
            assert!(xmltree::dtd::validator::validate_compiled(&compiled_dtd, &doc).is_empty())
        });
        let (_, xsd_ms) = timed(|| assert!(compiled_xsd.validate(&doc).is_valid()));
        let (_, product_ms) = timed(|| assert!(compiled_bxsd.validate(&doc).is_valid()));
        let (_, lockstep_ms) =
            timed(|| assert!(compiled_bxsd.validate_with(&doc, LOCKSTEP).is_valid()));
        let (_, dfa_ms) = timed(|| assert!(compiled_dfa.validate(&doc).is_empty()));

        let per = |ms: f64| format!("{:.0}", ms * 1e6 / nodes as f64);
        rows.push(vec![
            nodes.to_string(),
            per(dtd_ms),
            per(xsd_ms),
            per(product_ms),
            per(lockstep_ms),
            per(dfa_ms),
        ]);
    }
    print_table(
        "Validation cost per element node (ns/node)",
        &[
            "nodes",
            "DTD",
            "XSD (typed)",
            "BonXai (product)",
            "BonXai (lock-step)",
            "DFA-based XSD",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: every column flat (linear-time validators); the \
         lock-step constant is ~#rules DFA steps per node, product and \
         DFA-based XSD ~1."
    );
}

/// The pre-product BXSD evaluator, reproduced from the growth seed as the
/// ablation baseline. Lock-step over the per-rule ancestor DFAs; two
/// passes over each node's children (child word, then child queueing); a
/// fresh word vector and fresh state vectors per node; match recording
/// always on. This is exactly what `CompiledBxsd::validate` did before
/// the relevance product landed.
struct SeedValidator<'a> {
    bxsd: &'a Bxsd,
    ancestor_dfas: Vec<Dfa>,
    content_matchers: Vec<CompiledDre>,
}

// Built (and paid for) per node like the seed did, but never read here —
// the ablation only measures the recording cost.
#[allow(dead_code)]
struct SeedMatch {
    matching: Vec<usize>,
    relevant: Option<usize>,
}

impl<'a> SeedValidator<'a> {
    fn new(bxsd: &'a Bxsd) -> Self {
        let n = bxsd.ename.len();
        SeedValidator {
            bxsd,
            ancestor_dfas: bxsd
                .rules
                .iter()
                .map(|r| relang::ops::regex_to_dfa(&r.ancestor, n))
                .collect(),
            content_matchers: bxsd
                .rules
                .iter()
                .map(|r| CompiledDre::compile(&r.content.regex, n))
                .collect(),
        }
    }

    fn validate(&self, doc: &Document) -> (Vec<Violation>, BTreeMap<NodeId, SeedMatch>) {
        let mut violations = Vec::new();
        let mut matches = BTreeMap::new();
        let root = doc.root();
        let root_name = doc.name(root).expect("root is an element");
        let root_sym = self.bxsd.ename.lookup(root_name);
        if !root_sym.is_some_and(|s| self.bxsd.start.contains(&s)) {
            violations.push(Violation {
                node: root,
                kind: ViolationKind::RootNotAllowed(root_name.to_owned()),
            });
            return (violations, matches);
        }
        let init: Vec<Option<StateId>> = self
            .ancestor_dfas
            .iter()
            .map(|d| d.transition(d.initial(), root_sym.expect("checked")))
            .collect();
        let mut stack = vec![(root, init)];
        while let Some((node, states)) = stack.pop() {
            let matching: Vec<usize> = states
                .iter()
                .enumerate()
                .filter(|(i, s)| s.is_some_and(|q| self.ancestor_dfas[*i].is_final(q)))
                .map(|(i, _)| i)
                .collect();
            let relevant = matching.last().copied();
            matches.insert(
                node,
                SeedMatch {
                    matching: matching.clone(),
                    relevant,
                },
            );

            // First pass: child word.
            let mut word = Vec::new();
            let mut unknown_at = None;
            for (i, child) in doc.element_children(node).enumerate() {
                match self.bxsd.ename.lookup(doc.name(child).expect("element")) {
                    Some(sym) => word.push(sym),
                    None => {
                        violations.push(Violation {
                            node: child,
                            kind: ViolationKind::NoGoverningDefinition(
                                doc.name(child).expect("element").to_owned(),
                            ),
                        });
                        unknown_at = Some(i);
                        break;
                    }
                }
            }

            if let Some(i) = relevant {
                let model = &self.bxsd.rules[i].content;
                let name = doc.name(node).expect("element");
                xsd::violation::check_text(doc, node, model, &mut violations);
                xsd::violation::check_attributes(doc, node, model, &mut violations);
                let failed_at = unknown_at.or_else(|| {
                    if model.simple_content.is_some() {
                        (!word.is_empty()).then_some(0)
                    } else {
                        self.content_matchers[i].first_error(&word)
                    }
                });
                if let Some(at) = failed_at {
                    violations.push(Violation {
                        node,
                        kind: ViolationKind::ContentModel {
                            element: name.to_owned(),
                            at,
                        },
                    });
                }
            }

            // Second pass: queue the children with advanced rule states.
            for (i, child) in doc.element_children(node).enumerate() {
                let next: Vec<Option<StateId>> = match word.get(i) {
                    Some(&sym) => states
                        .iter()
                        .zip(&self.ancestor_dfas)
                        .map(|(s, d)| s.and_then(|q| d.transition(q, sym)))
                        .collect(),
                    None => vec![None; states.len()],
                };
                stack.push((child, next));
            }
        }
        (violations, matches)
    }
}

/// One schema's ablation numbers.
struct Ablation {
    schema: &'static str,
    rules: usize,
    product_states: usize,
    nodes: usize,
    /// Seed lock-step evaluator (the pre-product hot path).
    lockstep_ns_per_node: f64,
    /// This change's lock-step fallback (Theorem 9 path).
    fallback_ns_per_node: f64,
    product_ns_per_node: f64,
    /// End-to-end tree pipeline: parse to a tree, then validate.
    tree_e2e_ns_per_node: f64,
    /// End-to-end streaming validation of the same bytes (no tree).
    stream_ns_per_node: f64,
    /// Zero-copy token scan of the same bytes: no tree, no validation.
    lex_ns_per_node: f64,
    /// The fused drive loop into a counting sink: event delivery without
    /// token materialization and without validation. `stream − dispatch`
    /// is what the automaton stepping itself costs; `dispatch − lex` is
    /// (negative) what skipping token construction saves.
    dispatch_ns_per_node: f64,
    /// Parse to a tree only (no validation).
    parse_ns_per_node: f64,
    /// Lexer engine behind the three numbers above (`sse2`/`neon`, or
    /// `scalar` when forced via `BONXAI_NO_SIMD`).
    simd: &'static str,
    /// The same, re-measured with the engine forced to scalar —
    /// interleaved with the rows above so the ratio is noise-immune.
    stream_scalar_ns_per_node: f64,
    lex_scalar_ns_per_node: f64,
    dispatch_scalar_ns_per_node: f64,
    parse_scalar_ns_per_node: f64,
}

impl Ablation {
    fn lockstep_nodes_per_sec(&self) -> f64 {
        1e9 / self.lockstep_ns_per_node
    }
    fn product_nodes_per_sec(&self) -> f64 {
        1e9 / self.product_ns_per_node
    }
    /// Product vs the pre-product hot path.
    fn speedup(&self) -> f64 {
        self.lockstep_ns_per_node / self.product_ns_per_node
    }
    /// Product vs the equally-optimized lock-step fallback.
    fn fallback_speedup(&self) -> f64 {
        self.fallback_ns_per_node / self.product_ns_per_node
    }
}

fn ablation(min_secs: f64) -> Vec<Ablation> {
    let mut results = Vec::new();
    for name in ["figure4.bonxai", "figure5.bonxai"] {
        let schema = BonxaiSchema::parse(&data(name)).expect("schema parses");
        let compiled = CompiledBxsd::new(&schema.bxsd);
        let product_states = compiled
            .product_states()
            .expect("figure schemas fit the product budget");

        // Sample a conforming corpus from the schema's own language.
        let dfa_schema = bxsd_to_dfa_xsd(&schema.bxsd);
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = DocConfig {
            max_nodes: 500,
            ..DocConfig::default()
        };
        let mut docs = Vec::new();
        let mut nodes = 0usize;
        while nodes < 40_000 {
            let doc = sample_document(&dfa_schema, &cfg, &mut rng).expect("satisfiable");
            nodes += doc.element_count();
            docs.push(doc);
        }

        // Interleaved timed passes (seed, fallback, product, repeatedly),
        // keeping each strategy's fastest pass: noise bursts hit all
        // strategies instead of biasing one measurement block.
        let seed = SeedValidator::new(&schema.bxsd);
        let one = |opts: ValidateOptions| {
            let (violations, ms) = timed(|| {
                docs.iter()
                    .map(|d| compiled.validate_with(d, opts).violations.len())
                    .sum::<usize>()
            });
            assert_eq!(violations, 0, "{name}: sampled docs must conform");
            ms * 1e6 / nodes as f64
        };
        let mut lockstep_ns = f64::INFINITY;
        let mut fallback_ns = f64::INFINITY;
        let mut product_ns = f64::INFINITY;
        let started = std::time::Instant::now();
        let mut iters = 0usize;
        while iters < 15 || started.elapsed().as_secs_f64() < min_secs {
            let (violations, ms) =
                timed(|| docs.iter().map(|d| seed.validate(d).0.len()).sum::<usize>());
            assert_eq!(violations, 0, "{name}: sampled docs must conform");
            lockstep_ns = lockstep_ns.min(ms * 1e6 / nodes as f64);
            fallback_ns = fallback_ns.min(one(LOCKSTEP));
            product_ns = product_ns.min(one(ValidateOptions::default()));
            iters += 1;
        }

        // Streamed vs tree, end to end over the same bytes: the tree
        // pipeline parses and then validates; the streaming validator
        // does both in one pass without materializing nodes. The
        // streamed number is taken under both lexer engines (detected
        // SIMD and forced scalar), interleaved in the same loop.
        let texts: Vec<String> = docs.iter().map(xmltree::to_string).collect();
        let stream_one = |engine: Engine| {
            let (violations, ms) = timed(|| {
                texts
                    .iter()
                    .map(|t| {
                        let mut reader = XmlReader::from_str(t);
                        reader.set_engine(engine);
                        compiled
                            .validate_stream(&mut reader)
                            .expect("round-trip")
                            .violations
                            .len()
                    })
                    .sum::<usize>()
            });
            assert_eq!(violations, 0, "{name}: corpus must conform (stream)");
            ms * 1e6 / nodes as f64
        };
        let mut tree_e2e_ns = f64::INFINITY;
        let mut stream_ns = f64::INFINITY;
        let mut stream_scalar_ns = f64::INFINITY;
        let started = std::time::Instant::now();
        let mut iters = 0usize;
        while iters < 10 || started.elapsed().as_secs_f64() < min_secs {
            let (violations, ms) = timed(|| {
                texts
                    .iter()
                    .map(|t| {
                        let doc = xmltree::parse_document(t).expect("round-trip");
                        compiled.validate(&doc).violations.len()
                    })
                    .sum::<usize>()
            });
            assert_eq!(violations, 0, "{name}: corpus must conform (tree)");
            tree_e2e_ns = tree_e2e_ns.min(ms * 1e6 / nodes as f64);
            stream_ns = stream_ns.min(stream_one(Engine::detect()));
            stream_scalar_ns = stream_scalar_ns.min(stream_one(Engine::Scalar));
            iters += 1;
        }
        let fe = front_end_ns(&texts, nodes, min_secs);

        results.push(Ablation {
            schema: name,
            rules: schema.bxsd.n_rules(),
            product_states,
            nodes,
            lockstep_ns_per_node: lockstep_ns,
            fallback_ns_per_node: fallback_ns,
            product_ns_per_node: product_ns,
            tree_e2e_ns_per_node: tree_e2e_ns,
            stream_ns_per_node: stream_ns,
            lex_ns_per_node: fe.lex,
            dispatch_ns_per_node: fe.dispatch,
            parse_ns_per_node: fe.parse,
            simd: Engine::detect().name(),
            stream_scalar_ns_per_node: stream_scalar_ns,
            lex_scalar_ns_per_node: fe.lex_scalar,
            dispatch_scalar_ns_per_node: fe.dispatch_scalar,
            parse_scalar_ns_per_node: fe.parse_scalar,
        });
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.schema.to_owned(),
                r.rules.to_string(),
                r.product_states.to_string(),
                r.nodes.to_string(),
                format!("{:.0}", r.lockstep_ns_per_node),
                format!("{:.0}", r.fallback_ns_per_node),
                format!("{:.0}", r.product_ns_per_node),
                format!("{:.2}x", r.speedup()),
                format!("{:.2}x", r.fallback_speedup()),
                format!("{:.0}", r.tree_e2e_ns_per_node),
                format!("{:.0}", r.stream_ns_per_node),
                format!("{:.0}", r.lex_ns_per_node),
                format!("{:.0}", r.parse_ns_per_node),
                r.simd.to_owned(),
            ]
        })
        .collect();
    print_table(
        "Ablation: lock-step vs relevance product (conforming corpora)",
        &[
            "schema",
            "rules",
            "prod states",
            "nodes",
            "seed lock-step",
            "fallback",
            "product",
            "vs seed",
            "vs fallback",
            "tree e2e",
            "streamed",
            "lex only",
            "parse only",
            "simd",
        ],
        &rows,
    );
    println!(
        "\nns/node; seed lock-step = the pre-product evaluator (two child \
         passes, always records matches); fallback = this change's \
         Theorem-9 lock-step path; product = one lookup per node. \
         tree e2e / streamed are end-to-end over serialized bytes: parse + \
         validate a tree vs one streaming pass with no tree; lex only is \
         the zero-copy token scan of the same bytes, parse only builds \
         the tree without validating — streamed minus lex only is what \
         validation itself costs on the streaming path. `simd` is the \
         lexer engine behind those columns."
    );

    let scalar_rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.schema.to_owned(),
                format!("{:.0}", r.stream_scalar_ns_per_node),
                format!("{:.0}", r.lex_scalar_ns_per_node),
                format!("{:.0}", r.parse_scalar_ns_per_node),
                format!("{:.2}x", r.stream_scalar_ns_per_node / r.stream_ns_per_node),
                format!("{:.2}x", r.lex_scalar_ns_per_node / r.lex_ns_per_node),
                format!("{:.2}x", r.parse_scalar_ns_per_node / r.parse_ns_per_node),
            ]
        })
        .collect();
    print_table(
        "Forced-scalar lexer (same corpora, interleaved measurement)",
        &[
            "schema",
            "streamed",
            "lex only",
            "parse only",
            "stream gain",
            "lex gain",
            "parse gain",
        ],
        &scalar_rows,
    );
    println!(
        "\nns/node with the lexer engine forced to the portable scalar \
         path; `gain` columns are scalar/simd ratios. Scalar and SIMD \
         passes alternate inside one timing loop, so the ratios survive \
         host noise that distorts the absolute numbers."
    );

    let stage_rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.schema.to_owned(),
                format!("{:.0}", r.lex_ns_per_node),
                format!("{:.0}", r.dispatch_ns_per_node),
                format!("{:.0}", r.stream_ns_per_node - r.dispatch_ns_per_node),
                format!("{:.0}", r.stream_ns_per_node),
                format!("{:.0}", r.dispatch_scalar_ns_per_node),
                format!("{:.0}", r.stream_scalar_ns_per_node),
            ]
        })
        .collect();
    print_table(
        "Streamed stage breakdown (ns/node)",
        &[
            "schema",
            "lex (tokens)",
            "dispatch (drive)",
            "validate (=streamed-dispatch)",
            "streamed e2e",
            "dispatch scalar",
            "streamed scalar",
        ],
        &stage_rows,
    );
    println!(
        "\n`lex` pulls tokens; `dispatch` pushes events through the fused \
         drive loop into a counting sink (no tokens, no validation); the \
         difference to `streamed e2e` is the automaton stepping itself. \
         All stages come from the same interleaved loops as the tables \
         above."
    );
    results
}

/// Front-end timings for one corpus under both lexer engines.
struct FrontEnd {
    lex: f64,
    dispatch: f64,
    parse: f64,
    lex_scalar: f64,
    dispatch_scalar: f64,
    parse_scalar: f64,
}

/// An [`EventSink`] that only counts events: what the fused drive loop
/// costs with validation stubbed out. Asks for `NonWhitespace` text so
/// the drive pays the same per-text-run whitespace answer it pays under
/// element-only content rules.
struct CountSink {
    events: usize,
}

impl EventSink for CountSink {
    fn start_element(
        &mut self,
        _name: &str,
        _name_id: NameId,
        _attributes: &AttrList<'_>,
        _self_closing: bool,
    ) -> TextInterest {
        self.events += 1;
        TextInterest::NonWhitespace
    }

    fn end_element(&mut self, _name: &str, _name_id: NameId) {
        self.events += 1;
    }

    fn text(&mut self, _chunk: TextChunk<'_>) {
        self.events += 1;
    }
}

/// Times the front end alone over serialized corpora: the zero-copy
/// token scan (no tree, no validation), the fused drive loop into a
/// counting sink (no tokens either), and the tree parse (no
/// validation), each under the detected engine and the forced scalar
/// fallback. All measurements alternate within one loop so a
/// noise burst on a shared host hits them equally; the scalar/SIMD
/// ratio is therefore trustworthy even when absolutes wobble.
fn front_end_ns(texts: &[String], nodes: usize, min_secs: f64) -> FrontEnd {
    let lex_one = |engine: Engine| {
        let (events, ms) = timed(|| {
            texts
                .iter()
                .map(|t| {
                    let mut reader = XmlReader::from_str(t);
                    reader.set_engine(engine);
                    let mut n = 0usize;
                    loop {
                        let tok = reader.next_event().expect("well-formed");
                        if tok.is_end_document() {
                            break;
                        }
                        n += 1;
                    }
                    n
                })
                .sum::<usize>()
        });
        assert!(events >= nodes, "every element node yields an event");
        ms * 1e6 / nodes as f64
    };
    let dispatch_one = |engine: Engine| {
        let (events, ms) = timed(|| {
            texts
                .iter()
                .map(|t| {
                    let mut reader = XmlReader::from_str(t);
                    reader.set_engine(engine);
                    let mut sink = CountSink { events: 0 };
                    reader.drive(&mut sink).expect("well-formed");
                    sink.events
                })
                .sum::<usize>()
        });
        assert!(events >= nodes, "every element node yields events");
        ms * 1e6 / nodes as f64
    };
    let parse_one = |engine: Engine| {
        let (parsed, ms) = timed(|| {
            texts
                .iter()
                .map(|t| {
                    let mut reader = XmlReader::from_str(t);
                    reader.set_engine(engine);
                    xmltree::parse_from_reader(reader)
                        .expect("round-trip")
                        .document
                        .element_count()
                })
                .sum::<usize>()
        });
        assert_eq!(parsed, nodes, "tree parse sees the same corpus");
        ms * 1e6 / nodes as f64
    };
    let mut fe = FrontEnd {
        lex: f64::INFINITY,
        dispatch: f64::INFINITY,
        parse: f64::INFINITY,
        lex_scalar: f64::INFINITY,
        dispatch_scalar: f64::INFINITY,
        parse_scalar: f64::INFINITY,
    };
    let started = std::time::Instant::now();
    let mut iters = 0usize;
    while iters < 10 || started.elapsed().as_secs_f64() < min_secs {
        fe.lex = fe.lex.min(lex_one(Engine::detect()));
        fe.lex_scalar = fe.lex_scalar.min(lex_one(Engine::Scalar));
        fe.dispatch = fe.dispatch.min(dispatch_one(Engine::detect()));
        fe.dispatch_scalar = fe.dispatch_scalar.min(dispatch_one(Engine::Scalar));
        fe.parse = fe.parse.min(parse_one(Engine::detect()));
        fe.parse_scalar = fe.parse_scalar.min(parse_one(Engine::Scalar));
        iters += 1;
    }
    fe
}

/// `--parse-only`: the front-end microbench alone — fast enough for
/// `scripts/check.sh` to run on every gate pass.
fn parse_only_bench(min_secs: f64) {
    let schema = BonxaiSchema::parse(&data("figure5.bonxai")).expect("schema parses");
    let dfa_schema = bxsd_to_dfa_xsd(&schema.bxsd);
    let mut rng = StdRng::seed_from_u64(42);
    let cfg = DocConfig {
        max_nodes: 500,
        ..DocConfig::default()
    };
    let mut nodes = 0usize;
    let mut texts = Vec::new();
    while nodes < 40_000 {
        let doc = sample_document(&dfa_schema, &cfg, &mut rng).expect("satisfiable");
        nodes += doc.element_count();
        texts.push(xmltree::to_string(&doc));
    }
    let fe = front_end_ns(&texts, nodes, min_secs);
    print_table(
        "Parse-only front end (figure5 corpus)",
        &[
            "engine",
            "nodes",
            "lex only (ns/node)",
            "dispatch (ns/node)",
            "tree parse (ns/node)",
        ],
        &[
            vec![
                Engine::detect().name().to_owned(),
                nodes.to_string(),
                format!("{:.0}", fe.lex),
                format!("{:.0}", fe.dispatch),
                format!("{:.0}", fe.parse),
            ],
            vec![
                "scalar (forced)".into(),
                nodes.to_string(),
                format!("{:.0}", fe.lex_scalar),
                format!("{:.0}", fe.dispatch_scalar),
                format!("{:.0}", fe.parse_scalar),
            ],
        ],
    );
    println!(
        "\nlex gain {:.2}x, dispatch gain {:.2}x, parse gain {:.2}x \
         (scalar/simd, interleaved)",
        fe.lex_scalar / fe.lex,
        fe.dispatch_scalar / fe.dispatch,
        fe.parse_scalar / fe.parse
    );
}

/// One run of the batch engine at a fixed worker count.
struct BatchRun {
    jobs: usize,
    ms: f64,
    speedup: f64,
}

/// Work-stealing pool scaling over the figure-5 corpus.
struct BatchScaling {
    cores: usize,
    docs: usize,
    nodes: usize,
    runs: Vec<BatchRun>,
}

fn batch_scaling() -> BatchScaling {
    let schema = BonxaiSchema::parse(&data("figure5.bonxai")).expect("schema parses");
    let compiled = CompiledBxsd::new(&schema.bxsd);
    let dfa_schema = bxsd_to_dfa_xsd(&schema.bxsd);
    let mut rng = StdRng::seed_from_u64(7);
    let cfg = DocConfig {
        max_nodes: 500,
        ..DocConfig::default()
    };
    let mut docs = Vec::new();
    let mut nodes = 0usize;
    while nodes < 120_000 {
        let doc = sample_document(&dfa_schema, &cfg, &mut rng).expect("satisfiable");
        nodes += doc.element_count();
        docs.push(doc);
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut runs = Vec::new();
    let mut base_ms = 0.0;
    for jobs in [1usize, 2, 4, 8] {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let (violations, ms) = timed(|| {
                compiled
                    .validate_batch_with_jobs(&docs, ValidateOptions::default(), jobs)
                    .iter()
                    .map(|r| r.violations.len())
                    .sum::<usize>()
            });
            assert_eq!(violations, 0, "sampled corpus conforms");
            best = best.min(ms);
        }
        if jobs == 1 {
            base_ms = best;
        }
        runs.push(BatchRun {
            jobs,
            ms: best,
            speedup: base_ms / best,
        });
    }

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.jobs.to_string(),
                format!("{:.1}", r.ms),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Batch validation scaling ({} docs, {} nodes, {} core(s) available)",
            docs.len(),
            nodes,
            cores
        ),
        &["workers", "wall ms", "speedup"],
        &rows,
    );
    println!(
        "\nSpeedup is bounded by the available cores: on a {cores}-core \
         host the curve flattens at {cores} worker(s); extra workers only \
         verify that oversubscription costs nothing."
    );
    BatchScaling {
        cores,
        docs: docs.len(),
        nodes,
        runs,
    }
}

/// One mode's run of the `--mem-probe` subprocess.
struct ProbeResult {
    violations: usize,
    ms: f64,
    peak_rss_mb: f64,
}

/// The streaming-memory measurement: both pipelines over one large
/// on-disk document, each in a fresh subprocess.
struct StreamMemory {
    doc_mb: f64,
    depth: usize,
    tree: ProbeResult,
    stream: ProbeResult,
}

/// Process peak resident set (`VmHWM`) in KiB; 0 where /proc is absent.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Subprocess body for one (mode, schema, document) measurement. Prints
/// a single machine-readable line; the process's `VmHWM` then reflects
/// only this mode's allocations.
fn mem_probe(mode: &str, schema_path: &str, doc_path: &str) {
    let src = std::fs::read_to_string(schema_path).expect("schema file");
    let schema = BonxaiSchema::parse(&src).expect("schema parses");
    let compiled = CompiledBxsd::new(&schema.bxsd);
    let baseline_kb = peak_rss_kb();
    let start = std::time::Instant::now();
    let violations = match mode {
        "tree" => {
            let text = std::fs::read_to_string(doc_path).expect("document file");
            let doc = xmltree::parse_document(&text).expect("well-formed");
            compiled.validate(&doc).violations.len()
        }
        "stream" => {
            let file = std::fs::File::open(doc_path).expect("document file");
            let mut reader = XmlReader::from_reader(file);
            compiled
                .validate_stream(&mut reader)
                .expect("well-formed")
                .violations
                .len()
        }
        other => panic!("unknown probe mode {other:?}"),
    };
    let ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "RESULT violations={violations} ms={ms:.1} peak_rss_kb={} baseline_kb={baseline_kb}",
        peak_rss_kb()
    );
}

/// Generates a ~`mb` MiB figure5-conforming document on disk and runs
/// the tree and streaming pipelines over it in fresh subprocesses,
/// comparing wall time and peak RSS.
fn streaming_memory(mb: usize) -> StreamMemory {
    let dir = std::env::temp_dir();
    let schema_path = dir.join("bonxai_bench_figure5.bonxai");
    std::fs::write(&schema_path, data("figure5.bonxai")).expect("write schema");
    let doc_path = dir.join("bonxai_bench_big.xml");

    // Content sections nest three deep per chunk, so the document is
    // wide (bytes scale with chunk count) but of constant depth 5 —
    // the streaming frame stack never exceeds 5 entries.
    const CHUNK: &str = "<section title=\"Chapter\">intro <bold>text</bold>\
        <section title=\"Part\">body body body body body body body\
        <section title=\"Detail\">deep deep deep deep deep deep</section>\
        </section></section>\n";
    let depth = 5;
    let target = mb * (1 << 20);
    {
        let file = std::fs::File::create(&doc_path).expect("create big doc");
        let mut w = std::io::BufWriter::new(file);
        w.write_all(b"<document><template/><userstyles/><content>\n")
            .expect("write");
        let mut written = 0usize;
        while written < target {
            w.write_all(CHUNK.as_bytes()).expect("write");
            written += CHUNK.len();
        }
        w.write_all(b"</content></document>\n").expect("write");
    }
    let doc_mb = std::fs::metadata(&doc_path).expect("big doc").len() as f64 / (1 << 20) as f64;

    let probe = |mode: &str| -> ProbeResult {
        let out = std::process::Command::new(std::env::current_exe().expect("self"))
            .args(["--mem-probe", mode])
            .arg(&schema_path)
            .arg(&doc_path)
            .output()
            .expect("probe subprocess runs");
        assert!(
            out.status.success(),
            "probe {mode}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let line = stdout
            .lines()
            .find(|l| l.starts_with("RESULT "))
            .expect("probe output");
        let field = |key: &str| -> f64 {
            line.split_whitespace()
                .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
                .expect("probe field")
                .parse()
                .expect("probe number")
        };
        ProbeResult {
            violations: field("violations") as usize,
            ms: field("ms"),
            peak_rss_mb: field("peak_rss_kb") / 1024.0,
        }
    };
    let tree = probe("tree");
    let stream = probe("stream");
    assert_eq!(
        tree.violations, stream.violations,
        "streamed and tree verdicts must agree on the big document"
    );
    let _ = std::fs::remove_file(&doc_path);

    print_table(
        &format!(
            "Peak RSS: streaming vs tree on a {doc_mb:.0} MiB document (figure5, depth {depth})"
        ),
        &["mode", "wall ms", "peak RSS (MiB)"],
        &[
            vec![
                "tree (parse+validate)".into(),
                format!("{:.0}", tree.ms),
                format!("{:.1}", tree.peak_rss_mb),
            ],
            vec![
                "streamed".into(),
                format!("{:.0}", stream.ms),
                format!("{:.1}", stream.peak_rss_mb),
            ],
        ],
    );
    println!(
        "\nExpected shape: the streamed peak is flat in document size \
         (O(depth) frames + a 64 KiB read window), the tree peak grows \
         with it (node arena + strings)."
    );
    StreamMemory {
        doc_mb,
        depth,
        tree,
        stream,
    }
}

fn render_json(results: &[Ablation], batch: &BatchScaling, mem: &StreamMemory) -> String {
    let mut out = String::from("{\n  \"experiment\": \"validation_product_vs_lockstep\",\n");
    out.push_str(
        "  \"lockstep_baseline\": \"pre-product evaluator (two child passes, \
         per-node allocations, unconditional match recording)\",\n",
    );
    out.push_str("  \"schemas\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"schema\": \"{}\", \"rules\": {}, \"product_states\": {}, \
             \"nodes\": {}, \"lockstep_ns_per_node\": {:.2}, \
             \"fallback_ns_per_node\": {:.2}, \
             \"product_ns_per_node\": {:.2}, \"lockstep_nodes_per_sec\": {:.0}, \
             \"product_nodes_per_sec\": {:.0}, \"speedup\": {:.3}, \
             \"fallback_speedup\": {:.3}, \"tree_e2e_ns_per_node\": {:.2}, \
             \"stream_ns_per_node\": {:.2}, \"lex_ns_per_node\": {:.2}, \
             \"dispatch_ns_per_node\": {:.2}, \
             \"parse_ns_per_node\": {:.2}, \"simd\": \"{}\", \
             \"stream_scalar_ns_per_node\": {:.2}, \
             \"lex_scalar_ns_per_node\": {:.2}, \
             \"dispatch_scalar_ns_per_node\": {:.2}, \
             \"parse_scalar_ns_per_node\": {:.2}}}{}\n",
            r.schema,
            r.rules,
            r.product_states,
            r.nodes,
            r.lockstep_ns_per_node,
            r.fallback_ns_per_node,
            r.product_ns_per_node,
            r.lockstep_nodes_per_sec(),
            r.product_nodes_per_sec(),
            r.speedup(),
            r.fallback_speedup(),
            r.tree_e2e_ns_per_node,
            r.stream_ns_per_node,
            r.lex_ns_per_node,
            r.dispatch_ns_per_node,
            r.parse_ns_per_node,
            r.simd,
            r.stream_scalar_ns_per_node,
            r.lex_scalar_ns_per_node,
            r.dispatch_scalar_ns_per_node,
            r.parse_scalar_ns_per_node,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    // The hot-frame layout guard's runtime twin: the compile-time
    // assertion caps these at 64, the JSON records the exact sizes so
    // frame-diet regressions show up in the benchmark diff.
    let (frame_product, frame_lockstep) = bonxai_core::stream_frame_sizes();
    out.push_str(&format!(
        "  \"frames_bytes\": {{\"product\": {frame_product}, \"lockstep\": {frame_lockstep}}},\n",
    ));
    out.push_str(&format!(
        "  \"batch_scaling\": {{\"cores\": {}, \"docs\": {}, \"nodes\": {}, \"runs\": [",
        batch.cores, batch.docs, batch.nodes
    ));
    for (i, r) in batch.runs.iter().enumerate() {
        out.push_str(&format!(
            "{}{{\"jobs\": {}, \"ms\": {:.1}, \"speedup\": {:.3}}}",
            if i == 0 { "" } else { ", " },
            r.jobs,
            r.ms,
            r.speedup,
        ));
    }
    out.push_str("]},\n");
    out.push_str(&format!(
        "  \"streaming_memory\": {{\"schema\": \"figure5.bonxai\", \
         \"doc_mb\": {:.1}, \"depth\": {}, \
         \"tree_ms\": {:.1}, \"tree_peak_rss_mb\": {:.1}, \
         \"stream_ms\": {:.1}, \"stream_peak_rss_mb\": {:.1}}}\n",
        mem.doc_mb,
        mem.depth,
        mem.tree.ms,
        mem.tree.peak_rss_mb,
        mem.stream.ms,
        mem.stream.peak_rss_mb,
    ));
    out.push_str("}\n");
    out
}

/// Copies the subtree rooted at `src_node` under `dst_parent`.
fn graft(
    src: &Document,
    src_node: xmltree::NodeId,
    dst: &mut Document,
    dst_parent: xmltree::NodeId,
) {
    match src.kind(src_node) {
        xmltree::NodeKind::Text(t) => {
            dst.add_text(dst_parent, t);
        }
        xmltree::NodeKind::Element { name, attributes } => {
            let id = dst.add_element(dst_parent, name);
            for a in attributes {
                dst.set_attribute(id, &a.name, &a.value);
            }
            for &c in src.children(src_node) {
                graft(src, c, dst, id);
            }
        }
    }
}
