//! Experiment E16 — schema-compile latency per stage.
//!
//! Validation is fast (E12/E14); the remaining cost for a schema service
//! is *compile-time*: building per-rule ancestor DFAs (subset
//! construction), minimizing them, assembling the relevance product
//! (Lemma 7 / Theorem 9 budget), the end-to-end `CompiledBxsd` build,
//! translation to XSD (Algorithm 3 + the k-suffix fast path of
//! Theorems 12/13), and the lint pass. This harness times each stage
//! separately over the 225-schema `web_corpus`, aggregated per k-class,
//! so kernel rewrites and the memo cache can be attributed per stage.
//!
//! Flags: `--json` for machine-readable output, `--smoke` to run a small
//! prefix of the corpus as a CI liveness check, `--no-cache` to ablate
//! the `AutomataCache` (every stage rebuilds from scratch).

use bonxai_bench::{print_table, timed};
use bonxai_core::lang::lift;
use bonxai_core::lint::{lint_ast_with, LintOptions};
use bonxai_core::translate::{bxsd_to_xsd, TranslateOptions};
use bonxai_core::validate::{CompiledBxsd, DEFAULT_PRODUCT_BUDGET};
use bonxai_gen::web_corpus;
use relang::cache::{AutomataCache, CacheStats};
use relang::ops::{minimize, regex_to_dfa, RelevanceProduct};

/// Per-schema stage timings in ms.
#[derive(Default, Clone, Copy)]
struct Stages {
    subset: f64,
    minimize: f64,
    product: f64,
    compile: f64,
    translate: f64,
    lint: f64,
}

impl Stages {
    fn add(&mut self, o: &Stages) {
        self.subset += o.subset;
        self.minimize += o.minimize;
        self.product += o.product;
        self.compile += o.compile;
        self.translate += o.translate;
        self.lint += o.lint;
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let no_cache = args.iter().any(|a| a == "--no-cache");

    let mut corpus = web_corpus(2015);
    if smoke {
        corpus.truncate(20);
    }

    let lint_opts = LintOptions {
        include_notes: true,
        ..LintOptions::default()
    };
    let topts = TranslateOptions::default();

    // (k-class, stage timings) per schema.
    let mut rows: Vec<(Option<usize>, Stages)> = Vec::new();
    // Aggregated per-stage cache counters across all schema compiles.
    let mut cache_total = CacheStats::default();
    for entry in &corpus {
        let bxsd = &entry.bxsd;
        let n = bxsd.ename.len();
        let mut st = Stages::default();

        // A fresh per-schema cache, exactly as the compile pipeline uses
        // it; `--no-cache` threads `None` everywhere instead.
        let mut cache = AutomataCache::new();

        // Stage 1: subset construction (raw per-rule ancestor DFAs).
        let (raw, ms) = timed(|| {
            bxsd.rules
                .iter()
                .map(|r| regex_to_dfa(&r.ancestor, n))
                .collect::<Vec<_>>()
        });
        st.subset = ms;

        // Stage 2: Hopcroft minimization of each.
        let (_min, ms) = timed(|| raw.iter().map(minimize).collect::<Vec<_>>());
        st.minimize = ms;

        // Stage 3: the relevance product over the raw DFAs.
        let (_p, ms) = timed(|| RelevanceProduct::build(n, &raw, DEFAULT_PRODUCT_BUDGET));
        st.product = ms;

        // Stage 4: end-to-end compile (what `bonxai validate` pays).
        let (_c, ms) = timed(|| {
            if no_cache {
                CompiledBxsd::new(bxsd)
            } else {
                CompiledBxsd::with_cache(bxsd, DEFAULT_PRODUCT_BUDGET, &mut cache)
            }
        });
        st.compile = ms;

        // Stage 5: translation to XSD (fast path or Algorithm 3).
        let (_x, ms) = timed(|| bxsd_to_xsd(bxsd, &topts));
        st.translate = ms;

        // Stage 6: the full lint pass.
        let ast = lift(bxsd);
        let (_r, ms) = timed(|| {
            let c = if no_cache { None } else { Some(&mut cache) };
            lint_ast_with(&ast, &lint_opts, c)
        });
        st.lint = ms;

        cache_total.add(cache.stats());
        rows.push((entry.k, st));
    }

    // Aggregate per k-class.
    let classes = [Some(1), Some(2), Some(3), None];
    let mut agg: Vec<(Option<usize>, usize, Stages)> = Vec::new();
    for class in classes {
        let in_class: Vec<_> = rows.iter().filter(|r| r.0 == class).collect();
        if in_class.is_empty() {
            continue;
        }
        let mut total = Stages::default();
        for r in &in_class {
            total.add(&r.1);
        }
        agg.push((class, in_class.len(), total));
    }
    let mut grand = Stages::default();
    for r in &rows {
        grand.add(&r.1);
    }

    if json {
        println!("{{");
        println!("  \"experiment\": \"compile_stages\",");
        println!("  \"schemas\": {},", rows.len());
        println!("  \"cache\": {},", !no_cache);
        println!(
            "  \"total_ms\": {{ \"subset\": {:.2}, \"minimize\": {:.2}, \"product\": {:.2}, \
             \"compile\": {:.2}, \"translate\": {:.2}, \"lint\": {:.2} }},",
            grand.subset, grand.minimize, grand.product, grand.compile, grand.translate, grand.lint
        );
        println!(
            "  \"cache_stats\": {{ \"raw\": {{ \"hits\": {}, \"misses\": {} }}, \
             \"min\": {{ \"hits\": {}, \"misses\": {} }}, \
             \"product\": {{ \"hits\": {}, \"misses\": {} }}, \
             \"content\": {{ \"hits\": {}, \"misses\": {} }} }},",
            cache_total.raw.hits,
            cache_total.raw.misses,
            cache_total.min.hits,
            cache_total.min.misses,
            cache_total.product.hits,
            cache_total.product.misses,
            cache_total.content.hits,
            cache_total.content.misses,
        );
        println!("  \"classes\": [");
        for (i, (class, n, t)) in agg.iter().enumerate() {
            let k = class.map_or("null".to_string(), |k| k.to_string());
            println!(
                "    {{ \"k\": {k}, \"schemas\": {n}, \"subset_ms\": {:.2}, \
                 \"minimize_ms\": {:.2}, \"product_ms\": {:.2}, \"compile_ms\": {:.2}, \
                 \"translate_ms\": {:.2}, \"lint_ms\": {:.2} }}{}",
                t.subset,
                t.minimize,
                t.product,
                t.compile,
                t.translate,
                t.lint,
                if i + 1 < agg.len() { "," } else { "" }
            );
        }
        println!("  ]");
        println!("}}");
        return;
    }

    let table: Vec<Vec<String>> = agg
        .iter()
        .map(|(class, n, t)| {
            vec![
                class.map_or("general".to_string(), |k| format!("{k}-suffix")),
                n.to_string(),
                format!("{:.2}", t.subset),
                format!("{:.2}", t.minimize),
                format!("{:.2}", t.product),
                format!("{:.2}", t.compile),
                format!("{:.2}", t.translate),
                format!("{:.2}", t.lint),
            ]
        })
        .collect();
    print_table(
        &format!(
            "E16 — compile stages over web_corpus(2015){}{}",
            if smoke { " [smoke]" } else { "" },
            if no_cache { " [cache off]" } else { "" }
        ),
        &[
            "class",
            "schemas",
            "subset",
            "minimize",
            "product",
            "compile",
            "translate",
            "lint",
        ],
        &table,
    );
    println!(
        "\ntotals (ms): subset {:.1}  minimize {:.1}  product {:.1}  compile {:.1}  \
         translate {:.1}  lint {:.1}",
        grand.subset, grand.minimize, grand.product, grand.compile, grand.translate, grand.lint
    );
    println!(
        "cache hits/misses: raw {}/{}  min {}/{}  product {}/{}  content {}/{}",
        cache_total.raw.hits,
        cache_total.raw.misses,
        cache_total.min.hits,
        cache_total.min.misses,
        cache_total.product.hits,
        cache_total.product.misses,
        cache_total.content.hits,
        cache_total.content.misses,
    );
}
