//! Experiment E7 — the synthetic Web corpus (Section 4.4's practical
//! claim): on a 225-schema corpus whose k-suffix profile matches the
//! study the paper cites (98% with k ≤ 3), the efficient fragment covers
//! almost everything and the end-to-end BonXai → XSD → BonXai pipeline is
//! fast and size-stable.
//!
//! Uses scoped threads to sweep the corpus in parallel.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use bonxai_bench::{print_table, timed};
use bonxai_core::translate::{bxsd_to_xsd, xsd_to_bxsd, Path, TranslateOptions};
use bonxai_gen::web_corpus;

/// One sweep result: (id, k-class, bxsd size, xsd size, back size, fwd ms, rev ms).
type SweepRow = (usize, Option<usize>, usize, usize, usize, f64, f64);

fn main() {
    let corpus = web_corpus(2015);
    let opts = TranslateOptions::default();

    let fast = AtomicUsize::new(0);
    let general = AtomicUsize::new(0);
    let results: Mutex<Vec<SweepRow>> = Mutex::new(Vec::new());

    let n_workers = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    let chunk = corpus.len().div_ceil(n_workers);
    let (fast_ref, general_ref, results_ref, opts_ref) = (&fast, &general, &results, &opts);
    std::thread::scope(|scope| {
        for slab in corpus.chunks(chunk) {
            scope.spawn(move || {
                for entry in slab {
                    let ((xsd, path), fwd_ms) = timed(|| bxsd_to_xsd(&entry.bxsd, opts_ref));
                    match path {
                        Path::Fast(_) => fast_ref.fetch_add(1, Ordering::Relaxed),
                        Path::General => general_ref.fetch_add(1, Ordering::Relaxed),
                    };
                    let ((back, _), rev_ms) = timed(|| xsd_to_bxsd(&xsd, opts_ref));
                    results_ref.lock().expect("no poisoning").push((
                        entry.id,
                        entry.k,
                        entry.bxsd.size(),
                        xsd.size(),
                        back.size(),
                        fwd_ms,
                        rev_ms,
                    ));
                }
            });
        }
    });

    let mut results = results.into_inner().expect("no poisoning");
    results.sort_unstable_by_key(|r| r.0);

    // Aggregate per generation class.
    let mut rows = Vec::new();
    for class in [Some(1), Some(2), Some(3), None] {
        let group: Vec<_> = results.iter().filter(|r| r.1 == class).collect();
        if group.is_empty() {
            continue;
        }
        let n = group.len();
        let avg = |f: &dyn Fn(&&SweepRow) -> f64| group.iter().map(f).sum::<f64>() / n as f64;
        rows.push(vec![
            class.map_or("none".to_owned(), |k| k.to_string()),
            n.to_string(),
            format!("{:.0}", avg(&|r| r.2 as f64)),
            format!("{:.0}", avg(&|r| r.3 as f64)),
            format!("{:.2}", avg(&|r| r.3 as f64 / r.2 as f64)),
            format!("{:.0}", avg(&|r| r.4 as f64)),
            format!("{:.2}", avg(&|r| r.5)),
            format!("{:.2}", avg(&|r| r.6)),
        ]);
    }
    print_table(
        "Corpus sweep: 225 synthetic Web schemas (98% k <= 3)",
        &[
            "k",
            "schemas",
            "BXSD size",
            "XSD size",
            "ratio",
            "back size",
            "fwd ms",
            "rev ms",
        ],
        &rows,
    );

    let f = fast.load(Ordering::Relaxed);
    let g = general.load(Ordering::Relaxed);
    println!(
        "\nfast path taken: {f}/{} ({:.1}%), general Algorithm 3: {g}",
        f + g,
        100.0 * f as f64 / (f + g) as f64
    );
    println!(
        "Expected shape: >=98% of schemas take the k-suffix fast path, \
         XSD/BXSD size ratios stay small and flat, and per-schema \
         translation times stay in the low milliseconds."
    );
}
