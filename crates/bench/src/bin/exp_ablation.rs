//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **λ-pruning in Algorithm 3** (the paper's reachable-states remark):
//!    product states with pruning vs. the plain reachable product vs. the
//!    full product bound.
//! 2. **Type minimization after Algorithm 4**: output type counts with and
//!    without the Martens–Niehren pass.
//! 3. **Elimination order in Algorithm 2**: the fill-in-minimizing
//!    heuristic vs. naive sequential elimination (BXSD sizes).
//! 4. **Theorem 12 fast path vs. Algorithm 3** on identical suffix-based
//!    inputs (state counts).

use bonxai_bench::{print_table, timed};
use bonxai_core::translate::{bxsd_to_dfa_xsd, dfa_xsd_to_xsd, suffix_bxsd_to_dfa_xsd};
use bonxai_gen::{random_suffix_bxsd, theorem8_xn, theorem9_bn, SchemaConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relang::ops::{
    dfa_to_regex_with_order, lazy_product, lazy_product_pruned, minimize, regex_to_dfa,
    EliminationOrder,
};
use relang::Dfa;

fn main() {
    ablate_pruning();
    ablate_minimization();
    ablate_elimination_order();
    ablate_fast_path();
}

/// 1. λ-pruning: how many product states does the pruning avoid?
fn ablate_pruning() {
    let mut rows = Vec::new();
    for n in 2..=6 {
        let b = theorem9_bn(n);
        let n_syms = b.ename.len();
        let components: Vec<Dfa> = b
            .rules
            .iter()
            .map(|r| minimize(&regex_to_dfa(&r.ancestor, n_syms)))
            .collect();
        let refs: Vec<&Dfa> = components.iter().collect();
        let full_bound: usize = components.iter().map(Dfa::n_states).product();
        let (unpruned, _) = timed(|| lazy_product(&refs).dfa.n_states());
        // the pruned product is what Algorithm 3 actually builds
        let (pruned, _) = timed(|| bxsd_to_dfa_xsd(&b).n_states() - 1);
        // reference: pruning that only allows symbols in content models is
        // implemented inside bxsd_to_dfa_xsd; here also show a trivial
        // "allow everything" pruned product to confirm it matches unpruned
        let sanity = lazy_product_pruned(&refs, |_, _| true).dfa.n_states();
        assert_eq!(sanity, unpruned);
        rows.push(vec![
            format!("B_{n}"),
            full_bound.to_string(),
            unpruned.to_string(),
            pruned.to_string(),
            format!("{:.1}%", 100.0 * pruned as f64 / unpruned as f64),
        ]);
    }
    print_table(
        "Ablation 1: Algorithm 3 product size (family B_n)",
        &[
            "schema",
            "full bound",
            "reachable",
            "λ-pruned",
            "pruned/reachable",
        ],
        &rows,
    );
    println!(
        "Reachability alone already beats the full product bound; the \
         λ-pruning removes the transitions no conforming document can take."
    );
}

/// 2. Minimization after Algorithm 4.
fn ablate_minimization() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut rows = Vec::new();
    for &(label, k) in &[("k=1", 1usize), ("k=2", 2), ("k=3", 3)] {
        let b = random_suffix_bxsd(
            &SchemaConfig {
                n_names: 12,
                n_rules: 16,
                k,
                ..SchemaConfig::default()
            },
            &mut rng,
        );
        let d = suffix_bxsd_to_dfa_xsd(&b).expect("suffix-based");
        let raw = dfa_xsd_to_xsd(&d);
        let (minimized, ms) = timed(|| xsd::minimize_types(&raw));
        rows.push(vec![
            label.to_owned(),
            raw.n_types().to_string(),
            minimized.n_types().to_string(),
            format!(
                "{:.1}%",
                100.0 * minimized.n_types() as f64 / raw.n_types() as f64
            ),
            format!("{ms:.2}"),
        ]);
    }
    print_table(
        "Ablation 2: type minimization after Algorithm 4",
        &["schema", "raw types", "minimized", "kept", "min ms"],
        &rows,
    );
}

/// 3. Elimination order in Algorithm 2 (DFA → regex).
fn ablate_elimination_order() {
    let mut rows = Vec::new();
    for n in 2..=5 {
        let x = theorem8_xn(n);
        let states: Vec<usize> = (1..x.dfa.n_states()).collect();
        let (smart, smart_ms) = timed(|| {
            states
                .iter()
                .map(|&q| {
                    dfa_to_regex_with_order(&x.dfa, &[q], EliminationOrder::LowDegreeFirst).size()
                })
                .sum::<usize>()
        });
        let (naive, naive_ms) = timed(|| {
            states
                .iter()
                .map(|&q| {
                    dfa_to_regex_with_order(&x.dfa, &[q], EliminationOrder::Sequential).size()
                })
                .sum::<usize>()
        });
        rows.push(vec![
            format!("X_{n}"),
            smart.to_string(),
            naive.to_string(),
            format!("{:.2}x", naive as f64 / smart as f64),
            format!("{smart_ms:.1}"),
            format!("{naive_ms:.1}"),
        ]);
    }
    print_table(
        "Ablation 3: Algorithm 2 elimination order (total LHS regex size)",
        &[
            "schema",
            "low-degree-first",
            "sequential",
            "ratio",
            "smart ms",
            "naive ms",
        ],
        &rows,
    );
    println!(
        "Both orders are exponential on X_n (Theorem 8 guarantees it), but \
         the heuristic's constant factor matters on practical inputs."
    );
}

/// 4. Theorem 12 fast path vs. Algorithm 3 on the same input.
fn ablate_fast_path() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut rows = Vec::new();
    for &n_rules in &[8usize, 16, 32, 64] {
        let b = random_suffix_bxsd(
            &SchemaConfig {
                n_names: 10,
                n_rules,
                k: 2,
                ..SchemaConfig::default()
            },
            &mut rng,
        );
        let (fast, fast_ms) = timed(|| suffix_bxsd_to_dfa_xsd(&b).expect("suffix").n_states());
        let (slow, slow_ms) = timed(|| bxsd_to_dfa_xsd(&b).n_states());
        rows.push(vec![
            n_rules.to_string(),
            fast.to_string(),
            slow.to_string(),
            format!("{fast_ms:.2}"),
            format!("{slow_ms:.2}"),
            format!("{:.1}x", slow_ms / fast_ms.max(0.001)),
        ]);
    }
    print_table(
        "Ablation 4: Theorem 12 Aho-Corasick vs. Algorithm 3 product",
        &[
            "rules",
            "AC states",
            "product states",
            "AC ms",
            "product ms",
            "speedup",
        ],
        &rows,
    );
}
