//! Experiment E4 — Theorem 9: translating the family B_n (BXSDs of size
//! O(n)) to XML Schema requires at least 2^n types; minimization does not
//! help, because the type automaton genuinely needs to remember which a_i
//! have occurred once vs. twice on the ancestor path.

use bonxai_bench::{print_table, timed};
use bonxai_core::translate::{bxsd_to_dfa_xsd, dfa_xsd_to_xsd};
use bonxai_gen::theorem9_bn;
use xsd::minimize_types;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let minimize_up_to: usize = 8; // minimization is O(types²)-ish; cap it
    let mut rows = Vec::new();
    let mut prev: Option<usize> = None;
    for n in 1..=max_n {
        let b = theorem9_bn(n);
        let ((dfa_xsd, x), ms) = timed(|| {
            let d = bxsd_to_dfa_xsd(&b);
            let x = dfa_xsd_to_xsd(&d);
            (d, x)
        });
        let (min_types, min_ms) = if n <= minimize_up_to {
            let (m, ms2) = timed(|| minimize_types(&x));
            (m.n_types().to_string(), format!("{ms2:.1}"))
        } else {
            ("-".to_owned(), "-".to_owned())
        };
        let growth = prev
            .map(|p| format!("{:.2}x", x.n_types() as f64 / p as f64))
            .unwrap_or_else(|| "-".to_owned());
        prev = Some(x.n_types());
        rows.push(vec![
            n.to_string(),
            b.size().to_string(),
            dfa_xsd.n_states().to_string(),
            x.n_types().to_string(),
            min_types,
            format!(">=2^{n}={}", 1usize << n),
            growth,
            format!("{ms:.1}"),
            min_ms,
        ]);
    }
    print_table(
        "Theorem 9: BonXai -> XSD worst case (family B_n)",
        &[
            "n",
            "BXSD size",
            "DFA states",
            "XSD types",
            "minimized",
            "bound",
            "growth",
            "ms",
            "min ms",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: BXSD size grows linearly in n, XSD types grow \
         >= 2^n, and minimization cannot reduce them below the bound."
    );
}
