//! Experiment E3 — Theorem 8: translating the family X_n (XSDs of size
//! O(n²)) to BonXai requires exponential-size schemas, even with the
//! priority system.
//!
//! Regenerates a table of: n, |X_n| (states / total size), the size of the
//! BXSD produced by Algorithm 2, the largest single ancestor expression,
//! and wall time. The expected shape is ~2^n growth of the BXSD size
//! against ~n² growth of the XSD size.

use bonxai_bench::{print_table, timed};
use bonxai_core::translate::dfa_xsd_to_bxsd;
use bonxai_gen::theorem8_xn;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let mut rows = Vec::new();
    let mut prev_size: Option<usize> = None;
    for n in 1..=max_n {
        let x = theorem8_xn(n);
        let (b, ms) = timed(|| dfa_xsd_to_bxsd(&x));
        let bxsd_size = b.size();
        let max_lhs = b.rules.iter().map(|r| r.ancestor.size()).max().unwrap_or(0);
        let growth = prev_size
            .map(|p| format!("{:.2}x", bxsd_size as f64 / p as f64))
            .unwrap_or_else(|| "-".to_owned());
        prev_size = Some(bxsd_size);
        rows.push(vec![
            n.to_string(),
            x.n_states().to_string(),
            x.size().to_string(),
            b.n_rules().to_string(),
            bxsd_size.to_string(),
            max_lhs.to_string(),
            growth,
            format!("{ms:.1}"),
        ]);
    }
    print_table(
        "Theorem 8: XSD -> BonXai worst case (family X_n)",
        &[
            "n",
            "XSD states",
            "XSD size",
            "BXSD rules",
            "BXSD size",
            "max |r_q|",
            "growth",
            "ms",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: XSD size grows ~n^2, BXSD size grows ~2^n \
         (the paper's lower bound is 2^Omega(n) against |X_n| = O(n^2))."
    );
}
