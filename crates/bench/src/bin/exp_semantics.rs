//! Experiment E8 — Section 3.2: priority vs. existential vs. universal
//! semantics for pattern-based schemas.
//!
//! On schemas with overlapping rules, the three semantics genuinely
//! disagree; on schemas whose rule LHS are pairwise disjoint, priorities
//! are irrelevant and priority/universal coincide (existential
//! additionally requires every node to be matched). The paper's point:
//! only the priority semantics is compatible with UPA, because DREs are
//! not closed under the unions (existential) or intersections (universal)
//! the other semantics would need.

use bonxai_bench::print_table;
use bonxai_core::semantics::{conforms, Semantics};
use bonxai_core::translate::bxsd_to_dfa_xsd;
use bonxai_core::Bxsd;
use bonxai_gen::{mutate_document, random_suffix_bxsd, sample_document, DocConfig, SchemaConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn census(bxsd: &Bxsd, rng: &mut StdRng, n_docs: usize) -> [usize; 4] {
    // counts of verdict patterns over sampled + mutated documents:
    // [all agree, priority≠universal, priority≠existential, any disagreement]
    let schema = bxsd_to_dfa_xsd(bxsd);
    let mut counts = [0usize; 4];
    for i in 0..n_docs {
        let Some(doc) = sample_document(&schema, &DocConfig::default(), rng) else {
            continue;
        };
        let doc = if i % 2 == 0 {
            doc
        } else {
            mutate_document(&doc, rng)
        };
        let p = conforms(bxsd, &doc, Semantics::Priority);
        let u = conforms(bxsd, &doc, Semantics::Universal);
        let e = conforms(bxsd, &doc, Semantics::Existential);
        if p == u && u == e {
            counts[0] += 1;
        }
        if p != u {
            counts[1] += 1;
        }
        if p != e {
            counts[2] += 1;
        }
        if !(p == u && u == e) {
            counts[3] += 1;
        }
    }
    counts
}

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    let n_docs = 200;

    // Overlapping rules: generated suffix schemas freely reuse labels, so
    // several rules can match the same node with different content models.
    let overlapping = random_suffix_bxsd(
        &SchemaConfig {
            n_names: 6,
            n_rules: 12,
            k: 2,
            ..SchemaConfig::default()
        },
        &mut rng,
    );
    let c_overlap = census(&overlapping, &mut rng, n_docs);

    // Disjoint rules: one rule per label (a DTD-like schema) — priorities
    // are irrelevant, as the paper notes for rules ending in different
    // element names.
    let disjoint = {
        use bonxai_core::bxsd::BxsdBuilder;
        use relang::Regex;
        use xsd::ContentModel;
        let mut b = BxsdBuilder::new();
        b.start("r");
        let names = ["r", "x", "y", "z"];
        let syms: Vec<_> = names.iter().map(|n| b.ename.intern(n)).collect();
        b.suffix_rule(
            &["r"],
            ContentModel::new(Regex::star(Regex::alt(vec![
                Regex::sym(syms[1]),
                Regex::sym(syms[2]),
            ]))),
        );
        b.suffix_rule(&["x"], ContentModel::new(Regex::opt(Regex::sym(syms[3]))));
        b.suffix_rule(&["y"], ContentModel::new(Regex::star(Regex::sym(syms[3]))));
        b.suffix_rule(&["z"], ContentModel::empty());
        b.build().expect("valid")
    };
    let c_disjoint = census(&disjoint, &mut rng, n_docs);

    let row = |name: &str, c: [usize; 4]| {
        vec![
            name.to_owned(),
            n_docs.to_string(),
            c[0].to_string(),
            c[1].to_string(),
            c[2].to_string(),
            format!("{:.1}%", 100.0 * c[3] as f64 / n_docs as f64),
        ]
    };
    print_table(
        "Priority vs. universal vs. existential semantics",
        &["schema", "docs", "agree", "P!=U", "P!=E", "disagree%"],
        &[
            row("overlapping rules", c_overlap),
            row("disjoint rules", c_disjoint),
        ],
    );
    println!(
        "\nExpected shape: with overlapping rules the semantics disagree on \
         a sizable fraction of documents; with pairwise-disjoint rules, \
         priority and universal verdicts coincide (P!=U stays 0), matching \
         the paper's remark that priorities are irrelevant when ancestor \
         languages are disjoint."
    );
}
