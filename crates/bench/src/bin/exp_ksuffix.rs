//! Experiments E5/E6 — the efficient fragment of Section 4.4.
//!
//! * Theorem 12: k-suffix based BXSDs translate into DFA-based XSDs of
//!   **linear size** in polynomial time. We sweep schema sizes and report
//!   the output/input size ratio (it should stay flat) and wall time.
//! * Theorem 13: k-suffix DFA-based XSDs translate back into suffix-based
//!   BXSDs in polynomial time for constant k (we sweep k = 1, 2, 3).

use bonxai_bench::{print_table, timed};
use bonxai_core::translate::{k_suffix_dfa_to_bxsd, suffix_bxsd_to_dfa_xsd};
use bonxai_gen::{random_suffix_bxsd, SchemaConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2015);

    // --- Theorem 12: size sweep at k = 3. ---
    let mut rows = Vec::new();
    for &(n_names, n_rules) in &[(8, 8), (12, 16), (16, 32), (24, 64), (32, 128), (48, 256)] {
        let cfg = SchemaConfig {
            n_names,
            n_rules,
            k: 3,
            ..SchemaConfig::default()
        };
        // average over a few schemas
        let mut in_size = 0usize;
        let mut out_states = 0usize;
        let mut ms_total = 0.0;
        const REPS: usize = 5;
        for _ in 0..REPS {
            let b = random_suffix_bxsd(&cfg, &mut rng);
            in_size += b.size();
            let (d, ms) = timed(|| suffix_bxsd_to_dfa_xsd(&b).expect("suffix-based"));
            out_states += d.n_states();
            ms_total += ms;
        }
        rows.push(vec![
            n_rules.to_string(),
            format!("{}", in_size / REPS),
            format!("{}", out_states / REPS),
            format!("{:.2}", out_states as f64 / in_size as f64),
            format!("{:.2}", ms_total / REPS as f64),
        ]);
    }
    print_table(
        "Theorem 12: suffix-based BonXai -> DFA-based XSD (k = 3)",
        &["rules", "BXSD size", "XSD states", "states/size", "ms"],
        &rows,
    );
    println!("Expected shape: states/size stays roughly constant (linear-size output).");

    // --- Theorem 13: k sweep. ---
    let mut rows = Vec::new();
    for k in 1..=3 {
        for &(n_names, n_rules) in &[(10, 12), (20, 40)] {
            let cfg = SchemaConfig {
                n_names,
                n_rules,
                k,
                ..SchemaConfig::default()
            };
            let b = random_suffix_bxsd(&cfg, &mut rng);
            // forward: build the k-suffix DFA-based XSD…
            let d = suffix_bxsd_to_dfa_xsd(&b).expect("suffix-based");
            // …then time the reverse translation (Theorem 13).
            let (back, ms) = timed(|| {
                k_suffix_dfa_to_bxsd(&d, k, 10_000_000).expect("k-suffix by construction")
            });
            rows.push(vec![
                k.to_string(),
                n_names.to_string(),
                d.n_states().to_string(),
                back.n_rules().to_string(),
                back.size().to_string(),
                format!("{ms:.2}"),
            ]);
        }
    }
    print_table(
        "Theorem 13: k-suffix DFA-based XSD -> suffix-based BonXai",
        &["k", "names", "XSD states", "BXSD rules", "BXSD size", "ms"],
        &rows,
    );
    println!(
        "Expected shape: rule counts grow with the number of realizable \
         k-suffixes (polynomial for constant k; the k = 3 rows stay modest \
         because only realizable suffixes are enumerated)."
    );
}
