//! Experiment E9 — Section 3.2's schema-evolution use case: capping the
//! nesting depth of sections at three is a **one-rule edit** in BonXai
//! but introduces a chain of new complex types in XML Schema.
//!
//! The harness sweeps the target depth cap d and reports the edit size on
//! both sides: BonXai always appends one rule; the XSD needs one type per
//! allowed depth.

use bonxai_bench::print_table;
use bonxai_core::pipeline::bonxai_to_xsd;
use bonxai_core::translate::TranslateOptions;
use bonxai_core::BonxaiSchema;

const BASE: &str = r#"
global { document }
grammar {
  document = { element template, element content }
  template = { (element section)? }
  content  = { (element section)* }
  content//section = mixed { attribute title, (element section)* }
  template//section = { (element section)? }
  @title = { type xs:string }
}
"#;

fn evolved(depth_cap: usize) -> String {
    // content/section/…/section = mixed { attribute title } with depth_cap
    // section steps: sections at that depth have no section children.
    let steps = vec!["section"; depth_cap].join("/");
    let rule = format!("  content/{steps} = mixed {{ attribute title }}\n");
    let idx = BASE.rfind('}').expect("grammar block");
    let (head, tail) = BASE.split_at(idx);
    format!("{head}{rule}{tail}")
}

fn main() {
    let opts = TranslateOptions::default();
    let base = BonxaiSchema::parse(BASE).expect("base parses");
    let (xsd_base, _) = bonxai_to_xsd(&base, &opts);

    let mut rows = vec![vec![
        "(base)".to_owned(),
        base.bxsd.n_rules().to_string(),
        "-".to_owned(),
        xsd_base.n_types().to_string(),
        "-".to_owned(),
    ]];
    for depth in 2..=6 {
        let src = evolved(depth);
        let schema = BonxaiSchema::parse(&src).expect("evolved parses");
        let (xsd, _) = bonxai_to_xsd(&schema, &opts);
        rows.push(vec![
            format!("cap at {depth}"),
            schema.bxsd.n_rules().to_string(),
            format!("+{}", schema.bxsd.n_rules() - base.bxsd.n_rules()),
            xsd.n_types().to_string(),
            format!("+{}", xsd.n_types() as i64 - xsd_base.n_types() as i64),
        ]);
    }
    print_table(
        "Schema evolution: capping section nesting depth",
        &[
            "variant",
            "BXSD rules",
            "rule delta",
            "XSD types",
            "type delta",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: the BonXai edit is one appended rule regardless \
         of the cap; the XSD needs roughly one extra type per allowed depth \
         (the section chain is unrolled), exactly the clutter the paper \
         describes."
    );
}
