//! Experiments E1/E2 — the paper's worked example, as a printed report:
//! Figure 1's document against the DTD (Fig. 2), the XSD (Fig. 3), and
//! the two BonXai schemas (Figs. 4 and 5), plus the translations between
//! them. The same checks run as assertions in `tests/figures.rs`; this
//! binary prints the verdict table.

use bonxai_bench::print_table;
use bonxai_core::translate::TranslateOptions;
use bonxai_core::{dtd_import, pipeline, BonxaiSchema};
use xmltree::{dtd, Document};

fn data(name: &str) -> String {
    // The harness runs from the workspace; data/ sits at its root.
    for base in [".", "..", "../.."] {
        if let Ok(text) = std::fs::read_to_string(format!("{base}/data/{name}")) {
            return text;
        }
    }
    panic!("data file {name} not found (run from the workspace root)");
}

fn main() {
    let doc = xmltree::parse_document(&data("figure1_document.xml")).expect("figure 1");
    let fig2 = dtd::parse_dtd(&data("figure2.dtd")).expect("figure 2");
    let fig3 = xsd::parse_xsd(&data("figure3.xsd")).expect("figure 3");
    let fig4 = BonxaiSchema::parse(&data("figure4.bonxai")).expect("figure 4");
    let fig5 = BonxaiSchema::parse(&data("figure5.bonxai")).expect("figure 5");
    let opts = TranslateOptions::default();

    // Derived schemas.
    let dtd_as_bonxai = dtd_import::dtd_to_bonxai(&fig2, &["document"]).expect("converts");
    let (fig5_as_xsd, p1) = pipeline::bonxai_to_xsd(&fig5, &opts);
    let (fig3_as_bonxai, p2) = pipeline::xsd_to_bonxai(&fig3, &opts);

    // Documents: the example plus targeted variants.
    let mut title_less = doc.clone();
    let content = title_less
        .iter_elements()
        .find(|&n| title_less.name(n) == Some("content"))
        .expect("content");
    title_less.add_element(content, "section");

    let mut template_text = doc.clone();
    let template = template_text
        .iter_elements()
        .find(|&n| template_text.name(n) == Some("template"))
        .expect("template");
    let tsec = template_text
        .element_children(template)
        .next()
        .expect("section");
    template_text.add_text(tsec, "text in template");

    let broken = xmltree::parse_document(
        "<document><userstyles/><template><section/></template><content/></document>",
    )
    .expect("parses");

    let docs: Vec<(&str, &Document)> = vec![
        ("Figure 1 document", &doc),
        ("title-less content section", &title_less),
        ("text in template section", &template_text),
        ("top-level order broken", &broken),
    ];

    let mut rows = Vec::new();
    for (name, d) in &docs {
        rows.push(vec![
            (*name).to_owned(),
            dtd::is_valid(&fig2, d).to_string(),
            fig4.is_valid(d).to_string(),
            dtd_as_bonxai.is_valid(d).to_string(),
            xsd::is_valid(&fig3, d).to_string(),
            fig5.is_valid(d).to_string(),
            xsd::is_valid(&fig5_as_xsd, d).to_string(),
            fig3_as_bonxai.is_valid(d).to_string(),
        ]);
    }
    print_table(
        "The running example (Figures 1-5) under every schema",
        &[
            "document",
            "Fig2 DTD",
            "Fig4 BonXai",
            "DTD->BonXai",
            "Fig3 XSD",
            "Fig5 BonXai",
            "Fig5->XSD",
            "XSD->BonXai",
        ],
        &rows,
    );
    println!("\ntranslation paths: Fig5 -> XSD via {p1:?}, Fig3 -> BonXai via {p2:?}");
    println!(
        "Expected shape: column groups agree pairwise (DTD-level schemas \
         accept the context-insensitive variants; XSD-level schemas reject \
         them; everything rejects the broken document)."
    );
}
