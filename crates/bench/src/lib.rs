//! # bonxai-bench — experiment harnesses
//!
//! The `exp_*` binaries in `src/bin/` regenerate the paper's figures and
//! theorem-scaling tables (see EXPERIMENTS.md at the workspace root);
//! the Criterion benches in `benches/` cover the performance-critical
//! paths (validation, translation, automata operations).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::Instant;

/// Runs `f`, returning its result and the elapsed wall time in ms.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

/// Prints a row-aligned table: a header, then rows of equal arity.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}
