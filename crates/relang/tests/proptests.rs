//! Property-based tests over the regular-language substrate.
//!
//! Core invariants checked here:
//! * derivative membership agrees with Glushkov-automaton membership;
//! * subset construction and minimization preserve the language;
//! * DFA→regex state elimination round-trips;
//! * print∘parse is the identity on regex ASTs;
//! * the determinism checker agrees with the Glushkov automaton's
//!   syntactic determinism.

use proptest::prelude::*;

use relang::ops::{determinize, dfa_to_regex, minimize};
use relang::regex::derivative::matches as dmatches;
use relang::regex::determinism::is_deterministic;
use relang::regex::display::display_regex;
use relang::regex::parser::parse_regex;
use relang::{Alphabet, CompiledDre, Nfa, Regex, Sym};

const N_SYMS: usize = 3;

/// Strategy for core regexes over 3 symbols.
fn core_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        3 => (0u32..N_SYMS as u32).prop_map(|i| Regex::Sym(Sym(i))),
        1 => Just(Regex::Epsilon),
        1 => Just(Regex::Empty),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::star),
            inner.clone().prop_map(Regex::plus),
            inner.prop_map(Regex::opt),
        ]
    })
}

/// Strategy for extended regexes (counting + interleave).
fn extended_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        3 => (0u32..N_SYMS as u32).prop_map(|i| Regex::Sym(Sym(i))),
        1 => Just(Regex::Epsilon),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::star),
            (inner.clone(), 0u32..3, 0u32..3).prop_map(|(r, lo, extra)| {
                Regex::repeat(r, lo, relang::UpperBound::Finite(lo + extra))
            }),
            prop::collection::vec((0u32..N_SYMS as u32).prop_map(|i| Regex::Sym(Sym(i))), 2..4)
                .prop_map(Regex::interleave),
        ]
    })
}

fn words_up_to(len: usize) -> Vec<Vec<Sym>> {
    let mut all = vec![vec![]];
    let mut layer: Vec<Vec<Sym>> = vec![vec![]];
    for _ in 0..len {
        let mut next = Vec::new();
        for w in &layer {
            for a in 0..N_SYMS as u32 {
                let mut w2 = w.clone();
                w2.push(Sym(a));
                next.push(w2);
            }
        }
        all.extend(next.iter().cloned());
        layer = next;
    }
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn derivatives_agree_with_glushkov(r in core_regex()) {
        let nfa = Nfa::glushkov(&r, N_SYMS).unwrap();
        for w in words_up_to(4) {
            prop_assert_eq!(nfa.accepts(&w), dmatches(&r, &w), "word {:?}", &w);
        }
    }

    #[test]
    fn determinization_preserves_language(r in core_regex()) {
        let nfa = Nfa::glushkov(&r, N_SYMS).unwrap();
        let dfa = determinize(&nfa);
        for w in words_up_to(4) {
            prop_assert_eq!(nfa.accepts(&w), dfa.accepts(&w), "word {:?}", &w);
        }
    }

    #[test]
    fn minimization_preserves_language_and_shrinks(r in core_regex()) {
        let dfa = determinize(&Nfa::glushkov(&r, N_SYMS).unwrap());
        let min = minimize(&dfa);
        prop_assert!(min.is_complete());
        prop_assert!(min.n_states() <= dfa.n_states() + 1);
        for w in words_up_to(4) {
            prop_assert_eq!(dfa.accepts(&w), min.accepts(&w), "word {:?}", &w);
        }
    }

    #[test]
    fn state_elimination_roundtrips(r in core_regex()) {
        let dfa = determinize(&Nfa::glushkov(&r, N_SYMS).unwrap());
        let back = dfa_to_regex(&dfa, &dfa.final_states());
        for w in words_up_to(4) {
            prop_assert_eq!(dmatches(&r, &w), dmatches(&back, &w), "word {:?}", &w);
        }
    }

    #[test]
    fn print_parse_identity(r in extended_regex()) {
        let mut alphabet = Alphabet::new();
        for i in 0..N_SYMS {
            alphabet.intern(&format!("n{i}"));
        }
        let shown = display_regex(&r, &alphabet);
        let mut alphabet2 = alphabet.clone();
        let parsed = parse_regex(&shown, &mut alphabet2).unwrap();
        prop_assert_eq!(&parsed, &r, "rendered {:?}", shown);
    }

    #[test]
    fn determinism_checker_matches_glushkov_determinism(r in core_regex()) {
        let nfa = Nfa::glushkov(&r, N_SYMS).unwrap();
        prop_assert_eq!(is_deterministic(&r), nfa.is_deterministic());
    }

    #[test]
    fn compiled_matcher_agrees_with_derivatives(r in extended_regex()) {
        let m = CompiledDre::compile(&r, N_SYMS);
        for w in words_up_to(4) {
            prop_assert_eq!(m.matches(&w), dmatches(&r, &w), "word {:?}", &w);
        }
    }

    #[test]
    fn first_error_consistent_with_matches(r in core_regex()) {
        let m = CompiledDre::compile(&r, N_SYMS);
        for w in words_up_to(4) {
            prop_assert_eq!(m.first_error(&w).is_none(), m.matches(&w), "word {:?}", &w);
        }
    }

    #[test]
    fn minimal_dfas_of_equivalent_regexes_have_equal_size(r in core_regex()) {
        // r and a structurally different but equivalent regex (r | r, r·ε)
        let r2 = Regex::alt(vec![r.clone(), r.clone()]);
        let m1 = minimize(&determinize(&Nfa::glushkov(&r, N_SYMS).unwrap()));
        let m2 = minimize(&determinize(&Nfa::glushkov(&r2, N_SYMS).unwrap()));
        prop_assert_eq!(m1.n_states(), m2.n_states());
    }

    #[test]
    fn parser_never_panics(input in "[a-z(){}|&*+?,%0-9 ]{0,40}") {
        let mut a = Alphabet::new();
        let _ = parse_regex(&input, &mut a);
    }
}

/// Applies a state permutation to `d` (`perm[old] = new`), preserving
/// the language while scrambling every state id.
fn relabel(d: &relang::Dfa, perm: &[usize]) -> relang::Dfa {
    let mut out = relang::Dfa::new(d.n_syms(), d.n_states(), perm[d.initial()]);
    for q in 0..d.n_states() {
        out.set_final(perm[q], d.is_final(q));
        for a in 0..d.n_syms() {
            let t = d.transition(q, Sym(a as u32)).map(|t| perm[t]);
            out.set_transition(perm[q], Sym(a as u32), t);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cached_compilation_is_identical_to_uncached(r in core_regex()) {
        // The memo must be invisible: same raw DFA (numbering included),
        // same minimal DFA, and — trivially then — the same language.
        let mut cache = relang::AutomataCache::new();
        let raw_cached = cache.raw_dfa(&r, N_SYMS);
        let raw_fresh = relang::ops::language::regex_to_dfa(&r, N_SYMS);
        prop_assert_eq!(&*raw_cached, &raw_fresh);

        let min_cached = cache.min_dfa(&r, N_SYMS);
        let min_fresh = minimize(&raw_fresh);
        prop_assert_eq!(&*min_cached, &min_fresh);
        prop_assert_eq!(min_cached.n_states(), min_fresh.n_states());
        for w in words_up_to(4) {
            prop_assert_eq!(min_cached.accepts(&w), dmatches(&r, &w), "word {:?}", &w);
        }

        // A second lookup must hit and return the same shared automaton.
        let again = cache.min_dfa(&r, N_SYMS);
        prop_assert!(std::sync::Arc::ptr_eq(&min_cached, &again));
    }

    #[test]
    fn minimize_is_idempotent(r in core_regex()) {
        let min = minimize(&determinize(&Nfa::glushkov(&r, N_SYMS).unwrap()));
        prop_assert_eq!(minimize(&min), min);
    }

    #[test]
    fn minimize_is_canonical_under_relabeling(r in core_regex(), seed in 0u64..1024) {
        // Scramble the state ids of the input DFA with a seeded Fisher–
        // Yates permutation: the canonical minimizer must erase the
        // numbering entirely and return the exact same automaton.
        let dfa = determinize(&Nfa::glushkov(&r, N_SYMS).unwrap());
        let n = dfa.n_states();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            perm.swap(i, (state >> 33) as usize % (i + 1));
        }
        let scrambled = relabel(&dfa, &perm);
        prop_assert_eq!(minimize(&scrambled), minimize(&dfa));
    }
}
