//! A hand-rolled Fx hash (the rustc hasher): multiply–rotate–xor over
//! machine words.
//!
//! The automata kernels intern millions of small `&[u32]` keys (subset
//! slices, product tuples, structural regex hashes); `SipHash`'s
//! per-call setup dominates at that size. Fx folds each word with one
//! rotate, one xor, and one multiply — no setup, no finalization — and
//! its quality is more than adequate for open addressing over interned
//! keys that are compared for full equality anyway. The workspace is
//! fully offline (no external crates), so the hasher lives here,
//! mirroring the hand-rolled FNV-1a used by [`crate::alphabet`].

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplier (the rustc constant, a 64-bit odd number derived
/// from pi with good avalanche behavior under multiplication).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Rotation applied to the accumulator before folding each word.
const ROTATE: u32 = 5;

/// The Fx streaming hasher: `h = (rotl(h, 5) ^ w) * SEED` per word.
#[derive(Clone, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// Folds one machine word into the accumulator.
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            // Pad the tail and fold the length in so "ab" and "ab\0"
            // hash differently.
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
            self.add(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`-constructed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with Fx instead of SipHash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed with Fx instead of SipHash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes a `u32` slice directly, one fold per element plus the length —
/// the hot path for interned subset and product-tuple keys, skipping the
/// byte-chunking of the `Hasher` interface.
#[inline]
pub fn hash_u32_slice(key: &[u32]) -> u64 {
    let mut h = FxHasher::default();
    for &x in key {
        h.add(x as u64);
    }
    h.add(key.len() as u64);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    #[test]
    fn slice_hash_discriminates_length_and_content() {
        assert_ne!(hash_u32_slice(&[1, 2]), hash_u32_slice(&[2, 1]));
        assert_ne!(hash_u32_slice(&[1]), hash_u32_slice(&[1, 0]));
        assert_ne!(hash_u32_slice(&[]), hash_u32_slice(&[0]));
        assert_eq!(hash_u32_slice(&[7, 9]), hash_u32_slice(&[7, 9]));
    }

    #[test]
    fn hasher_is_deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        "determinize".hash(&mut a);
        "determinize".hash(&mut b);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn byte_tail_padding_is_length_sensitive() {
        let mut a = FxHasher::default();
        a.write(b"ab");
        let mut b = FxHasher::default();
        b.write(&[b'a', b'b', 0]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fx_map_and_set_work() {
        let mut m: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        m.insert(vec![1, 2, 3], 7);
        assert_eq!(m.get([1, 2, 3].as_slice()), Some(&7));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(42);
        assert!(s.contains(&42));
    }
}
