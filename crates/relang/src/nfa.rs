//! Nondeterministic finite automata and the Glushkov construction.
//!
//! The Glushkov (position) automaton of a regex has one state per symbol
//! occurrence plus a start state and no ε-transitions; it is deterministic
//! exactly when the expression is one-unambiguous, which is why it doubles
//! as the UPA decision procedure (see [`crate::regex::determinism`]) and as
//! the linear-time matcher for deterministic content models
//! ([`crate::matcher`]).

use std::collections::BTreeMap;

use crate::alphabet::Sym;
use crate::regex::ast::Regex;
use crate::regex::props::{positions, NonCoreOperator};

/// An NFA state identifier.
pub type StateId = usize;

/// A nondeterministic finite automaton (no ε-transitions).
#[derive(Clone, Debug)]
pub struct Nfa {
    n_syms: usize,
    initial: StateId,
    /// Per-state transition map; target lists are sorted and deduplicated.
    transitions: Vec<BTreeMap<Sym, Vec<StateId>>>,
    finals: Vec<bool>,
}

impl Nfa {
    /// Creates an NFA with `n_states` states and no transitions.
    pub fn new(n_syms: usize, n_states: usize, initial: StateId) -> Self {
        assert!(initial < n_states);
        Nfa {
            n_syms,
            initial,
            transitions: vec![BTreeMap::new(); n_states],
            finals: vec![false; n_states],
        }
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.finals.len()
    }

    /// Alphabet size.
    pub fn n_syms(&self) -> usize {
        self.n_syms
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Adds a transition `q --a--> t`.
    pub fn add_transition(&mut self, q: StateId, a: Sym, t: StateId) {
        let targets = self.transitions[q].entry(a).or_default();
        if let Err(pos) = targets.binary_search(&t) {
            targets.insert(pos, t);
        }
    }

    /// Targets of `q` on `a` (sorted).
    pub fn targets(&self, q: StateId, a: Sym) -> &[StateId] {
        self.transitions[q].get(&a).map_or(&[], Vec::as_slice)
    }

    /// Marks `q` accepting.
    pub fn set_final(&mut self, q: StateId, accepting: bool) {
        self.finals[q] = accepting;
    }

    /// Whether `q` is accepting.
    pub fn is_final(&self, q: StateId) -> bool {
        self.finals[q]
    }

    /// Whether the automaton is deterministic (≤ 1 target per state/symbol).
    pub fn is_deterministic(&self) -> bool {
        self.transitions
            .iter()
            .all(|m| m.values().all(|ts| ts.len() <= 1))
    }

    /// Whether `word` is accepted (on-the-fly subset simulation).
    pub fn accepts(&self, word: &[Sym]) -> bool {
        let mut cur = vec![self.initial];
        for &a in word {
            let mut next: Vec<StateId> = Vec::new();
            for &q in &cur {
                next.extend_from_slice(self.targets(q, a));
            }
            next.sort_unstable();
            next.dedup();
            if next.is_empty() {
                return false;
            }
            cur = next;
        }
        cur.iter().any(|&q| self.finals[q])
    }

    /// Builds the Glushkov automaton of a core expression.
    ///
    /// State 0 is the start state (no incoming transitions); state `1 + p`
    /// corresponds to position `p`.
    pub fn glushkov(r: &Regex, n_syms: usize) -> Result<Nfa, NonCoreOperator> {
        let p = positions(r)?;
        let n = 1 + p.syms.len();
        let mut nfa = Nfa::new(n_syms, n, 0);
        for &f in &p.first {
            nfa.add_transition(0, p.syms[f], 1 + f);
        }
        for (q, fset) in p.follow.iter().enumerate() {
            for &f in fset {
                nfa.add_transition(1 + q, p.syms[f], 1 + f);
            }
        }
        for &l in &p.last {
            nfa.set_final(1 + l, true);
        }
        nfa.set_final(0, p.nullable);
        Ok(nfa)
    }

    /// Builds an automaton for any expression: Glushkov for core
    /// expressions, Glushkov-of-desugared otherwise (with `budget` capping
    /// the desugared size).
    pub fn from_regex(r: &Regex, n_syms: usize, budget: usize) -> Option<Nfa> {
        if r.is_core() {
            Some(Self::glushkov(r, n_syms).expect("core expression"))
        } else {
            let core = r.desugar(budget)?;
            Some(Self::glushkov(&core, n_syms).expect("desugared expression is core"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Regex {
        Regex::Sym(Sym(i))
    }
    fn w(items: &[u32]) -> Vec<Sym> {
        items.iter().map(|&i| Sym(i)).collect()
    }

    #[test]
    fn glushkov_of_concat() {
        let r = Regex::concat(vec![s(0), s(1)]);
        let n = Nfa::glushkov(&r, 2).unwrap();
        assert_eq!(n.n_states(), 3);
        assert!(n.accepts(&w(&[0, 1])));
        assert!(!n.accepts(&w(&[0])));
        assert!(!n.accepts(&w(&[1, 0])));
        assert!(n.is_deterministic());
    }

    #[test]
    fn glushkov_of_nondeterministic_expression() {
        // (a+b)* a
        let r = Regex::concat(vec![Regex::star(Regex::alt(vec![s(0), s(1)])), s(0)]);
        let n = Nfa::glushkov(&r, 2).unwrap();
        assert!(!n.is_deterministic());
        assert!(n.accepts(&w(&[0])));
        assert!(n.accepts(&w(&[1, 1, 0])));
        assert!(!n.accepts(&w(&[1])));
        assert!(!n.accepts(&w(&[])));
    }

    #[test]
    fn glushkov_nullable_start() {
        let r = Regex::star(s(0));
        let n = Nfa::glushkov(&r, 1).unwrap();
        assert!(n.accepts(&[]));
        assert!(n.accepts(&w(&[0, 0])));
    }

    #[test]
    fn from_regex_desugars_counting() {
        let r = Regex::repeat(s(0), 2, crate::regex::ast::UpperBound::Finite(3));
        let n = Nfa::from_regex(&r, 1, 1000).unwrap();
        assert!(!n.accepts(&w(&[0])));
        assert!(n.accepts(&w(&[0, 0])));
        assert!(n.accepts(&w(&[0, 0, 0])));
        assert!(!n.accepts(&w(&[0, 0, 0, 0])));
    }

    #[test]
    fn add_transition_dedups() {
        let mut n = Nfa::new(1, 2, 0);
        n.add_transition(0, Sym(0), 1);
        n.add_transition(0, Sym(0), 1);
        assert_eq!(n.targets(0, Sym(0)), &[1]);
    }
}
