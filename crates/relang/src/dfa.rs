//! Deterministic finite automata with dense transition tables.
//!
//! The paper uses DFAs in two roles: as the "type automaton" of DFA-based
//! XSDs (Definition 3 — a DFA without final states whose initial state has
//! no incoming transitions) and as minimal complete DFAs for the rule
//! languages `L(ri)` in Algorithm 3. This module provides the shared
//! machinery; the schema-specific wrappers live in the `xsd` and
//! `bonxai-core` crates.

use std::collections::VecDeque;

use crate::alphabet::Sym;

/// A DFA state identifier (dense index).
pub type StateId = usize;

/// A deterministic finite automaton over symbols `Sym(0)..Sym(n_syms-1)`.
///
/// Transitions are partial: a missing transition rejects. Use
/// [`Dfa::complete`] to totalize with an explicit sink.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dfa {
    n_syms: usize,
    initial: StateId,
    /// Row-major `states × n_syms` table; `None` = undefined.
    table: Vec<Option<StateId>>,
    finals: Vec<bool>,
}

impl Dfa {
    /// Creates a DFA with `n_states` states, no transitions, no finals.
    pub fn new(n_syms: usize, n_states: usize, initial: StateId) -> Self {
        assert!(initial < n_states || n_states == 0);
        Dfa {
            n_syms,
            initial,
            table: vec![None; n_states * n_syms],
            finals: vec![false; n_states],
        }
    }

    /// Number of states (the paper's size measure `|A|`).
    pub fn n_states(&self) -> usize {
        self.finals.len()
    }

    /// Alphabet size.
    pub fn n_syms(&self) -> usize {
        self.n_syms
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Changes the initial state.
    pub fn set_initial(&mut self, q: StateId) {
        assert!(q < self.n_states());
        self.initial = q;
    }

    /// Adds a fresh state, returning its id.
    pub fn add_state(&mut self) -> StateId {
        let id = self.n_states();
        self.table.extend(std::iter::repeat_n(None, self.n_syms));
        self.finals.push(false);
        id
    }

    /// Sets `δ(q, a)`.
    pub fn set_transition(&mut self, q: StateId, a: Sym, target: Option<StateId>) {
        let idx = q * self.n_syms + a.index();
        self.table[idx] = target;
    }

    /// `δ(q, a)`.
    #[inline]
    pub fn transition(&self, q: StateId, a: Sym) -> Option<StateId> {
        self.table[q * self.n_syms + a.index()]
    }

    /// `δ(q, a)` without a bounds check — for internal hot loops where
    /// `q` and `a` are invariants of the automaton itself (states read
    /// back out of `table`, symbols below `n_syms`). Debug builds still
    /// assert the invariant.
    #[inline]
    #[allow(unsafe_code)]
    pub(crate) fn transition_unchecked(&self, q: StateId, a: Sym) -> Option<StateId> {
        let idx = q * self.n_syms + a.index();
        debug_assert!(q < self.n_states() && a.index() < self.n_syms);
        // SAFETY: every caller passes a state id previously produced by
        // this automaton and a symbol below `n_syms`, so `idx` is within
        // the `n_states * n_syms` table (asserted above in debug builds).
        unsafe { *self.table.get_unchecked(idx) }
    }

    /// Marks/unmarks `q` as accepting.
    pub fn set_final(&mut self, q: StateId, accepting: bool) {
        self.finals[q] = accepting;
    }

    /// Whether `q` is accepting.
    #[inline]
    pub fn is_final(&self, q: StateId) -> bool {
        self.finals[q]
    }

    /// All accepting states.
    pub fn final_states(&self) -> Vec<StateId> {
        (0..self.n_states()).filter(|&q| self.finals[q]).collect()
    }

    /// Runs the automaton on `word` from the initial state.
    pub fn run(&self, word: &[Sym]) -> Option<StateId> {
        self.run_from(self.initial, word)
    }

    /// Runs the automaton on `word` from `q`.
    #[inline]
    pub fn run_from(&self, mut q: StateId, word: &[Sym]) -> Option<StateId> {
        if q >= self.n_states() {
            return None;
        }
        for &a in word {
            // Symbols are re-checked (they come from callers); states are
            // table-produced, so only the symbol range needs validating.
            if a.index() >= self.n_syms {
                return None;
            }
            q = self.transition_unchecked(q, a)?;
        }
        Some(q)
    }

    /// Whether the automaton accepts `word`.
    #[inline]
    pub fn accepts(&self, word: &[Sym]) -> bool {
        self.run(word).is_some_and(|q| self.finals[q])
    }

    /// Whether every state has a transition on every symbol.
    pub fn is_complete(&self) -> bool {
        self.table.iter().all(Option::is_some)
    }

    /// Totalizes the transition function by adding (at most) one
    /// non-accepting sink state. Returns the sink's id if one was added.
    pub fn complete(&mut self) -> Option<StateId> {
        if self.is_complete() {
            return None;
        }
        let sink = self.add_state();
        for q in 0..self.n_states() {
            for a in 0..self.n_syms {
                let idx = q * self.n_syms + a;
                if self.table[idx].is_none() {
                    self.table[idx] = Some(sink);
                }
            }
        }
        Some(sink)
    }

    /// States reachable from the initial state, in BFS order.
    pub fn reachable(&self) -> Vec<StateId> {
        let mut seen = vec![false; self.n_states()];
        let mut queue = VecDeque::new();
        let mut order = Vec::new();
        if self.n_states() == 0 {
            return order;
        }
        seen[self.initial] = true;
        queue.push_back(self.initial);
        while let Some(q) = queue.pop_front() {
            order.push(q);
            for a in 0..self.n_syms {
                if let Some(t) = self.transition(q, Sym(a as u32)) {
                    if !seen[t] {
                        seen[t] = true;
                        queue.push_back(t);
                    }
                }
            }
        }
        order
    }

    /// Restricts the DFA to its reachable part, renumbering states.
    /// Returns the old-to-new state mapping (`None` for removed states).
    pub fn trim_unreachable(&mut self) -> Vec<Option<StateId>> {
        let order = self.reachable();
        let mut remap: Vec<Option<StateId>> = vec![None; self.n_states()];
        for (new, &old) in order.iter().enumerate() {
            remap[old] = Some(new);
        }
        let mut out = Dfa::new(self.n_syms, order.len(), 0);
        out.initial = remap[self.initial].expect("initial is reachable");
        for (&old, new) in order.iter().zip(0..) {
            out.finals[new] = self.finals[old];
            for a in 0..self.n_syms {
                let t = self.transition(old, Sym(a as u32)).and_then(|t| remap[t]);
                out.set_transition(new, Sym(a as u32), t);
            }
        }
        *self = out;
        remap
    }

    /// Whether some accepting state is reachable.
    pub fn accepts_some_word(&self) -> bool {
        self.reachable().iter().any(|&q| self.finals[q])
    }

    /// The **canonical** shortest accepted word, if any: among all
    /// shortest accepted words, the lexicographically least by symbol id.
    ///
    /// Canonicality is a consequence of the search order and is relied
    /// upon by every witness-producing decision procedure (schema diff,
    /// lint BX001/BX003 golden fixtures): the BFS queue is FIFO, each
    /// state expands its symbols in ascending id order, every state
    /// records its predecessor at *discovery* (never updated), and the
    /// first accepting state found wins. By induction over the BFS
    /// frontier, each state is discovered along the length-lexicographic
    /// minimum of its incoming words, so the returned word is the
    /// length-lex minimum of the accepted language. This makes golden
    /// outputs byte-stable across runs, platforms, and job counts —
    /// treat any change to the expansion order here as a breaking change.
    pub fn shortest_accepted_word(&self) -> Option<Vec<Sym>> {
        if self.n_states() == 0 {
            return None;
        }
        let mut pred: Vec<Option<(StateId, Sym)>> = vec![None; self.n_states()];
        let mut seen = vec![false; self.n_states()];
        let mut queue = VecDeque::new();
        seen[self.initial] = true;
        queue.push_back(self.initial);
        let mut hit = None;
        if self.finals[self.initial] {
            hit = Some(self.initial);
        }
        'bfs: while let Some(q) = queue.pop_front() {
            if hit.is_some() {
                break;
            }
            for a in 0..self.n_syms {
                if let Some(t) = self.transition(q, Sym(a as u32)) {
                    if !seen[t] {
                        seen[t] = true;
                        pred[t] = Some((q, Sym(a as u32)));
                        if self.finals[t] {
                            hit = Some(t);
                            break 'bfs;
                        }
                        queue.push_back(t);
                    }
                }
            }
        }
        let mut cur = hit?;
        let mut word = Vec::new();
        while let Some((p, a)) = pred[cur] {
            word.push(a);
            cur = p;
        }
        word.reverse();
        Some(word)
    }

    /// Enumerates accepted words in length-lexicographic order (shorter
    /// first; same length → lexicographic by symbol id), up to `limit`
    /// words and length `max_len`. Useful for tests and examples; the
    /// first enumerated word equals [`Dfa::shortest_accepted_word`],
    /// which pins the canonicality of witness extraction.
    pub fn enumerate_words(&self, max_len: usize, limit: usize) -> Vec<Vec<Sym>> {
        let mut out = Vec::new();
        let mut layer: Vec<(StateId, Vec<Sym>)> = vec![(self.initial, Vec::new())];
        if self.n_states() == 0 {
            return out;
        }
        for len in 0..=max_len {
            for (q, word) in &layer {
                if self.finals[*q] {
                    out.push(word.clone());
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
            if len == max_len {
                break;
            }
            let mut next = Vec::new();
            for (q, word) in &layer {
                for a in 0..self.n_syms {
                    if let Some(t) = self.transition(*q, Sym(a as u32)) {
                        let mut w = word.clone();
                        w.push(Sym(a as u32));
                        next.push((t, w));
                    }
                }
            }
            layer = next;
            if layer.is_empty() {
                break;
            }
        }
        out
    }

    /// Complements acceptance. The automaton must be complete.
    pub fn complement(&self) -> Dfa {
        assert!(self.is_complete(), "complement requires a complete DFA");
        let mut out = self.clone();
        for f in &mut out.finals {
            *f = !*f;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// DFA for (ab)* over {a=0, b=1}.
    fn ab_star() -> Dfa {
        let mut d = Dfa::new(2, 2, 0);
        d.set_transition(0, Sym(0), Some(1));
        d.set_transition(1, Sym(1), Some(0));
        d.set_final(0, true);
        d
    }

    #[test]
    fn run_and_accept() {
        let d = ab_star();
        assert!(d.accepts(&[]));
        assert!(d.accepts(&[Sym(0), Sym(1)]));
        assert!(!d.accepts(&[Sym(0)]));
        assert!(!d.accepts(&[Sym(1)]));
        assert!(d.accepts(&[Sym(0), Sym(1), Sym(0), Sym(1)]));
    }

    #[test]
    fn completion_adds_single_sink() {
        let mut d = ab_star();
        assert!(!d.is_complete());
        let sink = d.complete().unwrap();
        assert!(d.is_complete());
        assert_eq!(d.n_states(), 3);
        assert_eq!(d.transition(0, Sym(1)), Some(sink));
        assert_eq!(d.transition(sink, Sym(0)), Some(sink));
        assert!(d.complete().is_none());
    }

    #[test]
    fn reachability_and_trim() {
        let mut d = ab_star();
        let orphan = d.add_state();
        d.set_final(orphan, true);
        assert_eq!(d.reachable(), vec![0, 1]);
        let remap = d.trim_unreachable();
        assert_eq!(d.n_states(), 2);
        assert_eq!(remap[orphan], None);
        assert!(d.accepts(&[Sym(0), Sym(1)]));
    }

    #[test]
    fn shortest_word() {
        let d = ab_star();
        assert_eq!(d.shortest_accepted_word(), Some(vec![]));
        let mut d2 = ab_star();
        d2.set_final(0, false);
        d2.set_final(1, true);
        assert_eq!(d2.shortest_accepted_word(), Some(vec![Sym(0)]));
    }

    #[test]
    fn no_accepting_state_no_word() {
        let mut d = ab_star();
        d.set_final(0, false);
        assert_eq!(d.shortest_accepted_word(), None);
        assert!(!d.accepts_some_word());
    }

    #[test]
    fn enumerate_words_in_order() {
        let d = ab_star();
        let words = d.enumerate_words(4, 10);
        assert_eq!(
            words,
            vec![
                vec![],
                vec![Sym(0), Sym(1)],
                vec![Sym(0), Sym(1), Sym(0), Sym(1)]
            ]
        );
    }

    #[test]
    fn shortest_word_breaks_ties_lexicographically() {
        // Both "b a" and "a b" (and "b b") reach acceptance in two
        // steps; the canonical witness must be the lexicographically
        // least, "a b".
        let mut d = Dfa::new(2, 4, 0);
        d.set_transition(0, Sym(1), Some(1)); // b first in the table…
        d.set_transition(0, Sym(0), Some(2)); // …but a is expanded first
        d.set_transition(1, Sym(0), Some(3));
        d.set_transition(1, Sym(1), Some(3));
        d.set_transition(2, Sym(1), Some(3));
        d.set_final(3, true);
        assert_eq!(d.shortest_accepted_word(), Some(vec![Sym(0), Sym(1)]));
        // And it agrees with the head of the length-lex enumeration.
        assert_eq!(
            d.enumerate_words(4, 1).into_iter().next(),
            d.shortest_accepted_word()
        );
    }

    #[test]
    fn complement_flips_acceptance() {
        let mut d = ab_star();
        d.complete();
        let c = d.complement();
        assert!(!c.accepts(&[]));
        assert!(c.accepts(&[Sym(0)]));
        assert!(!c.accepts(&[Sym(0), Sym(1)]));
    }
}
