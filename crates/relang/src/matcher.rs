//! Compiled matchers for deterministic content models.
//!
//! Validation (of BonXai, XSD, and DTD schemas alike) spends its time
//! checking child strings `ch-str(v)` against content models. Content
//! models are deterministic regular expressions (UPA), so matching is
//! linear-time via the deterministic Glushkov automaton. This module
//! compiles a content model once and reuses it across nodes:
//!
//! * core expressions (plus modest counting) → deterministic Glushkov DFA;
//! * `xs:all`-style interleavings → a dedicated occurrence-counting matcher;
//! * anything else (huge counters) → Brzozowski derivatives as a fallback.

use std::collections::BTreeMap;

use crate::alphabet::Sym;
use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::ops::subset::determinize;
use crate::regex::ast::{Regex, UpperBound};
use crate::regex::derivative;
use crate::regex::props::nullable;

/// Desugaring budget for compilation; beyond this, the derivative fallback
/// is used (correct, a little slower per word).
const COMPILE_BUDGET: usize = 20_000;

/// A content model compiled for repeated matching.
#[derive(Clone, Debug)]
pub struct CompiledDre {
    imp: Impl,
}

#[derive(Clone, Debug)]
enum Impl {
    /// Deterministic automaton (partial transitions reject).
    Auto(Dfa),
    /// `xs:all`: per-symbol occurrence bounds; `None` bound = unbounded.
    All(BTreeMap<Sym, (u32, UpperBound)>),
    /// Derivative-based fallback (exact for all operators).
    Deriv(Regex),
}

impl CompiledDre {
    /// Compiles `r` for matching over an alphabet of `n_syms` symbols.
    ///
    /// The expression need not be deterministic — a nondeterministic
    /// expression is determinized (subset construction), so `CompiledDre`
    /// is also usable for the ancestor-pattern side where determinism is
    /// not required.
    pub fn compile(r: &Regex, n_syms: usize) -> CompiledDre {
        if let Regex::Interleave(parts) = r {
            if let Some(bounds) = all_bounds(parts) {
                return CompiledDre {
                    imp: Impl::All(bounds),
                };
            }
        }
        match Nfa::from_regex(r, n_syms, COMPILE_BUDGET) {
            Some(nfa) => {
                let dfa = if nfa.is_deterministic() {
                    nfa_as_dfa(&nfa)
                } else {
                    determinize(&nfa)
                };
                CompiledDre {
                    imp: Impl::Auto(dfa),
                }
            }
            None => CompiledDre {
                imp: Impl::Deriv(r.clone()),
            },
        }
    }

    /// The deterministic automaton this model compiled to, when it did
    /// (the common case). `xs:all` and huge-counter models return `None`;
    /// callers wanting incremental stepping must then fall back to
    /// [`CompiledDre::first_error`] over a buffered word.
    #[inline]
    pub fn as_dfa(&self) -> Option<&Dfa> {
        match &self.imp {
            Impl::Auto(dfa) => Some(dfa),
            _ => None,
        }
    }

    /// Whether `word` matches the compiled model.
    #[inline]
    pub fn matches(&self, word: &[Sym]) -> bool {
        match &self.imp {
            Impl::Auto(dfa) => dfa.accepts(word),
            Impl::All(bounds) => {
                let mut counts: BTreeMap<Sym, u32> = BTreeMap::new();
                for &a in word {
                    if !bounds.contains_key(&a) {
                        return false;
                    }
                    *counts.entry(a).or_insert(0) += 1;
                }
                bounds.iter().all(|(&sym, &(lo, hi))| {
                    let c = counts.get(&sym).copied().unwrap_or(0);
                    c >= lo && hi.admits(c)
                })
            }
            Impl::Deriv(r) => derivative::matches(r, word),
        }
    }

    /// Where matching fails: the index of the first offending position
    /// (`word.len()` means the word is a proper prefix of a longer match).
    /// `None` means the word matches.
    #[inline]
    pub fn first_error(&self, word: &[Sym]) -> Option<usize> {
        match &self.imp {
            Impl::Auto(dfa) => {
                let mut q = dfa.initial();
                for (i, &a) in word.iter().enumerate() {
                    match dfa.transition(q, a) {
                        Some(t) => q = t,
                        None => return Some(i),
                    }
                }
                if dfa.is_final(q) {
                    None
                } else {
                    Some(word.len())
                }
            }
            Impl::All(bounds) => {
                let mut counts: BTreeMap<Sym, u32> = BTreeMap::new();
                for (i, &a) in word.iter().enumerate() {
                    match bounds.get(&a) {
                        None => return Some(i),
                        Some(&(_, hi)) => {
                            let c = counts.entry(a).or_insert(0);
                            *c += 1;
                            if !hi.admits(*c) {
                                return Some(i);
                            }
                        }
                    }
                }
                let complete = bounds
                    .iter()
                    .all(|(&sym, &(lo, _))| counts.get(&sym).copied().unwrap_or(0) >= lo);
                if complete {
                    None
                } else {
                    Some(word.len())
                }
            }
            Impl::Deriv(r) => {
                let mut cur = r.clone();
                for (i, &a) in word.iter().enumerate() {
                    cur = derivative::derivative(&cur, a);
                    if crate::regex::props::is_empty_language(&cur) {
                        return Some(i);
                    }
                }
                if nullable(&cur) {
                    None
                } else {
                    Some(word.len())
                }
            }
        }
    }
}

/// Extracts per-symbol occurrence bounds from `xs:all` operands, if the
/// interleave is of the restricted counted-symbol form.
fn all_bounds(parts: &[Regex]) -> Option<BTreeMap<Sym, (u32, UpperBound)>> {
    let mut bounds = BTreeMap::new();
    for p in parts {
        let (sym, lo, hi) = match p {
            Regex::Sym(s) => (*s, 1, UpperBound::Finite(1)),
            Regex::Opt(inner) => match **inner {
                Regex::Sym(s) => (s, 0, UpperBound::Finite(1)),
                _ => return None,
            },
            Regex::Star(inner) => match **inner {
                Regex::Sym(s) => (s, 0, UpperBound::Unbounded),
                _ => return None,
            },
            Regex::Plus(inner) => match **inner {
                Regex::Sym(s) => (s, 1, UpperBound::Unbounded),
                _ => return None,
            },
            Regex::Repeat(inner, lo, hi) => match **inner {
                Regex::Sym(s) => (s, *lo, *hi),
                _ => return None,
            },
            _ => return None,
        };
        if bounds.insert(sym, (lo, hi)).is_some() {
            return None; // duplicate symbol: not a valid xs:all
        }
    }
    Some(bounds)
}

/// Views a deterministic NFA as a DFA directly (no subset construction).
fn nfa_as_dfa(nfa: &Nfa) -> Dfa {
    debug_assert!(nfa.is_deterministic());
    let mut dfa = Dfa::new(nfa.n_syms(), nfa.n_states(), nfa.initial());
    for q in 0..nfa.n_states() {
        dfa.set_final(q, nfa.is_final(q));
        for a in 0..nfa.n_syms() {
            let ts = nfa.targets(q, Sym(a as u32));
            if let Some(&t) = ts.first() {
                dfa.set_transition(q, Sym(a as u32), Some(t));
            }
        }
    }
    dfa
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Regex {
        Regex::Sym(Sym(i))
    }
    fn w(items: &[u32]) -> Vec<Sym> {
        items.iter().map(|&i| Sym(i)).collect()
    }

    #[test]
    fn compiled_core_matching() {
        let r = Regex::concat(vec![s(0), Regex::star(Regex::alt(vec![s(1), s(2)]))]);
        let m = CompiledDre::compile(&r, 3);
        assert!(m.matches(&w(&[0])));
        assert!(m.matches(&w(&[0, 1, 2, 1])));
        assert!(!m.matches(&w(&[1])));
        assert!(!m.matches(&w(&[])));
    }

    #[test]
    fn compiled_all_matching() {
        // a & b? & c{0,2}
        let r = Regex::Interleave(vec![
            s(0),
            Regex::opt(s(1)),
            Regex::repeat(s(2), 0, UpperBound::Finite(2)),
        ]);
        let m = CompiledDre::compile(&r, 3);
        assert!(matches!(m.imp, Impl::All(_)));
        assert!(m.matches(&w(&[0])));
        assert!(m.matches(&w(&[2, 0, 2, 1])));
        assert!(!m.matches(&w(&[2, 0, 2, 2])));
        assert!(!m.matches(&w(&[1])));
    }

    #[test]
    fn compiled_counting() {
        let r = Regex::repeat(s(0), 2, UpperBound::Finite(4));
        let m = CompiledDre::compile(&r, 1);
        assert!(!m.matches(&w(&[0])));
        assert!(m.matches(&w(&[0, 0])));
        assert!(m.matches(&w(&[0, 0, 0, 0])));
        assert!(!m.matches(&w(&[0, 0, 0, 0, 0])));
    }

    #[test]
    fn huge_counter_uses_derivative_fallback() {
        let r = Regex::repeat(s(0), 5_000, UpperBound::Finite(50_000));
        let m = CompiledDre::compile(&r, 1);
        assert!(matches!(m.imp, Impl::Deriv(_)));
        assert!(!m.matches(&w(&[0; 10])));
        assert!(m.matches(&vec![Sym(0); 5_000]));
    }

    #[test]
    fn first_error_positions() {
        // a b c
        let r = Regex::concat(vec![s(0), s(1), s(2)]);
        let m = CompiledDre::compile(&r, 3);
        assert_eq!(m.first_error(&w(&[0, 1, 2])), None);
        assert_eq!(m.first_error(&w(&[0, 2])), Some(1));
        assert_eq!(m.first_error(&w(&[0, 1])), Some(2)); // incomplete
        assert_eq!(m.first_error(&w(&[1])), Some(0));
    }

    #[test]
    fn first_error_all() {
        let r = Regex::Interleave(vec![s(0), s(1)]);
        let m = CompiledDre::compile(&r, 2);
        assert_eq!(m.first_error(&w(&[1, 0])), None);
        assert_eq!(m.first_error(&w(&[1, 1])), Some(1));
        assert_eq!(m.first_error(&w(&[0])), Some(1)); // missing b
    }

    #[test]
    fn nondeterministic_expressions_still_match() {
        // (a+b)* a — nondeterministic but CompiledDre determinizes
        let r = Regex::concat(vec![Regex::star(Regex::alt(vec![s(0), s(1)])), s(0)]);
        let m = CompiledDre::compile(&r, 2);
        assert!(m.matches(&w(&[0])));
        assert!(m.matches(&w(&[1, 1, 0])));
        assert!(!m.matches(&w(&[1])));
    }
}
