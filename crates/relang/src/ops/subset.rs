//! NFA → DFA subset construction.
//!
//! The kernel interns each discovered subset as a slice in a shared
//! arena and finds it again with Fx-hashed open addressing — one hash
//! and one slice comparison per lookup, no per-subset allocation, no
//! ordered-map rebalancing. Subset ids are assigned in discovery order
//! (BFS, symbols ascending), so the construction is deterministic and
//! produces exactly the same automaton as the original
//! `BTreeMap<Vec<usize>, usize>` implementation, only faster.

use crate::alphabet::Sym;
use crate::dfa::Dfa;
use crate::fxhash::hash_u32_slice;
use crate::nfa::Nfa;

/// Open-addressing slot sentinel (also the "no transition" sentinel in
/// the flat row table below — both are unreachable for real ids long
/// before 2³²−1 subsets exist).
const EMPTY: u32 = u32::MAX;

/// An interner for small sorted `u32` sets, stored back to back in one
/// arena with a Fx-hashed open-addressing index.
///
/// Ids are dense and assigned in first-insertion order, which is what
/// lets [`determinize`] (and the relevance-product construction) keep
/// their historical state numbering while dropping the allocation-heavy
/// ordered map. Key slices may contain any `u32` values, including
/// sentinels — only slot entries in the index are reserved.
#[derive(Clone, Debug)]
pub struct SubsetInterner {
    /// All interned slices, concatenated.
    arena: Vec<u32>,
    /// CSR bounds: slice `i` is `arena[offsets[i] .. offsets[i+1]]`.
    offsets: Vec<u32>,
    /// Open-addressing index: slot → interned id, or [`EMPTY`].
    table: Vec<u32>,
    /// `table.len() - 1`; the table length is a power of two.
    mask: usize,
}

impl SubsetInterner {
    /// An empty interner sized for `cap` expected entries.
    pub fn with_capacity(cap: usize) -> SubsetInterner {
        let slots = (cap.max(4) * 2).next_power_of_two();
        SubsetInterner {
            arena: Vec::new(),
            offsets: vec![0],
            table: vec![EMPTY; slots],
            mask: slots - 1,
        }
    }

    /// Number of interned slices.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The slice interned under `id`.
    pub fn get(&self, id: usize) -> &[u32] {
        &self.arena[self.offsets[id] as usize..self.offsets[id + 1] as usize]
    }

    /// Interns `key`, returning its dense id (existing or freshly
    /// assigned in insertion order).
    pub fn intern(&mut self, key: &[u32]) -> u32 {
        // Grow at 7/8 load so probe chains stay short.
        if (self.len() + 1) * 8 > self.table.len() * 7 {
            self.grow();
        }
        let mut slot = hash_u32_slice(key) as usize & self.mask;
        loop {
            let id = self.table[slot];
            if id == EMPTY {
                let new_id = self.len() as u32;
                self.table[slot] = new_id;
                self.arena.extend_from_slice(key);
                self.offsets.push(self.arena.len() as u32);
                return new_id;
            }
            if self.get(id as usize) == key {
                return id;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Doubles the index and re-seats every id (the arena is untouched).
    fn grow(&mut self) {
        let slots = self.table.len() * 2;
        let mask = slots - 1;
        let mut table = vec![EMPTY; slots];
        for id in 0..self.len() {
            let mut slot = hash_u32_slice(self.get(id)) as usize & mask;
            while table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            table[slot] = id as u32;
        }
        self.table = table;
        self.mask = mask;
    }
}

/// Determinizes `nfa` via the subset construction, exploring only reachable
/// subsets. The result is partial: the empty subset is represented by a
/// missing transition rather than a sink state.
pub fn determinize(nfa: &Nfa) -> Dfa {
    let n_syms = nfa.n_syms();
    let mut interner = SubsetInterner::with_capacity(nfa.n_states().max(8));
    interner.intern(&[nfa.initial() as u32]);

    // Flat row-major transition table over subset ids; EMPTY = no move.
    let mut rows: Vec<u32> = Vec::new();
    // Scratch buffers reused across iterations: the current subset (the
    // arena can't be borrowed while interning) and the merged targets.
    let mut cur: Vec<u32> = Vec::new();
    let mut targets: Vec<u32> = Vec::new();

    let mut next = 0usize;
    while next < interner.len() {
        cur.clear();
        cur.extend_from_slice(interner.get(next));
        for a in 0..n_syms {
            targets.clear();
            for &q in &cur {
                for &t in nfa.targets(q as usize, Sym(a as u32)) {
                    targets.push(t as u32);
                }
            }
            targets.sort_unstable();
            targets.dedup();
            rows.push(if targets.is_empty() {
                EMPTY
            } else {
                interner.intern(&targets)
            });
        }
        next += 1;
    }

    let n = interner.len();
    let mut dfa = Dfa::new(n_syms, n, 0);
    for q in 0..n {
        for a in 0..n_syms {
            let t = rows[q * n_syms + a];
            if t != EMPTY {
                dfa.set_transition(q, Sym(a as u32), Some(t as usize));
            }
        }
        if interner.get(q).iter().any(|&s| nfa.is_final(s as usize)) {
            dfa.set_final(q, true);
        }
    }
    dfa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::ast::Regex;

    fn s(i: u32) -> Regex {
        Regex::Sym(Sym(i))
    }
    fn w(items: &[u32]) -> Vec<Sym> {
        items.iter().map(|&i| Sym(i)).collect()
    }

    #[test]
    fn determinize_nondeterministic_glushkov() {
        // (a+b)* a over {a,b}
        let r = Regex::concat(vec![Regex::star(Regex::alt(vec![s(0), s(1)])), s(0)]);
        let nfa = Nfa::glushkov(&r, 2).unwrap();
        assert!(!nfa.is_deterministic());
        let dfa = determinize(&nfa);
        for word in [&w(&[0])[..], &w(&[1, 0]), &w(&[0, 0, 0])] {
            assert!(dfa.accepts(word), "{word:?}");
        }
        for word in [&w(&[])[..], &w(&[1]), &w(&[0, 1])] {
            assert!(!dfa.accepts(word), "{word:?}");
        }
    }

    #[test]
    fn determinize_agrees_with_nfa_on_enumeration() {
        // (ab + aba)*
        let r = Regex::star(Regex::alt(vec![
            Regex::concat(vec![s(0), s(1)]),
            Regex::concat(vec![s(0), s(1), s(0)]),
        ]));
        let nfa = Nfa::glushkov(&r, 2).unwrap();
        let dfa = determinize(&nfa);
        // exhaustive comparison over all words of length <= 7
        let mut words = vec![vec![]];
        for _ in 0..7 {
            let mut next = Vec::new();
            for word in &words {
                for a in 0..2u32 {
                    let mut w2 = word.clone();
                    w2.push(Sym(a));
                    next.push(w2);
                }
            }
            for word in &next {
                assert_eq!(nfa.accepts(word), dfa.accepts(word), "{word:?}");
            }
            words = next;
        }
    }

    #[test]
    fn interner_assigns_dense_first_insertion_ids() {
        let mut i = SubsetInterner::with_capacity(2);
        assert!(i.is_empty());
        assert_eq!(i.intern(&[3, 5]), 0);
        assert_eq!(i.intern(&[]), 1);
        assert_eq!(i.intern(&[3, 5]), 0);
        assert_eq!(i.intern(&[3]), 2);
        assert_eq!(i.intern(&[u32::MAX, u32::MAX]), 3); // sentinel-valued keys are fine
        assert_eq!(i.len(), 4);
        assert_eq!(i.get(0), &[3, 5]);
        assert_eq!(i.get(1), &[] as &[u32]);
        assert_eq!(i.get(3), &[u32::MAX, u32::MAX]);
    }

    #[test]
    fn interner_survives_growth() {
        let mut i = SubsetInterner::with_capacity(1);
        for v in 0..1000u32 {
            assert_eq!(i.intern(&[v, v + 1]), v);
        }
        for v in 0..1000u32 {
            assert_eq!(i.intern(&[v, v + 1]), v, "lookup after rehash");
            assert_eq!(i.get(v as usize), &[v, v + 1]);
        }
    }
}
