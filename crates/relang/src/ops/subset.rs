//! NFA → DFA subset construction.

use std::collections::BTreeMap;

use crate::alphabet::Sym;
use crate::dfa::Dfa;
use crate::nfa::Nfa;

/// Determinizes `nfa` via the subset construction, exploring only reachable
/// subsets. The result is partial: the empty subset is represented by a
/// missing transition rather than a sink state.
#[allow(clippy::needless_range_loop)] // dense-table row indexing
pub fn determinize(nfa: &Nfa) -> Dfa {
    let mut ids: BTreeMap<Vec<usize>, usize> = BTreeMap::new();
    let mut subsets: Vec<Vec<usize>> = Vec::new();
    let start = vec![nfa.initial()];
    ids.insert(start.clone(), 0);
    subsets.push(start);

    let mut rows: Vec<Vec<Option<usize>>> = Vec::new();
    let mut next = 0usize;
    while next < subsets.len() {
        let cur = subsets[next].clone();
        let mut row = vec![None; nfa.n_syms()];
        for a in 0..nfa.n_syms() {
            let mut targets: Vec<usize> = Vec::new();
            for &q in &cur {
                targets.extend_from_slice(nfa.targets(q, Sym(a as u32)));
            }
            targets.sort_unstable();
            targets.dedup();
            if targets.is_empty() {
                continue;
            }
            let id = *ids.entry(targets.clone()).or_insert_with(|| {
                subsets.push(targets);
                subsets.len() - 1
            });
            row[a] = Some(id);
        }
        rows.push(row);
        next += 1;
    }

    let mut dfa = Dfa::new(nfa.n_syms(), subsets.len(), 0);
    for (q, row) in rows.iter().enumerate() {
        for (a, &t) in row.iter().enumerate() {
            dfa.set_transition(q, Sym(a as u32), t);
        }
        if subsets[q].iter().any(|&s| nfa.is_final(s)) {
            dfa.set_final(q, true);
        }
    }
    dfa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::ast::Regex;

    fn s(i: u32) -> Regex {
        Regex::Sym(Sym(i))
    }
    fn w(items: &[u32]) -> Vec<Sym> {
        items.iter().map(|&i| Sym(i)).collect()
    }

    #[test]
    fn determinize_nondeterministic_glushkov() {
        // (a+b)* a over {a,b}
        let r = Regex::concat(vec![Regex::star(Regex::alt(vec![s(0), s(1)])), s(0)]);
        let nfa = Nfa::glushkov(&r, 2).unwrap();
        assert!(!nfa.is_deterministic());
        let dfa = determinize(&nfa);
        for word in [&w(&[0])[..], &w(&[1, 0]), &w(&[0, 0, 0])] {
            assert!(dfa.accepts(word), "{word:?}");
        }
        for word in [&w(&[])[..], &w(&[1]), &w(&[0, 1])] {
            assert!(!dfa.accepts(word), "{word:?}");
        }
    }

    #[test]
    fn determinize_agrees_with_nfa_on_enumeration() {
        // (ab + aba)*
        let r = Regex::star(Regex::alt(vec![
            Regex::concat(vec![s(0), s(1)]),
            Regex::concat(vec![s(0), s(1), s(0)]),
        ]));
        let nfa = Nfa::glushkov(&r, 2).unwrap();
        let dfa = determinize(&nfa);
        // exhaustive comparison over all words of length <= 7
        let mut words = vec![vec![]];
        for _ in 0..7 {
            let mut next = Vec::new();
            for word in &words {
                for a in 0..2u32 {
                    let mut w2 = word.clone();
                    w2.push(Sym(a));
                    next.push(w2);
                }
            }
            for word in &next {
                assert_eq!(nfa.accepts(word), dfa.accepts(word), "{word:?}");
            }
            words = next;
        }
    }
}
