//! Automata operations: determinization, minimization, products,
//! state elimination, and language decision procedures.

pub mod canonical;
pub mod eliminate;
pub mod language;
pub mod minimize;
pub mod product;
pub mod relevance;
pub mod subset;

pub use canonical::{language_key, LanguageKey};
pub use eliminate::{dfa_to_regex, dfa_to_regex_with_order, language_reaching, EliminationOrder};
pub use language::{
    check_equivalent, check_equivalent_with, difference_witness, difference_witness_with,
    is_equivalent, is_subset, is_subset_with, regex_to_dfa, regex_to_dfa_with,
};
pub use minimize::minimize;
pub use product::{full_product, lazy_product, lazy_product_pruned, product2, Product};
pub use relevance::{ProductState, RelevanceProduct};
pub use subset::determinize;
