//! Canonical forms of regular languages.
//!
//! The minimal complete DFA of a language is unique up to isomorphism, and
//! a breadth-first relabeling (exploring transitions in symbol order) is a
//! deterministic choice of representative. Hence two languages over the
//! same alphabet are equal **iff** their canonical keys are equal — which
//! turns language equivalence into hashing, the trick that makes XSD type
//! minimization (cf. \[22\] in the paper) near-linear instead of quadratic.

use crate::alphabet::Sym;
use crate::dfa::Dfa;
use crate::ops::minimize::minimize;

/// A canonical fingerprint of a regular language: alphabet size, state
/// count, flattened BFS-ordered transition table, and finals bitmap.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LanguageKey(Vec<u64>);

impl LanguageKey {
    /// Prefixes a key with extra discriminating data (the prefix must be
    /// self-delimiting, e.g. start with its own length). Used by callers
    /// that need to distinguish equal languages over different underlying
    /// symbol sets, such as XSD type minimization.
    pub fn compose(prefix: Vec<u64>, key: LanguageKey) -> LanguageKey {
        let mut v = prefix;
        v.extend(key.0);
        LanguageKey(v)
    }
}

/// Computes the canonical key of the language accepted by `dfa`.
pub fn language_key(dfa: &Dfa) -> LanguageKey {
    let min = minimize(dfa);
    // BFS relabel from the initial state, transitions in symbol order.
    let n = min.n_states();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut newid: Vec<Option<usize>> = vec![None; n];
    order.push(min.initial());
    newid[min.initial()] = Some(0);
    let mut head = 0;
    while head < order.len() {
        let q = order[head];
        head += 1;
        for a in 0..min.n_syms() {
            let t = min
                .transition(q, Sym(a as u32))
                .expect("minimize yields a complete DFA");
            if newid[t].is_none() {
                newid[t] = Some(order.len());
                order.push(t);
            }
        }
    }
    // Minimal DFAs are reachable-only, so every state is ordered.
    let mut key: Vec<u64> = Vec::with_capacity(2 + n * (min.n_syms() + 1));
    key.push(min.n_syms() as u64);
    key.push(n as u64);
    for &q in &order {
        for a in 0..min.n_syms() {
            let t = min.transition(q, Sym(a as u32)).expect("complete");
            key.push(newid[t].expect("reachable") as u64);
        }
        key.push(u64::from(min.is_final(q)));
    }
    LanguageKey(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::ops::subset::determinize;
    use crate::regex::ast::Regex;

    fn key_of(r: &Regex, n_syms: usize) -> LanguageKey {
        language_key(&determinize(&Nfa::from_regex(r, n_syms, 10_000).unwrap()))
    }

    fn s(i: u32) -> Regex {
        Regex::Sym(Sym(i))
    }

    #[test]
    fn equivalent_languages_share_keys() {
        // (a+b)* a  vs  b* a (b* a)*
        let r1 = Regex::concat(vec![Regex::star(Regex::alt(vec![s(0), s(1)])), s(0)]);
        let ba = Regex::concat(vec![Regex::star(s(1)), s(0)]);
        let r2 = Regex::concat(vec![ba.clone(), Regex::star(ba)]);
        assert_eq!(key_of(&r1, 2), key_of(&r2, 2));
    }

    #[test]
    fn different_languages_differ() {
        assert_ne!(key_of(&Regex::star(s(0)), 2), key_of(&Regex::plus(s(0)), 2));
        assert_ne!(key_of(&s(0), 2), key_of(&s(1), 2));
    }

    #[test]
    fn key_is_stable_under_state_renumbering() {
        // Build the same language with scrambled state ids.
        let mut d1 = Dfa::new(1, 2, 0);
        d1.set_transition(0, Sym(0), Some(1));
        d1.set_final(1, true);
        let mut d2 = Dfa::new(1, 3, 2);
        d2.set_transition(2, Sym(0), Some(0));
        d2.set_final(0, true);
        assert_eq!(language_key(&d1), language_key(&d2));
    }
}
