//! Synchronized product of rule automata with relevance annotations.
//!
//! BonXai's semantics (Definition 1) makes the *last* rule whose ancestor
//! pattern matches a node's ancestor string the node's relevant rule.
//! Validating a node therefore means knowing, for its ancestor string
//! `anc-str(v)`, which of the N rule languages contain it. The naive
//! evaluation runs all N ancestor DFAs in lock-step — N table lookups per
//! node. This module builds the reachable part of the synchronized
//! product of those DFAs once, annotating every product state with its
//! matching-rule set and relevant rule, so validation needs **one**
//! transition lookup per node (the idea behind the paper's Lemma 7:
//! the product exposes per-state relevance directly).
//!
//! The product is worst-case exponential in the number of rules
//! (Theorem 9's lower bound applies to exactly this construction), so
//! [`RelevanceProduct::build`] enforces a state budget and reports
//! failure instead of blowing up; callers fall back to lock-step
//! evaluation. In practice ancestor patterns are overwhelmingly k-suffix
//! (Section 4.4) and the reachable product stays tiny.
//!
//! Unlike [`super::product`], the construction here works directly on
//! *partial* component DFAs: each component carries an implicit dead
//! state (sentinel [`DEAD_COMPONENT`]) and the all-dead tuple is interned
//! unconditionally so callers can park unmatchable subtrees on it.

use crate::alphabet::Sym;
use crate::dfa::Dfa;
use crate::ops::subset::SubsetInterner;

/// Per-component sentinel for "this rule automaton has rejected".
const DEAD_COMPONENT: u32 = u32::MAX;

/// Sentinel in the `relevant` table for "no rule matches".
const NO_RULE: u32 = u32::MAX;

/// A compact product-state identifier.
pub type ProductState = u32;

/// The reachable synchronized product of N partial DFAs, annotated per
/// state with the set of components in an accepting state ("matching")
/// and the largest such index ("relevant", Definition 1's priority).
///
/// The transition function is **total**: unmatched symbols and the
/// explicit [`RelevanceProduct::dead`] state self-loop into dead.
#[derive(Clone, Debug)]
pub struct RelevanceProduct {
    n_syms: usize,
    n_components: usize,
    initial: ProductState,
    dead: ProductState,
    /// Row-major `n_states × n_syms` total transition table.
    table: Vec<ProductState>,
    /// Per state: largest matching component index, or `NO_RULE`.
    relevant: Vec<u32>,
    /// Per state: offset range into `match_data` (CSR layout).
    match_off: Vec<u32>,
    /// Concatenated matching-component sets, each sorted ascending.
    match_data: Vec<u32>,
}

impl RelevanceProduct {
    /// Builds the reachable product of `components` over an alphabet of
    /// `n_syms` symbols, exploring at most `budget` product states.
    ///
    /// Returns `None` when the reachable product exceeds the budget
    /// (Theorem 9 says this can genuinely happen) — callers should fall
    /// back to lock-step evaluation.
    ///
    /// Every component must be over the same `n_syms`-symbol alphabet.
    pub fn build(n_syms: usize, components: &[Dfa], budget: usize) -> Option<RelevanceProduct> {
        let refs: Vec<&Dfa> = components.iter().collect();
        RelevanceProduct::build_refs(n_syms, &refs, budget)
    }

    /// [`RelevanceProduct::build`] over borrowed components — lets
    /// callers holding shared (`Arc`ed) DFAs build the product without
    /// cloning every component table.
    pub fn build_refs(
        n_syms: usize,
        components: &[&Dfa],
        budget: usize,
    ) -> Option<RelevanceProduct> {
        for &d in components {
            assert_eq!(d.n_syms(), n_syms, "component alphabet mismatch");
            assert!(
                (d.n_states() as u64) < DEAD_COMPONENT as u64,
                "component too large"
            );
        }
        let n = components.len();

        // Tuples are interned as `u32` slices in a shared arena with
        // Fx-hashed open addressing — the same kernel the subset
        // construction uses. Ids come out in first-insertion order, so
        // the state numbering is identical to the previous
        // `HashMap<Box<[u32]>, _>` memo, without a heap allocation and
        // a SipHash pass per successor tuple (the product stage spends
        // almost all its time interning already-seen tuples).
        let mut tuples = SubsetInterner::with_capacity(budget.clamp(16, 1 << 12));

        // Seed with the initial tuple and the all-dead tuple. A component
        // with no states at all is dead from the start.
        let mut scratch: Vec<u32> = Vec::with_capacity(n);
        scratch.extend(components.iter().map(|d| {
            if d.n_states() == 0 {
                DEAD_COMPONENT
            } else {
                d.initial() as u32
            }
        }));
        let initial = tuples.intern(&scratch);
        scratch.clear();
        scratch.resize(n, DEAD_COMPONENT);
        let dead = tuples.intern(&scratch);

        // BFS over the reachable product, building total rows as we go.
        // `cur` snapshots the tuple being expanded (the arena cannot be
        // borrowed across `intern`).
        let mut table: Vec<ProductState> = Vec::new();
        let mut cur: Vec<u32> = Vec::new();
        let mut next = 0usize;
        while next < tuples.len() {
            if tuples.len() > budget {
                return None;
            }
            cur.clear();
            cur.extend_from_slice(tuples.get(next));
            for a in 0..n_syms {
                scratch.clear();
                scratch.extend(cur.iter().zip(components).map(|(&q, d)| {
                    if q == DEAD_COMPONENT {
                        DEAD_COMPONENT
                    } else {
                        d.transition(q as usize, Sym(a as u32))
                            .map_or(DEAD_COMPONENT, |t| t as u32)
                    }
                }));
                table.push(tuples.intern(&scratch));
            }
            next += 1;
        }
        if tuples.len() > budget {
            return None;
        }

        // Annotate each state with its matching set and relevant rule.
        let mut relevant = Vec::with_capacity(tuples.len());
        let mut match_off = Vec::with_capacity(tuples.len() + 1);
        let mut match_data = Vec::new();
        match_off.push(0u32);
        for s in 0..tuples.len() {
            let tuple = tuples.get(s);
            for (i, (&q, d)) in tuple.iter().zip(components).enumerate() {
                if q != DEAD_COMPONENT && d.is_final(q as usize) {
                    match_data.push(i as u32);
                }
            }
            match_off.push(match_data.len() as u32);
            let lo = match_off[match_off.len() - 2] as usize;
            relevant.push(match_data[lo..].last().copied().unwrap_or(NO_RULE));
        }

        Some(RelevanceProduct {
            n_syms,
            n_components: n,
            initial,
            dead,
            table,
            relevant,
            match_off,
            match_data,
        })
    }

    /// Alphabet size.
    pub fn n_syms(&self) -> usize {
        self.n_syms
    }

    /// Number of component automata (rules).
    pub fn n_components(&self) -> usize {
        self.n_components
    }

    /// Number of product states actually constructed.
    pub fn n_states(&self) -> usize {
        self.relevant.len()
    }

    /// The product state for the empty ancestor string.
    #[inline]
    pub fn initial(&self) -> ProductState {
        self.initial
    }

    /// The all-dead state: no extension of the string read so far is in
    /// any rule language. Self-loops on every symbol.
    #[inline]
    pub fn dead(&self) -> ProductState {
        self.dead
    }

    /// Whether `q` is the all-dead state.
    #[inline]
    pub fn is_dead(&self, q: ProductState) -> bool {
        q == self.dead
    }

    /// `δ(q, a)` — total, a single table lookup.
    #[inline]
    pub fn step(&self, q: ProductState, a: Sym) -> ProductState {
        self.table[q as usize * self.n_syms + a.index()]
    }

    /// The components in an accepting state at `q` (ascending indices).
    #[inline]
    pub fn matching(&self, q: ProductState) -> &[u32] {
        let lo = self.match_off[q as usize] as usize;
        let hi = self.match_off[q as usize + 1] as usize;
        &self.match_data[lo..hi]
    }

    /// The largest matching component index at `q` — BonXai's relevant
    /// rule for the ancestor string that reached `q`.
    #[inline]
    pub fn relevant(&self, q: ProductState) -> Option<u32> {
        let r = self.relevant[q as usize];
        (r != NO_RULE).then_some(r)
    }

    /// Approximate heap footprint in bytes (for budget diagnostics).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.table.len() + self.relevant.len() + self.match_off.len() + self.match_data.len())
            * size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::language::regex_to_dfa;
    use crate::regex::ast::Regex;

    fn s(i: u32) -> Regex {
        Regex::Sym(Sym(i))
    }

    /// Runs the lock-step reference over `word` and returns
    /// (matching set, relevant).
    fn lockstep(components: &[Dfa], word: &[Sym]) -> (Vec<u32>, Option<u32>) {
        let mut matching = Vec::new();
        for (i, d) in components.iter().enumerate() {
            if d.run(word).is_some_and(|q| d.is_final(q)) {
                matching.push(i as u32);
            }
        }
        let relevant = matching.last().copied();
        (matching, relevant)
    }

    fn product_of(n_syms: usize, exprs: &[Regex]) -> (Vec<Dfa>, RelevanceProduct) {
        let dfas: Vec<Dfa> = exprs.iter().map(|r| regex_to_dfa(r, n_syms)).collect();
        let p = RelevanceProduct::build(n_syms, &dfas, 10_000).expect("within budget");
        (dfas, p)
    }

    #[test]
    fn agrees_with_lockstep_on_all_short_words() {
        // Rules over {a=0, b=1, c=2}: Σ* a, Σ* b, a Σ*, (ab)*
        let sigma_star = Regex::star(Regex::alt(vec![s(0), s(1), s(2)]));
        let exprs = vec![
            Regex::concat(vec![sigma_star.clone(), s(0)]),
            Regex::concat(vec![sigma_star.clone(), s(1)]),
            Regex::concat(vec![s(0), sigma_star.clone()]),
            Regex::star(Regex::concat(vec![s(0), s(1)])),
        ];
        let (dfas, p) = product_of(3, &exprs);

        // Enumerate all words up to length 5.
        let mut words: Vec<Vec<Sym>> = vec![vec![]];
        let mut frontier = words.clone();
        for _ in 0..5 {
            let mut next = Vec::new();
            for w in &frontier {
                for a in 0..3u32 {
                    let mut w2 = w.clone();
                    w2.push(Sym(a));
                    next.push(w2);
                }
            }
            words.extend(next.iter().cloned());
            frontier = next;
        }
        for w in &words {
            let mut q = p.initial();
            for &a in w {
                q = p.step(q, a);
            }
            let (m, r) = lockstep(&dfas, w);
            assert_eq!(p.matching(q), m.as_slice(), "word {w:?}");
            assert_eq!(p.relevant(q), r, "word {w:?}");
        }
    }

    #[test]
    fn dead_state_self_loops_and_matches_nothing() {
        // Single rule: exactly "a".
        let (_, p) = product_of(2, &[s(0)]);
        let d = p.dead();
        assert!(p.is_dead(d));
        assert_eq!(p.step(d, Sym(0)), d);
        assert_eq!(p.step(d, Sym(1)), d);
        assert!(p.matching(d).is_empty());
        assert_eq!(p.relevant(d), None);
        // "b" leads straight to dead; "a" then anything leads to dead.
        let q = p.step(p.initial(), Sym(1));
        assert!(p.is_dead(q));
        let q = p.step(p.step(p.initial(), Sym(0)), Sym(0));
        assert!(p.is_dead(q));
    }

    #[test]
    fn relevance_is_last_matching_rule() {
        // Rule 0 matches a+; rule 1 matches aa. After "aa" both match and
        // rule 1 (later) must win; after "a" or "aaa" only rule 0.
        let exprs = vec![Regex::plus(s(0)), Regex::concat(vec![s(0), s(0)])];
        let (_, p) = product_of(1, &exprs);
        let q1 = p.step(p.initial(), Sym(0));
        let q2 = p.step(q1, Sym(0));
        let q3 = p.step(q2, Sym(0));
        assert_eq!(p.relevant(q1), Some(0));
        assert_eq!(p.matching(q2), &[0, 1]);
        assert_eq!(p.relevant(q2), Some(1));
        assert_eq!(p.relevant(q3), Some(0));
    }

    #[test]
    fn budget_overflow_returns_none() {
        // (Σ* a Σ^k) needs ≥ 2^k product states when paired for several k
        // — classic Theorem 9 shape. With a budget of 4 this must bail.
        let sigma_star = Regex::star(Regex::alt(vec![s(0), s(1)]));
        let tail = |k: usize| {
            let mut parts = vec![sigma_star.clone(), s(0)];
            parts.extend(std::iter::repeat_n(Regex::alt(vec![s(0), s(1)]), k));
            Regex::concat(parts)
        };
        let exprs: Vec<Regex> = (1..6).map(tail).collect();
        let dfas: Vec<Dfa> = exprs.iter().map(|r| regex_to_dfa(r, 2)).collect();
        assert!(RelevanceProduct::build(2, &dfas, 4).is_none());
        // A generous budget succeeds and agrees with lock-step.
        let p = RelevanceProduct::build(2, &dfas, 1_000_000).expect("fits");
        let word: Vec<Sym> = [0, 1, 0, 0, 1, 0, 1, 1].iter().map(|&i| Sym(i)).collect();
        let mut q = p.initial();
        for &a in &word {
            q = p.step(q, a);
        }
        assert_eq!(p.relevant(q), lockstep(&dfas, &word).1);
    }

    #[test]
    fn zero_components_is_trivially_total() {
        let p = RelevanceProduct::build(3, &[], 16).expect("trivial");
        assert_eq!(p.n_states(), 1); // initial == dead (empty tuple)
        let q = p.step(p.initial(), Sym(2));
        assert!(p.matching(q).is_empty());
        assert_eq!(p.relevant(q), None);
    }

    #[test]
    fn empty_component_is_dead_from_the_start() {
        let empty = Dfa::new(2, 0, 0);
        let one = regex_to_dfa(&s(0), 2);
        let p = RelevanceProduct::build(2, &[empty, one], 100).expect("fits");
        assert_eq!(p.matching(p.initial()), &[] as &[u32]);
        let q = p.step(p.initial(), Sym(0));
        assert_eq!(p.matching(q), &[1]);
        assert_eq!(p.relevant(q), Some(1));
    }
}
