//! DFA → regular expression via state elimination.
//!
//! This is line 2 of Algorithm 2 in the paper ("rq := a reg. expression for
//! (Q, EName, δ, q0, {q})"), and the provably exponential step of the
//! XSD → BonXai translation (Theorem 8, via Ehrenfeucht & Zeiger). We use a
//! generalized-NFA elimination with a fill-in-minimizing ordering heuristic,
//! which keeps expressions small on the benign automata that dominate in
//! practice (Section 4.4) while of course remaining exponential on the
//! lower-bound family.

use std::collections::BTreeMap;

use crate::alphabet::Sym;
use crate::dfa::Dfa;
use crate::regex::ast::Regex;

/// Elimination-order strategies for [`dfa_to_regex_with_order`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EliminationOrder {
    /// Eliminate the state minimizing fan-in × fan-out next (the default;
    /// keeps intermediate expressions small on benign automata).
    LowDegreeFirst,
    /// Eliminate states in numeric order (the naive baseline, used by the
    /// ablation experiment).
    Sequential,
}

/// Computes a regular expression for the language accepted by `dfa` with
/// the given set of accepting states (ignoring the DFA's own finals).
///
/// Only the reachable, co-reachable part of the automaton participates;
/// if no accepting state is reachable the result is [`Regex::Empty`].
pub fn dfa_to_regex(dfa: &Dfa, finals: &[usize]) -> Regex {
    dfa_to_regex_with_order(dfa, finals, EliminationOrder::LowDegreeFirst)
}

/// Like [`dfa_to_regex`], with an explicit elimination-order strategy.
pub fn dfa_to_regex_with_order(dfa: &Dfa, finals: &[usize], order: EliminationOrder) -> Regex {
    let n = dfa.n_states();
    if n == 0 || finals.is_empty() {
        return Regex::Empty;
    }

    // Reachable from initial.
    let reachable = {
        let mut seen = vec![false; n];
        let mut stack = vec![dfa.initial()];
        seen[dfa.initial()] = true;
        while let Some(q) = stack.pop() {
            for a in 0..dfa.n_syms() {
                if let Some(t) = dfa.transition(q, Sym(a as u32)) {
                    if !seen[t] {
                        seen[t] = true;
                        stack.push(t);
                    }
                }
            }
        }
        seen
    };
    // Co-reachable to some final.
    let coreachable = {
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for q in 0..n {
            for a in 0..dfa.n_syms() {
                if let Some(t) = dfa.transition(q, Sym(a as u32)) {
                    rev[t].push(q);
                }
            }
        }
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = finals.to_vec();
        for &f in finals {
            seen[f] = true;
        }
        while let Some(q) = stack.pop() {
            for &p in &rev[q] {
                if !seen[p] {
                    seen[p] = true;
                    stack.push(p);
                }
            }
        }
        seen
    };

    let alive = |q: usize| reachable[q] && coreachable[q];
    if !alive(dfa.initial()) {
        return Regex::Empty;
    }

    // GNFA nodes: usize state ids; virtual start = n, accept = n + 1.
    let start = n;
    let accept = n + 1;
    let mut edges: BTreeMap<(usize, usize), Regex> = BTreeMap::new();
    let add_edge = |edges: &mut BTreeMap<(usize, usize), Regex>, i: usize, j: usize, r: Regex| {
        if r == Regex::Empty {
            return;
        }
        match edges.remove(&(i, j)) {
            Some(prev) => {
                edges.insert((i, j), Regex::alt(vec![prev, r]));
            }
            None => {
                edges.insert((i, j), r);
            }
        }
    };

    for q in 0..n {
        if !alive(q) {
            continue;
        }
        for a in 0..dfa.n_syms() {
            if let Some(t) = dfa.transition(q, Sym(a as u32)) {
                if alive(t) {
                    add_edge(&mut edges, q, t, Regex::Sym(Sym(a as u32)));
                }
            }
        }
    }
    add_edge(&mut edges, start, dfa.initial(), Regex::Epsilon);
    for &f in finals {
        if alive(f) {
            add_edge(&mut edges, f, accept, Regex::Epsilon);
        }
    }

    // Eliminate internal nodes, cheapest (in-degree × out-degree) first.
    let mut remaining: Vec<usize> = (0..n).filter(|&q| alive(q)).collect();
    while !remaining.is_empty() {
        // Pick the next node per the chosen strategy.
        let k = match order {
            EliminationOrder::Sequential => remaining[0],
            EliminationOrder::LowDegreeFirst => remaining
                .iter()
                .copied()
                .min_by_key(|&q| {
                    let indeg = edges.keys().filter(|&&(i, j)| j == q && i != q).count();
                    let outdeg = edges.keys().filter(|&&(i, j)| i == q && j != q).count();
                    (indeg * outdeg, q)
                })
                .expect("remaining is nonempty"),
        };
        remaining.retain(|&q| q != k);

        let self_loop = edges.remove(&(k, k));
        let loop_star = self_loop.map(Regex::star);
        let incoming: Vec<(usize, Regex)> = edges
            .iter()
            .filter(|&(&(i, j), _)| j == k && i != k)
            .map(|(&(i, _), r)| (i, r.clone()))
            .collect();
        let outgoing: Vec<(usize, Regex)> = edges
            .iter()
            .filter(|&(&(i, j), _)| i == k && j != k)
            .map(|(&(_, j), r)| (j, r.clone()))
            .collect();
        edges.retain(|&(i, j), _| i != k && j != k);

        for (i, rin) in &incoming {
            for (j, rout) in &outgoing {
                let mut seq = vec![rin.clone()];
                if let Some(ls) = &loop_star {
                    seq.push(ls.clone());
                }
                seq.push(rout.clone());
                add_edge(&mut edges, *i, *j, Regex::concat(seq));
            }
        }
    }

    edges.remove(&(start, accept)).unwrap_or(Regex::Empty)
}

/// Convenience: regex for the language that *reaches* state `q` from the
/// initial state — exactly the `rq` of Algorithm 2.
pub fn language_reaching(dfa: &Dfa, q: usize) -> Regex {
    dfa_to_regex(dfa, &[q])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::ops::subset::determinize;
    use crate::regex::derivative::matches;

    fn s(i: u32) -> Regex {
        Regex::Sym(Sym(i))
    }

    fn dfa_of(r: &Regex, n_syms: usize) -> Dfa {
        determinize(&Nfa::from_regex(r, n_syms, 10_000).unwrap())
    }

    fn assert_roundtrip(r: &Regex, n_syms: usize, max_len: usize) {
        let dfa = dfa_of(r, n_syms);
        let back = dfa_to_regex(&dfa, &dfa.final_states());
        // exhaustive word comparison
        let mut words = vec![vec![]];
        for _ in 0..=max_len {
            for w in &words {
                assert_eq!(
                    matches(r, w),
                    matches(&back, w),
                    "word {w:?}: orig {r:?} vs back {back:?}"
                );
            }
            let mut next = Vec::new();
            for w in &words {
                for a in 0..n_syms as u32 {
                    let mut w2 = w.clone();
                    w2.push(Sym(a));
                    next.push(w2);
                }
            }
            words = next;
        }
    }

    #[test]
    fn roundtrip_simple() {
        assert_roundtrip(&Regex::concat(vec![s(0), s(1)]), 2, 5);
        assert_roundtrip(&Regex::star(Regex::concat(vec![s(0), s(1)])), 2, 6);
        assert_roundtrip(&Regex::Epsilon, 2, 3);
        assert_roundtrip(&Regex::Empty, 2, 3);
    }

    #[test]
    fn roundtrip_alternation_and_star() {
        let r = Regex::concat(vec![Regex::star(Regex::alt(vec![s(0), s(1)])), s(0)]);
        assert_roundtrip(&r, 2, 6);
    }

    #[test]
    fn roundtrip_three_symbols() {
        // a (b + c a)* b?
        let r = Regex::concat(vec![
            s(0),
            Regex::star(Regex::alt(vec![s(1), Regex::concat(vec![s(2), s(0)])])),
            Regex::opt(s(1)),
        ]);
        assert_roundtrip(&r, 3, 5);
    }

    #[test]
    fn language_reaching_states() {
        // DFA for a b: states 0 -a-> 1 -b-> 2
        let mut d = Dfa::new(2, 3, 0);
        d.set_transition(0, Sym(0), Some(1));
        d.set_transition(1, Sym(1), Some(2));
        let r0 = language_reaching(&d, 0);
        let r1 = language_reaching(&d, 1);
        let r2 = language_reaching(&d, 2);
        assert!(matches(&r0, &[]));
        assert!(!matches(&r0, &[Sym(0)]));
        assert!(matches(&r1, &[Sym(0)]));
        assert!(matches(&r2, &[Sym(0), Sym(1)]));
        assert!(!matches(&r2, &[Sym(0)]));
    }

    #[test]
    fn unreachable_finals_yield_empty() {
        let mut d = Dfa::new(1, 2, 0);
        // state 1 unreachable
        d.set_transition(0, Sym(0), Some(0));
        assert_eq!(dfa_to_regex(&d, &[1]), Regex::Empty);
    }
}
