//! DFA minimization (Hopcroft's algorithm).
//!
//! Algorithm 3 of the paper needs the *minimal complete* DFA for each rule
//! language `L(ri)`; minimality keeps the product automaton as small as the
//! theory allows.
//!
//! The kernel works in four flat-array phases with no intermediate
//! clone of the input:
//!
//! 1. a BFS from the initial state that simultaneously trims
//!    unreachable states and completes the automaton (missing
//!    transitions are routed to an implicit sink appended only if
//!    needed), producing a dense row-major `δ` table;
//! 2. inverse edges laid out in CSR form (`rev_off`/`rev_dat`, one
//!    contiguous span per `(symbol, target)` pair) — no nested
//!    per-state vectors;
//! 3. Hopcroft partition refinement over a permutation array
//!    (`elems`/`loc`/`block_of` plus per-block start/size), splitting by
//!    swapping marked states to the front of their block and keeping
//!    the larger half in place, with an explicit worklist stack and an
//!    in-worklist bitset;
//! 4. a quotient pass that relabels blocks in BFS discovery order
//!    (symbols ascending) from the initial block.
//!
//! Phase 4 makes the output **canonical**: any two inputs with the same
//! language — regardless of their state numbering — minimize to the
//! byte-identical `Dfa`, and `minimize(minimize(d)) == minimize(d)`
//! exactly. The cache layer and the proptests both lean on this.

use crate::alphabet::Sym;
use crate::dfa::Dfa;

/// "Not yet assigned" sentinel for state renumbering arrays.
const UNSET: u32 = u32::MAX;

/// Minimizes `dfa` with Hopcroft's partition-refinement algorithm.
///
/// The input is completed and trimmed to its reachable part on the fly;
/// the output is the unique minimal complete DFA for the same language,
/// with states numbered in BFS order from the initial state (state 0).
pub fn minimize(dfa: &Dfa) -> Dfa {
    let n_syms = dfa.n_syms();
    if dfa.n_states() == 0 {
        return dfa.clone();
    }

    // Phase 1: BFS from the initial state, building a dense complete
    // transition table over reachable states only. `order` doubles as
    // the BFS queue; `renum` maps old ids to BFS ids.
    let mut renum: Vec<u32> = vec![UNSET; dfa.n_states()];
    let mut order: Vec<u32> = Vec::new();
    renum[dfa.initial()] = 0;
    order.push(dfa.initial() as u32);
    let mut head = 0usize;
    while head < order.len() {
        let p = order[head] as usize;
        head += 1;
        for a in 0..n_syms {
            if let Some(t) = dfa.transition(p, Sym(a as u32)) {
                if renum[t] == UNSET {
                    renum[t] = order.len() as u32;
                    order.push(t as u32);
                }
            }
        }
    }
    let reach = order.len();
    let mut needs_sink = false;
    // Row-major δ over BFS ids; missing transitions go to a sink that
    // gets id `reach` if any exist.
    let mut delta: Vec<u32> = Vec::with_capacity((reach + 1) * n_syms);
    for &old in &order {
        for a in 0..n_syms {
            match dfa.transition(old as usize, Sym(a as u32)) {
                Some(t) => delta.push(renum[t]),
                None => {
                    needs_sink = true;
                    delta.push(reach as u32);
                }
            }
        }
    }
    let m = if needs_sink {
        delta.extend(std::iter::repeat_n(reach as u32, n_syms));
        reach + 1
    } else {
        reach
    };
    let mut is_final: Vec<bool> = order
        .iter()
        .map(|&old| dfa.is_final(old as usize))
        .collect();
    if needs_sink {
        is_final.push(false);
    }

    // Phase 2: inverse edges in CSR layout. Span for (symbol a, target
    // q) is rev_dat[rev_off[a*m+q] .. rev_off[a*m+q+1]]; every state has
    // exactly one a-successor, so |rev_dat| = m * n_syms.
    let mut rev_off: Vec<u32> = vec![0; m * n_syms + 1];
    for p in 0..m {
        for a in 0..n_syms {
            let q = delta[p * n_syms + a] as usize;
            rev_off[a * m + q + 1] += 1;
        }
    }
    for i in 1..rev_off.len() {
        rev_off[i] += rev_off[i - 1];
    }
    let mut cursor: Vec<u32> = rev_off[..m * n_syms].to_vec();
    let mut rev_dat: Vec<u32> = vec![0; m * n_syms];
    for p in 0..m {
        for a in 0..n_syms {
            let q = delta[p * n_syms + a] as usize;
            rev_dat[cursor[a * m + q] as usize] = p as u32;
            cursor[a * m + q] += 1;
        }
    }

    // Phase 3: Hopcroft over a partition array. Block b owns the slice
    // elems[bstart[b] .. bstart[b] + bsize[b]]; loc[q] is q's position
    // in elems; marked states are swapped to the front of their block.
    let mut elems: Vec<u32> = Vec::with_capacity(m);
    let mut block_of: Vec<u32> = vec![0; m];
    let mut bstart: Vec<u32> = Vec::new();
    let mut bsize: Vec<u32> = Vec::new();
    for (pass, want) in [(0usize, true), (1, false)] {
        let start = elems.len() as u32;
        for q in 0..m {
            if is_final[q] == want {
                block_of[q] = bstart.len() as u32;
                elems.push(q as u32);
            }
        }
        let size = elems.len() as u32 - start;
        if size > 0 {
            bstart.push(start);
            bsize.push(size);
        } else if pass == 0 {
            // No final states: the single block must keep id 0.
            continue;
        }
    }
    let mut loc: Vec<u32> = vec![0; m];
    for (i, &q) in elems.iter().enumerate() {
        loc[q as usize] = i as u32;
    }

    // Worklist of (block, symbol) splitters with a membership bitset
    // (indexed block * n_syms + symbol; blocks never exceed m).
    let mut work: Vec<(u32, u32)> = Vec::new();
    let mut in_work: Vec<bool> = vec![false; m * n_syms];
    for b in 0..bstart.len() as u32 {
        for a in 0..n_syms as u32 {
            work.push((b, a));
            in_work[b as usize * n_syms + a as usize] = true;
        }
    }

    // Per-block mark counters + scratch lists, reused across splitters.
    let mut marks: Vec<u32> = vec![0; m];
    let mut touched: Vec<u32> = Vec::new();
    let mut splitter: Vec<u32> = Vec::new();
    while let Some((b, a)) = work.pop() {
        in_work[b as usize * n_syms + a as usize] = false;
        // Snapshot the splitter block: marking swaps elements around,
        // and b itself may be among the touched blocks.
        let (s, z) = (bstart[b as usize] as usize, bsize[b as usize] as usize);
        splitter.clear();
        splitter.extend_from_slice(&elems[s..s + z]);
        // Mark every state with an a-edge into b, swapping it into the
        // front region of its block.
        for &q in &splitter {
            let span = &rev_dat[rev_off[a as usize * m + q as usize] as usize
                ..rev_off[a as usize * m + q as usize + 1] as usize];
            for &p in span {
                let blk = block_of[p as usize] as usize;
                let mark_pos = bstart[blk] + marks[blk];
                let p_pos = loc[p as usize];
                if p_pos < mark_pos {
                    continue; // already marked
                }
                let other = elems[mark_pos as usize];
                elems.swap(mark_pos as usize, p_pos as usize);
                loc[p as usize] = mark_pos;
                loc[other as usize] = p_pos;
                if marks[blk] == 0 {
                    touched.push(blk as u32);
                }
                marks[blk] += 1;
            }
        }
        // Split every partially-marked block.
        for &blk in &touched {
            let blk = blk as usize;
            let mc = marks[blk];
            marks[blk] = 0;
            if mc == bsize[blk] {
                continue; // fully inside the preimage: no split
            }
            let new_id = bstart.len() as u32;
            // Keep the larger half in place under id `blk`; the smaller
            // half becomes the new block (both halves are contiguous:
            // marked states occupy the front of the block's region).
            let (new_start, new_size) = if mc * 2 <= bsize[blk] {
                let r = (bstart[blk], mc);
                bstart[blk] += mc;
                bsize[blk] -= mc;
                r
            } else {
                let r = (bstart[blk] + mc, bsize[blk] - mc);
                bsize[blk] = mc;
                r
            };
            bstart.push(new_start);
            bsize.push(new_size);
            for i in new_start..new_start + new_size {
                block_of[elems[i as usize] as usize] = new_id;
            }
            // Worklist update: pending splitters of blk stay valid for
            // its kept half and gain the new half; otherwise the new
            // (smaller-or-equal) half suffices.
            for s in 0..n_syms {
                let add = if in_work[blk * n_syms + s] || bsize[blk] > bsize[new_id as usize] {
                    new_id
                } else {
                    blk as u32
                };
                if !in_work[add as usize * n_syms + s] {
                    work.push((add, s as u32));
                    in_work[add as usize * n_syms + s] = true;
                }
            }
        }
        touched.clear();
    }

    // Phase 4: quotient with canonical BFS numbering of blocks.
    let n_blocks = bstart.len();
    let mut block_new: Vec<u32> = vec![UNSET; n_blocks];
    let mut bfs: Vec<u32> = Vec::with_capacity(n_blocks);
    block_new[block_of[0] as usize] = 0;
    bfs.push(block_of[0]);
    let mut head = 0usize;
    while head < bfs.len() {
        let b = bfs[head] as usize;
        head += 1;
        let repr = elems[bstart[b] as usize] as usize;
        for a in 0..n_syms {
            let tb = block_of[delta[repr * n_syms + a] as usize];
            if block_new[tb as usize] == UNSET {
                block_new[tb as usize] = bfs.len() as u32;
                bfs.push(tb);
            }
        }
    }
    // Every block is reachable (phase 1 trimmed the input), so the BFS
    // numbering is total.
    debug_assert_eq!(bfs.len(), n_blocks);

    let mut out = Dfa::new(n_syms, n_blocks, 0);
    for (new_b, &b) in bfs.iter().enumerate() {
        let repr = elems[bstart[b as usize] as usize] as usize;
        out.set_final(new_b, is_final[repr]);
        for a in 0..n_syms {
            let tb = block_of[delta[repr * n_syms + a] as usize] as usize;
            out.set_transition(new_b, Sym(a as u32), Some(block_new[tb] as usize));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::ops::subset::determinize;
    use crate::regex::ast::Regex;

    fn s(i: u32) -> Regex {
        Regex::Sym(Sym(i))
    }

    fn dfa_of(r: &Regex, n_syms: usize) -> Dfa {
        determinize(&Nfa::from_regex(r, n_syms, 10_000).unwrap())
    }

    fn assert_same_language(d1: &Dfa, d2: &Dfa, n_syms: usize, max_len: usize) {
        let mut words = vec![vec![]];
        for _ in 0..=max_len {
            for w in &words {
                assert_eq!(d1.accepts(w), d2.accepts(w), "{w:?}");
            }
            let mut next = Vec::new();
            for w in &words {
                for a in 0..n_syms as u32 {
                    let mut w2 = w.clone();
                    w2.push(Sym(a));
                    next.push(w2);
                }
            }
            words = next;
        }
    }

    #[test]
    fn minimize_preserves_language() {
        // (a+b)* a b
        let r = Regex::concat(vec![Regex::star(Regex::alt(vec![s(0), s(1)])), s(0), s(1)]);
        let d = dfa_of(&r, 2);
        let m = minimize(&d);
        assert!(m.is_complete());
        assert!(m.n_states() <= d.n_states() + 1);
        assert_same_language(&d, &m, 2, 6);
    }

    #[test]
    fn minimize_known_state_count() {
        // The minimal complete DFA for (a+b)* a b has exactly 3 states.
        let r = Regex::concat(vec![Regex::star(Regex::alt(vec![s(0), s(1)])), s(0), s(1)]);
        let m = minimize(&dfa_of(&r, 2));
        assert_eq!(m.n_states(), 3);
    }

    #[test]
    fn minimize_empty_language() {
        let m = minimize(&dfa_of(&Regex::Empty, 2));
        // single sink state, non-accepting
        assert_eq!(m.n_states(), 1);
        assert!(!m.accepts(&[]));
        assert!(!m.accepts(&[Sym(0)]));
    }

    #[test]
    fn minimize_sigma_star() {
        let r = Regex::star(Regex::alt(vec![s(0), s(1)]));
        let m = minimize(&dfa_of(&r, 2));
        assert_eq!(m.n_states(), 1);
        assert!(m.accepts(&[]));
        assert!(m.accepts(&[Sym(0), Sym(1), Sym(1)]));
    }

    #[test]
    fn minimize_word_language() {
        // {aba}: minimal complete DFA has |w|+2 = 5 states
        let r = Regex::word(&[Sym(0), Sym(1), Sym(0)]);
        let m = minimize(&dfa_of(&r, 2));
        assert_eq!(m.n_states(), 5);
        assert!(m.accepts(&[Sym(0), Sym(1), Sym(0)]));
        assert!(!m.accepts(&[Sym(0), Sym(1)]));
        assert!(!m.accepts(&[Sym(0), Sym(1), Sym(0), Sym(0)]));
    }

    #[test]
    fn minimize_merges_equivalent_states() {
        // a b + c b : states after a and after c are equivalent
        let r = Regex::alt(vec![
            Regex::concat(vec![s(0), s(1)]),
            Regex::concat(vec![s(2), s(1)]),
        ]);
        let d = dfa_of(&r, 3);
        let m = minimize(&d);
        // states: start, {after a / after c merged}, accept, sink
        assert_eq!(m.n_states(), 4);
    }

    #[test]
    fn minimize_is_idempotent_exactly() {
        let r = Regex::star(Regex::alt(vec![
            Regex::concat(vec![s(0), s(1)]),
            Regex::concat(vec![s(0), s(1), s(0)]),
        ]));
        let m1 = minimize(&dfa_of(&r, 2));
        let m2 = minimize(&m1);
        assert_eq!(m1, m2);
    }

    #[test]
    fn minimize_is_canonical_under_relabeling() {
        // Build the same language with permuted state numbers: minimize
        // must return the byte-identical automaton.
        let r = Regex::concat(vec![Regex::star(Regex::alt(vec![s(0), s(1)])), s(0), s(1)]);
        let d = dfa_of(&r, 2);
        let n = d.n_states();
        // Reverse the state numbering by hand.
        let perm: Vec<usize> = (0..n).rev().collect();
        let mut relabeled = Dfa::new(2, n, perm[d.initial()]);
        for q in 0..n {
            relabeled.set_final(perm[q], d.is_final(q));
            for a in 0..2u32 {
                relabeled.set_transition(perm[q], Sym(a), d.transition(q, Sym(a)).map(|t| perm[t]));
            }
        }
        assert_eq!(minimize(&d), minimize(&relabeled));
    }
}
