//! DFA minimization (Hopcroft's algorithm).
//!
//! Algorithm 3 of the paper needs the *minimal complete* DFA for each rule
//! language `L(ri)`; minimality keeps the product automaton as small as the
//! theory allows.

use std::collections::{BTreeMap, BTreeSet};

use crate::alphabet::Sym;
use crate::dfa::Dfa;

/// Minimizes `dfa` with Hopcroft's partition-refinement algorithm.
///
/// The input is first completed and trimmed to its reachable part; the
/// output is the unique (up to isomorphism) minimal complete DFA for the
/// same language. State 0 is the initial state of the result.
#[allow(clippy::needless_range_loop)] // dense-table row indexing
pub fn minimize(dfa: &Dfa) -> Dfa {
    let mut dfa = dfa.clone();
    dfa.complete();
    dfa.trim_unreachable();
    let n = dfa.n_states();
    let n_syms = dfa.n_syms();
    if n == 0 {
        return dfa;
    }

    // Inverse transition lists: rev[a][q] = states p with δ(p,a)=q.
    let mut rev: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); n]; n_syms];
    for p in 0..n {
        for a in 0..n_syms {
            let q = dfa
                .transition(p, Sym(a as u32))
                .expect("completed automaton");
            rev[a][q].push(p);
        }
    }

    // Partition as block id per state; blocks as sorted vectors.
    let finals: BTreeSet<usize> = dfa.final_states().into_iter().collect();
    let nonfinals: BTreeSet<usize> = (0..n).filter(|q| !finals.contains(q)).collect();
    let mut blocks: Vec<BTreeSet<usize>> = Vec::new();
    let mut block_of: Vec<usize> = vec![0; n];
    for set in [finals, nonfinals] {
        if set.is_empty() {
            continue;
        }
        let id = blocks.len();
        for &q in &set {
            block_of[q] = id;
        }
        blocks.push(set);
    }

    // Worklist of (block id, symbol) splitters.
    let mut work: BTreeSet<(usize, usize)> = BTreeSet::new();
    // Hopcroft: start with the smaller of the two initial blocks (all
    // symbols); adding both is also correct and simpler.
    for b in 0..blocks.len() {
        for a in 0..n_syms {
            work.insert((b, a));
        }
    }

    while let Some(&(b, a)) = work.iter().next() {
        work.remove(&(b, a));
        // X = states with a-transition into block b
        let mut x: BTreeSet<usize> = BTreeSet::new();
        for &q in &blocks[b] {
            for &p in &rev[a][q] {
                x.insert(p);
            }
        }
        if x.is_empty() {
            continue;
        }
        // Group X members by their current block and split.
        let mut touched: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &p in &x {
            touched.entry(block_of[p]).or_default().push(p);
        }
        for (blk, members) in touched {
            if members.len() == blocks[blk].len() {
                continue; // block entirely inside X: no split
            }
            // Split blk into (members) and (rest).
            let new_id = blocks.len();
            let member_set: BTreeSet<usize> = members.into_iter().collect();
            let rest: BTreeSet<usize> = blocks[blk].difference(&member_set).copied().collect();
            // Keep the larger part in place, move the smaller out (Hopcroft).
            let (stay, moved) = if member_set.len() <= rest.len() {
                (rest, member_set)
            } else {
                (member_set, rest)
            };
            blocks[blk] = stay;
            for &q in &moved {
                block_of[q] = new_id;
            }
            blocks.push(moved);
            // Update the worklist.
            for s in 0..n_syms {
                if work.contains(&(blk, s)) {
                    work.insert((new_id, s));
                } else {
                    // add the smaller of the two; we moved the smaller out
                    work.insert((new_id, s));
                }
            }
        }
    }

    // Build the quotient automaton with block of the initial state first.
    let init_block = block_of[dfa.initial()];
    let mut order: Vec<usize> = Vec::with_capacity(blocks.len());
    order.push(init_block);
    for b in 0..blocks.len() {
        if b != init_block {
            order.push(b);
        }
    }
    let mut newid: Vec<usize> = vec![0; blocks.len()];
    for (i, &b) in order.iter().enumerate() {
        newid[b] = i;
    }
    let mut out = Dfa::new(n_syms, blocks.len(), 0);
    for b in 0..blocks.len() {
        let repr = *blocks[b].iter().next().expect("blocks are nonempty");
        let q = newid[b];
        out.set_final(q, dfa.is_final(repr));
        for a in 0..n_syms {
            let t = dfa
                .transition(repr, Sym(a as u32))
                .expect("completed automaton");
            out.set_transition(q, Sym(a as u32), Some(newid[block_of[t]]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::ops::subset::determinize;
    use crate::regex::ast::Regex;

    fn s(i: u32) -> Regex {
        Regex::Sym(Sym(i))
    }

    fn dfa_of(r: &Regex, n_syms: usize) -> Dfa {
        determinize(&Nfa::from_regex(r, n_syms, 10_000).unwrap())
    }

    fn assert_same_language(d1: &Dfa, d2: &Dfa, n_syms: usize, max_len: usize) {
        let mut words = vec![vec![]];
        for _ in 0..=max_len {
            for w in &words {
                assert_eq!(d1.accepts(w), d2.accepts(w), "{w:?}");
            }
            let mut next = Vec::new();
            for w in &words {
                for a in 0..n_syms as u32 {
                    let mut w2 = w.clone();
                    w2.push(Sym(a));
                    next.push(w2);
                }
            }
            words = next;
        }
    }

    #[test]
    fn minimize_preserves_language() {
        // (a+b)* a b
        let r = Regex::concat(vec![Regex::star(Regex::alt(vec![s(0), s(1)])), s(0), s(1)]);
        let d = dfa_of(&r, 2);
        let m = minimize(&d);
        assert!(m.is_complete());
        assert!(m.n_states() <= d.n_states() + 1);
        assert_same_language(&d, &m, 2, 6);
    }

    #[test]
    fn minimize_known_state_count() {
        // The minimal complete DFA for (a+b)* a b has exactly 3 states.
        let r = Regex::concat(vec![Regex::star(Regex::alt(vec![s(0), s(1)])), s(0), s(1)]);
        let m = minimize(&dfa_of(&r, 2));
        assert_eq!(m.n_states(), 3);
    }

    #[test]
    fn minimize_empty_language() {
        let m = minimize(&dfa_of(&Regex::Empty, 2));
        // single sink state, non-accepting
        assert_eq!(m.n_states(), 1);
        assert!(!m.accepts(&[]));
        assert!(!m.accepts(&[Sym(0)]));
    }

    #[test]
    fn minimize_sigma_star() {
        let r = Regex::star(Regex::alt(vec![s(0), s(1)]));
        let m = minimize(&dfa_of(&r, 2));
        assert_eq!(m.n_states(), 1);
        assert!(m.accepts(&[]));
        assert!(m.accepts(&[Sym(0), Sym(1), Sym(1)]));
    }

    #[test]
    fn minimize_word_language() {
        // {aba}: minimal complete DFA has |w|+2 = 5 states
        let r = Regex::word(&[Sym(0), Sym(1), Sym(0)]);
        let m = minimize(&dfa_of(&r, 2));
        assert_eq!(m.n_states(), 5);
        assert!(m.accepts(&[Sym(0), Sym(1), Sym(0)]));
        assert!(!m.accepts(&[Sym(0), Sym(1)]));
        assert!(!m.accepts(&[Sym(0), Sym(1), Sym(0), Sym(0)]));
    }

    #[test]
    fn minimize_merges_equivalent_states() {
        // a b + c b : states after a and after c are equivalent
        let r = Regex::alt(vec![
            Regex::concat(vec![s(0), s(1)]),
            Regex::concat(vec![s(2), s(1)]),
        ]);
        let d = dfa_of(&r, 3);
        let m = minimize(&d);
        // states: start, {after a / after c merged}, accept, sink
        assert_eq!(m.n_states(), 4);
    }
}
