//! Decision procedures on regular languages: emptiness, membership,
//! inclusion, equivalence, and witness extraction.
//!
//! These are used throughout the test suite to *verify* that the paper's
//! translations preserve languages, and by the schema tools to report
//! differences between schemas with an explicit witness word.

use std::sync::Arc;

use crate::alphabet::Sym;
use crate::cache::AutomataCache;
use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::ops::product::product2;
use crate::ops::subset::determinize;
use crate::regex::ast::Regex;

/// Default desugaring budget for building automata out of extended regexes.
const BUDGET: usize = 100_000;

/// Builds a (partial) DFA for `r` over `n_syms` symbols.
///
/// Uses the Glushkov route (after desugaring, if needed); falls back to the
/// derivative construction for expressions whose desugaring would exceed
/// the budget. Panics only if both routes fail, which cannot happen for the
/// expression sizes this library produces.
pub fn regex_to_dfa(r: &Regex, n_syms: usize) -> Dfa {
    if let Some(nfa) = Nfa::from_regex(r, n_syms, BUDGET) {
        determinize(&nfa)
    } else {
        crate::regex::derivative::derivative_dfa(r, n_syms, 1 << 22)
            .expect("derivative DFA construction exceeded state bound")
    }
}

/// Whether `L(r)` = ∅.
pub fn is_empty(r: &Regex) -> bool {
    crate::regex::props::is_empty_language(r)
}

/// [`regex_to_dfa`] through an optional [`AutomataCache`]: with a cache
/// the construction is memoized (structural-hash keyed, shared with the
/// lint checks and the schema-diff engine); without one it runs fresh.
/// Both paths return the identical automaton — the cache stores exactly
/// what recomputation would produce.
pub fn regex_to_dfa_with(r: &Regex, n_syms: usize, cache: Option<&mut AutomataCache>) -> Arc<Dfa> {
    match cache {
        Some(c) => c.raw_dfa(r, n_syms),
        None => Arc::new(regex_to_dfa(r, n_syms)),
    }
}

/// A word in `L(r1) \ L(r2)`, if any. `None` means `L(r1) ⊆ L(r2)`.
pub fn difference_witness(r1: &Regex, r2: &Regex, n_syms: usize) -> Option<Vec<Sym>> {
    difference_witness_with(r1, r2, n_syms, None)
}

/// [`difference_witness`] with an optional [`AutomataCache`] memoizing
/// the two determinizations (the product and its witness are cheap and
/// computed fresh).
pub fn difference_witness_with(
    r1: &Regex,
    r2: &Regex,
    n_syms: usize,
    mut cache: Option<&mut AutomataCache>,
) -> Option<Vec<Sym>> {
    let d1 = regex_to_dfa_with(r1, n_syms, cache.as_deref_mut());
    let d2 = regex_to_dfa_with(r2, n_syms, cache);
    difference_witness_dfa(&d1, &d2)
}

/// The canonical witness accepted by `d1` but not `d2`, if any: the
/// shortest such word, ties broken lexicographically by symbol id (see
/// [`Dfa::shortest_accepted_word`]). `None` means `L(d1) ⊆ L(d2)`.
pub fn difference_witness_dfa(d1: &Dfa, d2: &Dfa) -> Option<Vec<Sym>> {
    let diff = product2(d1, d2, |x, y| x && !y);
    diff.shortest_accepted_word()
}

/// Whether `L(r1) ⊆ L(r2)`.
pub fn is_subset(r1: &Regex, r2: &Regex, n_syms: usize) -> bool {
    difference_witness(r1, r2, n_syms).is_none()
}

/// [`is_subset`] with an optional [`AutomataCache`].
pub fn is_subset_with(
    r1: &Regex,
    r2: &Regex,
    n_syms: usize,
    cache: Option<&mut AutomataCache>,
) -> bool {
    difference_witness_with(r1, r2, n_syms, cache).is_none()
}

/// Whether `L(r1) = L(r2)`; on inequality returns the canonical
/// (shortest, then lexicographically least) witness word in the
/// symmetric difference.
pub fn check_equivalent(r1: &Regex, r2: &Regex, n_syms: usize) -> Result<(), Vec<Sym>> {
    check_equivalent_with(r1, r2, n_syms, None)
}

/// [`check_equivalent`] with an optional [`AutomataCache`].
pub fn check_equivalent_with(
    r1: &Regex,
    r2: &Regex,
    n_syms: usize,
    mut cache: Option<&mut AutomataCache>,
) -> Result<(), Vec<Sym>> {
    let d1 = regex_to_dfa_with(r1, n_syms, cache.as_deref_mut());
    let d2 = regex_to_dfa_with(r2, n_syms, cache);
    check_equivalent_dfa(&d1, &d2)
}

/// Whether two DFAs accept the same language; on inequality returns the
/// canonical witness (see [`difference_witness_dfa`]).
pub fn check_equivalent_dfa(d1: &Dfa, d2: &Dfa) -> Result<(), Vec<Sym>> {
    let sym_diff = product2(d1, d2, |x, y| x != y);
    match sym_diff.shortest_accepted_word() {
        None => Ok(()),
        Some(w) => Err(w),
    }
}

/// Whether `L(r1) = L(r2)`.
pub fn is_equivalent(r1: &Regex, r2: &Regex, n_syms: usize) -> bool {
    check_equivalent(r1, r2, n_syms).is_ok()
}

/// Whether `L(r1) ∩ L(r2)` is nonempty; returns the canonical (shortest,
/// then lexicographically least) common word.
pub fn intersection_witness(r1: &Regex, r2: &Regex, n_syms: usize) -> Option<Vec<Sym>> {
    intersection_witness_with(r1, r2, n_syms, None)
}

/// [`intersection_witness`] with an optional [`AutomataCache`].
pub fn intersection_witness_with(
    r1: &Regex,
    r2: &Regex,
    n_syms: usize,
    mut cache: Option<&mut AutomataCache>,
) -> Option<Vec<Sym>> {
    let d1 = regex_to_dfa_with(r1, n_syms, cache.as_deref_mut());
    let d2 = regex_to_dfa_with(r2, n_syms, cache);
    product2(&d1, &d2, |x, y| x && y).shortest_accepted_word()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Regex {
        Regex::Sym(Sym(i))
    }

    #[test]
    fn equivalence_of_different_syntaxes() {
        // (a+b)* a  ≡  b* a (b* a)*  — classic determinizable pair
        let r1 = Regex::concat(vec![Regex::star(Regex::alt(vec![s(0), s(1)])), s(0)]);
        let ba = Regex::concat(vec![Regex::star(s(1)), s(0)]);
        let r2 = Regex::concat(vec![ba.clone(), Regex::star(ba)]);
        assert!(is_equivalent(&r1, &r2, 2));
    }

    #[test]
    fn inequivalence_yields_shortest_witness() {
        let r1 = Regex::star(s(0));
        let r2 = Regex::plus(s(0));
        // symmetric difference = {ε}
        assert_eq!(check_equivalent(&r1, &r2, 1), Err(vec![]));
    }

    #[test]
    fn subset_checks() {
        let r1 = Regex::plus(s(0));
        let r2 = Regex::star(s(0));
        assert!(is_subset(&r1, &r2, 1));
        assert!(!is_subset(&r2, &r1, 1));
        assert_eq!(difference_witness(&r2, &r1, 1), Some(vec![]));
    }

    #[test]
    fn intersection_witness_found() {
        // a* b ∩ (aa)* b: shortest common word is "b"
        let r1 = Regex::concat(vec![Regex::star(s(0)), s(1)]);
        let r2 = Regex::concat(vec![Regex::star(Regex::concat(vec![s(0), s(0)])), s(1)]);
        assert_eq!(intersection_witness(&r1, &r2, 2), Some(vec![Sym(1)]));
    }

    #[test]
    fn disjoint_languages() {
        let r1 = Regex::word(&[Sym(0)]);
        let r2 = Regex::word(&[Sym(1)]);
        assert_eq!(intersection_witness(&r1, &r2, 2), None);
    }

    #[test]
    fn equivalence_with_extended_operators() {
        // a{2,3} ≡ a a a?
        let r1 = Regex::repeat(s(0), 2, crate::regex::ast::UpperBound::Finite(3));
        let r2 = Regex::concat(vec![s(0), s(0), Regex::opt(s(0))]);
        assert!(is_equivalent(&r1, &r2, 1));
        // a & b ≡ ab + ba
        let r1 = Regex::Interleave(vec![s(0), s(1)]);
        let r2 = Regex::alt(vec![
            Regex::concat(vec![s(0), s(1)]),
            Regex::concat(vec![s(1), s(0)]),
        ]);
        assert!(is_equivalent(&r1, &r2, 2));
    }

    #[test]
    fn cached_variants_match_uncached_and_share_dfas() {
        let mut cache = AutomataCache::default();
        let r1 = Regex::star(s(0));
        let r2 = Regex::plus(s(0));
        assert_eq!(
            check_equivalent(&r1, &r2, 1),
            check_equivalent_with(&r1, &r2, 1, Some(&mut cache))
        );
        assert_eq!(
            difference_witness(&r1, &r2, 1),
            difference_witness_with(&r1, &r2, 1, Some(&mut cache))
        );
        assert_eq!(
            is_subset(&r2, &r1, 1),
            is_subset_with(&r2, &r1, 1, Some(&mut cache))
        );
        assert_eq!(
            intersection_witness(&r1, &r2, 1),
            intersection_witness_with(&r1, &r2, 1, Some(&mut cache))
        );
        // The second and later calls reuse the memoized determinizations.
        assert!(cache.stats().hits() >= 6, "stats: {:?}", cache.stats());
    }

    #[test]
    fn witness_words_are_canonical() {
        // L(r1) \ L(r2) contains "ab", "ba", "bb" at length 2 and nothing
        // shorter; the canonical witness is the lexicographic least "ab".
        let any2 = Regex::concat(vec![
            Regex::alt(vec![s(0), s(1)]),
            Regex::alt(vec![s(0), s(1)]),
        ]);
        let aa = Regex::concat(vec![s(0), s(0)]);
        assert_eq!(
            difference_witness(&any2, &aa, 2),
            Some(vec![Sym(0), Sym(1)])
        );
        assert_eq!(check_equivalent(&any2, &aa, 2), Err(vec![Sym(0), Sym(1)]));
    }

    #[test]
    fn emptiness() {
        assert!(is_empty(&Regex::Empty));
        assert!(is_empty(&Regex::concat(vec![s(0), Regex::Empty])));
        assert!(!is_empty(&Regex::Epsilon));
    }
}
