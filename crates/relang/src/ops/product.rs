//! Product automata.
//!
//! Algorithm 3 of the paper builds `A := A1 × … × An` over the minimal
//! complete DFAs of the rule languages. The full product has
//! `|Q1| × … × |Qn|` states; as the paper notes, "it is straightforward to
//! change it such that it only computes reachable states" — which is what
//! [`lazy_product`] does. A strict full product is kept for differential
//! testing on small inputs.

use std::collections::BTreeMap;

use crate::alphabet::Sym;
use crate::dfa::Dfa;

/// The reachable product of complete DFAs.
///
/// `dfa` is the product automaton (acceptance unset — callers decide what
/// "accepting" means from the component states) and `tuples[q]` is the
/// vector of component states represented by product state `q`.
#[derive(Clone, Debug)]
pub struct Product {
    /// The product DFA; complete if all inputs are complete.
    pub dfa: Dfa,
    /// `tuples[q][i]` = state of component `i` in product state `q`.
    pub tuples: Vec<Vec<usize>>,
}

/// Builds the reachable part of the product of `components`, all of which
/// must be complete DFAs over the same alphabet.
#[allow(clippy::needless_range_loop)] // dense-table row indexing
pub fn lazy_product(components: &[&Dfa]) -> Product {
    assert!(!components.is_empty(), "product of zero automata");
    let n_syms = components[0].n_syms();
    for c in components {
        assert_eq!(c.n_syms(), n_syms, "alphabet mismatch");
        assert!(c.is_complete(), "lazy_product requires complete DFAs");
    }

    let start: Vec<usize> = components.iter().map(|c| c.initial()).collect();
    let mut ids: BTreeMap<Vec<usize>, usize> = BTreeMap::new();
    let mut tuples: Vec<Vec<usize>> = Vec::new();
    ids.insert(start.clone(), 0);
    tuples.push(start);

    let mut rows: Vec<Vec<usize>> = Vec::new();
    let mut next = 0usize;
    while next < tuples.len() {
        let cur = tuples[next].clone();
        let mut row = Vec::with_capacity(n_syms);
        for a in 0..n_syms {
            let target: Vec<usize> = cur
                .iter()
                .zip(components.iter())
                .map(|(&q, c)| c.transition(q, Sym(a as u32)).expect("complete DFA"))
                .collect();
            let id = *ids.entry(target.clone()).or_insert_with(|| {
                tuples.push(target);
                tuples.len() - 1
            });
            row.push(id);
        }
        rows.push(row);
        next += 1;
    }

    let mut dfa = Dfa::new(n_syms, tuples.len(), 0);
    for (q, row) in rows.iter().enumerate() {
        for (a, &t) in row.iter().enumerate() {
            dfa.set_transition(q, Sym(a as u32), Some(t));
        }
    }
    Product { dfa, tuples }
}

/// Like [`lazy_product`], but only follows transitions for which
/// `allowed(q, a)` holds on the *source* product state. Algorithm 3's
/// λ-pruning: "a transition δ(p, a), for which the label a does not occur
/// in λ(p), can never be taken in a conforming document". Disallowed
/// transitions are left undefined (the result is partial).
#[allow(clippy::needless_range_loop)] // dense-table row indexing
pub fn lazy_product_pruned(
    components: &[&Dfa],
    mut allowed: impl FnMut(&[usize], Sym) -> bool,
) -> Product {
    assert!(!components.is_empty(), "product of zero automata");
    let n_syms = components[0].n_syms();
    for c in components {
        assert_eq!(c.n_syms(), n_syms, "alphabet mismatch");
        assert!(c.is_complete(), "lazy_product requires complete DFAs");
    }

    let start: Vec<usize> = components.iter().map(|c| c.initial()).collect();
    let mut ids: BTreeMap<Vec<usize>, usize> = BTreeMap::new();
    let mut tuples: Vec<Vec<usize>> = Vec::new();
    ids.insert(start.clone(), 0);
    tuples.push(start);

    let mut rows: Vec<Vec<Option<usize>>> = Vec::new();
    let mut next = 0usize;
    while next < tuples.len() {
        let cur = tuples[next].clone();
        let mut row = vec![None; n_syms];
        for a in 0..n_syms {
            if !allowed(&cur, Sym(a as u32)) {
                continue;
            }
            let target: Vec<usize> = cur
                .iter()
                .zip(components.iter())
                .map(|(&q, c)| c.transition(q, Sym(a as u32)).expect("complete DFA"))
                .collect();
            let id = *ids.entry(target.clone()).or_insert_with(|| {
                tuples.push(target);
                tuples.len() - 1
            });
            row[a] = Some(id);
        }
        rows.push(row);
        next += 1;
    }

    let mut dfa = Dfa::new(n_syms, tuples.len(), 0);
    for (q, row) in rows.iter().enumerate() {
        for (a, &t) in row.iter().enumerate() {
            dfa.set_transition(q, Sym(a as u32), t);
        }
    }
    Product { dfa, tuples }
}

/// Strict full product over all state tuples (reference implementation for
/// differential tests; exponential in the number of components).
pub fn full_product(components: &[&Dfa]) -> Product {
    assert!(!components.is_empty(), "product of zero automata");
    let n_syms = components[0].n_syms();
    for c in components {
        assert_eq!(c.n_syms(), n_syms, "alphabet mismatch");
        assert!(c.is_complete(), "full_product requires complete DFAs");
    }
    // Enumerate all tuples in mixed-radix order.
    let radices: Vec<usize> = components.iter().map(|c| c.n_states()).collect();
    let total: usize = radices.iter().product();
    let mut tuples = Vec::with_capacity(total);
    let mut cur = vec![0usize; components.len()];
    for _ in 0..total {
        tuples.push(cur.clone());
        for i in (0..cur.len()).rev() {
            cur[i] += 1;
            if cur[i] < radices[i] {
                break;
            }
            cur[i] = 0;
        }
    }
    let index_of = |tuple: &[usize]| -> usize {
        let mut idx = 0usize;
        for (i, &q) in tuple.iter().enumerate() {
            idx = idx * radices[i] + q;
        }
        idx
    };
    let start: Vec<usize> = components.iter().map(|c| c.initial()).collect();
    let mut dfa = Dfa::new(n_syms, total, index_of(&start));
    for (q, tuple) in tuples.iter().enumerate() {
        for a in 0..n_syms {
            let target: Vec<usize> = tuple
                .iter()
                .zip(components.iter())
                .map(|(&s, c)| c.transition(s, Sym(a as u32)).expect("complete DFA"))
                .collect();
            dfa.set_transition(q, Sym(a as u32), Some(index_of(&target)));
        }
    }
    Product { dfa, tuples }
}

/// Binary product with an acceptance combiner — the workhorse of language
/// intersection/difference tests in [`crate::ops::language`].
pub fn product2(d1: &Dfa, d2: &Dfa, accept: impl Fn(bool, bool) -> bool) -> Dfa {
    let mut a = d1.clone();
    a.complete();
    let mut b = d2.clone();
    b.complete();
    let p = lazy_product(&[&a, &b]);
    let mut dfa = p.dfa;
    for (q, tuple) in p.tuples.iter().enumerate() {
        dfa.set_final(q, accept(a.is_final(tuple[0]), b.is_final(tuple[1])));
    }
    dfa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::ops::subset::determinize;
    use crate::regex::ast::Regex;

    fn s(i: u32) -> Regex {
        Regex::Sym(Sym(i))
    }

    fn complete_dfa_of(r: &Regex, n_syms: usize) -> Dfa {
        let mut d = determinize(&Nfa::from_regex(r, n_syms, 10_000).unwrap());
        d.complete();
        d
    }

    #[test]
    fn intersection_via_product2() {
        // L1 = a* b, L2 = (a a)* b  =>  L1 ∩ L2 = (aa)* b
        let l1 = Regex::concat(vec![Regex::star(s(0)), s(1)]);
        let l2 = Regex::concat(vec![Regex::star(Regex::concat(vec![s(0), s(0)])), s(1)]);
        let d = product2(
            &complete_dfa_of(&l1, 2),
            &complete_dfa_of(&l2, 2),
            |x, y| x && y,
        );
        assert!(d.accepts(&[Sym(1)]));
        assert!(!d.accepts(&[Sym(0), Sym(1)]));
        assert!(d.accepts(&[Sym(0), Sym(0), Sym(1)]));
    }

    #[test]
    fn lazy_product_matches_full_product_language() {
        let l1 = Regex::star(Regex::concat(vec![s(0), s(1)]));
        let l2 = Regex::concat(vec![Regex::star(s(0)), Regex::star(s(1))]);
        let d1 = complete_dfa_of(&l1, 2);
        let d2 = complete_dfa_of(&l2, 2);
        let lazy = lazy_product(&[&d1, &d2]);
        let full = full_product(&[&d1, &d2]);
        assert!(lazy.dfa.n_states() <= full.dfa.n_states());
        // same reachable tuple behavior: run both on words, compare tuples
        let words: &[&[u32]] = &[&[], &[0], &[0, 1], &[1, 1, 0], &[0, 1, 0, 1]];
        for w in words {
            let w: Vec<Sym> = w.iter().map(|&i| Sym(i)).collect();
            let ql = lazy.dfa.run(&w).unwrap();
            let qf = full.dfa.run(&w).unwrap();
            assert_eq!(lazy.tuples[ql], full.tuples[qf], "{w:?}");
        }
    }

    #[test]
    fn pruned_product_skips_disallowed() {
        let l1 = Regex::star(Regex::alt(vec![s(0), s(1)]));
        let d1 = complete_dfa_of(&l1, 2);
        // Disallow symbol 1 everywhere: product collapses to the a-chain.
        let p = lazy_product_pruned(&[&d1], |_, a| a == Sym(0));
        for q in 0..p.dfa.n_states() {
            assert_eq!(p.dfa.transition(q, Sym(1)), None);
        }
    }

    #[test]
    fn product_tuple_bookkeeping() {
        let l1 = Regex::concat(vec![s(0), s(1)]);
        let d1 = complete_dfa_of(&l1, 2);
        let p = lazy_product(&[&d1, &d1]);
        // initial tuple is the pair of initials
        assert_eq!(p.tuples[0], vec![d1.initial(), d1.initial()]);
        // after "a" both components moved identically
        let q = p.dfa.run(&[Sym(0)]).unwrap();
        assert_eq!(p.tuples[q][0], p.tuples[q][1]);
    }
}
