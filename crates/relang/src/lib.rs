//! # relang — the regular-language substrate of the BonXai implementation
//!
//! Everything the BonXai ⇄ XML Schema translation algorithms (Martens,
//! Neven, Niewerth, Schwentick, *BonXai: Combining the simplicity of DTD
//! with the expressiveness of XML Schema*, PODS 2015) need to know about
//! regular languages, built from scratch:
//!
//! * [`Alphabet`] / [`Sym`] — interned element names (the paper's `EName`);
//! * [`Regex`] — expressions in the paper's Section 4.1 syntax, extended
//!   with the practical language's counting `{n,m}` and interleaving `&`;
//! * [`regex::determinism`] — the one-unambiguity (UPA) test;
//! * [`regex::derivative`] — Brzozowski derivatives (general matching);
//! * [`Nfa`] (Glushkov construction) and [`Dfa`] (dense tables);
//! * [`ops`] — subset construction, Hopcroft minimization, (lazy) products,
//!   DFA→regex state elimination, and language decision procedures;
//! * [`CompiledDre`] — reusable compiled matchers for content models.
//!
//! ## Quick example
//!
//! ```
//! use relang::{Alphabet, Regex, CompiledDre};
//! use relang::regex::determinism::is_deterministic;
//!
//! let mut sigma = Alphabet::new();
//! let (title, section) = (sigma.intern("title"), sigma.intern("section"));
//!
//! // content model: title section*
//! let model = Regex::concat(vec![
//!     Regex::sym(title),
//!     Regex::star(Regex::sym(section)),
//! ]);
//! assert!(is_deterministic(&model)); // satisfies UPA
//!
//! let matcher = CompiledDre::compile(&model, sigma.len());
//! assert!(matcher.matches(&[title, section, section]));
//! assert!(!matcher.matches(&[section]));
//! ```

#![warn(missing_docs)]
// Unsafe is denied by default; `dfa` carries a single targeted allow for
// the debug-asserted unchecked table reads on the validation hot path.
#![deny(unsafe_code)]

pub mod alphabet;
pub mod cache;
pub mod dfa;
pub mod fxhash;
pub mod matcher;
pub mod nfa;
pub mod ops;
pub mod regex;

pub use alphabet::{Alphabet, Sym};
pub use cache::{AutomataCache, CacheStats, StageStats};
pub use dfa::{Dfa, StateId};
pub use matcher::CompiledDre;
pub use nfa::Nfa;
pub use regex::ast::{Regex, UpperBound};
