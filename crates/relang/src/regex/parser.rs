//! A plain-text syntax for regular expressions over named symbols.
//!
//! This is the library-internal syntax used by tests, tools and examples
//! (the BonXai ancestor-pattern and child-pattern syntaxes have their own
//! parsers in `bonxai-core`). Grammar, loosest to tightest binding:
//!
//! ```text
//! alt    ::= inter ('|' inter)*
//! inter  ::= concat ('&' concat)*
//! concat ::= postfix+
//! postfix::= atom ('*' | '+' | '?' | '{' n ',' (m | '*') '}')*
//! atom   ::= name | '%eps' | '%empty' | '(' alt ')'
//! ```
//!
//! Names match `[A-Za-z_][A-Za-z0-9_.-]*` and are interned into the given
//! alphabet. Whitespace separates tokens; concatenation is juxtaposition.

use std::fmt;

use crate::alphabet::Alphabet;
use crate::regex::ast::{Regex, UpperBound};

/// A parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input string.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses `input`, interning symbol names into `alphabet`.
pub fn parse_regex(input: &str, alphabet: &mut Alphabet) -> Result<Regex, ParseError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        alphabet,
    };
    p.skip_ws();
    if p.at_end() {
        return Ok(Regex::Epsilon);
    }
    let r = p.parse_alt()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input"));
    }
    Ok(r)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    alphabet: &'a mut Alphabet,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_owned(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_alt(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.parse_inter()?];
        loop {
            self.skip_ws();
            if self.eat(b'|') {
                parts.push(self.parse_inter()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Regex::alt(parts)
        })
    }

    fn parse_inter(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.parse_concat()?];
        loop {
            self.skip_ws();
            if self.eat(b'&') {
                parts.push(self.parse_concat()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Regex::interleave(parts)
        })
    }

    fn parse_concat(&mut self) -> Result<Regex, ParseError> {
        let mut parts = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None | Some(b')' | b'|' | b'&') => break,
                _ => parts.push(self.parse_postfix()?),
            }
        }
        if parts.is_empty() {
            return Err(self.err("expected expression"));
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Regex::concat(parts)
        })
    }

    fn parse_postfix(&mut self) -> Result<Regex, ParseError> {
        let mut r = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    r = Regex::star(r);
                }
                Some(b'+') => {
                    self.pos += 1;
                    r = Regex::plus(r);
                }
                Some(b'?') => {
                    self.pos += 1;
                    r = Regex::opt(r);
                }
                Some(b'{') => {
                    self.pos += 1;
                    let lo = self.parse_number()?;
                    self.skip_ws();
                    if !self.eat(b',') {
                        return Err(self.err("expected ',' in counter"));
                    }
                    self.skip_ws();
                    let hi = if self.eat(b'*') {
                        UpperBound::Unbounded
                    } else {
                        UpperBound::Finite(self.parse_number()?)
                    };
                    self.skip_ws();
                    if !self.eat(b'}') {
                        return Err(self.err("expected '}' in counter"));
                    }
                    if let UpperBound::Finite(m) = hi {
                        if m < lo {
                            return Err(self.err("counter upper bound below lower bound"));
                        }
                    }
                    r = Regex::repeat(r, lo, hi);
                }
                _ => break,
            }
        }
        Ok(r)
    }

    fn parse_number(&mut self) -> Result<u32, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected number"));
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .expect("digits are ascii")
            .parse()
            .map_err(|_| self.err("number too large"))
    }

    fn parse_atom(&mut self) -> Result<Regex, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let r = self.parse_alt()?;
                self.skip_ws();
                if !self.eat(b')') {
                    return Err(self.err("expected ')'"));
                }
                Ok(r)
            }
            Some(b'%') => {
                let start = self.pos;
                self.pos += 1;
                let word = self.parse_name_raw()?;
                match word {
                    "eps" => Ok(Regex::Epsilon),
                    "empty" => Ok(Regex::Empty),
                    _ => {
                        self.pos = start;
                        Err(self.err("expected %eps or %empty"))
                    }
                }
            }
            Some(c) if is_name_start(c) => {
                let name = self.parse_name_raw()?.to_owned();
                Ok(Regex::Sym(self.alphabet.intern(&name)))
            }
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_name_raw(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        if !matches!(self.peek(), Some(c) if is_name_start(c)) {
            return Err(self.err("expected name"));
        }
        self.pos += 1;
        while matches!(self.peek(), Some(c) if is_name_continue(c)) {
            self.pos += 1;
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos]).expect("names are ascii"))
    }
}

fn is_name_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_name_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, b'_' | b'.' | b'-')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Sym;

    fn parse(input: &str) -> (Regex, Alphabet) {
        let mut a = Alphabet::new();
        let r = parse_regex(input, &mut a).unwrap();
        (r, a)
    }

    #[test]
    fn parses_symbols_and_concat() {
        let (r, a) = parse("a b c");
        assert_eq!(a.len(), 3);
        assert_eq!(
            r,
            Regex::Concat(vec![
                Regex::Sym(Sym(0)),
                Regex::Sym(Sym(1)),
                Regex::Sym(Sym(2))
            ])
        );
    }

    #[test]
    fn parses_alternation_precedence() {
        let (r, _) = parse("a b | c");
        assert!(matches!(r, Regex::Alt(ref parts) if parts.len() == 2));
    }

    #[test]
    fn parses_postfix_operators() {
        let (r, _) = parse("a* b+ c? d{2,4} e{1,*}");
        if let Regex::Concat(parts) = r {
            assert!(matches!(parts[0], Regex::Star(_)));
            assert!(matches!(parts[1], Regex::Plus(_)));
            assert!(matches!(parts[2], Regex::Opt(_)));
            assert!(matches!(
                parts[3],
                Regex::Repeat(_, 2, UpperBound::Finite(4))
            ));
            assert!(matches!(parts[4], Regex::Plus(_))); // {1,*} normalizes to +
        } else {
            panic!("expected concat, got {r:?}");
        }
    }

    #[test]
    fn parses_interleave_precedence() {
        // a & b | c  =  (a & b) | c
        let (r, _) = parse("a & b | c");
        assert!(matches!(r, Regex::Alt(ref parts) if parts.len() == 2));
        // a b & c  =  (a b) & c
        let (r, _) = parse("a b & c");
        assert!(matches!(r, Regex::Interleave(ref parts) if parts.len() == 2));
    }

    #[test]
    fn parses_groups_and_specials() {
        let (r, _) = parse("(a | %eps) b");
        assert!(matches!(r, Regex::Concat(_)));
        let (r, _) = parse("%empty");
        assert_eq!(r, Regex::Empty);
        let (r, _) = parse("");
        assert_eq!(r, Regex::Epsilon);
    }

    #[test]
    fn same_name_same_symbol() {
        let (r, a) = parse("ab ab");
        assert_eq!(a.len(), 1);
        assert_eq!(
            r,
            Regex::Concat(vec![Regex::Sym(Sym(0)), Regex::Sym(Sym(0))])
        );
    }

    #[test]
    fn rejects_bad_input() {
        let mut a = Alphabet::new();
        assert!(parse_regex("a |", &mut a).is_err());
        assert!(parse_regex("(a", &mut a).is_err());
        assert!(parse_regex("a)", &mut a).is_err());
        assert!(parse_regex("a{3,2}", &mut a).is_err());
        assert!(parse_regex("a{,2}", &mut a).is_err());
        assert!(parse_regex("%bogus", &mut a).is_err());
        assert!(parse_regex("*", &mut a).is_err());
    }

    #[test]
    fn error_offsets_point_at_problem() {
        let mut a = Alphabet::new();
        let e = parse_regex("ab *", &mut a).unwrap_err();
        assert_eq!(e.offset, 3);
    }
}
