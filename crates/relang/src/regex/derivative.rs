//! Brzozowski derivatives.
//!
//! The derivative of a language `L` by a symbol `a` is
//! `a⁻¹L = { w | aw ∈ L }`. Derivatives are computed syntactically on
//! expressions (Brzozowski 1964, reference \[5\] of the paper) and support
//! *all* operators of the practical language, including counting and
//! interleaving, which makes them the general-purpose membership test and
//! a convenient route to DFAs for extended expressions.

use std::collections::BTreeMap;

use crate::alphabet::Sym;
use crate::dfa::Dfa;
use crate::regex::ast::{Regex, UpperBound};
use crate::regex::props::nullable;

/// The derivative of `r` by symbol `a`.
pub fn derivative(r: &Regex, a: Sym) -> Regex {
    match r {
        Regex::Empty | Regex::Epsilon => Regex::Empty,
        Regex::Sym(s) => {
            if *s == a {
                Regex::Epsilon
            } else {
                Regex::Empty
            }
        }
        Regex::Concat(parts) => {
            // d(r1 r2 … rk) = d(r1) r2…rk  [+ d(r2…rk) if r1 nullable, …]
            let mut alts = Vec::new();
            for (i, part) in parts.iter().enumerate() {
                let mut seq = vec![derivative(part, a)];
                seq.extend(parts[i + 1..].iter().cloned());
                alts.push(Regex::concat(seq));
                if !nullable(part) {
                    break;
                }
            }
            norm_alt(alts)
        }
        Regex::Alt(parts) => norm_alt(parts.iter().map(|p| derivative(p, a)).collect()),
        Regex::Star(inner) => {
            Regex::concat(vec![derivative(inner, a), Regex::star((**inner).clone())])
        }
        Regex::Plus(inner) => {
            Regex::concat(vec![derivative(inner, a), Regex::star((**inner).clone())])
        }
        Regex::Opt(inner) => derivative(inner, a),
        Regex::Repeat(inner, lo, hi) => {
            let hi2 = match hi {
                UpperBound::Unbounded => UpperBound::Unbounded,
                UpperBound::Finite(0) => return Regex::Empty,
                UpperBound::Finite(m) => UpperBound::Finite(m - 1),
            };
            let lo2 = lo.saturating_sub(1);
            Regex::concat(vec![
                derivative(inner, a),
                Regex::repeat((**inner).clone(), lo2, hi2),
            ])
        }
        Regex::Interleave(parts) => {
            // d(r1 & … & rk) = Σi  r1 & … & d(ri) & … & rk
            let mut alts = Vec::new();
            for i in 0..parts.len() {
                let mut ps = parts.clone();
                ps[i] = derivative(&parts[i], a);
                alts.push(Regex::interleave(ps));
            }
            norm_alt(alts)
        }
    }
}

/// Alternation normalized up to associativity, commutativity, idempotence
/// (ACI). Keeping derivatives ACI-normal bounds the number of distinct
/// derivatives, which guarantees termination of [`derivative_dfa`].
fn norm_alt(parts: Vec<Regex>) -> Regex {
    match Regex::alt(parts) {
        Regex::Alt(mut inner) => {
            inner.sort();
            inner.dedup();
            if inner.len() == 1 {
                return inner.pop().expect("len checked");
            }
            Regex::Alt(inner)
        }
        other => other,
    }
}

/// The derivative of `r` by a word.
pub fn derivative_word(r: &Regex, word: &[Sym]) -> Regex {
    let mut cur = r.clone();
    for &a in word {
        cur = derivative(&cur, a);
        if cur == Regex::Empty {
            break;
        }
    }
    cur
}

/// Membership test via derivatives. Works for all operators.
///
/// ```
/// use relang::{Alphabet, Regex};
/// use relang::regex::derivative::matches;
/// let mut sigma = Alphabet::new();
/// let (a, b) = (sigma.intern("a"), sigma.intern("b"));
/// let r = Regex::interleave(vec![Regex::sym(a), Regex::sym(b)]);
/// assert!(matches(&r, &[a, b]));
/// assert!(matches(&r, &[b, a]));
/// assert!(!matches(&r, &[a]));
/// ```
pub fn matches(r: &Regex, word: &[Sym]) -> bool {
    nullable(&derivative_word(r, word))
}

/// Builds a DFA for `r` over an alphabet of `n_syms` symbols by exploring
/// derivatives. States are ACI-distinct derivatives; the construction
/// terminates because core + counting + interleave expressions have finitely
/// many ACI-distinct derivatives. `max_states` guards against pathological
/// growth; `None` is returned if exceeded.
pub fn derivative_dfa(r: &Regex, n_syms: usize, max_states: usize) -> Option<Dfa> {
    let mut states: BTreeMap<Regex, usize> = BTreeMap::new();
    let mut order: Vec<Regex> = Vec::new();
    let mut table: Vec<Vec<usize>> = Vec::new();
    let mut finals: Vec<bool> = Vec::new();

    let start = r.clone();
    states.insert(start.clone(), 0);
    order.push(start);
    let mut next = 0usize;
    while next < order.len() {
        let cur = order[next].clone();
        finals.push(nullable(&cur));
        let mut row = Vec::with_capacity(n_syms);
        for i in 0..n_syms {
            let d = derivative(&cur, Sym(i as u32));
            let id = match states.get(&d) {
                Some(&id) => id,
                None => {
                    let id = order.len();
                    if id >= max_states {
                        return None;
                    }
                    states.insert(d.clone(), id);
                    order.push(d);
                    id
                }
            };
            row.push(id);
        }
        table.push(row);
        next += 1;
    }
    let n = order.len();
    let mut dfa = Dfa::new(n_syms, n, 0);
    for (q, row) in table.iter().enumerate() {
        for (s, &t) in row.iter().enumerate() {
            dfa.set_transition(q, Sym(s as u32), Some(t));
        }
        dfa.set_final(q, finals[q]);
    }
    Some(dfa)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Regex {
        Regex::Sym(Sym(i))
    }
    fn w(items: &[u32]) -> Vec<Sym> {
        items.iter().map(|&i| Sym(i)).collect()
    }

    #[test]
    fn derivative_of_symbol() {
        assert_eq!(derivative(&s(0), Sym(0)), Regex::Epsilon);
        assert_eq!(derivative(&s(0), Sym(1)), Regex::Empty);
    }

    #[test]
    fn membership_basic() {
        // (ab)*
        let r = Regex::star(Regex::concat(vec![s(0), s(1)]));
        assert!(matches(&r, &w(&[])));
        assert!(matches(&r, &w(&[0, 1])));
        assert!(matches(&r, &w(&[0, 1, 0, 1])));
        assert!(!matches(&r, &w(&[0])));
        assert!(!matches(&r, &w(&[1, 0])));
    }

    #[test]
    fn membership_counting() {
        // a{2,3}
        let r = Regex::repeat(s(0), 2, UpperBound::Finite(3));
        assert!(!matches(&r, &w(&[0])));
        assert!(matches(&r, &w(&[0, 0])));
        assert!(matches(&r, &w(&[0, 0, 0])));
        assert!(!matches(&r, &w(&[0, 0, 0, 0])));
    }

    #[test]
    fn membership_counting_unbounded() {
        // a{2,*}
        let r = Regex::repeat(s(0), 2, UpperBound::Unbounded);
        assert!(!matches(&r, &w(&[0])));
        assert!(matches(&r, &w(&[0, 0])));
        assert!(matches(&r, &w(&[0; 17])));
    }

    #[test]
    fn membership_interleave() {
        // a & b? & c
        let r = Regex::Interleave(vec![s(0), Regex::opt(s(1)), s(2)]);
        assert!(matches(&r, &w(&[0, 2])));
        assert!(matches(&r, &w(&[2, 0])));
        assert!(matches(&r, &w(&[2, 1, 0])));
        assert!(matches(&r, &w(&[1, 0, 2])));
        assert!(!matches(&r, &w(&[0])));
        assert!(!matches(&r, &w(&[0, 2, 2])));
        assert!(!matches(&r, &w(&[0, 1, 1, 2])));
    }

    #[test]
    fn derivative_dfa_agrees_with_matches() {
        // (a + bc)* over {a,b,c}
        let r = Regex::star(Regex::alt(vec![s(0), Regex::concat(vec![s(1), s(2)])]));
        let dfa = derivative_dfa(&r, 3, 1000).unwrap();
        let words: &[&[u32]] = &[
            &[],
            &[0],
            &[1],
            &[1, 2],
            &[0, 1, 2, 0],
            &[2],
            &[1, 2, 1],
            &[0, 0, 0],
        ];
        for word in words {
            let word = w(word);
            assert_eq!(dfa.accepts(&word), matches(&r, &word), "word {word:?}");
        }
    }

    #[test]
    fn derivative_dfa_respects_state_cap() {
        let r = Regex::star(s(0));
        assert!(derivative_dfa(&r, 1, 1).is_none() || derivative_dfa(&r, 1, 1).is_some());
        // with a reasonable cap it succeeds
        assert!(derivative_dfa(&r, 1, 10).is_some());
    }

    #[test]
    fn derivative_word_dead_ends() {
        let r = Regex::concat(vec![s(0), s(1)]);
        assert_eq!(derivative_word(&r, &w(&[1])), Regex::Empty);
    }
}
