//! Glushkov position sets: nullability, `first`, `last`, `follow`.
//!
//! These drive the Glushkov automaton construction ([`crate::nfa`]) and the
//! one-unambiguity (UPA) test ([`crate::regex::determinism`]). They are
//! defined for *core* expressions (Section 4.1 syntax); counted repetition
//! and interleaving must be desugared first (see [`Regex::desugar`]) or
//! handled by the operator-aware code paths.

use std::collections::BTreeSet;

use crate::alphabet::Sym;
use crate::regex::ast::Regex;

/// A position: the index of a symbol *occurrence* in the linearized regex.
pub type Pos = usize;

/// The computed Glushkov data of a core regex.
#[derive(Debug, Clone)]
pub struct Positions {
    /// Symbol at each position, in left-to-right occurrence order.
    pub syms: Vec<Sym>,
    /// Whether the regex matches the empty word.
    pub nullable: bool,
    /// Positions that can start a match.
    pub first: BTreeSet<Pos>,
    /// Positions that can end a match.
    pub last: BTreeSet<Pos>,
    /// `follow[p]` = positions that can directly follow position `p`.
    pub follow: Vec<BTreeSet<Pos>>,
}

/// Error returned when an expression contains non-core operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonCoreOperator;

impl std::fmt::Display for NonCoreOperator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "expression contains counting or interleaving; desugar before Glushkov analysis"
        )
    }
}

impl std::error::Error for NonCoreOperator {}

/// Whether a regex (any operators) matches the empty word.
pub fn nullable(r: &Regex) -> bool {
    match r {
        Regex::Empty => false,
        Regex::Epsilon => true,
        Regex::Sym(_) => false,
        Regex::Concat(parts) => parts.iter().all(nullable),
        Regex::Alt(parts) => parts.iter().any(nullable),
        Regex::Star(_) | Regex::Opt(_) => true,
        Regex::Plus(r) => nullable(r),
        Regex::Repeat(r, lo, _) => *lo == 0 || nullable(r),
        Regex::Interleave(parts) => parts.iter().all(nullable),
    }
}

/// Whether `L(r)` is empty (any operators).
pub fn is_empty_language(r: &Regex) -> bool {
    match r {
        Regex::Empty => true,
        Regex::Epsilon | Regex::Sym(_) => false,
        Regex::Concat(parts) | Regex::Interleave(parts) => parts.iter().any(is_empty_language),
        Regex::Alt(parts) => parts.iter().all(is_empty_language),
        Regex::Star(_) | Regex::Opt(_) => false,
        Regex::Plus(r) => is_empty_language(r),
        Regex::Repeat(r, lo, _) => *lo > 0 && is_empty_language(r),
    }
}

/// Computes the Glushkov position sets of a core expression.
pub fn positions(r: &Regex) -> Result<Positions, NonCoreOperator> {
    let mut p = Positions {
        syms: Vec::new(),
        nullable: false,
        first: BTreeSet::new(),
        last: BTreeSet::new(),
        follow: Vec::new(),
    };
    let (first, last, null) = go(r, &mut p)?;
    p.first = first;
    p.last = last;
    p.nullable = null;
    return Ok(p);

    /// Returns (first, last, nullable) for the subexpression, appending
    /// positions and in-subtree follow edges into `acc`.
    fn go(
        r: &Regex,
        acc: &mut Positions,
    ) -> Result<(BTreeSet<Pos>, BTreeSet<Pos>, bool), NonCoreOperator> {
        match r {
            Regex::Empty => Ok((BTreeSet::new(), BTreeSet::new(), false)),
            Regex::Epsilon => Ok((BTreeSet::new(), BTreeSet::new(), true)),
            Regex::Sym(s) => {
                let p = acc.syms.len();
                acc.syms.push(*s);
                acc.follow.push(BTreeSet::new());
                let set: BTreeSet<Pos> = [p].into_iter().collect();
                Ok((set.clone(), set, false))
            }
            Regex::Concat(parts) => {
                let mut first = BTreeSet::new();
                let mut last: BTreeSet<Pos> = BTreeSet::new();
                let mut null = true;
                for part in parts {
                    let (f, l, n) = go(part, acc)?;
                    // follow edges: every last of the prefix so far -> every
                    // first of this part
                    for &p in &last {
                        acc.follow[p].extend(f.iter().copied());
                    }
                    if null {
                        first.extend(f.iter().copied());
                    }
                    if n {
                        last.extend(l);
                    } else {
                        last = l;
                    }
                    null &= n;
                }
                Ok((first, last, null))
            }
            Regex::Alt(parts) => {
                let mut first = BTreeSet::new();
                let mut last = BTreeSet::new();
                let mut null = false;
                for part in parts {
                    let (f, l, n) = go(part, acc)?;
                    first.extend(f);
                    last.extend(l);
                    null |= n;
                }
                Ok((first, last, null))
            }
            Regex::Star(inner) => {
                let (f, l, _) = go(inner, acc)?;
                for &p in &l {
                    acc.follow[p].extend(f.iter().copied());
                }
                Ok((f, l, true))
            }
            Regex::Plus(inner) => {
                let (f, l, n) = go(inner, acc)?;
                for &p in &l {
                    acc.follow[p].extend(f.iter().copied());
                }
                Ok((f, l, n))
            }
            Regex::Opt(inner) => {
                let (f, l, _) = go(inner, acc)?;
                Ok((f, l, true))
            }
            Regex::Repeat(..) | Regex::Interleave(..) => Err(NonCoreOperator),
        }
    }
}

/// The "all-group" (interleave) restrictions of XML Schema, as described in
/// Section 3.1 of the paper:
///
/// 1. no content model may use interleaving together with union or
///    concatenation, and
/// 2. in a content model containing interleaving, counters may appear only
///    directly above symbol (element) declarations.
///
/// Concretely this means: an expression containing `&` must be of the form
/// `e1 & … & ek` (possibly `(…)?`/`{0,1}`-wrapped as a whole is *not*
/// allowed by rule 1 since `?` is a counter), where each `ei` is `a` or
/// `a{n,m}` for a symbol `a`.
pub fn check_all_restrictions(r: &Regex) -> Result<(), AllViolation> {
    if !contains_interleave(r) {
        return Ok(());
    }
    match r {
        Regex::Interleave(parts) => {
            for part in parts {
                match part {
                    Regex::Sym(_) => {}
                    Regex::Repeat(inner, _, _) | Regex::Opt(inner) | Regex::Plus(inner)
                        if matches!(**inner, Regex::Sym(_)) => {}
                    Regex::Star(inner) if matches!(**inner, Regex::Sym(_)) => {}
                    _ => return Err(AllViolation::OperandNotCountedSymbol),
                }
            }
            Ok(())
        }
        _ => Err(AllViolation::MixedWithOtherOperators),
    }
}

fn contains_interleave(r: &Regex) -> bool {
    match r {
        Regex::Interleave(_) => true,
        Regex::Empty | Regex::Epsilon | Regex::Sym(_) => false,
        Regex::Concat(parts) | Regex::Alt(parts) => parts.iter().any(contains_interleave),
        Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) | Regex::Repeat(r, _, _) => {
            contains_interleave(r)
        }
    }
}

/// Violation of the interleaving restrictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllViolation {
    /// `&` combined with `,`/`|` or nested under other operators.
    MixedWithOtherOperators,
    /// An interleaving operand is not a (counted) symbol.
    OperandNotCountedSymbol,
}

impl std::fmt::Display for AllViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllViolation::MixedWithOtherOperators => write!(
                f,
                "interleaving (&) may not be combined with union or concatenation"
            ),
            AllViolation::OperandNotCountedSymbol => write!(
                f,
                "interleaving operands must be (counted) element declarations"
            ),
        }
    }
}

impl std::error::Error for AllViolation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Sym;
    use crate::regex::ast::UpperBound;

    fn s(i: u32) -> Regex {
        Regex::Sym(Sym(i))
    }

    #[test]
    fn nullability() {
        assert!(!nullable(&Regex::Empty));
        assert!(nullable(&Regex::Epsilon));
        assert!(!nullable(&s(0)));
        assert!(nullable(&Regex::star(s(0))));
        assert!(!nullable(&Regex::plus(s(0))));
        assert!(nullable(&Regex::opt(s(0))));
        assert!(nullable(&Regex::repeat(s(0), 0, UpperBound::Finite(3))));
        assert!(!nullable(&Regex::repeat(s(0), 2, UpperBound::Finite(3))));
        assert!(nullable(&Regex::concat(vec![
            Regex::opt(s(0)),
            Regex::star(s(1))
        ])));
        assert!(!nullable(&Regex::concat(vec![Regex::opt(s(0)), s(1)])));
    }

    #[test]
    fn empty_language_detection() {
        assert!(is_empty_language(&Regex::Empty));
        assert!(!is_empty_language(&Regex::Epsilon));
        assert!(is_empty_language(&Regex::Concat(vec![s(0), Regex::Empty])));
        assert!(!is_empty_language(&Regex::Alt(vec![s(0), Regex::Empty])));
    }

    #[test]
    fn positions_of_simple_concat() {
        // ab
        let r = Regex::concat(vec![s(0), s(1)]);
        let p = positions(&r).unwrap();
        assert_eq!(p.syms, vec![Sym(0), Sym(1)]);
        assert!(!p.nullable);
        assert_eq!(p.first.iter().copied().collect::<Vec<_>>(), vec![0]);
        assert_eq!(p.last.iter().copied().collect::<Vec<_>>(), vec![1]);
        assert_eq!(p.follow[0].iter().copied().collect::<Vec<_>>(), vec![1]);
        assert!(p.follow[1].is_empty());
    }

    #[test]
    fn positions_of_star() {
        // (ab)*
        let r = Regex::star(Regex::concat(vec![s(0), s(1)]));
        let p = positions(&r).unwrap();
        assert!(p.nullable);
        assert_eq!(p.first.iter().copied().collect::<Vec<_>>(), vec![0]);
        assert_eq!(p.last.iter().copied().collect::<Vec<_>>(), vec![1]);
        // last -> first loop edge
        assert_eq!(p.follow[1].iter().copied().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn positions_of_alt_in_concat() {
        // (a+b)c
        let r = Regex::concat(vec![Regex::alt(vec![s(0), s(1)]), s(2)]);
        let p = positions(&r).unwrap();
        assert_eq!(p.first.iter().copied().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(p.last.iter().copied().collect::<Vec<_>>(), vec![2]);
        assert_eq!(p.follow[0].iter().copied().collect::<Vec<_>>(), vec![2]);
        assert_eq!(p.follow[1].iter().copied().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn positions_with_nullable_prefix() {
        // a? b : first = {a,b}
        let r = Regex::concat(vec![Regex::opt(s(0)), s(1)]);
        let p = positions(&r).unwrap();
        assert_eq!(p.first.iter().copied().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn positions_reject_noncore() {
        let r = Regex::repeat(s(0), 2, UpperBound::Finite(5));
        assert!(positions(&r).is_err());
        let r = Regex::interleave(vec![s(0), s(1)]);
        assert!(positions(&r).is_err());
    }

    #[test]
    fn all_restrictions_accept_valid() {
        // a & b? & c{1,3}
        let r = Regex::Interleave(vec![
            s(0),
            Regex::opt(s(1)),
            Regex::repeat(s(2), 1, UpperBound::Finite(3)),
        ]);
        assert!(check_all_restrictions(&r).is_ok());
        // no interleaving at all
        assert!(check_all_restrictions(&Regex::concat(vec![s(0), s(1)])).is_ok());
    }

    #[test]
    fn all_restrictions_reject_mixing() {
        // (a & b), c  — interleave under concat
        let r = Regex::Concat(vec![Regex::Interleave(vec![s(0), s(1)]), s(2)]);
        assert_eq!(
            check_all_restrictions(&r),
            Err(AllViolation::MixedWithOtherOperators)
        );
    }

    #[test]
    fn all_restrictions_reject_complex_operand() {
        // (a b) & c
        let r = Regex::Interleave(vec![Regex::Concat(vec![s(0), s(1)]), s(2)]);
        assert_eq!(
            check_all_restrictions(&r),
            Err(AllViolation::OperandNotCountedSymbol)
        );
    }
}
