//! Regular-expression abstract syntax.
//!
//! Mirrors the syntax of Section 4.1 of the paper:
//!
//! ```text
//! r ::= ε | ∅ | a | r·r | r + r | (r)? | (r)+ | (r)*
//! ```
//!
//! extended with the two operators of the practical language (Section 3.1):
//! counted repetition `r{n,m}` and restricted interleaving `r & r`
//! (XML Schema's `xs:all`). The formal algorithms only ever see the plain
//! operators; the extensions are desugared or handled by the validator.

use crate::alphabet::Sym;

/// Upper bound of a counted repetition: a number or `*` (unbounded).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum UpperBound {
    /// A concrete maximum number of repetitions.
    Finite(u32),
    /// `*`: no upper bound.
    Unbounded,
}

impl UpperBound {
    /// Whether `n` repetitions stay within the bound.
    #[inline]
    pub fn admits(self, n: u32) -> bool {
        match self {
            UpperBound::Finite(m) => n <= m,
            UpperBound::Unbounded => true,
        }
    }
}

/// A regular expression over interned symbols.
///
/// n-ary `Concat` and `Alt` keep trees shallow; the canonical empty
/// concatenation is [`Regex::Epsilon`] and the canonical empty alternation
/// is [`Regex::Empty`] (constructors normalize these).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Regex {
    /// `∅` — the empty language.
    Empty,
    /// `ε` — the language containing only the empty word.
    Epsilon,
    /// A single symbol.
    Sym(Sym),
    /// Concatenation `r1 · r2 · … · rk`, k ≥ 2.
    Concat(Vec<Regex>),
    /// Union `r1 + r2 + … + rk`, k ≥ 2.
    Alt(Vec<Regex>),
    /// Kleene star `r*`.
    Star(Box<Regex>),
    /// One-or-more `r+`.
    Plus(Box<Regex>),
    /// Zero-or-one `r?`.
    Opt(Box<Regex>),
    /// Counted repetition `r{n,m}` with `m` possibly `*`.
    Repeat(Box<Regex>, u32, UpperBound),
    /// Interleaving (shuffle) `r1 & … & rk`, k ≥ 2. Restricted as in
    /// XML Schema's `xs:all`; see [`crate::regex::props`].
    Interleave(Vec<Regex>),
}

impl Regex {
    /// A single-symbol expression.
    pub fn sym(s: Sym) -> Regex {
        Regex::Sym(s)
    }

    /// Concatenation of `parts`, flattening nested concatenations and
    /// normalizing the empty and singleton cases. `∅` absorbs.
    pub fn concat(parts: Vec<Regex>) -> Regex {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Epsilon => {}
                Regex::Empty => return Regex::Empty,
                Regex::Concat(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Epsilon,
            1 => out.pop().expect("len checked"),
            _ => Regex::Concat(out),
        }
    }

    /// Union of `parts`, flattening nested unions and dropping `∅`.
    pub fn alt(parts: Vec<Regex>) -> Regex {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Alt(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Empty,
            1 => out.pop().expect("len checked"),
            _ => Regex::Alt(out),
        }
    }

    /// `r*`, normalizing `∅* = ε* = ε` and collapsing iterated stars.
    pub fn star(r: Regex) -> Regex {
        match r {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            Regex::Plus(inner) | Regex::Opt(inner) => Regex::Star(inner),
            other => Regex::Star(Box::new(other)),
        }
    }

    /// `r+`, normalizing `∅+ = ∅`, `ε+ = ε`.
    pub fn plus(r: Regex) -> Regex {
        match r {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            p @ Regex::Plus(_) => p,
            Regex::Opt(inner) => Regex::Star(inner),
            other => Regex::Plus(Box::new(other)),
        }
    }

    /// `r?`, normalizing `∅? = ε`, `ε? = ε`.
    pub fn opt(r: Regex) -> Regex {
        match r {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            Regex::Plus(inner) => Regex::Star(inner),
            o @ Regex::Opt(_) => o,
            other => Regex::Opt(Box::new(other)),
        }
    }

    /// `r{lo,hi}`. Normalizes the cases expressible with core operators
    /// (`{0,*}` = `*`, `{1,*}` = `+`, `{0,1}` = `?`, `{1,1}` = identity).
    pub fn repeat(r: Regex, lo: u32, hi: UpperBound) -> Regex {
        debug_assert!(hi.admits(lo), "empty repetition range");
        match (lo, hi) {
            (0, UpperBound::Unbounded) => Regex::star(r),
            (1, UpperBound::Unbounded) => Regex::plus(r),
            (0, UpperBound::Finite(1)) => Regex::opt(r),
            (1, UpperBound::Finite(1)) => r,
            (0, UpperBound::Finite(0)) => Regex::Epsilon,
            _ => match r {
                Regex::Empty => {
                    if lo == 0 {
                        Regex::Epsilon
                    } else {
                        Regex::Empty
                    }
                }
                Regex::Epsilon => Regex::Epsilon,
                other => Regex::Repeat(Box::new(other), lo, hi),
            },
        }
    }

    /// Interleaving of `parts`, flattening and dropping `ε`; `∅` absorbs.
    pub fn interleave(parts: Vec<Regex>) -> Regex {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Epsilon => {}
                Regex::Empty => return Regex::Empty,
                Regex::Interleave(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Epsilon,
            1 => out.pop().expect("len checked"),
            _ => Regex::Interleave(out),
        }
    }

    /// Union of a set of symbols, the paper's `S` abbreviation for
    /// `(a1 + … + an)`.
    pub fn sym_set<I: IntoIterator<Item = Sym>>(syms: I) -> Regex {
        Regex::alt(syms.into_iter().map(Regex::Sym).collect())
    }

    /// A concatenation of single symbols — the regex `{w}` for a word `w`.
    pub fn word(w: &[Sym]) -> Regex {
        Regex::concat(w.iter().copied().map(Regex::Sym).collect())
    }

    /// The paper's size measure: the total number of alphabet-symbol
    /// occurrences. `aaa` and `a(b+c)?` both have size 3.
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon => 0,
            Regex::Sym(_) => 1,
            Regex::Concat(parts) | Regex::Alt(parts) | Regex::Interleave(parts) => {
                parts.iter().map(Regex::size).sum()
            }
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) | Regex::Repeat(r, _, _) => r.size(),
        }
    }

    /// Number of AST nodes; a syntactic size useful for cost caps.
    pub fn node_count(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Sym(_) => 1,
            Regex::Concat(parts) | Regex::Alt(parts) | Regex::Interleave(parts) => {
                1 + parts.iter().map(Regex::node_count).sum::<usize>()
            }
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) | Regex::Repeat(r, _, _) => {
                1 + r.node_count()
            }
        }
    }

    /// Whether the expression uses only the core operators of Section 4.1
    /// (no counting, no interleaving).
    pub fn is_core(&self) -> bool {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Sym(_) => true,
            Regex::Concat(parts) | Regex::Alt(parts) => parts.iter().all(Regex::is_core),
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) => r.is_core(),
            Regex::Repeat(..) | Regex::Interleave(..) => false,
        }
    }

    /// All distinct symbols occurring in the expression, sorted.
    pub fn symbols(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        self.collect_symbols(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_symbols(&self, out: &mut Vec<Sym>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Sym(s) => out.push(*s),
            Regex::Concat(parts) | Regex::Alt(parts) | Regex::Interleave(parts) => {
                for p in parts {
                    p.collect_symbols(out);
                }
            }
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) | Regex::Repeat(r, _, _) => {
                r.collect_symbols(out)
            }
        }
    }

    /// Applies `f` to every symbol, producing a relabeled expression.
    ///
    /// This is the `µ`-replacement of Algorithm 1 (and its inverse in
    /// Algorithm 4): symbols are renamed but the expression's *structure*
    /// — and hence its determinism — is untouched.
    pub fn map_symbols(&self, f: &mut impl FnMut(Sym) -> Sym) -> Regex {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Sym(s) => Regex::Sym(f(*s)),
            Regex::Concat(parts) => Regex::Concat(parts.iter().map(|p| p.map_symbols(f)).collect()),
            Regex::Alt(parts) => Regex::Alt(parts.iter().map(|p| p.map_symbols(f)).collect()),
            Regex::Interleave(parts) => {
                Regex::Interleave(parts.iter().map(|p| p.map_symbols(f)).collect())
            }
            Regex::Star(r) => Regex::Star(Box::new(r.map_symbols(f))),
            Regex::Plus(r) => Regex::Plus(Box::new(r.map_symbols(f))),
            Regex::Opt(r) => Regex::Opt(Box::new(r.map_symbols(f))),
            Regex::Repeat(r, lo, hi) => Regex::Repeat(Box::new(r.map_symbols(f)), *lo, *hi),
        }
    }

    /// Expands counting and interleaving into the core operators.
    ///
    /// Counted repetitions are unrolled (`r{2,4}` → `r r (r (r)?)?`), and
    /// interleavings are expanded into a union over orderings. Both can
    /// blow up; `budget` caps the node count of the result (`None` on
    /// overflow). Used only where a plain-regex view is unavoidable — the
    /// translation algorithms themselves never call this on content models.
    pub fn desugar(&self, budget: usize) -> Option<Regex> {
        let r = self.desugar_inner()?;
        (r.node_count() <= budget).then_some(r)
    }

    fn desugar_inner(&self) -> Option<Regex> {
        match self {
            Regex::Empty => Some(Regex::Empty),
            Regex::Epsilon => Some(Regex::Epsilon),
            Regex::Sym(s) => Some(Regex::Sym(*s)),
            Regex::Concat(parts) => Some(Regex::concat(
                parts
                    .iter()
                    .map(Regex::desugar_inner)
                    .collect::<Option<Vec<_>>>()?,
            )),
            Regex::Alt(parts) => Some(Regex::alt(
                parts
                    .iter()
                    .map(Regex::desugar_inner)
                    .collect::<Option<Vec<_>>>()?,
            )),
            Regex::Star(r) => Some(Regex::star(r.desugar_inner()?)),
            Regex::Plus(r) => Some(Regex::plus(r.desugar_inner()?)),
            Regex::Opt(r) => Some(Regex::opt(r.desugar_inner()?)),
            Regex::Repeat(r, lo, hi) => {
                let inner = r.desugar_inner()?;
                let lo = *lo;
                match hi {
                    UpperBound::Unbounded => {
                        // r{n,*} = r^n r*
                        let mut parts = vec![inner.clone(); lo as usize];
                        parts.push(Regex::star(inner));
                        Some(Regex::concat(parts))
                    }
                    UpperBound::Finite(hi) => {
                        if *hi > 64 {
                            return None; // unrolling would be unreasonable
                        }
                        // r{n,m} = r^n (r (r (…)?)?)? with m-n nested options
                        let mut tail = Regex::Epsilon;
                        for _ in lo..*hi {
                            tail = Regex::opt(Regex::concat(vec![inner.clone(), tail]));
                        }
                        let mut parts = vec![inner; lo as usize];
                        parts.push(tail);
                        Some(Regex::concat(parts))
                    }
                }
            }
            Regex::Interleave(parts) => {
                if parts.len() > 6 {
                    return None; // factorially many orderings
                }
                let parts = parts
                    .iter()
                    .map(Regex::desugar_inner)
                    .collect::<Option<Vec<_>>>()?;
                // The permutation expansion below is exact only when every
                // operand matches words of length ≤ 1; richer interleaves
                // (e.g. `a{2,3} & b`) are left to the derivative-based
                // machinery, which handles them exactly.
                let ok = parts.iter().all(|p| {
                    matches!(p, Regex::Sym(_) | Regex::Epsilon)
                        || matches!(p, Regex::Opt(inner) if matches!(**inner, Regex::Sym(_)))
                });
                if !ok {
                    return None;
                }
                Some(shuffle_expand(&parts))
            }
        }
    }
}

/// Expands the shuffle of expressions that are each a symbol, an optional
/// symbol, or small expressions, into a union over all orderings.
///
/// XML Schema's `xs:all` restricts interleaving operands to (counted)
/// element declarations, so the operands here are tiny and an explicit
/// expansion over the `k!` permutations of `k` operands is acceptable for
/// the small `k` guarded by the caller.
fn shuffle_expand(parts: &[Regex]) -> Regex {
    match parts.len() {
        0 => Regex::Epsilon,
        1 => parts[0].clone(),
        _ => {
            let mut alts = Vec::new();
            for i in 0..parts.len() {
                let mut rest: Vec<Regex> = parts.to_vec();
                let head = rest.remove(i);
                // head must match a nonempty prefix: split head by nullability.
                let tail = shuffle_expand(&rest);
                alts.push(Regex::concat(vec![head, tail]));
            }
            // If all parts are nullable, the empty word is included via any
            // branch; otherwise the branches already cover the language of
            // interleavings where some part goes first. NOTE: this expansion
            // is exact only when each operand matches words of length <= 1
            // (the xs:all case after per-element counting normalization).
            Regex::alt(alts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Regex {
        Regex::Sym(Sym(i))
    }

    #[test]
    fn concat_normalizes() {
        assert_eq!(Regex::concat(vec![]), Regex::Epsilon);
        assert_eq!(Regex::concat(vec![s(0)]), s(0));
        assert_eq!(
            Regex::concat(vec![s(0), Regex::Epsilon, s(1)]),
            Regex::Concat(vec![s(0), s(1)])
        );
        assert_eq!(Regex::concat(vec![s(0), Regex::Empty]), Regex::Empty);
    }

    #[test]
    fn concat_flattens() {
        let inner = Regex::concat(vec![s(1), s(2)]);
        let outer = Regex::concat(vec![s(0), inner]);
        assert_eq!(outer, Regex::Concat(vec![s(0), s(1), s(2)]));
    }

    #[test]
    fn alt_normalizes() {
        assert_eq!(Regex::alt(vec![]), Regex::Empty);
        assert_eq!(Regex::alt(vec![s(3)]), s(3));
        assert_eq!(
            Regex::alt(vec![Regex::Empty, s(0), s(1)]),
            Regex::Alt(vec![s(0), s(1)])
        );
    }

    #[test]
    fn star_normalizes() {
        assert_eq!(Regex::star(Regex::Empty), Regex::Epsilon);
        assert_eq!(Regex::star(Regex::Epsilon), Regex::Epsilon);
        let ss = Regex::star(s(0));
        assert_eq!(Regex::star(ss.clone()), ss);
        assert_eq!(Regex::star(Regex::plus(s(0))), ss);
        assert_eq!(Regex::star(Regex::opt(s(0))), ss);
    }

    #[test]
    fn plus_and_opt_normalize() {
        assert_eq!(Regex::plus(Regex::Empty), Regex::Empty);
        assert_eq!(Regex::plus(Regex::Epsilon), Regex::Epsilon);
        assert_eq!(Regex::opt(Regex::Empty), Regex::Epsilon);
        assert_eq!(Regex::plus(Regex::opt(s(0))), Regex::star(s(0)));
        assert_eq!(Regex::opt(Regex::plus(s(0))), Regex::star(s(0)));
    }

    #[test]
    fn repeat_normalizes_core_cases() {
        assert_eq!(
            Regex::repeat(s(0), 0, UpperBound::Unbounded),
            Regex::star(s(0))
        );
        assert_eq!(
            Regex::repeat(s(0), 1, UpperBound::Unbounded),
            Regex::plus(s(0))
        );
        assert_eq!(
            Regex::repeat(s(0), 0, UpperBound::Finite(1)),
            Regex::opt(s(0))
        );
        assert_eq!(Regex::repeat(s(0), 1, UpperBound::Finite(1)), s(0));
        assert_eq!(
            Regex::repeat(s(0), 0, UpperBound::Finite(0)),
            Regex::Epsilon
        );
    }

    #[test]
    fn size_matches_paper_examples() {
        // "both expressions aaa and a(b+c)? have size three"
        let aaa = Regex::concat(vec![s(0), s(0), s(0)]);
        assert_eq!(aaa.size(), 3);
        let abc = Regex::concat(vec![s(0), Regex::opt(Regex::alt(vec![s(1), s(2)]))]);
        assert_eq!(abc.size(), 3);
    }

    #[test]
    fn word_builds_concatenation() {
        let w = Regex::word(&[Sym(0), Sym(1), Sym(0)]);
        assert_eq!(w, Regex::Concat(vec![s(0), s(1), s(0)]));
        assert_eq!(Regex::word(&[]), Regex::Epsilon);
    }

    #[test]
    fn is_core_detects_extensions() {
        assert!(Regex::star(s(0)).is_core());
        assert!(!Regex::repeat(s(0), 2, UpperBound::Finite(5)).is_core());
        assert!(!Regex::interleave(vec![s(0), s(1)]).is_core());
    }

    #[test]
    fn desugar_repeat_bounded() {
        let r = Regex::repeat(s(0), 2, UpperBound::Finite(4));
        let d = r.desugar(100).unwrap();
        assert!(d.is_core());
        assert_eq!(d.size(), 4);
    }

    #[test]
    fn desugar_repeat_unbounded() {
        let r = Regex::repeat(s(0), 3, UpperBound::Unbounded);
        let d = r.desugar(100).unwrap();
        assert!(d.is_core());
        // a a a a*
        assert_eq!(d.size(), 4);
    }

    #[test]
    fn desugar_respects_budget() {
        let r = Regex::repeat(s(0), 0, UpperBound::Finite(64));
        assert!(r.desugar(3).is_none());
    }

    #[test]
    fn symbols_are_sorted_and_deduped() {
        let r = Regex::concat(vec![s(2), s(0), s(2), s(1)]);
        assert_eq!(r.symbols(), vec![Sym(0), Sym(1), Sym(2)]);
    }

    #[test]
    fn map_symbols_relabels() {
        let r = Regex::concat(vec![s(0), Regex::star(s(1))]);
        let mapped = r.map_symbols(&mut |Sym(i)| Sym(i + 10));
        assert_eq!(mapped.symbols(), vec![Sym(10), Sym(11)]);
        // Structure preserved
        assert_eq!(mapped.size(), r.size());
    }
}
