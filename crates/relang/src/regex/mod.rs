//! Regular expressions: AST, Glushkov properties, determinism (UPA),
//! derivatives, parsing, and display.

pub mod ast;
pub mod derivative;
pub mod determinism;
pub mod display;
pub mod parser;
pub mod props;

pub use ast::{Regex, UpperBound};
pub use display::display_regex;
pub use parser::{parse_regex, ParseError};
