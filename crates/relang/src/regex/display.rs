//! Rendering regular expressions back to the text syntax of
//! [`crate::regex::parser`].

use std::fmt::Write as _;

use crate::alphabet::Alphabet;
use crate::regex::ast::{Regex, UpperBound};

/// Precedence levels, loosest to tightest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Alt,
    Inter,
    Concat,
    Postfix,
}

/// Renders `r` using names from `alphabet`, inserting parentheses only
/// where precedence requires. The output reparses to an equal AST
/// (see the round-trip tests and proptests).
pub fn display_regex(r: &Regex, alphabet: &Alphabet) -> String {
    let mut out = String::new();
    write_regex(&mut out, r, alphabet, Prec::Alt);
    out
}

fn write_regex(out: &mut String, r: &Regex, alphabet: &Alphabet, ctx: Prec) {
    let prec = prec_of(r);
    let need_parens = prec < ctx;
    if need_parens {
        out.push('(');
    }
    match r {
        Regex::Empty => out.push_str("%empty"),
        Regex::Epsilon => out.push_str("%eps"),
        Regex::Sym(s) => out.push_str(alphabet.name(*s)),
        Regex::Concat(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                write_regex(out, p, alphabet, Prec::Postfix);
            }
        }
        Regex::Alt(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                write_regex(out, p, alphabet, Prec::Inter);
            }
        }
        Regex::Interleave(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(" & ");
                }
                write_regex(out, p, alphabet, Prec::Concat);
            }
        }
        Regex::Star(inner) => {
            write_regex(out, inner, alphabet, Prec::Postfix);
            maybe_postfix_parens(out, inner);
            out.push('*');
        }
        Regex::Plus(inner) => {
            write_regex(out, inner, alphabet, Prec::Postfix);
            maybe_postfix_parens(out, inner);
            out.push('+');
        }
        Regex::Opt(inner) => {
            write_regex(out, inner, alphabet, Prec::Postfix);
            maybe_postfix_parens(out, inner);
            out.push('?');
        }
        Regex::Repeat(inner, lo, hi) => {
            write_regex(out, inner, alphabet, Prec::Postfix);
            maybe_postfix_parens(out, inner);
            match hi {
                UpperBound::Finite(m) => {
                    let _ = write!(out, "{{{lo},{m}}}");
                }
                UpperBound::Unbounded => {
                    let _ = write!(out, "{{{lo},*}}");
                }
            }
        }
    }
    if need_parens {
        out.push(')');
    }
}

/// Stacked postfix operators like `a*?` parse back fine (postfix loops), but
/// `a**` means the same as `(a*)*` anyway, so no extra parens are needed;
/// this hook exists for clarity and currently does nothing.
fn maybe_postfix_parens(_out: &mut String, _inner: &Regex) {}

fn prec_of(r: &Regex) -> Prec {
    match r {
        Regex::Alt(_) => Prec::Alt,
        Regex::Interleave(_) => Prec::Inter,
        Regex::Concat(_) => Prec::Concat,
        _ => Prec::Postfix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parser::parse_regex;

    fn roundtrip(input: &str) {
        let mut a = Alphabet::new();
        let r = parse_regex(input, &mut a).unwrap();
        let shown = display_regex(&r, &a);
        let mut a2 = a.clone();
        let r2 = parse_regex(&shown, &mut a2).unwrap();
        assert_eq!(r, r2, "input {input:?} rendered as {shown:?}");
    }

    #[test]
    fn roundtrips() {
        roundtrip("a b c");
        roundtrip("a | b | c");
        roundtrip("(a | b) c");
        roundtrip("a (b | c)*");
        roundtrip("a{2,4} b{1,*}");
        roundtrip("a & b? & c");
        roundtrip("(a b)*");
        roundtrip("%eps | a");
        roundtrip("%empty");
    }

    #[test]
    fn output_is_minimal_for_simple_cases() {
        let mut a = Alphabet::new();
        let r = parse_regex("(a | b) c", &mut a).unwrap();
        assert_eq!(display_regex(&r, &a), "(a | b) c");
        let r = parse_regex("a b | c", &mut a).unwrap();
        assert_eq!(display_regex(&r, &a), "a b | c");
    }
}
