//! Deterministic (one-unambiguous) regular expressions.
//!
//! The Unique Particle Attribution rule of XML Schema (Section 3.8.6.4 of
//! the XSD specification, and Section 3.2/4.1 of the paper) requires content
//! models to be *deterministic*: while reading a word left to right, the
//! symbol occurrence of the expression that matches the next input symbol is
//! always uniquely determined without lookahead (Brüggemann-Klein & Wood's
//! "one-unambiguous" languages).
//!
//! The classic decision procedure is via the Glushkov automaton: an
//! expression is deterministic iff its Glushkov NFA is deterministic, i.e.
//! no state has two outgoing transitions on the same symbol. In position
//! terms: `first` contains at most one position per symbol, and each
//! `follow(p)` contains at most one position per symbol.

use std::collections::BTreeMap;

use crate::alphabet::Sym;
use crate::regex::ast::Regex;
use crate::regex::props::{check_all_restrictions, positions, Pos};

/// Budget (in AST nodes) for desugaring counted expressions before the
/// Glushkov test. Content models in real schemas have tiny counters; this
/// bound is generous.
const DESUGAR_BUDGET: usize = 50_000;

/// Why an expression failed the determinism (UPA) test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NonDeterminism {
    /// Two occurrences of `sym` compete at the start of a match.
    AmbiguousFirst {
        /// The contested symbol.
        sym: Sym,
        /// First competing occurrence.
        pos1: Pos,
        /// Second competing occurrence.
        pos2: Pos,
    },
    /// After position `after`, two occurrences of `sym` compete.
    AmbiguousFollow {
        /// Occurrence after which the ambiguity arises.
        after: Pos,
        /// The contested symbol.
        sym: Sym,
        /// First competing occurrence.
        pos1: Pos,
        /// Second competing occurrence.
        pos2: Pos,
    },
    /// Interleaving violates the `xs:all` restrictions.
    AllViolation(crate::regex::props::AllViolation),
    /// Two interleaving operands declare the same symbol.
    DuplicateAllOperand {
        /// The duplicated symbol.
        sym: Sym,
    },
    /// Counted repetition too large to analyze.
    CountingTooLarge,
}

impl std::fmt::Display for NonDeterminism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NonDeterminism::AmbiguousFirst { sym, pos1, pos2 } => write!(
                f,
                "ambiguous start: symbol {sym:?} matched by competing occurrences {pos1} and {pos2}"
            ),
            NonDeterminism::AmbiguousFollow {
                after,
                sym,
                pos1,
                pos2,
            } => write!(
                f,
                "ambiguity after occurrence {after}: symbol {sym:?} matched by competing occurrences {pos1} and {pos2}"
            ),
            NonDeterminism::AllViolation(v) => write!(f, "{v}"),
            NonDeterminism::DuplicateAllOperand { sym } => {
                write!(f, "interleaving declares symbol {sym:?} twice")
            }
            NonDeterminism::CountingTooLarge => {
                write!(f, "counted repetition too large for determinism analysis")
            }
        }
    }
}

impl std::error::Error for NonDeterminism {}

/// Checks whether `r` is a deterministic (one-unambiguous) expression,
/// returning the first witness of non-determinism found.
///
/// ```
/// use relang::{Alphabet, Regex};
/// use relang::regex::determinism::check_deterministic;
/// let mut sigma = Alphabet::new();
/// let (a, b) = (sigma.intern("a"), sigma.intern("b"));
/// // (a b)* a? is NOT deterministic: after reading `a`, the next `a`…
/// // wait—after `a` only `b` or end follows; this one IS deterministic.
/// let det = Regex::concat(vec![
///     Regex::star(Regex::concat(vec![Regex::sym(a), Regex::sym(b)])),
///     Regex::opt(Regex::sym(a)),
/// ]);
/// assert!(check_deterministic(&det).is_err()); // a competes: loop vs. tail
/// let det2 = Regex::star(Regex::concat(vec![Regex::sym(a), Regex::sym(b)]));
/// assert!(check_deterministic(&det2).is_ok());
/// ```
pub fn check_deterministic(r: &Regex) -> Result<(), NonDeterminism> {
    // Interleaving: the xs:all rules, then per-operand distinctness.
    if let Regex::Interleave(parts) = r {
        check_all_restrictions(r).map_err(NonDeterminism::AllViolation)?;
        let mut seen: BTreeMap<Sym, ()> = BTreeMap::new();
        for p in parts {
            let sym = interleave_operand_symbol(p)
                .expect("checked by all restrictions: operand is counted symbol");
            if seen.insert(sym, ()).is_some() {
                return Err(NonDeterminism::DuplicateAllOperand { sym });
            }
        }
        return Ok(());
    }
    check_all_restrictions(r).map_err(NonDeterminism::AllViolation)?;

    let core = if r.is_core() {
        r.clone()
    } else {
        r.desugar(DESUGAR_BUDGET)
            .ok_or(NonDeterminism::CountingTooLarge)?
    };
    let p = positions(&core).expect("desugared expression is core");

    // first must be symbol-unique
    let mut by_sym: BTreeMap<Sym, Pos> = BTreeMap::new();
    for &pos in &p.first {
        if let Some(&prev) = by_sym.get(&p.syms[pos]) {
            return Err(NonDeterminism::AmbiguousFirst {
                sym: p.syms[pos],
                pos1: prev,
                pos2: pos,
            });
        }
        by_sym.insert(p.syms[pos], pos);
    }
    // each follow set must be symbol-unique
    for (after, fset) in p.follow.iter().enumerate() {
        let mut by_sym: BTreeMap<Sym, Pos> = BTreeMap::new();
        for &pos in fset {
            if let Some(&prev) = by_sym.get(&p.syms[pos]) {
                return Err(NonDeterminism::AmbiguousFollow {
                    after,
                    sym: p.syms[pos],
                    pos1: prev,
                    pos2: pos,
                });
            }
            by_sym.insert(p.syms[pos], pos);
        }
    }
    Ok(())
}

/// Convenience wrapper returning a boolean.
pub fn is_deterministic(r: &Regex) -> bool {
    check_deterministic(r).is_ok()
}

/// The symbol of an interleaving operand of the restricted form.
fn interleave_operand_symbol(r: &Regex) -> Option<Sym> {
    match r {
        Regex::Sym(s) => Some(*s),
        Regex::Opt(inner)
        | Regex::Plus(inner)
        | Regex::Star(inner)
        | Regex::Repeat(inner, _, _) => match **inner {
            Regex::Sym(s) => Some(s),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::ast::UpperBound;

    fn s(i: u32) -> Regex {
        Regex::Sym(Sym(i))
    }

    #[test]
    fn classic_nondeterministic_example() {
        // (a+b)* a — the textbook non-deterministic expression
        let r = Regex::concat(vec![Regex::star(Regex::alt(vec![s(0), s(1)])), s(0)]);
        assert!(!is_deterministic(&r));
    }

    #[test]
    fn classic_deterministic_examples() {
        // b* a (b* a)*  — deterministic expression for the same language
        let ba = Regex::concat(vec![Regex::star(s(1)), s(0)]);
        let r = Regex::concat(vec![ba.clone(), Regex::star(ba)]);
        assert!(is_deterministic(&r));
        // a (b + c)?
        let r = Regex::concat(vec![s(0), Regex::opt(Regex::alt(vec![s(1), s(2)]))]);
        assert!(is_deterministic(&r));
    }

    #[test]
    fn ambiguous_first_detected() {
        // a b + a c
        let r = Regex::alt(vec![
            Regex::concat(vec![s(0), s(1)]),
            Regex::concat(vec![s(0), s(2)]),
        ]);
        match check_deterministic(&r) {
            Err(NonDeterminism::AmbiguousFirst { sym, .. }) => assert_eq!(sym, Sym(0)),
            other => panic!("expected ambiguous first, got {other:?}"),
        }
    }

    #[test]
    fn ambiguous_follow_detected() {
        // a (b c + b d)
        let r = Regex::concat(vec![
            s(0),
            Regex::alt(vec![
                Regex::concat(vec![s(1), s(2)]),
                Regex::concat(vec![s(1), s(3)]),
            ]),
        ]);
        match check_deterministic(&r) {
            Err(NonDeterminism::AmbiguousFollow { sym, .. }) => assert_eq!(sym, Sym(1)),
            other => panic!("expected ambiguous follow, got {other:?}"),
        }
    }

    #[test]
    fn counting_is_checked_via_desugaring() {
        // a{2,4} is deterministic
        let r = Regex::repeat(s(0), 2, UpperBound::Finite(4));
        assert!(is_deterministic(&r));
        // (a?){2,2} a is not (a can come from the counter body or the tail)
        let r = Regex::concat(vec![
            Regex::Repeat(Box::new(Regex::opt(s(0))), 2, UpperBound::Finite(2)),
            s(0),
        ]);
        assert!(!is_deterministic(&r));
    }

    #[test]
    fn interleave_distinct_symbols_ok() {
        let r = Regex::Interleave(vec![s(0), Regex::opt(s(1)), s(2)]);
        assert!(is_deterministic(&r));
    }

    #[test]
    fn interleave_duplicate_symbol_rejected() {
        let r = Regex::Interleave(vec![s(0), Regex::opt(s(0))]);
        assert_eq!(
            check_deterministic(&r),
            Err(NonDeterminism::DuplicateAllOperand { sym: Sym(0) })
        );
    }

    #[test]
    fn interleave_under_concat_rejected() {
        let r = Regex::Concat(vec![Regex::Interleave(vec![s(0), s(1)]), s(2)]);
        assert!(matches!(
            check_deterministic(&r),
            Err(NonDeterminism::AllViolation(_))
        ));
    }

    #[test]
    fn epsilon_and_empty_are_deterministic() {
        assert!(is_deterministic(&Regex::Epsilon));
        assert!(is_deterministic(&Regex::Empty));
    }
}
