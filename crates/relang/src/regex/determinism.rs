//! Deterministic (one-unambiguous) regular expressions.
//!
//! The Unique Particle Attribution rule of XML Schema (Section 3.8.6.4 of
//! the XSD specification, and Section 3.2/4.1 of the paper) requires content
//! models to be *deterministic*: while reading a word left to right, the
//! symbol occurrence of the expression that matches the next input symbol is
//! always uniquely determined without lookahead (Brüggemann-Klein & Wood's
//! "one-unambiguous" languages).
//!
//! The classic decision procedure is via the Glushkov automaton: an
//! expression is deterministic iff its Glushkov NFA is deterministic, i.e.
//! no state has two outgoing transitions on the same symbol. In position
//! terms: `first` contains at most one position per symbol, and each
//! `follow(p)` contains at most one position per symbol.

use std::collections::BTreeMap;

use crate::alphabet::Sym;
use crate::regex::ast::Regex;
use crate::regex::props::{check_all_restrictions, positions, Pos};

/// Budget (in AST nodes) for desugaring counted expressions before the
/// Glushkov test. Content models in real schemas have tiny counters; this
/// bound is generous.
const DESUGAR_BUDGET: usize = 50_000;

/// Why an expression failed the determinism (UPA) test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NonDeterminism {
    /// Two occurrences of `sym` compete at the start of a match.
    AmbiguousFirst {
        /// The contested symbol.
        sym: Sym,
        /// First competing occurrence.
        pos1: Pos,
        /// Second competing occurrence.
        pos2: Pos,
    },
    /// After position `after`, two occurrences of `sym` compete.
    AmbiguousFollow {
        /// Occurrence after which the ambiguity arises.
        after: Pos,
        /// The contested symbol.
        sym: Sym,
        /// First competing occurrence.
        pos1: Pos,
        /// Second competing occurrence.
        pos2: Pos,
    },
    /// Interleaving violates the `xs:all` restrictions.
    AllViolation(crate::regex::props::AllViolation),
    /// Two interleaving operands declare the same symbol.
    DuplicateAllOperand {
        /// The duplicated symbol.
        sym: Sym,
    },
    /// Counted repetition too large to analyze.
    CountingTooLarge,
}

impl std::fmt::Display for NonDeterminism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NonDeterminism::AmbiguousFirst { sym, pos1, pos2 } => write!(
                f,
                "ambiguous start: symbol {sym:?} matched by competing occurrences {pos1} and {pos2}"
            ),
            NonDeterminism::AmbiguousFollow {
                after,
                sym,
                pos1,
                pos2,
            } => write!(
                f,
                "ambiguity after occurrence {after}: symbol {sym:?} matched by competing occurrences {pos1} and {pos2}"
            ),
            NonDeterminism::AllViolation(v) => write!(f, "{v}"),
            NonDeterminism::DuplicateAllOperand { sym } => {
                write!(f, "interleaving declares symbol {sym:?} twice")
            }
            NonDeterminism::CountingTooLarge => {
                write!(f, "counted repetition too large for determinism analysis")
            }
        }
    }
}

impl std::error::Error for NonDeterminism {}

/// Checks whether `r` is a deterministic (one-unambiguous) expression,
/// returning the first witness of non-determinism found.
///
/// ```
/// use relang::{Alphabet, Regex};
/// use relang::regex::determinism::check_deterministic;
/// let mut sigma = Alphabet::new();
/// let (a, b) = (sigma.intern("a"), sigma.intern("b"));
/// // (a b)* a? is NOT deterministic: after reading `a`, the next `a`…
/// // wait—after `a` only `b` or end follows; this one IS deterministic.
/// let det = Regex::concat(vec![
///     Regex::star(Regex::concat(vec![Regex::sym(a), Regex::sym(b)])),
///     Regex::opt(Regex::sym(a)),
/// ]);
/// assert!(check_deterministic(&det).is_err()); // a competes: loop vs. tail
/// let det2 = Regex::star(Regex::concat(vec![Regex::sym(a), Regex::sym(b)]));
/// assert!(check_deterministic(&det2).is_ok());
/// ```
pub fn check_deterministic(r: &Regex) -> Result<(), NonDeterminism> {
    // Interleaving: the xs:all rules, then per-operand distinctness.
    if let Regex::Interleave(parts) = r {
        check_all_restrictions(r).map_err(NonDeterminism::AllViolation)?;
        let mut seen: BTreeMap<Sym, ()> = BTreeMap::new();
        for p in parts {
            let sym = interleave_operand_symbol(p)
                .expect("checked by all restrictions: operand is counted symbol");
            if seen.insert(sym, ()).is_some() {
                return Err(NonDeterminism::DuplicateAllOperand { sym });
            }
        }
        return Ok(());
    }
    check_all_restrictions(r).map_err(NonDeterminism::AllViolation)?;

    let core = if r.is_core() {
        r.clone()
    } else {
        r.desugar(DESUGAR_BUDGET)
            .ok_or(NonDeterminism::CountingTooLarge)?
    };
    let p = positions(&core).expect("desugared expression is core");

    // first must be symbol-unique
    let mut by_sym: BTreeMap<Sym, Pos> = BTreeMap::new();
    for &pos in &p.first {
        if let Some(&prev) = by_sym.get(&p.syms[pos]) {
            return Err(NonDeterminism::AmbiguousFirst {
                sym: p.syms[pos],
                pos1: prev,
                pos2: pos,
            });
        }
        by_sym.insert(p.syms[pos], pos);
    }
    // each follow set must be symbol-unique
    for (after, fset) in p.follow.iter().enumerate() {
        let mut by_sym: BTreeMap<Sym, Pos> = BTreeMap::new();
        for &pos in fset {
            if let Some(&prev) = by_sym.get(&p.syms[pos]) {
                return Err(NonDeterminism::AmbiguousFollow {
                    after,
                    sym: p.syms[pos],
                    pos1: prev,
                    pos2: pos,
                });
            }
            by_sym.insert(p.syms[pos], pos);
        }
    }
    Ok(())
}

/// Convenience wrapper returning a boolean.
pub fn is_deterministic(r: &Regex) -> bool {
    check_deterministic(r).is_ok()
}

/// A UPA violation together with a shortest witness word leading to it.
///
/// The `prefix` is a shortest word such that, after reading it, the very
/// next occurrence of `sym` is matched by two distinct positions of the
/// Glushkov automaton — the ambiguity the one-unambiguity condition
/// forbids. `prefix` is empty for ambiguities at the start of a match
/// (and for the structural interleave/counting violations, where no word
/// exhibits the problem).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpaWitness {
    /// The underlying violation (position pair included).
    pub violation: NonDeterminism,
    /// Shortest word read before the ambiguity arises.
    pub prefix: Vec<Sym>,
    /// The contested next symbol, when the violation is an ambiguity.
    pub sym: Option<Sym>,
}

impl UpaWitness {
    /// The witness word including the contested symbol: reading this word
    /// forces the ambiguous choice at its last symbol.
    pub fn word(&self) -> Vec<Sym> {
        let mut w = self.prefix.clone();
        w.extend(self.sym);
        w
    }
}

/// Like [`check_deterministic`], but on failure also computes a shortest
/// witness word exhibiting the ambiguity (via BFS over the Glushkov
/// `follow` relation from the `first` positions).
pub fn check_deterministic_witness(r: &Regex) -> Result<(), UpaWitness> {
    let violation = match check_deterministic(r) {
        Ok(()) => return Ok(()),
        Err(v) => v,
    };
    Err(match &violation {
        NonDeterminism::AmbiguousFirst { sym, .. } => UpaWitness {
            prefix: Vec::new(),
            sym: Some(*sym),
            violation,
        },
        NonDeterminism::AmbiguousFollow { after, sym, .. } => {
            let core = if r.is_core() {
                r.clone()
            } else {
                r.desugar(DESUGAR_BUDGET)
                    .expect("desugared successfully during check")
            };
            let p = positions(&core).expect("desugared expression is core");
            UpaWitness {
                prefix: shortest_word_to(&p, *after),
                sym: Some(*sym),
                violation,
            }
        }
        _ => UpaWitness {
            prefix: Vec::new(),
            sym: None,
            violation,
        },
    })
}

/// A shortest word of position symbols along a `first → follow* → target`
/// path ending at (and including) `target`. The Glushkov construction
/// guarantees every position is reachable this way.
fn shortest_word_to(p: &crate::regex::props::Positions, target: Pos) -> Vec<Sym> {
    let mut pred: Vec<Option<Pos>> = vec![None; p.syms.len()];
    let mut seen = vec![false; p.syms.len()];
    let mut queue = std::collections::VecDeque::new();
    for &f in &p.first {
        if f == target {
            return vec![p.syms[target]];
        }
        seen[f] = true;
        queue.push_back(f);
    }
    while let Some(q) = queue.pop_front() {
        for &next in &p.follow[q] {
            if seen[next] {
                continue;
            }
            seen[next] = true;
            pred[next] = Some(q);
            if next == target {
                let mut path = vec![target];
                let mut cur = target;
                while let Some(prev) = pred[cur] {
                    path.push(prev);
                    cur = prev;
                }
                path.reverse();
                return path.into_iter().map(|pos| p.syms[pos]).collect();
            }
            queue.push_back(next);
        }
    }
    // Unreachable positions cannot occur in a Glushkov automaton built
    // from a trim expression; fall back to the empty prefix.
    Vec::new()
}

/// The symbol of an interleaving operand of the restricted form.
fn interleave_operand_symbol(r: &Regex) -> Option<Sym> {
    match r {
        Regex::Sym(s) => Some(*s),
        Regex::Opt(inner)
        | Regex::Plus(inner)
        | Regex::Star(inner)
        | Regex::Repeat(inner, _, _) => match **inner {
            Regex::Sym(s) => Some(s),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::ast::UpperBound;

    fn s(i: u32) -> Regex {
        Regex::Sym(Sym(i))
    }

    #[test]
    fn classic_nondeterministic_example() {
        // (a+b)* a — the textbook non-deterministic expression
        let r = Regex::concat(vec![Regex::star(Regex::alt(vec![s(0), s(1)])), s(0)]);
        assert!(!is_deterministic(&r));
    }

    #[test]
    fn classic_deterministic_examples() {
        // b* a (b* a)*  — deterministic expression for the same language
        let ba = Regex::concat(vec![Regex::star(s(1)), s(0)]);
        let r = Regex::concat(vec![ba.clone(), Regex::star(ba)]);
        assert!(is_deterministic(&r));
        // a (b + c)?
        let r = Regex::concat(vec![s(0), Regex::opt(Regex::alt(vec![s(1), s(2)]))]);
        assert!(is_deterministic(&r));
    }

    #[test]
    fn ambiguous_first_detected() {
        // a b + a c
        let r = Regex::alt(vec![
            Regex::concat(vec![s(0), s(1)]),
            Regex::concat(vec![s(0), s(2)]),
        ]);
        match check_deterministic(&r) {
            Err(NonDeterminism::AmbiguousFirst { sym, .. }) => assert_eq!(sym, Sym(0)),
            other => panic!("expected ambiguous first, got {other:?}"),
        }
    }

    #[test]
    fn ambiguous_follow_detected() {
        // a (b c + b d)
        let r = Regex::concat(vec![
            s(0),
            Regex::alt(vec![
                Regex::concat(vec![s(1), s(2)]),
                Regex::concat(vec![s(1), s(3)]),
            ]),
        ]);
        match check_deterministic(&r) {
            Err(NonDeterminism::AmbiguousFollow { sym, .. }) => assert_eq!(sym, Sym(1)),
            other => panic!("expected ambiguous follow, got {other:?}"),
        }
    }

    #[test]
    fn counting_is_checked_via_desugaring() {
        // a{2,4} is deterministic
        let r = Regex::repeat(s(0), 2, UpperBound::Finite(4));
        assert!(is_deterministic(&r));
        // (a?){2,2} a is not (a can come from the counter body or the tail)
        let r = Regex::concat(vec![
            Regex::Repeat(Box::new(Regex::opt(s(0))), 2, UpperBound::Finite(2)),
            s(0),
        ]);
        assert!(!is_deterministic(&r));
    }

    #[test]
    fn interleave_distinct_symbols_ok() {
        let r = Regex::Interleave(vec![s(0), Regex::opt(s(1)), s(2)]);
        assert!(is_deterministic(&r));
    }

    #[test]
    fn interleave_duplicate_symbol_rejected() {
        let r = Regex::Interleave(vec![s(0), Regex::opt(s(0))]);
        assert_eq!(
            check_deterministic(&r),
            Err(NonDeterminism::DuplicateAllOperand { sym: Sym(0) })
        );
    }

    #[test]
    fn interleave_under_concat_rejected() {
        let r = Regex::Concat(vec![Regex::Interleave(vec![s(0), s(1)]), s(2)]);
        assert!(matches!(
            check_deterministic(&r),
            Err(NonDeterminism::AllViolation(_))
        ));
    }

    #[test]
    fn epsilon_and_empty_are_deterministic() {
        assert!(is_deterministic(&Regex::Epsilon));
        assert!(is_deterministic(&Regex::Empty));
    }

    #[test]
    fn witness_for_ambiguous_first_is_one_symbol() {
        // a b + a c — the ambiguity is at the very first symbol.
        let r = Regex::alt(vec![
            Regex::concat(vec![s(0), s(1)]),
            Regex::concat(vec![s(0), s(2)]),
        ]);
        let w = check_deterministic_witness(&r).unwrap_err();
        assert!(w.prefix.is_empty());
        assert_eq!(w.sym, Some(Sym(0)));
        assert_eq!(w.word(), vec![Sym(0)]);
    }

    #[test]
    fn witness_for_ambiguous_follow_is_shortest() {
        // x (b c + b d): after reading x, the next b is ambiguous.
        let r = Regex::concat(vec![
            s(9),
            Regex::alt(vec![
                Regex::concat(vec![s(1), s(2)]),
                Regex::concat(vec![s(1), s(3)]),
            ]),
        ]);
        let w = check_deterministic_witness(&r).unwrap_err();
        assert_eq!(w.prefix, vec![Sym(9)]);
        assert_eq!(w.sym, Some(Sym(1)));
        assert_eq!(w.word(), vec![Sym(9), Sym(1)]);
    }

    #[test]
    fn witness_threads_through_star_loops() {
        // (a b)* a? — the ambiguity arises after b (loop back to a vs. tail a).
        let r = Regex::concat(vec![
            Regex::star(Regex::concat(vec![s(0), s(1)])),
            Regex::opt(s(0)),
        ]);
        let w = check_deterministic_witness(&r).unwrap_err();
        // first is already ambiguous here (loop a vs. tail a), so prefix ε
        // — or the checker reports a follow ambiguity after b. Accept both
        // but demand a well-formed witness ending on the contested symbol.
        assert_eq!(w.sym, Some(Sym(0)));
        assert_eq!(w.word().last(), Some(&Sym(0)));
    }

    #[test]
    fn witness_for_counted_desugaring_has_real_symbols() {
        // (a?){2,2} a — ambiguity appears in the desugared expression, but
        // the witness word must be over the original alphabet.
        let r = Regex::concat(vec![
            Regex::Repeat(Box::new(Regex::opt(s(0))), 2, UpperBound::Finite(2)),
            s(0),
        ]);
        let w = check_deterministic_witness(&r).unwrap_err();
        assert_eq!(w.sym, Some(Sym(0)));
        assert!(w.word().iter().all(|&sy| sy == Sym(0)));
    }

    #[test]
    fn structural_violations_have_no_word() {
        let r = Regex::Interleave(vec![s(0), Regex::opt(s(0))]);
        let w = check_deterministic_witness(&r).unwrap_err();
        assert_eq!(w.sym, None);
        assert!(w.word().is_empty());
    }
}
