//! Interned symbols and alphabets.
//!
//! The formal development of the paper works over a finite alphabet `EName`
//! of element names (Section 4.1). We intern names into dense `u32`-backed
//! [`Sym`] handles so that automata can use dense transition tables and
//! comparisons are O(1). An [`Alphabet`] owns the bidirectional mapping.

use std::fmt;

/// An interned symbol (element name) of an [`Alphabet`].
///
/// Symbols are small dense indices; `Sym(i)` is the `i`-th distinct name
/// interned into its alphabet. A `Sym` is only meaningful together with the
/// alphabet that produced it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// The dense index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A finite alphabet of interned names (the paper's `EName`).
///
/// Interning is append-only: symbols are never removed, so `Sym` handles
/// stay valid for the lifetime of the alphabet.
///
/// ```
/// use relang::Alphabet;
/// let mut sigma = Alphabet::new();
/// let a = sigma.intern("section");
/// let b = sigma.intern("style");
/// assert_ne!(a, b);
/// assert_eq!(sigma.intern("section"), a);
/// assert_eq!(sigma.name(a), "section");
/// assert_eq!(sigma.len(), 2);
/// ```
#[derive(Clone, Default)]
pub struct Alphabet {
    names: Vec<String>,
    /// Open-addressing index over `names`: `slots[h] = sym + 1`, 0 = empty.
    /// Name lookup is on the per-element validation hot path, so this is a
    /// flat FNV-1a table (one hash, a short linear probe, one string
    /// compare) rather than a tree or SipHash map.
    slots: Vec<u32>,
}

#[inline]
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an alphabet containing the given names, in order.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut a = Self::new();
        for n in names {
            a.intern(n.as_ref());
        }
        a
    }

    /// Interns `name`, returning its symbol. Idempotent.
    ///
    /// One hash and one probe chain per call: a miss remembers the empty
    /// slot the probe stopped at and inserts there directly, instead of
    /// re-hashing and re-probing as the old lookup-then-insert pair did
    /// on every new name during schema lowering.
    #[inline]
    pub fn intern(&mut self, name: &str) -> Sym {
        let mut slot = 0usize;
        if !self.slots.is_empty() {
            let mask = self.slots.len() - 1;
            slot = fnv1a(name) as usize & mask;
            loop {
                match self.slots[slot] {
                    0 => break,
                    s => {
                        if self.names[(s - 1) as usize] == name {
                            return Sym(s - 1);
                        }
                    }
                }
                slot = (slot + 1) & mask;
            }
        }
        let s = Sym(u32::try_from(self.names.len()).expect("alphabet overflow"));
        self.names.push(name.to_owned());
        if (self.names.len() + 1) * 2 > self.slots.len() {
            self.rebuild_slots();
        } else {
            self.slots[slot] = s.0 + 1;
        }
        s
    }

    /// Pre-sizes the slot table for `additional` more distinct names, so
    /// a known-size intern burst (e.g. a schema's symbol set) triggers no
    /// incremental rebuilds.
    pub fn reserve(&mut self, additional: usize) {
        let want = self.names.len() + additional;
        let cap = ((want + 1) * 4).next_power_of_two().max(8);
        if cap > self.slots.len() {
            self.names.reserve(additional);
            self.slots = vec![0; cap];
            for i in 0..self.names.len() {
                self.insert_slot(Sym(i as u32));
            }
        }
    }

    /// Looks up a previously interned name.
    #[inline]
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = fnv1a(name) as usize & mask;
        loop {
            match self.slots[i] {
                0 => return None,
                s => {
                    let sym = Sym(s - 1);
                    if self.names[sym.index()] == name {
                        return Some(sym);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Re-hashes every name into a table kept at most half full (so probe
    /// chains stay short and `lookup` always terminates).
    fn rebuild_slots(&mut self) {
        let cap = (self.names.len() * 4).next_power_of_two().max(8);
        self.slots = vec![0; cap];
        for i in 0..self.names.len() {
            self.insert_slot(Sym(i as u32));
        }
    }

    fn insert_slot(&mut self, s: Sym) {
        let mask = self.slots.len() - 1;
        let mut i = fnv1a(&self.names[s.index()]) as usize & mask;
        while self.slots[i] != 0 {
            i = (i + 1) & mask;
        }
        self.slots[i] = s.0 + 1;
    }

    /// The name of a symbol. Panics if `s` is not from this alphabet.
    pub fn name(&self, s: Sym) -> &str {
        &self.names[s.index()]
    }

    /// Number of distinct symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all symbols in index order.
    pub fn symbols(&self) -> impl Iterator<Item = Sym> + '_ {
        (0..self.names.len() as u32).map(Sym)
    }

    /// Iterates over `(Sym, name)` pairs in index order.
    pub fn entries(&self) -> impl Iterator<Item = (Sym, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_str()))
    }
}

impl fmt::Debug for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.names.iter().enumerate())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut a = Alphabet::new();
        let s1 = a.intern("x");
        let s2 = a.intern("x");
        assert_eq!(s1, s2);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn distinct_names_distinct_syms() {
        let mut a = Alphabet::new();
        let x = a.intern("x");
        let y = a.intern("y");
        assert_ne!(x, y);
        assert_eq!(a.name(x), "x");
        assert_eq!(a.name(y), "y");
    }

    #[test]
    fn from_names_preserves_order() {
        let a = Alphabet::from_names(["a", "b", "c"]);
        let syms: Vec<_> = a.symbols().collect();
        assert_eq!(syms, vec![Sym(0), Sym(1), Sym(2)]);
        assert_eq!(a.name(Sym(2)), "c");
    }

    #[test]
    fn lookup_missing_is_none() {
        let a = Alphabet::from_names(["a"]);
        assert!(a.lookup("zzz").is_none());
        assert_eq!(a.lookup("a"), Some(Sym(0)));
    }

    #[test]
    fn entries_roundtrip() {
        let a = Alphabet::from_names(["p", "q"]);
        let pairs: Vec<_> = a.entries().collect();
        assert_eq!(pairs, vec![(Sym(0), "p"), (Sym(1), "q")]);
    }
}
