//! Memoized automata construction keyed by regex structure.
//!
//! Every compile-time consumer — `CompiledBxsd` assembly, the lint
//! checks, Algorithm 3 translation — starts from the same primitive:
//! "the (minimal) DFA of this regex over this alphabet". Before this
//! module each caller rebuilt those DFAs from scratch, per rule *per
//! check*. [`AutomataCache`] memoizes three levels:
//!
//! * **raw DFAs** — the untouched subset-construction output of
//!   [`regex_to_dfa`] (partial, unminimized). Budget-sensitive callers
//!   (the relevance-product probe) need exactly this automaton, state
//!   numbering included;
//! * **minimal DFAs** — [`minimize`] applied to the raw DFA. Since
//!   minimization is canonical (BFS-numbered output), the memoized
//!   automaton is byte-identical to a fresh computation;
//! * **relevance products** — [`RelevanceProduct::build`] over a rule
//!   list, keyed by the component regexes + budget, so the lint
//!   blow-up probe and a subsequent validation compile of the same
//!   schema share one construction (including a memoized `None` for
//!   budget overflow).
//!
//! ## Why structural hashing is sound
//!
//! Keys are regex ASTs compared by **full structural equality**
//! (`Regex: Eq`); the Fx hash is only a bucket index, so a collision
//! costs a comparison, never a wrong answer. Structurally equal
//! regexes over the same alphabet size denote the same language and
//! drive `regex_to_dfa` through the identical deterministic code path,
//! so the memoized automaton is exactly what recomputation would
//! return. The alphabet enters the key as its size: symbols are dense
//! indices, so `n_syms` plus the symbol ids embedded in the AST *is*
//! the alphabet fingerprint.
//!
//! Values are shared via [`Arc`], so a hit costs one reference-count
//! bump. Entries are never invalidated: a `Regex` is immutable and the
//! key captures every input of the construction, so an entry can go
//! stale only if the construction algorithms themselves change — within
//! one process lifetime the cache is append-only.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::dfa::Dfa;
use crate::fxhash::{FxHashMap, FxHasher};
use crate::ops::language::regex_to_dfa;
use crate::ops::minimize::minimize;
use crate::ops::relevance::RelevanceProduct;
use crate::regex::ast::Regex;

/// Bucket of DFA entries sharing a structural hash (almost always one).
type DfaBucket = Vec<(Regex, usize, Arc<Dfa>)>;

/// Bucket of product entries: (components, n_syms, budget, result).
type ProductBucket = Vec<(Vec<Regex>, usize, usize, Option<Arc<RelevanceProduct>>)>;

/// Hit/miss counters for one [`AutomataCache`] (every `*_dfa` /
/// `relevance_product` lookup counts once; a miss that internally
/// consults another level also counts that inner lookup).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that ran the underlying construction.
    pub misses: u64,
}

/// A structural-hash-keyed memo for automata construction.
///
/// Not thread-safe by design: compile pipelines are per-schema, and the
/// parallel analysis paths give each worker its own cache (values are
/// `Arc`, so results can still be shared outward cheaply).
#[derive(Debug, Default)]
pub struct AutomataCache {
    raw: FxHashMap<u64, DfaBucket>,
    min: FxHashMap<u64, DfaBucket>,
    product: FxHashMap<u64, ProductBucket>,
    stats: CacheStats,
}

/// Structural hash of a (regex, alphabet-size) key.
fn dfa_key_hash(r: &Regex, n_syms: usize) -> u64 {
    let mut h = FxHasher::default();
    r.hash(&mut h);
    h.write_usize(n_syms);
    h.finish()
}

impl AutomataCache {
    /// An empty cache.
    pub fn new() -> AutomataCache {
        AutomataCache::default()
    }

    /// The raw (partial, unminimized) DFA of `r` over `n_syms` symbols —
    /// memoized [`regex_to_dfa`], state numbering and all.
    pub fn raw_dfa(&mut self, r: &Regex, n_syms: usize) -> Arc<Dfa> {
        let key = dfa_key_hash(r, n_syms);
        if let Some(bucket) = self.raw.get(&key) {
            for (k, n, d) in bucket {
                if *n == n_syms && k == r {
                    self.stats.hits += 1;
                    return Arc::clone(d);
                }
            }
        }
        self.stats.misses += 1;
        let d = Arc::new(regex_to_dfa(r, n_syms));
        self.raw
            .entry(key)
            .or_default()
            .push((r.clone(), n_syms, Arc::clone(&d)));
        d
    }

    /// The minimal complete DFA of `r` over `n_syms` symbols — memoized
    /// [`minimize`] over [`Self::raw_dfa`]. Canonical minimization makes
    /// this byte-identical to an uncached computation.
    pub fn min_dfa(&mut self, r: &Regex, n_syms: usize) -> Arc<Dfa> {
        let key = dfa_key_hash(r, n_syms);
        if let Some(bucket) = self.min.get(&key) {
            for (k, n, d) in bucket {
                if *n == n_syms && k == r {
                    self.stats.hits += 1;
                    return Arc::clone(d);
                }
            }
        }
        self.stats.misses += 1;
        let raw = self.raw_dfa(r, n_syms);
        let d = Arc::new(minimize(&raw));
        self.min
            .entry(key)
            .or_default()
            .push((r.clone(), n_syms, Arc::clone(&d)));
        d
    }

    /// The relevance product over the raw DFAs of `ancestors`, memoized
    /// by (component list, alphabet size, budget). Budget overflow
    /// (`None`) is memoized too — reprobing a blown-up rule set is as
    /// cheap as a hit.
    pub fn relevance_product(
        &mut self,
        n_syms: usize,
        ancestors: &[Regex],
        budget: usize,
    ) -> Option<Arc<RelevanceProduct>> {
        let key = {
            let mut h = FxHasher::default();
            ancestors.hash(&mut h);
            h.write_usize(n_syms);
            h.write_usize(budget);
            h.finish()
        };
        if let Some(bucket) = self.product.get(&key) {
            for (ks, n, b, p) in bucket {
                if *n == n_syms && *b == budget && ks.as_slice() == ancestors {
                    self.stats.hits += 1;
                    return p.clone();
                }
            }
        }
        self.stats.misses += 1;
        let dfas: Vec<Arc<Dfa>> = ancestors.iter().map(|r| self.raw_dfa(r, n_syms)).collect();
        let refs: Vec<&Dfa> = dfas.iter().map(Arc::as_ref).collect();
        let p = RelevanceProduct::build_refs(n_syms, &refs, budget).map(Arc::new);
        self.product
            .entry(key)
            .or_default()
            .push((ancestors.to_vec(), n_syms, budget, p.clone()));
        p
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Sym;

    fn s(i: u32) -> Regex {
        Regex::Sym(Sym(i))
    }

    #[test]
    fn raw_hits_return_the_same_automaton() {
        let mut c = AutomataCache::new();
        let r = Regex::concat(vec![Regex::star(Regex::alt(vec![s(0), s(1)])), s(0)]);
        let d1 = c.raw_dfa(&r, 2);
        let d2 = c.raw_dfa(&r, 2);
        assert!(Arc::ptr_eq(&d1, &d2));
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1 });
        // Same regex over a different alphabet size is a distinct key.
        let d3 = c.raw_dfa(&r, 3);
        assert!(!Arc::ptr_eq(&d1, &d3));
        assert_eq!(d3.n_syms(), 3);
    }

    #[test]
    fn min_dfa_matches_uncached_minimize() {
        let mut c = AutomataCache::new();
        let r = Regex::star(Regex::alt(vec![
            Regex::concat(vec![s(0), s(1)]),
            Regex::concat(vec![s(0), s(1), s(0)]),
        ]));
        let cached = c.min_dfa(&r, 2);
        let fresh = minimize(&regex_to_dfa(&r, 2));
        assert_eq!(*cached, fresh);
        assert!(Arc::ptr_eq(&cached, &c.min_dfa(&r, 2)));
    }

    #[test]
    fn product_memoizes_including_overflow() {
        let mut c = AutomataCache::new();
        let rules = vec![Regex::plus(s(0)), Regex::concat(vec![s(0), s(0)])];
        let p1 = c.relevance_product(1, &rules, 1 << 10).expect("fits");
        let p2 = c.relevance_product(1, &rules, 1 << 10).expect("fits");
        assert!(Arc::ptr_eq(&p1, &p2));
        // Overflow (budget 0 is never enough for the 2-state seed) is
        // remembered under its own budget key.
        assert!(c.relevance_product(1, &rules, 1).is_none());
        let before = c.stats();
        assert!(c.relevance_product(1, &rules, 1).is_none());
        assert_eq!(c.stats().hits, before.hits + 1);
    }
}
