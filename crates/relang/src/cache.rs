//! Memoized automata construction keyed by regex structure.
//!
//! Every compile-time consumer — `CompiledBxsd` assembly, the lint
//! checks, Algorithm 3 translation — starts from the same primitive:
//! "the (minimal) DFA of this regex over this alphabet". Before this
//! module each caller rebuilt those DFAs from scratch, per rule *per
//! check*. [`AutomataCache`] memoizes four levels:
//!
//! * **raw DFAs** — the untouched subset-construction output of
//!   [`regex_to_dfa`] (partial, unminimized). Budget-sensitive callers
//!   (the relevance-product probe) need exactly this automaton, state
//!   numbering included;
//! * **minimal DFAs** — [`minimize`] applied to the raw DFA. Since
//!   minimization is canonical (BFS-numbered output), the memoized
//!   automaton is byte-identical to a fresh computation;
//! * **relevance products** — [`RelevanceProduct::build`] over a rule
//!   list, keyed by the component regexes + budget, so the lint
//!   blow-up probe and a subsequent validation compile of the same
//!   schema share one construction (including a memoized `None` for
//!   budget overflow);
//! * **compiled content matchers** — [`CompiledDre::compile`] output
//!   (content DFA, `xs:all` counter, or derivative fallback), so
//!   recompiling an edited schema rebuilds only the rules whose content
//!   model changed.
//!
//! ## Why structural hashing is sound
//!
//! Keys are regex ASTs compared by **full structural equality**
//! (`Regex: Eq`); the Fx hash is only a bucket index, so a collision
//! costs a comparison, never a wrong answer. Structurally equal
//! regexes over the same alphabet size denote the same language and
//! drive `regex_to_dfa` through the identical deterministic code path,
//! so the memoized automaton is exactly what recomputation would
//! return. The alphabet enters the key as its size: symbols are dense
//! indices, so `n_syms` plus the symbol ids embedded in the AST *is*
//! the alphabet fingerprint.
//!
//! Values are shared via [`Arc`], so a hit costs one reference-count
//! bump. Entries are never invalidated: a `Regex` is immutable and the
//! key captures every input of the construction, so an entry can go
//! stale only if the construction algorithms themselves change — within
//! one process lifetime the cache is append-only.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::dfa::Dfa;
use crate::fxhash::{FxHashMap, FxHasher};
use crate::matcher::CompiledDre;
use crate::ops::language::regex_to_dfa;
use crate::ops::minimize::minimize;
use crate::ops::relevance::RelevanceProduct;
use crate::regex::ast::Regex;

/// Bucket of DFA entries sharing a structural hash (almost always one).
type DfaBucket = Vec<(Regex, usize, Arc<Dfa>)>;

/// Bucket of product entries: (components, n_syms, budget, result).
type ProductBucket = Vec<(Vec<Regex>, usize, usize, Option<Arc<RelevanceProduct>>)>;

/// Bucket of compiled-content-matcher entries.
type DreBucket = Vec<(Regex, usize, Arc<CompiledDre>)>;

/// Hit/miss counters for one memo level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that ran the underlying construction.
    pub misses: u64,
}

impl StageStats {
    fn delta(self, before: StageStats) -> StageStats {
        StageStats {
            hits: self.hits - before.hits,
            misses: self.misses - before.misses,
        }
    }
}

/// Per-stage hit/miss counters for one [`AutomataCache`] (every lookup
/// counts once at its own level; a miss that internally consults
/// another level also counts that inner lookup).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// [`AutomataCache::raw_dfa`] lookups.
    pub raw: StageStats,
    /// [`AutomataCache::min_dfa`] lookups.
    pub min: StageStats,
    /// [`AutomataCache::relevance_product`] lookups.
    pub product: StageStats,
    /// [`AutomataCache::compiled_dre`] lookups.
    pub content: StageStats,
}

impl CacheStats {
    /// Total lookups answered from the memo, across all levels.
    pub fn hits(&self) -> u64 {
        self.raw.hits + self.min.hits + self.product.hits + self.content.hits
    }

    /// Total lookups that ran a construction, across all levels.
    pub fn misses(&self) -> u64 {
        self.raw.misses + self.min.misses + self.product.misses + self.content.misses
    }

    /// Accumulates `other` into `self` — for aggregating counters
    /// across many independent caches (per-schema, per-worker).
    pub fn add(&mut self, other: CacheStats) {
        self.raw.hits += other.raw.hits;
        self.raw.misses += other.raw.misses;
        self.min.hits += other.min.hits;
        self.min.misses += other.min.misses;
        self.product.hits += other.product.hits;
        self.product.misses += other.product.misses;
        self.content.hits += other.content.hits;
        self.content.misses += other.content.misses;
    }

    /// Counter increments between `before` (an earlier [`Self`]
    /// snapshot of the same cache) and this one.
    pub fn since(&self, before: CacheStats) -> CacheStats {
        CacheStats {
            raw: self.raw.delta(before.raw),
            min: self.min.delta(before.min),
            product: self.product.delta(before.product),
            content: self.content.delta(before.content),
        }
    }
}

/// A structural-hash-keyed memo for automata construction.
///
/// Not thread-safe by design: compile pipelines are per-schema, and the
/// parallel analysis paths give each worker its own cache (values are
/// `Arc`, so results can still be shared outward cheaply).
#[derive(Debug, Default)]
pub struct AutomataCache {
    raw: FxHashMap<u64, DfaBucket>,
    min: FxHashMap<u64, DfaBucket>,
    product: FxHashMap<u64, ProductBucket>,
    content: FxHashMap<u64, DreBucket>,
    stats: CacheStats,
}

/// Structural hash of a (regex, alphabet-size) key.
fn dfa_key_hash(r: &Regex, n_syms: usize) -> u64 {
    let mut h = FxHasher::default();
    r.hash(&mut h);
    h.write_usize(n_syms);
    h.finish()
}

impl AutomataCache {
    /// An empty cache.
    pub fn new() -> AutomataCache {
        AutomataCache::default()
    }

    /// The raw (partial, unminimized) DFA of `r` over `n_syms` symbols —
    /// memoized [`regex_to_dfa`], state numbering and all.
    pub fn raw_dfa(&mut self, r: &Regex, n_syms: usize) -> Arc<Dfa> {
        let key = dfa_key_hash(r, n_syms);
        if let Some(bucket) = self.raw.get(&key) {
            for (k, n, d) in bucket {
                if *n == n_syms && k == r {
                    self.stats.raw.hits += 1;
                    return Arc::clone(d);
                }
            }
        }
        self.stats.raw.misses += 1;
        let d = Arc::new(regex_to_dfa(r, n_syms));
        self.raw
            .entry(key)
            .or_default()
            .push((r.clone(), n_syms, Arc::clone(&d)));
        d
    }

    /// The minimal complete DFA of `r` over `n_syms` symbols — memoized
    /// [`minimize`] over [`Self::raw_dfa`]. Canonical minimization makes
    /// this byte-identical to an uncached computation.
    pub fn min_dfa(&mut self, r: &Regex, n_syms: usize) -> Arc<Dfa> {
        let key = dfa_key_hash(r, n_syms);
        if let Some(bucket) = self.min.get(&key) {
            for (k, n, d) in bucket {
                if *n == n_syms && k == r {
                    self.stats.min.hits += 1;
                    return Arc::clone(d);
                }
            }
        }
        self.stats.min.misses += 1;
        let raw = self.raw_dfa(r, n_syms);
        let d = Arc::new(minimize(&raw));
        self.min
            .entry(key)
            .or_default()
            .push((r.clone(), n_syms, Arc::clone(&d)));
        d
    }

    /// The relevance product over the raw DFAs of `ancestors`, memoized
    /// by (component list, alphabet size, budget). Budget overflow
    /// (`None`) is memoized too — reprobing a blown-up rule set is as
    /// cheap as a hit.
    pub fn relevance_product(
        &mut self,
        n_syms: usize,
        ancestors: &[Regex],
        budget: usize,
    ) -> Option<Arc<RelevanceProduct>> {
        let key = {
            let mut h = FxHasher::default();
            ancestors.hash(&mut h);
            h.write_usize(n_syms);
            h.write_usize(budget);
            h.finish()
        };
        if let Some(bucket) = self.product.get(&key) {
            for (ks, n, b, p) in bucket {
                if *n == n_syms && *b == budget && ks.as_slice() == ancestors {
                    self.stats.product.hits += 1;
                    return p.clone();
                }
            }
        }
        self.stats.product.misses += 1;
        let dfas: Vec<Arc<Dfa>> = ancestors.iter().map(|r| self.raw_dfa(r, n_syms)).collect();
        let refs: Vec<&Dfa> = dfas.iter().map(Arc::as_ref).collect();
        let p = RelevanceProduct::build_refs(n_syms, &refs, budget).map(Arc::new);
        self.product
            .entry(key)
            .or_default()
            .push((ancestors.to_vec(), n_syms, budget, p.clone()));
        p
    }

    /// The compiled content matcher of `r` over `n_syms` symbols —
    /// memoized [`CompiledDre::compile`]. Compilation is deterministic
    /// in `(r, n_syms)`, so the memoized matcher behaves identically to
    /// a fresh one; recompiling an edited schema through the same cache
    /// rebuilds only the rules whose content model actually changed.
    pub fn compiled_dre(&mut self, r: &Regex, n_syms: usize) -> Arc<CompiledDre> {
        let key = dfa_key_hash(r, n_syms);
        if let Some(bucket) = self.content.get(&key) {
            for (k, n, m) in bucket {
                if *n == n_syms && k == r {
                    self.stats.content.hits += 1;
                    return Arc::clone(m);
                }
            }
        }
        self.stats.content.misses += 1;
        let m = Arc::new(CompiledDre::compile(r, n_syms));
        self.content
            .entry(key)
            .or_default()
            .push((r.clone(), n_syms, Arc::clone(&m)));
        m
    }

    /// Per-stage hit/miss counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Sym;

    fn s(i: u32) -> Regex {
        Regex::Sym(Sym(i))
    }

    #[test]
    fn raw_hits_return_the_same_automaton() {
        let mut c = AutomataCache::new();
        let r = Regex::concat(vec![Regex::star(Regex::alt(vec![s(0), s(1)])), s(0)]);
        let d1 = c.raw_dfa(&r, 2);
        let d2 = c.raw_dfa(&r, 2);
        assert!(Arc::ptr_eq(&d1, &d2));
        assert_eq!(c.stats().raw, StageStats { hits: 1, misses: 1 });
        // Same regex over a different alphabet size is a distinct key.
        let d3 = c.raw_dfa(&r, 3);
        assert!(!Arc::ptr_eq(&d1, &d3));
        assert_eq!(d3.n_syms(), 3);
    }

    #[test]
    fn min_dfa_matches_uncached_minimize() {
        let mut c = AutomataCache::new();
        let r = Regex::star(Regex::alt(vec![
            Regex::concat(vec![s(0), s(1)]),
            Regex::concat(vec![s(0), s(1), s(0)]),
        ]));
        let cached = c.min_dfa(&r, 2);
        let fresh = minimize(&regex_to_dfa(&r, 2));
        assert_eq!(*cached, fresh);
        assert!(Arc::ptr_eq(&cached, &c.min_dfa(&r, 2)));
    }

    #[test]
    fn product_memoizes_including_overflow() {
        let mut c = AutomataCache::new();
        let rules = vec![Regex::plus(s(0)), Regex::concat(vec![s(0), s(0)])];
        let p1 = c.relevance_product(1, &rules, 1 << 10).expect("fits");
        let p2 = c.relevance_product(1, &rules, 1 << 10).expect("fits");
        assert!(Arc::ptr_eq(&p1, &p2));
        // Overflow (budget 0 is never enough for the 2-state seed) is
        // remembered under its own budget key.
        assert!(c.relevance_product(1, &rules, 1).is_none());
        let before = c.stats();
        assert!(c.relevance_product(1, &rules, 1).is_none());
        assert_eq!(c.stats().since(before).product.hits, 1);
    }

    #[test]
    fn compiled_dre_memoizes() {
        let mut c = AutomataCache::new();
        let r = Regex::star(Regex::concat(vec![s(0), s(1)]));
        let m1 = c.compiled_dre(&r, 2);
        let m2 = c.compiled_dre(&r, 2);
        assert!(Arc::ptr_eq(&m1, &m2));
        assert_eq!(c.stats().content, StageStats { hits: 1, misses: 1 });
        assert_eq!(m1.first_error(&[Sym(0), Sym(1)]), None);
        assert_eq!(m1.first_error(&[Sym(1)]), Some(0));
    }
}
