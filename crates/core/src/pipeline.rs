//! End-to-end pipelines: BonXai text ⇄ XSD text.
//!
//! This is BonXai's headline feature — "a practical front-end for XML
//! Schema": schemas written in the compact syntax are compiled to real
//! `<xs:schema>` documents and back, via the formal translations of
//! Section 4.2 (taking the k-suffix fast paths of Section 4.4 whenever
//! they apply).
//!
//! For workloads that compile *evolving* schemas repeatedly — a watch
//! loop, the registry's hot reload, the schema-diff explorer —
//! [`SchemaCompiler`] keeps one structural-hash [`AutomataCache`]
//! across compiles, so recompiling an edited schema rebuilds only the
//! rules the edit touched and reports per-stage reuse counters.

use std::fmt;

use relang::cache::{AutomataCache, CacheStats};
use xsd::Xsd;

use crate::bxsd::Bxsd;
use crate::schema::BonxaiSchema;
use crate::translate::{self, Path, TranslateOptions};
use crate::validate::{CompiledBxsd, DEFAULT_PRODUCT_BUDGET};

/// An error anywhere along a pipeline.
#[derive(Clone, Debug)]
pub enum PipelineError {
    /// BonXai syntax or lowering error.
    Bonxai(crate::lang::LangError),
    /// XSD syntax or model error.
    Xsd(xsd::syntax::SyntaxError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Bonxai(e) => write!(f, "BonXai: {e}"),
            PipelineError::Xsd(e) => write!(f, "XSD: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<crate::lang::LangError> for PipelineError {
    fn from(e: crate::lang::LangError) -> Self {
        PipelineError::Bonxai(e)
    }
}

impl From<xsd::syntax::SyntaxError> for PipelineError {
    fn from(e: xsd::syntax::SyntaxError) -> Self {
        PipelineError::Xsd(e)
    }
}

/// The result of an end-to-end translation, with provenance.
#[derive(Clone, Debug)]
pub struct Translated<T> {
    /// The produced schema / text.
    pub output: T,
    /// Which algorithm path was taken.
    pub path: Path,
}

/// Compiles a BonXai schema (compact syntax) to XSD XML text.
pub fn bonxai_to_xsd_text(
    source: &str,
    opts: &TranslateOptions,
) -> Result<Translated<String>, PipelineError> {
    let schema = BonxaiSchema::parse(source)?;
    let (xsd, path) = bonxai_to_xsd(&schema, opts);
    let text = xsd::emit_xsd(&xsd, schema.ast.target_namespace.as_deref())?;
    Ok(Translated { output: text, path })
}

/// Compiles a BonXai schema object to a core XSD.
pub fn bonxai_to_xsd(schema: &BonxaiSchema, opts: &TranslateOptions) -> (Xsd, Path) {
    translate::bxsd_to_xsd(&schema.bxsd, opts)
}

/// Translates XSD XML text into BonXai compact syntax.
pub fn xsd_to_bonxai_text(
    source: &str,
    opts: &TranslateOptions,
) -> Result<Translated<String>, PipelineError> {
    let xsd = xsd::parse_xsd(source)?;
    let (schema, path) = xsd_to_bonxai(&xsd, opts);
    Ok(Translated {
        output: schema.to_source(),
        path,
    })
}

/// Translates a core XSD into a BonXai schema object.
pub fn xsd_to_bonxai(xsd: &Xsd, opts: &TranslateOptions) -> (BonxaiSchema, Path) {
    let (bxsd, path) = translate::xsd_to_bxsd(xsd, opts);
    (BonxaiSchema::from_bxsd(bxsd), path)
}

/// A compile session that survives schema versions: every compile runs
/// through one shared [`AutomataCache`], so ancestor DFAs, relevance
/// products, and compiled content matchers of *unchanged* rules are
/// reused when an edited schema is recompiled, and the per-stage
/// [`CacheStats`] deltas make the reuse measurable.
///
/// ```
/// use bonxai_core::pipeline::SchemaCompiler;
/// use bonxai_core::BonxaiSchema;
/// let v1 = BonxaiSchema::parse("global { a } grammar { a = { } }").unwrap();
/// let v2 = BonxaiSchema::parse("global { a } grammar { a = mixed { } }").unwrap();
/// let mut session = SchemaCompiler::new();
/// let _ = session.compile(&v1.bxsd);
/// let _ = session.compile(&v2.bxsd); // ancestor machinery is reused
/// assert!(session.last_stats().hits() > 0);
/// ```
#[derive(Debug, Default)]
pub struct SchemaCompiler {
    cache: AutomataCache,
    budget: usize,
    last: CacheStats,
}

impl SchemaCompiler {
    /// A fresh session with the default relevance-product budget.
    pub fn new() -> SchemaCompiler {
        Self::with_budget(DEFAULT_PRODUCT_BUDGET)
    }

    /// A fresh session with an explicit relevance-product budget
    /// (0 = always lock-step), see [`CompiledBxsd::with_budget`].
    pub fn with_budget(budget: usize) -> SchemaCompiler {
        SchemaCompiler {
            cache: AutomataCache::new(),
            budget,
            last: CacheStats::default(),
        }
    }

    /// Compiles `bxsd` through the session cache. The validator is
    /// identical to [`CompiledBxsd::new`]'s; only construction work is
    /// shared across versions.
    pub fn compile<'a>(&mut self, bxsd: &'a Bxsd) -> CompiledBxsd<'a> {
        let before = self.cache.stats();
        let compiled = CompiledBxsd::with_cache(bxsd, self.budget, &mut self.cache);
        self.last = self.cache.stats().since(before);
        compiled
    }

    /// Per-stage hit/miss counters of the most recent
    /// [`Self::compile`] only (hits = constructions reused from an
    /// earlier version).
    pub fn last_stats(&self) -> CacheStats {
        self.last
    }

    /// Cumulative per-stage counters across the whole session.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The underlying cache, for callers composing with other memoized
    /// passes (lint, diff).
    pub fn cache_mut(&mut self) -> &mut AutomataCache {
        &mut self.cache
    }
}

/// Translates a BXSD into a BonXai schema and back to a BXSD through the
/// surface syntax (used by round-trip tests; exposed for tools).
pub fn bxsd_surface_roundtrip(bxsd: &Bxsd) -> Result<Bxsd, PipelineError> {
    let schema = BonxaiSchema::from_bxsd(bxsd.clone());
    let source = schema.to_source();
    Ok(BonxaiSchema::parse(&source)?.bxsd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::parse_document;

    const BONXAI: &str = r#"
        target namespace http://example.org/doc
        global { document }
        grammar {
          document = { element template, element content }
          template = { (element section)? }
          content = { (element section)* }
          section = mixed { attribute title, (element section)* }
          template/section = { (element section)? }
          @title = { type xs:string }
        }
    "#;

    fn docs() -> Vec<xmltree::Document> {
        [
            r#"<document><template><section/></template>
               <content><section title="A">x<section title="B"/></section></content></document>"#,
            r#"<document><template><section title="no"/></template><content/></document>"#,
            r#"<document><content/><template/></document>"#,
            r#"<document><template/><content><section/></content></document>"#,
        ]
        .iter()
        .map(|s| parse_document(s).unwrap())
        .collect()
    }

    #[test]
    fn bonxai_to_xsd_and_back_preserves_language() {
        let opts = TranslateOptions::default();
        let schema = BonxaiSchema::parse(BONXAI).unwrap();
        let xsd_text = bonxai_to_xsd_text(BONXAI, &opts).unwrap();
        assert!(xsd_text.output.contains("xs:schema"));
        assert!(xsd_text
            .output
            .contains("targetNamespace=\"http://example.org/doc\""));

        let xsd = xsd::parse_xsd(&xsd_text.output).unwrap();
        let back = xsd_to_bonxai_text(&xsd_text.output, &opts).unwrap();
        let back_schema = BonxaiSchema::parse(&back.output).unwrap();

        for doc in &docs() {
            let expected = schema.is_valid(doc);
            assert_eq!(
                xsd::is_valid(&xsd, doc),
                expected,
                "{}",
                xmltree::to_string(doc)
            );
            assert_eq!(
                back_schema.is_valid(doc),
                expected,
                "{}",
                xmltree::to_string(doc)
            );
        }
    }

    #[test]
    fn fast_path_is_taken_for_suffix_schemas() {
        let opts = TranslateOptions::default();
        let t = bonxai_to_xsd_text(BONXAI, &opts).unwrap();
        assert!(matches!(t.path, Path::Fast(k) if k <= 2), "{:?}", t.path);
    }

    #[test]
    fn recompile_of_identical_schema_is_all_hits() {
        let schema = BonxaiSchema::parse(BONXAI).unwrap();
        let mut session = SchemaCompiler::new();
        let _ = session.compile(&schema.bxsd);
        let cold = session.last_stats();
        assert!(cold.misses() > 0, "cold compile built something");
        let _ = session.compile(&schema.bxsd);
        let again = session.last_stats();
        assert_eq!(
            again.misses(),
            0,
            "warm compile rebuilt something: {again:?}"
        );
        assert!(again.hits() > 0);
        assert_eq!(again.content.misses, 0);
        assert_eq!(again.product.misses, 0);
    }

    #[test]
    fn recompile_of_edited_schema_reuses_untouched_rules() {
        let v1 = BonxaiSchema::parse(BONXAI).unwrap();
        // Same schema with one content model edited (template now needs
        // at least one section): only that rule's machinery rebuilds.
        let v2 = BonxaiSchema::parse(&BONXAI.replace(
            "template = { (element section)? }",
            "template = { (element section)+ }",
        ))
        .unwrap();
        let mut session = SchemaCompiler::new();
        let _ = session.compile(&v1.bxsd);
        let cold = session.last_stats();
        let _ = session.compile(&v2.bxsd);
        let warm = session.last_stats();
        assert!(
            warm.hits() > warm.misses(),
            "edited recompile should mostly reuse: {warm:?} after {cold:?}"
        );
        // The one edited content model (and the changed ancestor set's
        // product) is rebuilt, nothing more at the content level.
        assert_eq!(warm.content.misses, 1, "{warm:?}");
        let compiled = session.compile(&v2.bxsd);
        assert_eq!(session.last_stats().misses(), 0);
        // The session-compiled validator behaves like a fresh one.
        for doc in &docs() {
            assert_eq!(
                compiled.validate(doc).is_valid(),
                crate::validate::is_valid(&v2.bxsd, doc)
            );
        }
    }

    #[test]
    fn surface_roundtrip_preserves_language() {
        let schema = BonxaiSchema::parse(BONXAI).unwrap();
        let back = bxsd_surface_roundtrip(&schema.bxsd).unwrap();
        for doc in &docs() {
            assert_eq!(
                crate::validate::is_valid(&schema.bxsd, doc),
                crate::validate::is_valid(&back, doc)
            );
        }
    }
}
