//! End-to-end pipelines: BonXai text ⇄ XSD text.
//!
//! This is BonXai's headline feature — "a practical front-end for XML
//! Schema": schemas written in the compact syntax are compiled to real
//! `<xs:schema>` documents and back, via the formal translations of
//! Section 4.2 (taking the k-suffix fast paths of Section 4.4 whenever
//! they apply).

use std::fmt;

use xsd::Xsd;

use crate::bxsd::Bxsd;
use crate::schema::BonxaiSchema;
use crate::translate::{self, Path, TranslateOptions};

/// An error anywhere along a pipeline.
#[derive(Clone, Debug)]
pub enum PipelineError {
    /// BonXai syntax or lowering error.
    Bonxai(crate::lang::LangError),
    /// XSD syntax or model error.
    Xsd(xsd::syntax::SyntaxError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Bonxai(e) => write!(f, "BonXai: {e}"),
            PipelineError::Xsd(e) => write!(f, "XSD: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<crate::lang::LangError> for PipelineError {
    fn from(e: crate::lang::LangError) -> Self {
        PipelineError::Bonxai(e)
    }
}

impl From<xsd::syntax::SyntaxError> for PipelineError {
    fn from(e: xsd::syntax::SyntaxError) -> Self {
        PipelineError::Xsd(e)
    }
}

/// The result of an end-to-end translation, with provenance.
#[derive(Clone, Debug)]
pub struct Translated<T> {
    /// The produced schema / text.
    pub output: T,
    /// Which algorithm path was taken.
    pub path: Path,
}

/// Compiles a BonXai schema (compact syntax) to XSD XML text.
pub fn bonxai_to_xsd_text(
    source: &str,
    opts: &TranslateOptions,
) -> Result<Translated<String>, PipelineError> {
    let schema = BonxaiSchema::parse(source)?;
    let (xsd, path) = bonxai_to_xsd(&schema, opts);
    let text = xsd::emit_xsd(&xsd, schema.ast.target_namespace.as_deref())?;
    Ok(Translated { output: text, path })
}

/// Compiles a BonXai schema object to a core XSD.
pub fn bonxai_to_xsd(schema: &BonxaiSchema, opts: &TranslateOptions) -> (Xsd, Path) {
    translate::bxsd_to_xsd(&schema.bxsd, opts)
}

/// Translates XSD XML text into BonXai compact syntax.
pub fn xsd_to_bonxai_text(
    source: &str,
    opts: &TranslateOptions,
) -> Result<Translated<String>, PipelineError> {
    let xsd = xsd::parse_xsd(source)?;
    let (schema, path) = xsd_to_bonxai(&xsd, opts);
    Ok(Translated {
        output: schema.to_source(),
        path,
    })
}

/// Translates a core XSD into a BonXai schema object.
pub fn xsd_to_bonxai(xsd: &Xsd, opts: &TranslateOptions) -> (BonxaiSchema, Path) {
    let (bxsd, path) = translate::xsd_to_bxsd(xsd, opts);
    (BonxaiSchema::from_bxsd(bxsd), path)
}

/// Translates a BXSD into a BonXai schema and back to a BXSD through the
/// surface syntax (used by round-trip tests; exposed for tools).
pub fn bxsd_surface_roundtrip(bxsd: &Bxsd) -> Result<Bxsd, PipelineError> {
    let schema = BonxaiSchema::from_bxsd(bxsd.clone());
    let source = schema.to_source();
    Ok(BonxaiSchema::parse(&source)?.bxsd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::parse_document;

    const BONXAI: &str = r#"
        target namespace http://example.org/doc
        global { document }
        grammar {
          document = { element template, element content }
          template = { (element section)? }
          content = { (element section)* }
          section = mixed { attribute title, (element section)* }
          template/section = { (element section)? }
          @title = { type xs:string }
        }
    "#;

    fn docs() -> Vec<xmltree::Document> {
        [
            r#"<document><template><section/></template>
               <content><section title="A">x<section title="B"/></section></content></document>"#,
            r#"<document><template><section title="no"/></template><content/></document>"#,
            r#"<document><content/><template/></document>"#,
            r#"<document><template/><content><section/></content></document>"#,
        ]
        .iter()
        .map(|s| parse_document(s).unwrap())
        .collect()
    }

    #[test]
    fn bonxai_to_xsd_and_back_preserves_language() {
        let opts = TranslateOptions::default();
        let schema = BonxaiSchema::parse(BONXAI).unwrap();
        let xsd_text = bonxai_to_xsd_text(BONXAI, &opts).unwrap();
        assert!(xsd_text.output.contains("xs:schema"));
        assert!(xsd_text
            .output
            .contains("targetNamespace=\"http://example.org/doc\""));

        let xsd = xsd::parse_xsd(&xsd_text.output).unwrap();
        let back = xsd_to_bonxai_text(&xsd_text.output, &opts).unwrap();
        let back_schema = BonxaiSchema::parse(&back.output).unwrap();

        for doc in &docs() {
            let expected = schema.is_valid(doc);
            assert_eq!(
                xsd::is_valid(&xsd, doc),
                expected,
                "{}",
                xmltree::to_string(doc)
            );
            assert_eq!(
                back_schema.is_valid(doc),
                expected,
                "{}",
                xmltree::to_string(doc)
            );
        }
    }

    #[test]
    fn fast_path_is_taken_for_suffix_schemas() {
        let opts = TranslateOptions::default();
        let t = bonxai_to_xsd_text(BONXAI, &opts).unwrap();
        assert!(matches!(t.path, Path::Fast(k) if k <= 2), "{:?}", t.path);
    }

    #[test]
    fn surface_roundtrip_preserves_language() {
        let schema = BonxaiSchema::parse(BONXAI).unwrap();
        let back = bxsd_surface_roundtrip(&schema.bxsd).unwrap();
        for doc in &docs() {
            assert_eq!(
                crate::validate::is_valid(&schema.bxsd, doc),
                crate::validate::is_valid(&back, doc)
            );
        }
    }
}
