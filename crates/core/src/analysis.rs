//! Whole-schema decision procedures: satisfiability, inclusion, and
//! equivalence — with witness *documents*.
//!
//! The lint pass (BX001/BX002) decides properties of single rules; this
//! module decides properties of whole schemas:
//!
//! * [`analyze_sat`] — does *any* document conform to a schema? Which
//!   rules are reachable but admit no finite conforming subtree in any
//!   context ("unsatisfiable in context", surfaced as lint BX010)?
//! * [`diff_bxsd`] — do two schemas accept the same document set? If
//!   not, in which direction do they differ, and on which documents?
//!
//! Both questions reduce to a search over **ancestor contexts**: tuples
//! of per-rule ancestor-DFA states, explored exactly the way a document
//! grows (the child alphabet at each context is what the relevant rule's
//! content model allows — Definition 1's priority semantics). On top of
//! that context space sits a *completability* fixpoint in the style of a
//! least-fixed-point emptiness test for tree automata: a context is
//! completable when its rule's local constraints (text, required
//! attributes) are satisfiable and its content model accepts some word
//! over completable child contexts. The fixpoint round of each context
//! bounds the height of its minimal conforming subtree, which makes
//! witness synthesis terminating and canonical.
//!
//! For the two-schema diff, both schemas are remapped onto one shared
//! alphabet and the *joint* context space (pairs of per-schema contexts)
//! is explored along symbols both schemas can realize. At every joint
//! context the two selected content models are compared on three
//! channels — child sequences ([`difference_witness_dfa`], restricted to
//! subtrees the first schema can complete), text value spaces
//! ([`value_space_witness`] probes), and attribute declarations — and
//! every difference found is *lifted* into a complete minimal XML
//! document, synthesized top-down through the ancestor DFAs, that is
//! then **verified** to validate against exactly one of the two input
//! schemas before it is reported. Structural channels are exact;
//! value-space channels are probe-based (a deterministic candidate
//! family covering enumerations, numeric/lexicographic bounds and their
//! off-by-one boundaries, and length facets), so a `different` verdict
//! is always sound while an `equivalent` verdict is exact up to those
//! probes.
//!
//! All automata constructions thread an optional [`AutomataCache`], and
//! the per-context comparisons run on [`map_indexed`] with
//! deterministic, path-ordered output: reports are byte-identical for
//! every worker count.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use relang::cache::AutomataCache;
use relang::ops::language::{difference_witness_dfa, regex_to_dfa};
use relang::ops::minimize;
use relang::ops::product::product2;
use relang::ops::subset::SubsetInterner;
use relang::{Alphabet, Dfa, Regex, Sym};
use xmltree::Document;
use xsd::simple_types::{admits, canonical_value, value_space_witness, Facets};
use xsd::{AttributeUse, ContentModel, SimpleType};

use crate::batch::map_indexed;
use crate::bxsd::{Bxsd, Rule};
use crate::validate::{CompiledBxsd, ValidateOptions};

/// Sentinel for "no context": a child symbol the exploration never took.
const NO_CTX: u32 = u32::MAX;

/// Tuning knobs for the whole-schema analyses.
#[derive(Clone, Debug)]
pub struct AnalysisOptions {
    /// State budget for each schema's ancestor-context space (tuples of
    /// per-rule ancestor-DFA states). Mirrors the lint reachability
    /// budget.
    pub ctx_budget: usize,
    /// State budget for the joint (pairs-of-contexts) exploration of
    /// [`diff_bxsd`].
    pub pair_budget: usize,
    /// Worker count for the per-context comparisons (`<= 1` runs inline
    /// on the calling thread). Output is identical for every value.
    pub jobs: usize,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            ctx_budget: 1 << 16,
            pair_budget: 1 << 16,
            jobs: 1,
        }
    }
}

/// An analysis that could not run to completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// A state budget was exceeded; the result would not be trustworthy.
    Budget {
        /// Which exploration blew up (`"context"` or `"pair"`).
        what: &'static str,
        /// The budget that was exceeded.
        budget: usize,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Budget { what, budget } => write!(
                f,
                "analysis exceeded its {what}-space budget of {budget} states"
            ),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Which input schema a witness document is valid against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Valid against the first schema, invalid against the second.
    OnlyInA,
    /// Valid against the second schema, invalid against the first.
    OnlyInB,
}

impl Direction {
    /// Stable label used by both CLI renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::OnlyInA => "only-in-a",
            Direction::OnlyInB => "only-in-b",
        }
    }
}

/// The difference channel a witness came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WitnessKind {
    /// A root element name allowed by one schema only.
    Root,
    /// A child sequence accepted by one content model only.
    Children,
    /// A text value accepted by one content model only.
    Text,
    /// An attribute requirement / declaration / value-space difference.
    Attribute,
}

impl WitnessKind {
    /// Stable label used by both CLI renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            WitnessKind::Root => "root",
            WitnessKind::Children => "children",
            WitnessKind::Text => "text",
            WitnessKind::Attribute => "attribute",
        }
    }
}

/// One verified difference between two schemas: a complete document
/// that validates against exactly one of them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// Which schema accepts [`Witness::document`].
    pub direction: Direction,
    /// Ancestor path (element names, root first) of the node where the
    /// difference manifests.
    pub path: Vec<String>,
    /// The difference channel.
    pub kind: WitnessKind,
    /// Human-readable explanation of the difference.
    pub message: String,
    /// The serialized witness document.
    pub document: String,
}

impl Witness {
    /// The ancestor path rendered as `/a/b/c`.
    pub fn path_display(&self) -> String {
        format!("/{}", self.path.join("/"))
    }
}

/// Evolution classification of a schema change from A (old) to B (new).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Evolution {
    /// Both schemas accept exactly the same documents.
    Equivalent,
    /// Every A-valid document is still B-valid (B only widens): `A ⊆ B`.
    BackwardCompatible,
    /// Every B-valid document was already A-valid (B only narrows):
    /// `B ⊆ A`.
    ForwardCompatible,
    /// Each schema accepts documents the other rejects.
    Incomparable,
}

impl Evolution {
    /// Stable label used by both CLI renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            Evolution::Equivalent => "equivalent",
            Evolution::BackwardCompatible => "backward_compatible",
            Evolution::ForwardCompatible => "forward_compatible",
            Evolution::Incomparable => "incomparable",
        }
    }
}

/// Size and cache counters for one [`diff_bxsd`] run. The `*_us` stage
/// timings are wall-clock and excluded from the CLI report formats,
/// which must stay byte-stable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiffStats {
    /// Ancestor contexts explored for the first schema.
    pub contexts_a: usize,
    /// Ancestor contexts explored for the second schema.
    pub contexts_b: usize,
    /// Joint context pairs compared (both directions).
    pub pairs: usize,
    /// Witness candidates that failed cross-validation and were dropped
    /// (probe artifacts); nonzero values are surfaced, never hidden.
    pub dropped: usize,
    /// Automata-cache hits during this run (0 without a cache).
    pub cache_hits: u64,
    /// Automata-cache misses during this run (0 without a cache).
    pub cache_misses: u64,
    /// Wall-clock µs building the two context spaces (bench only).
    pub build_us: u64,
    /// Wall-clock µs exploring the joint pair spaces (bench only).
    pub explore_us: u64,
    /// Wall-clock µs comparing pairs and lifting witnesses (bench only).
    pub compare_us: u64,
}

/// The outcome of comparing two schemas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffReport {
    /// Evolution classification (first schema = old, second = new).
    pub evolution: Evolution,
    /// Number of verified witnesses valid only in the first schema.
    pub a_only: usize,
    /// Number of verified witnesses valid only in the second schema.
    pub b_only: usize,
    /// All verified witnesses: first-schema-only ones first, each
    /// direction in canonical (shortest path, then channel) order.
    pub witnesses: Vec<Witness>,
    /// Size and timing counters.
    pub stats: DiffStats,
}

impl DiffReport {
    /// Whether the two schemas were found equivalent.
    pub fn equivalent(&self) -> bool {
        self.evolution == Evolution::Equivalent
    }
}

/// A rule that is reachable but admits no finite conforming subtree at
/// some realizable context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsatRule {
    /// Rule index in the BXSD's ordered rule list.
    pub rule: usize,
    /// The shortest ancestor path (element names, root first) of a
    /// context where the rule is relevant but uncompletable.
    pub path: Vec<String>,
}

/// The outcome of a satisfiability analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SatReport {
    /// Whether any document conforms to the schema.
    pub satisfiable: bool,
    /// A minimal conforming document, when one exists.
    pub witness: Option<String>,
    /// Rules that are reachable but vacuous in context (lint BX010).
    pub unsat_rules: Vec<UnsatRule>,
    /// Ancestor contexts explored.
    pub contexts: usize,
}

// ---------------------------------------------------------------------
// Cache plumbing
// ---------------------------------------------------------------------

/// Automata construction through an optional shared [`AutomataCache`] —
/// the same dispatch the lint checks use.
struct Automata<'a> {
    cache: Option<&'a mut AutomataCache>,
}

impl Automata<'_> {
    fn raw_dfa(&mut self, r: &Regex, n_syms: usize) -> Arc<Dfa> {
        match self.cache.as_deref_mut() {
            Some(c) => c.raw_dfa(r, n_syms),
            None => Arc::new(regex_to_dfa(r, n_syms)),
        }
    }

    fn min_dfa(&mut self, r: &Regex, n_syms: usize) -> Arc<Dfa> {
        match self.cache.as_deref_mut() {
            Some(c) => c.min_dfa(r, n_syms),
            None => Arc::new(minimize(&regex_to_dfa(r, n_syms))),
        }
    }
}

// ---------------------------------------------------------------------
// Node semantics: what a rule's content model means for one node
// ---------------------------------------------------------------------

/// The text constraint a relevant rule places on a node, mirroring the
/// validator exactly (`check_node` / `check_simple_text`).
#[derive(Clone, Debug)]
enum TextSpec {
    /// Any text (mixed or open content, or an unconstrained node).
    Any,
    /// No significant text (element-only content).
    Forbidden,
    /// The trimmed concatenated text must inhabit this value space.
    Typed(SimpleType, Facets),
}

/// The attribute constraint: open models skip attribute checking
/// entirely, closed models enforce their (name-sorted) declarations.
#[derive(Clone, Debug)]
enum AttrSpec {
    Open,
    Closed(Vec<AttributeUse>),
}

/// Per-rule analysis data: children language, node-local constraints,
/// and the child alphabet to explore.
struct RuleInfo {
    /// Complete DFA of the children language over the shared alphabet.
    children: Arc<Dfa>,
    /// Sorted child symbols the exploration follows from this rule.
    child_syms: Vec<Sym>,
    text: TextSpec,
    attrs: AttrSpec,
    /// Whether text + required attributes are locally satisfiable.
    local_ok: bool,
}

fn text_spec(content: &ContentModel) -> TextSpec {
    if let Some(st) = content.simple_content {
        TextSpec::Typed(st, content.simple_facets.clone())
    } else if content.mixed || content.open {
        TextSpec::Any
    } else {
        TextSpec::Forbidden
    }
}

fn rule_info(rule: &Rule, n_syms: usize, auto: &mut Automata) -> RuleInfo {
    let content = &rule.content;
    let children = if content.simple_content.is_some() {
        // Simple content admits no element children at all.
        Arc::new(complete_clone(&regex_to_dfa(&Regex::Epsilon, n_syms)))
    } else {
        Arc::new(complete_clone(&auto.raw_dfa(&content.regex, n_syms)))
    };
    let child_syms: Vec<Sym> = if content.simple_content.is_some() {
        Vec::new()
    } else {
        let set: BTreeSet<Sym> = content.regex.symbols().into_iter().collect();
        set.into_iter().collect()
    };
    let text = text_spec(content);
    let attrs = if content.open {
        AttrSpec::Open
    } else {
        AttrSpec::Closed(content.attributes.clone())
    };
    let local_ok = local_ok(&text, &attrs);
    RuleInfo {
        children,
        child_syms,
        text,
        attrs,
        local_ok,
    }
}

/// Whether a node can satisfy the rule's text and required-attribute
/// constraints at all.
fn local_ok(text: &TextSpec, attrs: &AttrSpec) -> bool {
    let text_ok = match text {
        TextSpec::Typed(st, f) => canonical_value(*st, f).is_some(),
        _ => true,
    };
    let attrs_ok = match attrs {
        AttrSpec::Open => true,
        AttrSpec::Closed(list) => list
            .iter()
            .filter(|a| a.required)
            .all(|a| canonical_value(a.simple_type, &a.facets).is_some()),
    };
    text_ok && attrs_ok
}

fn complete_clone(d: &Dfa) -> Dfa {
    let mut c = d.clone();
    c.complete();
    c
}

/// The complete DFA of `allowed*` over `n_syms` symbols: one accepting
/// state looping on every allowed symbol, a sink for the rest.
fn star_dfa(n_syms: usize, allowed: &[Sym]) -> Dfa {
    let mut d = Dfa::new(n_syms, 2, 0);
    for a in 0..n_syms {
        d.set_transition(0, Sym(a as u32), Some(1));
        d.set_transition(1, Sym(a as u32), Some(1));
    }
    for &s in allowed {
        d.set_transition(0, s, Some(0));
    }
    d.set_final(0, true);
    d
}

// ---------------------------------------------------------------------
// The context space of one schema
// ---------------------------------------------------------------------

/// One ancestor context: a tuple of per-rule ancestor-DFA states,
/// reached by some optimistically-realizable path.
struct Ctx {
    /// The relevant rule at this context (`None` = unconstrained node).
    rule: Option<usize>,
    /// Successor context per shared symbol ([`NO_CTX`] = not explored:
    /// the relevant rule's content model never emits that child).
    succ: Vec<u32>,
    /// Predecessor context + the symbol taken — ([`NO_CTX`], root
    /// symbol) for root contexts. First discovery wins, so the implied
    /// path is the length-lexicographically least.
    pred: (u32, Sym),
    /// Whether a finite conforming subtree exists at this context.
    comp: bool,
    /// Fixpoint round at which completability was established (bounds
    /// the minimal subtree height; `u32::MAX` when uncompletable).
    round: u32,
}

/// The explored ancestor-context space of one schema over a (possibly
/// shared) alphabet, with completability annotations.
pub(crate) struct SchemaSpace {
    n_syms: usize,
    /// `(root symbol, context after it)`, in ascending symbol order.
    roots: Vec<(Sym, u32)>,
    rules: Vec<RuleInfo>,
    /// Pseudo-rule for unconstrained nodes: children `(own alphabet)*`,
    /// any text, any attributes.
    unconstrained: RuleInfo,
    ctxs: Vec<Ctx>,
}

impl SchemaSpace {
    /// Explores the schema's ancestor contexts exactly the way a
    /// document grows and runs the completability fixpoint. `own_syms`
    /// is the subset of the alphabet the schema itself declares (its
    /// effective child universe — foreign names have no governing
    /// definition); `budget` bounds the context count.
    fn build(
        bxsd: &Bxsd,
        n_syms: usize,
        own_syms: Vec<Sym>,
        budget: usize,
        auto: &mut Automata,
    ) -> Result<SchemaSpace, AnalysisError> {
        let n_rules = bxsd.rules.len();
        let anc: Vec<Arc<Dfa>> = bxsd
            .rules
            .iter()
            .map(|r| auto.min_dfa(&r.ancestor, n_syms))
            .collect();
        let mut rules: Vec<RuleInfo> = bxsd
            .rules
            .iter()
            .map(|r| rule_info(r, n_syms, auto))
            .collect();
        // Open models explore every own symbol, whatever their regex
        // (the validator accepts only own names even under `open`).
        for (info, rule) in rules.iter_mut().zip(&bxsd.rules) {
            if rule.content.open {
                info.child_syms = own_syms.clone();
            }
        }
        let unconstrained = RuleInfo {
            children: Arc::new(star_dfa(n_syms, &own_syms)),
            child_syms: own_syms.clone(),
            text: TextSpec::Any,
            attrs: AttrSpec::Open,
            local_ok: true,
        };

        let mut interner = SubsetInterner::with_capacity(64);
        let mut ctxs: Vec<Ctx> = Vec::new();
        let mut queue: VecDeque<u32> = VecDeque::new();
        let mut roots: Vec<(Sym, u32)> = Vec::new();
        let root_tuple: Vec<u32> = anc.iter().map(|d| d.initial() as u32).collect();
        let step = |from: &[u32], sym: Sym, into: &mut Vec<u32>| {
            into.clear();
            for (&q, d) in from.iter().zip(&anc) {
                let t = d
                    .transition(q as usize, sym)
                    .expect("minimal ancestor DFA is total");
                into.push(t as u32);
            }
        };
        let mut succ_tuple: Vec<u32> = Vec::with_capacity(n_rules);
        for &s in &bxsd.start {
            step(&root_tuple, s, &mut succ_tuple);
            let before = interner.len();
            let id = interner.intern(&succ_tuple);
            if id as usize == before {
                ctxs.push(Ctx {
                    rule: None,
                    succ: Vec::new(),
                    pred: (NO_CTX, s),
                    comp: false,
                    round: u32::MAX,
                });
                queue.push_back(id);
            }
            roots.push((s, id));
        }
        let mut cur: Vec<u32> = Vec::with_capacity(n_rules);
        while let Some(id) = queue.pop_front() {
            if interner.len() > budget {
                return Err(AnalysisError::Budget {
                    what: "context",
                    budget,
                });
            }
            cur.clear();
            cur.extend_from_slice(interner.get(id as usize));
            // Largest matching rule index = the relevant rule.
            let relevant = (0..n_rules)
                .rev()
                .find(|&i| anc[i].is_final(cur[i] as usize));
            let child_syms = match relevant {
                Some(i) => &rules[i].child_syms,
                None => &unconstrained.child_syms,
            };
            let mut succ = vec![NO_CTX; n_syms];
            for &s in child_syms {
                step(&cur, s, &mut succ_tuple);
                let before = interner.len();
                let next = interner.intern(&succ_tuple);
                if next as usize == before {
                    ctxs.push(Ctx {
                        rule: None,
                        succ: Vec::new(),
                        pred: (id, s),
                        comp: false,
                        round: u32::MAX,
                    });
                    queue.push_back(next);
                }
                succ[s.index()] = next;
            }
            ctxs[id as usize].rule = relevant;
            ctxs[id as usize].succ = succ;
        }

        let mut space = SchemaSpace {
            n_syms,
            roots,
            rules,
            unconstrained,
            ctxs,
        };
        space.completability();
        Ok(space)
    }

    fn info(&self, rule: Option<usize>) -> &RuleInfo {
        match rule {
            Some(i) => &self.rules[i],
            None => &self.unconstrained,
        }
    }

    /// The least-fixed-point completability pass. Round `R` establishes
    /// contexts whose children word can be drawn entirely from contexts
    /// established in rounds `< R`, so rounds bound subtree height.
    fn completability(&mut self) {
        let mut round: u32 = 0;
        loop {
            let mut changed = false;
            for id in 0..self.ctxs.len() {
                if self.ctxs[id].comp {
                    continue;
                }
                let info = self.info(self.ctxs[id].rule);
                if !info.local_ok {
                    continue;
                }
                let dfa = Arc::clone(&info.children);
                let ok = accepts_restricted(&dfa, |s| {
                    let next = self.ctxs[id].succ.get(s.index()).copied().unwrap_or(NO_CTX);
                    next != NO_CTX
                        && self.ctxs[next as usize].comp
                        && self.ctxs[next as usize].round < round
                });
                if ok {
                    self.ctxs[id].comp = true;
                    self.ctxs[id].round = round;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            round += 1;
        }
    }

    /// The ancestor path (length-lexicographically least) of a context.
    fn path_syms(&self, mut id: u32) -> Vec<Sym> {
        let mut rev = Vec::new();
        loop {
            let (pred, sym) = self.ctxs[id as usize].pred;
            rev.push(sym);
            if pred == NO_CTX {
                break;
            }
            id = pred;
        }
        rev.reverse();
        rev
    }

    /// The children DFA at a context, with transitions on symbols whose
    /// child context is uncompletable (or unexplored) removed — the
    /// language of child sequences this schema can actually realize.
    fn restricted_children(&self, id: u32) -> Dfa {
        let ctx = &self.ctxs[id as usize];
        let mut d = (*self.info(ctx.rule).children).clone();
        for a in 0..self.n_syms {
            let next = ctx.succ.get(a).copied().unwrap_or(NO_CTX);
            let viable = next != NO_CTX && self.ctxs[next as usize].comp;
            if !viable {
                for q in 0..d.n_states() {
                    d.set_transition(q, Sym(a as u32), None);
                }
            }
        }
        d
    }

    /// The canonical minimal children word at a completable context:
    /// shortest (ties lexicographic by symbol) over child contexts
    /// established at strictly earlier fixpoint rounds, so recursive
    /// synthesis terminates.
    fn min_word(&self, id: u32) -> Vec<Sym> {
        let ctx = &self.ctxs[id as usize];
        debug_assert!(ctx.comp, "min_word on uncompletable context");
        let dfa = &self.info(ctx.rule).children;
        shortest_word_restricted(dfa, |s| {
            let next = ctx.succ.get(s.index()).copied().unwrap_or(NO_CTX);
            next != NO_CTX
                && self.ctxs[next as usize].comp
                && self.ctxs[next as usize].round < ctx.round
        })
        .expect("completable context has a minimal children word")
    }

    /// Builds the minimal conforming subtree rooted at `node`, whose
    /// context is `id`: required attributes and typed text take their
    /// canonical values, children the canonical minimal word.
    fn fill_node(&self, doc: &mut Document, node: xmltree::NodeId, id: u32, names: &Alphabet) {
        let info = self.info(self.ctxs[id as usize].rule);
        apply_local(doc, node, info, None);
        for s in self.min_word(id) {
            let child = doc.add_element(node, names.name(s));
            let next = self.ctxs[id as usize].succ[s.index()];
            self.fill_node(doc, child, next, names);
        }
    }

    /// The minimal conforming document rooted at `root_sym` (whose root
    /// context is `root_ctx`).
    fn synth_doc(&self, root_sym: Sym, root_ctx: u32, names: &Alphabet) -> Document {
        let mut doc = Document::new(names.name(root_sym));
        let root = doc.root();
        self.fill_node(&mut doc, root, root_ctx, names);
        doc
    }
}

/// Sets a node's required attributes and typed text to their canonical
/// values. `text_override` replaces the canonical text (channel
/// witnesses); an empty value means "no text node".
fn apply_local(
    doc: &mut Document,
    node: xmltree::NodeId,
    info: &RuleInfo,
    text_override: Option<&str>,
) {
    if let AttrSpec::Closed(attrs) = &info.attrs {
        for a in attrs.iter().filter(|a| a.required) {
            let v = canonical_value(a.simple_type, &a.facets)
                .expect("locally satisfiable rule has canonical attribute values");
            doc.set_attribute(node, &a.name, &v);
        }
    }
    let text = match text_override {
        Some(v) => Some(v.to_string()),
        None => match &info.text {
            TextSpec::Typed(st, f) => {
                Some(canonical_value(*st, f).expect("locally satisfiable rule has canonical text"))
            }
            _ => None,
        },
    };
    if let Some(v) = text {
        if !v.is_empty() {
            doc.add_text(node, &v);
        }
    }
}

// ---------------------------------------------------------------------
// Restricted-DFA word search
// ---------------------------------------------------------------------

/// Whether the DFA accepts any word using only `allowed` symbols.
fn accepts_restricted(d: &Dfa, allowed: impl Fn(Sym) -> bool) -> bool {
    shortest_word_restricted(d, allowed).is_some()
}

/// The canonical (shortest, ties lexicographic by symbol id) word the
/// DFA accepts using only `allowed` symbols.
fn shortest_word_restricted(d: &Dfa, allowed: impl Fn(Sym) -> bool) -> Option<Vec<Sym>> {
    let n = d.n_states();
    let mut pred: Vec<Option<(usize, Sym)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[d.initial()] = true;
    queue.push_back(d.initial());
    let reconstruct = |mut q: usize, pred: &[Option<(usize, Sym)>]| {
        let mut word = Vec::new();
        while let Some((p, s)) = pred[q] {
            word.push(s);
            q = p;
        }
        word.reverse();
        word
    };
    if d.is_final(d.initial()) {
        return Some(Vec::new());
    }
    while let Some(q) = queue.pop_front() {
        for a in 0..d.n_syms() {
            let s = Sym(a as u32);
            if !allowed(s) {
                continue;
            }
            let Some(t) = d.transition(q, s) else {
                continue;
            };
            if seen[t] {
                continue;
            }
            seen[t] = true;
            pred[t] = Some((q, s));
            if d.is_final(t) {
                return Some(reconstruct(t, &pred));
            }
            queue.push_back(t);
        }
    }
    None
}

/// The canonical shortest accepted word that contains `through` at
/// least once: BFS over (state, seen-flag) pairs, symbols ascending.
fn shortest_word_through(d: &Dfa, through: Sym) -> Option<Vec<Sym>> {
    let n = d.n_states();
    let idx = |q: usize, seen_sym: bool| q * 2 + usize::from(seen_sym);
    let mut pred: Vec<Option<(usize, Sym)>> = vec![None; n * 2];
    let mut seen = vec![false; n * 2];
    let mut queue = VecDeque::new();
    let start = idx(d.initial(), false);
    seen[start] = true;
    queue.push_back(start);
    while let Some(cur) = queue.pop_front() {
        let (q, s_seen) = (cur / 2, cur % 2 == 1);
        for a in 0..d.n_syms() {
            let s = Sym(a as u32);
            let Some(t) = d.transition(q, s) else {
                continue;
            };
            let next = idx(t, s_seen || s == through);
            if seen[next] {
                continue;
            }
            seen[next] = true;
            pred[next] = Some((cur, s));
            if d.is_final(t) && (s_seen || s == through) {
                let mut word = Vec::new();
                let mut at = next;
                while let Some((p, sym)) = pred[at] {
                    word.push(sym);
                    at = p;
                }
                word.reverse();
                return Some(word);
            }
            queue.push_back(next);
        }
    }
    None
}

/// Per-symbol liveness in a DFA: `true` when some transition on the
/// symbol links a reachable state to a state that can still reach a
/// final state — i.e. the symbol occurs in some accepted word.
fn live_syms(d: &Dfa) -> Vec<bool> {
    let n = d.n_states();
    let mut reach = vec![false; n];
    for q in d.reachable() {
        reach[q] = true;
    }
    // Co-reachability by reverse BFS from the final states.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for q in 0..n {
        for a in 0..d.n_syms() {
            if let Some(t) = d.transition(q, Sym(a as u32)) {
                rev[t].push(q);
            }
        }
    }
    let mut co = vec![false; n];
    let mut queue: VecDeque<usize> = (0..n).filter(|&q| d.is_final(q)).collect();
    for &q in &queue {
        co[q] = true;
    }
    while let Some(q) = queue.pop_front() {
        for &p in &rev[q] {
            if !co[p] {
                co[p] = true;
                queue.push_back(p);
            }
        }
    }
    let mut live = vec![false; d.n_syms()];
    for q in (0..n).filter(|&q| reach[q]) {
        for (a, l) in live.iter_mut().enumerate() {
            if !*l {
                if let Some(t) = d.transition(q, Sym(a as u32)) {
                    *l = co[t];
                }
            }
        }
    }
    live
}

// ---------------------------------------------------------------------
// Shared-alphabet remapping
// ---------------------------------------------------------------------

/// Remaps a schema onto the shared alphabet (which must already contain
/// every name of `src`), returning the remapped BXSD and its own
/// symbols in the shared numbering.
fn remap_bxsd(src: &Bxsd, shared: &Alphabet) -> (Bxsd, Vec<Sym>) {
    let map: Vec<Sym> = src
        .ename
        .symbols()
        .map(|s| {
            shared
                .lookup(src.ename.name(s))
                .expect("shared alphabet contains every schema name")
        })
        .collect();
    let mut f = |s: Sym| map[s.index()];
    let rules = src
        .rules
        .iter()
        .map(|r| Rule {
            ancestor: r.ancestor.map_symbols(&mut f),
            content: ContentModel {
                regex: r.content.regex.map_symbols(&mut f),
                ..r.content.clone()
            },
        })
        .collect();
    let start = src.start.iter().map(|&s| map[s.index()]).collect();
    let mut own: Vec<Sym> = map.clone();
    own.sort_unstable();
    own.dedup();
    (Bxsd::new_unchecked(shared.clone(), start, rules), own)
}

// ---------------------------------------------------------------------
// Channel comparisons
// ---------------------------------------------------------------------

/// A text value accepted on the `a` side but rejected on the `b` side,
/// with an explanation. Probe-based for [`TextSpec::Typed`] pairs.
fn text_witness(a: &TextSpec, b: &TextSpec) -> Option<(String, String)> {
    let any = Facets::default();
    let empty_only = Facets {
        enumeration: vec![String::new()],
        ..Facets::default()
    };
    match (a, b) {
        (_, TextSpec::Any) => None,
        (TextSpec::Forbidden, TextSpec::Forbidden) => None,
        (TextSpec::Any, TextSpec::Forbidden) => Some((
            "x".to_string(),
            "text content is allowed here but the other schema forbids it".to_string(),
        )),
        (TextSpec::Typed(sa, fa), TextSpec::Forbidden) => {
            // Any nonempty value of A's space is significant text B bans.
            let v = value_space_witness((*sa, fa), (SimpleType::String, &empty_only))?;
            Some((
                v.clone(),
                format!("text value {v:?} is accepted here but the other schema forbids text"),
            ))
        }
        (TextSpec::Any, TextSpec::Typed(sb, fb)) => {
            if !admits(*sb, fb, "") {
                return Some((
                    String::new(),
                    format!(
                        "empty text is accepted here but the other schema requires a valid {}",
                        sb.qname()
                    ),
                ));
            }
            let v = value_space_witness((SimpleType::String, &any), (*sb, fb))?;
            Some((
                v.clone(),
                format!(
                    "text value {v:?} is accepted here but is not a valid {} for the other schema",
                    sb.qname()
                ),
            ))
        }
        (TextSpec::Forbidden, TextSpec::Typed(sb, fb)) => (!admits(*sb, fb, "")).then(|| {
            (
                String::new(),
                format!(
                    "element-only content is accepted here but the other schema requires a \
                     valid {}",
                    sb.qname()
                ),
            )
        }),
        (TextSpec::Typed(sa, fa), TextSpec::Typed(sb, fb)) => {
            if admits(*sa, fa, "") && !admits(*sb, fb, "") {
                return Some((
                    String::new(),
                    format!(
                        "empty text is a valid {} here but not a valid {} for the other schema",
                        sa.qname(),
                        sb.qname()
                    ),
                ));
            }
            let v = value_space_witness((*sa, fa), (*sb, fb))?;
            Some((
                v.clone(),
                format!(
                    "text value {v:?} is a valid {} here but not a valid {} for the other schema",
                    sa.qname(),
                    sb.qname()
                ),
            ))
        }
    }
}

/// One attribute-channel difference: how to decorate the leaf node and
/// what to say about it.
struct AttrDiff {
    /// Attributes to set on top of the canonical required ones.
    set: Vec<(String, String)>,
    message: String,
}

/// Attribute differences the `a` side can realize against the `b`
/// side's declarations.
fn attr_witnesses(a: &AttrSpec, b: &AttrSpec) -> Vec<AttrDiff> {
    let AttrSpec::Closed(battrs) = b else {
        return Vec::new(); // open side accepts anything
    };
    let mut out = Vec::new();
    let a_forces = |name: &str| match a {
        AttrSpec::Open => false,
        AttrSpec::Closed(aattrs) => aattrs.iter().any(|x| x.name == name && x.required),
    };
    // 1. Attributes the other schema requires but this side does not:
    //    the minimal node here simply omits them.
    let missing: Vec<&str> = battrs
        .iter()
        .filter(|x| x.required && !a_forces(&x.name))
        .map(|x| x.name.as_str())
        .collect();
    if !missing.is_empty() {
        out.push(AttrDiff {
            set: Vec::new(),
            message: format!(
                "the other schema requires attribute(s) {} that are optional or undeclared here",
                missing
                    .iter()
                    .map(|n| format!("\"{n}\""))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        });
    }
    // 2. An attribute this side may carry that the other schema does
    //    not declare at all.
    let declared_in_b = |name: &str| battrs.iter().any(|x| x.name == name);
    let undeclared = match a {
        AttrSpec::Closed(aattrs) => aattrs
            .iter()
            .filter(|x| !declared_in_b(&x.name))
            .find_map(|x| canonical_value(x.simple_type, &x.facets).map(|v| (x.name.clone(), v))),
        AttrSpec::Open => {
            // Open content: invent a fresh name the other side rejects.
            (0..)
                .map(|i| {
                    if i == 0 {
                        "x".to_string()
                    } else {
                        format!("x{i}")
                    }
                })
                .find(|n| !declared_in_b(n))
                .map(|n| (n, "x".to_string()))
        }
    };
    if let Some((name, value)) = undeclared {
        out.push(AttrDiff {
            set: vec![(name.clone(), value)],
            message: format!(
                "attribute \"{name}\" is allowed here but undeclared in the other schema"
            ),
        });
    }
    // 3. A declared-on-both attribute whose value space is wider here.
    for battr in battrs {
        let (sa, fa_owned);
        let fa: &Facets = match a {
            AttrSpec::Open => {
                sa = SimpleType::String;
                fa_owned = Facets::default();
                &fa_owned
            }
            AttrSpec::Closed(aattrs) => match aattrs.iter().find(|x| x.name == battr.name) {
                Some(x) => {
                    sa = x.simple_type;
                    &x.facets
                }
                None => continue, // this side cannot carry it at all
            },
        };
        if let Some(v) = value_space_witness((sa, fa), (battr.simple_type, &battr.facets)) {
            out.push(AttrDiff {
                set: vec![(battr.name.clone(), v.clone())],
                message: format!(
                    "attribute \"{}\" value {v:?} is accepted here but not a valid {} for the \
                     other schema",
                    battr.name,
                    battr.simple_type.qname()
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// The joint (pair) exploration and witness lifting
// ---------------------------------------------------------------------

/// One joint context of the two schemas, plus the discovery edge that
/// makes its canonical path reconstructible.
struct PairNode {
    /// Context id in the positive (witness-accepting) schema's space.
    ta: u32,
    /// Context id in the negative schema's space.
    tb: u32,
    /// Discovery predecessor (pair index; [`NO_CTX`] for roots).
    pred: u32,
    /// The symbol taken from the predecessor (the root name for roots).
    sym: Sym,
}

/// One direction of the diff: everything needed to compare pairs and
/// lift witnesses, shared read-only across workers.
struct DirectionPass<'x> {
    pos: &'x SchemaSpace,
    neg: &'x SchemaSpace,
    names: &'x Alphabet,
    pos_compiled: &'x CompiledBxsd<'x>,
    neg_compiled: &'x CompiledBxsd<'x>,
    direction: Direction,
}

impl DirectionPass<'_> {
    /// Reconstructs a pair's canonical ancestor path.
    fn pair_path(&self, pairs: &[PairNode], mut idx: usize) -> Vec<Sym> {
        let mut rev = Vec::new();
        loop {
            rev.push(pairs[idx].sym);
            if pairs[idx].pred == NO_CTX {
                break;
            }
            idx = pairs[idx].pred as usize;
        }
        rev.reverse();
        rev
    }

    /// The joint children automaton at a pair: the positive side's
    /// realizable child sequences intersected with the negative side's
    /// accepted ones. Symbols live in it are safe to descend through.
    fn joint_children(&self, p: &PairNode) -> Dfa {
        let ra = self.pos.restricted_children(p.ta);
        let rb = &self.neg.info(self.neg.ctxs[p.tb as usize].rule).children;
        product2(&ra, rb, |x, y| x && y)
    }

    /// Lifts a leaf difference into a complete document: spine nodes
    /// take minimal jointly-valid children words so the difference
    /// manifests exactly at the leaf, off-spine subtrees are minimal
    /// positive-schema synthesis.
    fn lift(
        &self,
        pairs: &[PairNode],
        leaf: usize,
        leaf_children: &[Sym],
        leaf_text: Option<&str>,
        leaf_attrs: &[(String, String)],
    ) -> Option<Document> {
        let mut chain = Vec::new();
        let mut at = leaf;
        loop {
            chain.push(at);
            if pairs[at].pred == NO_CTX {
                break;
            }
            at = pairs[at].pred as usize;
        }
        chain.reverse();
        let mut doc = Document::new(self.names.name(pairs[chain[0]].sym));
        let mut node = doc.root();
        for (k, &pi) in chain.iter().enumerate() {
            let p = &pairs[pi];
            let a_ctx = &self.pos.ctxs[p.ta as usize];
            let info = self.pos.info(a_ctx.rule);
            if k + 1 < chain.len() {
                apply_local(&mut doc, node, info, None);
                let next_sym = pairs[chain[k + 1]].sym;
                let word = shortest_word_through(&self.joint_children(p), next_sym)?;
                let mut spine_child = None;
                for s in word {
                    let child = doc.add_element(node, self.names.name(s));
                    if spine_child.is_none() && s == next_sym {
                        spine_child = Some(child);
                    } else {
                        let next = a_ctx.succ[s.index()];
                        self.pos.fill_node(&mut doc, child, next, self.names);
                    }
                }
                node = spine_child?;
            } else {
                apply_local(&mut doc, node, info, leaf_text);
                for (name, value) in leaf_attrs {
                    doc.set_attribute(node, name, value);
                }
                for &s in leaf_children {
                    let child = doc.add_element(node, self.names.name(s));
                    let next = a_ctx.succ[s.index()];
                    self.pos.fill_node(&mut doc, child, next, self.names);
                }
            }
        }
        Some(doc)
    }

    /// Validates a candidate against both original schemas; only
    /// documents valid in exactly the positive one become witnesses.
    fn verify(&self, doc: &Document) -> bool {
        let opts = ValidateOptions::default();
        self.pos_compiled.validate_with(doc, opts).is_valid()
            && !self.neg_compiled.validate_with(doc, opts).is_valid()
    }

    /// Compares one joint context on all channels and lifts + verifies
    /// every difference found. Returns `(witnesses, dropped)`.
    fn compare_pair(&self, pairs: &[PairNode], idx: usize) -> (Vec<Witness>, usize) {
        let p = &pairs[idx];
        let a_info = self.pos.info(self.pos.ctxs[p.ta as usize].rule);
        let b_info = self.neg.info(self.neg.ctxs[p.tb as usize].rule);
        let path: Vec<String> = self
            .pair_path(pairs, idx)
            .iter()
            .map(|&s| self.names.name(s).to_string())
            .collect();
        let mut out = Vec::new();
        let mut dropped = 0usize;
        let emit = |kind: WitnessKind,
                    message: String,
                    doc: Option<Document>,
                    out: &mut Vec<Witness>,
                    dropped: &mut usize| {
            match doc {
                Some(d) if self.verify(&d) => out.push(Witness {
                    direction: self.direction,
                    path: path.clone(),
                    kind,
                    message,
                    document: xmltree::to_string(&d),
                }),
                _ => *dropped += 1,
            }
        };

        // Channel 1: child sequences. The positive side's realizable
        // children language minus the negative side's accepted one —
        // exact, with the canonical witness word.
        let restricted = self.pos.restricted_children(p.ta);
        if let Some(word) = difference_witness_dfa(&restricted, &b_info.children) {
            let msg = format!(
                "child sequence \"{}\" is accepted here but rejected by the other schema",
                render_children(&word, self.names)
            );
            let doc = self.lift(pairs, idx, &word, None, &[]);
            emit(WitnessKind::Children, msg, doc, &mut out, &mut dropped);
        }

        // Channel 2: text value spaces.
        if let Some((value, msg)) = text_witness(&a_info.text, &b_info.text) {
            let min = self.pos.min_word(p.ta);
            let doc = self.lift(pairs, idx, &min, Some(&value), &[]);
            emit(WitnessKind::Text, msg, doc, &mut out, &mut dropped);
        }

        // Channel 3: attribute declarations and value spaces.
        for diff in attr_witnesses(&a_info.attrs, &b_info.attrs) {
            let min = self.pos.min_word(p.ta);
            let doc = self.lift(pairs, idx, &min, None, &diff.set);
            emit(
                WitnessKind::Attribute,
                diff.message,
                doc,
                &mut out,
                &mut dropped,
            );
        }

        (out, dropped)
    }

    /// Runs the full direction: root-name differences, the joint BFS,
    /// then per-pair comparisons on the worker pool (input-order
    /// deterministic). Returns witnesses, pair count, and drop count.
    fn run(&self, opts: &AnalysisOptions) -> Result<(Vec<Witness>, usize, usize), AnalysisError> {
        let mut witnesses = Vec::new();
        let mut dropped = 0usize;
        let mut pairs: Vec<PairNode> = Vec::new();
        let mut interner = SubsetInterner::with_capacity(64);
        let mut queue: VecDeque<u32> = VecDeque::new();
        for &(s, ctx) in &self.pos.roots {
            if !self.pos.ctxs[ctx as usize].comp {
                continue; // this side cannot realize the root at all
            }
            if let Some(&(_, neg_ctx)) = self.neg.roots.iter().find(|&&(t, _)| t == s) {
                let before = interner.len();
                let id = interner.intern(&[ctx, neg_ctx]);
                if id as usize == before {
                    pairs.push(PairNode {
                        ta: ctx,
                        tb: neg_ctx,
                        pred: NO_CTX,
                        sym: s,
                    });
                    queue.push_back(id);
                }
            } else {
                let doc = self.pos.synth_doc(s, ctx, self.names);
                if self.verify(&doc) {
                    witnesses.push(Witness {
                        direction: self.direction,
                        path: vec![self.names.name(s).to_string()],
                        kind: WitnessKind::Root,
                        message: format!(
                            "root element \"{}\" is allowed here but not by the other schema",
                            self.names.name(s)
                        ),
                        document: xmltree::to_string(&doc),
                    });
                } else {
                    dropped += 1;
                }
            }
        }
        while let Some(id) = queue.pop_front() {
            if pairs.len() > opts.pair_budget {
                return Err(AnalysisError::Budget {
                    what: "pair",
                    budget: opts.pair_budget,
                });
            }
            let (ta, tb) = (pairs[id as usize].ta, pairs[id as usize].tb);
            let live = live_syms(&self.joint_children(&pairs[id as usize]));
            for a in (0..self.pos.n_syms).filter(|&a| live[a]) {
                let s = Sym(a as u32);
                let na = self.pos.ctxs[ta as usize].succ[a];
                let nb = self.neg.ctxs[tb as usize].succ[a];
                debug_assert!(na != NO_CTX && nb != NO_CTX, "live symbol was explored");
                if na == NO_CTX || nb == NO_CTX || !self.pos.ctxs[na as usize].comp {
                    continue;
                }
                let before = interner.len();
                let next = interner.intern(&[na, nb]);
                if next as usize == before {
                    pairs.push(PairNode {
                        ta: na,
                        tb: nb,
                        pred: id,
                        sym: s,
                    });
                    queue.push_back(next);
                }
            }
        }
        let n_pairs = pairs.len();
        let results = map_indexed((0..n_pairs).collect(), opts.jobs, |i| {
            self.compare_pair(&pairs, i)
        });
        for (ws, d) in results {
            witnesses.extend(ws);
            dropped += d;
        }
        Ok((witnesses, n_pairs, dropped))
    }
}

/// Renders a child sequence with element names, space-separated.
fn render_children(word: &[Sym], names: &Alphabet) -> String {
    if word.is_empty() {
        return "ε".to_string();
    }
    word.iter()
        .map(|&s| names.name(s))
        .collect::<Vec<_>>()
        .join(" ")
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Decides inclusion/equivalence of two BXSDs, lifting every difference
/// found into a verified witness document. The first schema plays the
/// "old" role for [`Evolution`] classification.
pub fn diff_bxsd(
    a: &Bxsd,
    b: &Bxsd,
    opts: &AnalysisOptions,
    mut cache: Option<&mut AutomataCache>,
) -> Result<DiffReport, AnalysisError> {
    let stats_before = cache.as_deref().map(|c| c.stats());
    let t0 = Instant::now();

    // One shared alphabet: the first schema's names, then the second's.
    let mut shared = Alphabet::new();
    for (_, name) in a.ename.entries() {
        shared.intern(name);
    }
    for (_, name) in b.ename.entries() {
        shared.intern(name);
    }
    let n = shared.len();
    let (ra, own_a) = remap_bxsd(a, &shared);
    let (rb, own_b) = remap_bxsd(b, &shared);
    let mut auto = Automata {
        cache: cache.as_deref_mut(),
    };
    let space_a = SchemaSpace::build(&ra, n, own_a, opts.ctx_budget, &mut auto)?;
    let space_b = SchemaSpace::build(&rb, n, own_b, opts.ctx_budget, &mut auto)?;
    let build_us = t0.elapsed().as_micros() as u64;

    // Witness verification runs against the *original* schemas — the
    // remapped ones share an alphabet and would not flag foreign names.
    let compiled_a = CompiledBxsd::new(a);
    let compiled_b = CompiledBxsd::new(b);

    let t1 = Instant::now();
    let ab = DirectionPass {
        pos: &space_a,
        neg: &space_b,
        names: &shared,
        pos_compiled: &compiled_a,
        neg_compiled: &compiled_b,
        direction: Direction::OnlyInA,
    };
    let ba = DirectionPass {
        pos: &space_b,
        neg: &space_a,
        names: &shared,
        pos_compiled: &compiled_b,
        neg_compiled: &compiled_a,
        direction: Direction::OnlyInB,
    };
    let (wit_a, pairs_a, drop_a) = ab.run(opts)?;
    let (wit_b, pairs_b, drop_b) = ba.run(opts)?;
    let compare_us = t1.elapsed().as_micros() as u64;

    let (a_only, b_only) = (wit_a.len(), wit_b.len());
    let evolution = match (a_only > 0, b_only > 0) {
        (false, false) => Evolution::Equivalent,
        (false, true) => Evolution::BackwardCompatible,
        (true, false) => Evolution::ForwardCompatible,
        (true, true) => Evolution::Incomparable,
    };
    let mut witnesses = wit_a;
    witnesses.extend(wit_b);
    let (cache_hits, cache_misses) = match (stats_before, cache.as_deref().map(|c| c.stats())) {
        (Some(before), Some(after)) => {
            let d = after.since(before);
            (d.hits(), d.misses())
        }
        _ => (0, 0),
    };
    Ok(DiffReport {
        evolution,
        a_only,
        b_only,
        witnesses,
        stats: DiffStats {
            contexts_a: space_a.ctxs.len(),
            contexts_b: space_b.ctxs.len(),
            pairs: pairs_a + pairs_b,
            dropped: drop_a + drop_b,
            cache_hits,
            cache_misses,
            build_us,
            explore_us: 0, // folded into compare (the BFS feeds it directly)
            compare_us,
        },
    })
}

/// Decides satisfiability of a schema: whether any document conforms,
/// with a minimal witness document, plus the rules that are reachable
/// but admit no completable subtree (lint BX010's engine).
pub fn analyze_sat(
    bxsd: &Bxsd,
    opts: &AnalysisOptions,
    cache: Option<&mut AutomataCache>,
) -> Result<SatReport, AnalysisError> {
    let n = bxsd.ename.len();
    let own: Vec<Sym> = bxsd.ename.symbols().collect();
    let mut auto = Automata { cache };
    let space = SchemaSpace::build(bxsd, n, own, opts.ctx_budget, &mut auto)?;
    let witness = space
        .roots
        .iter()
        .find(|&&(_, ctx)| space.ctxs[ctx as usize].comp)
        .map(|&(s, ctx)| xmltree::to_string(&space.synth_doc(s, ctx, &bxsd.ename)));
    let unsat_rules = unsat_rules(&space, &bxsd.ename);
    Ok(SatReport {
        satisfiable: witness.is_some(),
        witness,
        unsat_rules,
        contexts: space.ctxs.len(),
    })
}

/// Rules relevant at some reachable context that admits no completable
/// subtree, each with the shortest such ancestor path.
fn unsat_rules(space: &SchemaSpace, names: &Alphabet) -> Vec<UnsatRule> {
    let mut first_path: Vec<Option<Vec<Sym>>> = vec![None; space.rules.len()];
    for (id, ctx) in space.ctxs.iter().enumerate() {
        if ctx.comp {
            continue;
        }
        if let Some(i) = ctx.rule {
            if first_path[i].is_none() {
                first_path[i] = Some(space.path_syms(id as u32));
            }
        }
    }
    first_path
        .into_iter()
        .enumerate()
        .filter_map(|(rule, p)| {
            p.map(|syms| UnsatRule {
                rule,
                path: syms.iter().map(|&s| names.name(s).to_string()).collect(),
            })
        })
        .collect()
}

/// Lint-facing entry: rules that are reachable but unsatisfiable in
/// context, with witness paths. `Err` means the context budget blew.
pub(crate) fn unsatisfiable_rule_contexts(
    bxsd: &Bxsd,
    budget: usize,
    cache: Option<&mut AutomataCache>,
) -> Result<Vec<UnsatRule>, AnalysisError> {
    let opts = AnalysisOptions {
        ctx_budget: budget,
        ..AnalysisOptions::default()
    };
    analyze_sat(bxsd, &opts, cache).map(|r| r.unsat_rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bxsd::BxsdBuilder;
    use crate::validate::is_valid;

    fn parse(src: &str) -> Bxsd {
        let ast = crate::lang::parser::parse_schema(src).expect("schema parses");
        crate::lang::lower::lower(&ast).expect("schema lowers").bxsd
    }

    #[test]
    fn identical_schemas_are_equivalent() {
        let a = parse("global { doc } grammar { doc = { element a, element b? } a = { } b = { } }");
        let b = a.clone();
        let r = diff_bxsd(&a, &b, &AnalysisOptions::default(), None).unwrap();
        assert!(r.equivalent(), "{r:?}");
        assert!(r.witnesses.is_empty());
        assert_eq!(r.stats.dropped, 0);
    }

    #[test]
    fn widened_children_is_detected_with_verified_witness() {
        let a = parse("global { doc } grammar { doc = { element a, element b? } a = { } b = { } }");
        let b = parse("global { doc } grammar { doc = { element a } a = { } }");
        let r = diff_bxsd(&a, &b, &AnalysisOptions::default(), None).unwrap();
        assert_eq!(r.evolution, Evolution::ForwardCompatible, "{r:?}");
        assert!(r.a_only > 0 && r.b_only == 0);
        let w = &r.witnesses[0];
        assert_eq!(w.kind, WitnessKind::Children);
        let doc = xmltree::parse_document(&w.document).unwrap();
        assert!(is_valid(&a, &doc));
        assert!(!is_valid(&b, &doc));
        // And the reverse direction flips the classification.
        let rev = diff_bxsd(&b, &a, &AnalysisOptions::default(), None).unwrap();
        assert_eq!(rev.evolution, Evolution::BackwardCompatible);
        assert_eq!(rev.b_only, r.a_only);
    }

    #[test]
    fn root_name_difference() {
        let a = parse("global { doc, alt } grammar { doc = { } alt = { } }");
        let b = parse("global { doc } grammar { doc = { } }");
        let r = diff_bxsd(&a, &b, &AnalysisOptions::default(), None).unwrap();
        assert!(r.a_only > 0);
        assert!(r
            .witnesses
            .iter()
            .any(|w| w.kind == WitnessKind::Root && w.path == ["alt"]));
    }

    #[test]
    fn text_type_difference() {
        let a = parse("global { doc } grammar { doc = { type xs:string } }");
        let b = parse("global { doc } grammar { doc = { type xs:integer } }");
        let r = diff_bxsd(&a, &b, &AnalysisOptions::default(), None).unwrap();
        assert_eq!(r.evolution, Evolution::ForwardCompatible, "{r:?}");
        let w = r
            .witnesses
            .iter()
            .find(|w| w.kind == WitnessKind::Text)
            .expect("text witness");
        let doc = xmltree::parse_document(&w.document).unwrap();
        assert!(is_valid(&a, &doc) && !is_valid(&b, &doc));
    }

    #[test]
    fn attribute_requirement_difference() {
        let a = parse("global { doc } grammar { doc = { attribute id? } }");
        let b = parse("global { doc } grammar { doc = { attribute id } }");
        let r = diff_bxsd(&a, &b, &AnalysisOptions::default(), None).unwrap();
        assert_eq!(r.evolution, Evolution::ForwardCompatible, "{r:?}");
        assert!(r.witnesses.iter().any(|w| w.kind == WitnessKind::Attribute));
    }

    #[test]
    fn sat_detects_unsatisfiable_recursion() {
        // Every `a` needs another `a` below it: no finite document.
        let mut bld = BxsdBuilder::new();
        bld.start("a");
        let a = bld.ename.intern("a");
        bld.suffix_rule(&["a"], ContentModel::new(Regex::sym(a)));
        let bxsd = bld.build().unwrap();
        let r = analyze_sat(&bxsd, &AnalysisOptions::default(), None).unwrap();
        assert!(!r.satisfiable);
        assert!(r.witness.is_none());
        assert_eq!(r.unsat_rules.len(), 1);
        assert_eq!(r.unsat_rules[0].path, vec!["a".to_string()]);
    }

    #[test]
    fn sat_produces_minimal_valid_witness() {
        let bxsd =
            parse("global { doc } grammar { doc = { element item+ } item = { type xs:integer } }");
        let r = analyze_sat(&bxsd, &AnalysisOptions::default(), None).unwrap();
        assert!(r.satisfiable);
        let doc = xmltree::parse_document(r.witness.as_ref().unwrap()).unwrap();
        assert!(is_valid(&bxsd, &doc), "{:?}", r.witness);
        assert!(r.unsat_rules.is_empty());
    }

    #[test]
    fn unsat_rule_in_context_found_with_path() {
        // `b` under doc is fine; `b` under c must contain an infinite
        // chain of c's — unsatisfiable only in that context.
        let src = "global { doc } grammar { \
                   doc = { element b?, element c? } \
                   b = { } \
                   c = { element b } \
                   c/b = { element c } }";
        let bxsd = parse(src);
        let r = analyze_sat(&bxsd, &AnalysisOptions::default(), None).unwrap();
        assert!(r.satisfiable);
        assert!(
            r.unsat_rules.iter().any(|u| u.path == ["doc", "c"]),
            "{:?}",
            r.unsat_rules
        );
    }

    #[test]
    fn diff_reports_are_identical_for_any_job_count() {
        let a = parse(
            "global { doc } grammar { doc = { element a*, element b } a = { element b? } b = { } }",
        );
        let b = parse(
            "global { doc } grammar { doc = { element a*, element b? } a = { element b? } b = { } }",
        );
        let base = diff_bxsd(&a, &b, &AnalysisOptions::default(), None).unwrap();
        for jobs in [2, 4, 16] {
            let opts = AnalysisOptions {
                jobs,
                ..AnalysisOptions::default()
            };
            let r = diff_bxsd(&a, &b, &opts, None).unwrap();
            assert_eq!(r.witnesses, base.witnesses, "jobs={jobs}");
            assert_eq!(r.evolution, base.evolution);
        }
    }

    #[test]
    fn cached_diff_matches_uncached() {
        let a = parse("global { doc } grammar { doc = { element a* } a = { type xs:date } }");
        let b = parse("global { doc } grammar { doc = { element a+ } a = { type xs:date } }");
        let plain = diff_bxsd(&a, &b, &AnalysisOptions::default(), None).unwrap();
        let mut cache = AutomataCache::new();
        let cached = diff_bxsd(&a, &b, &AnalysisOptions::default(), Some(&mut cache)).unwrap();
        assert_eq!(plain.witnesses, cached.witnesses);
        assert_eq!(plain.evolution, cached.evolution);
        // Second run through the same cache reuses every construction.
        let again = diff_bxsd(&a, &b, &AnalysisOptions::default(), Some(&mut cache)).unwrap();
        assert_eq!(again.witnesses, cached.witnesses);
        assert!(again.stats.cache_hits > 0, "{:?}", again.stats);
    }
}
