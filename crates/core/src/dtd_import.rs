//! DTD → BonXai conversion (the Figure 2 → Figure 4 direction).
//!
//! Every DTD is trivially a BXSD: element declarations are context
//! insensitive, so each `<!ELEMENT a SPEC>` becomes the 1-suffix rule
//! `//a = {…}`. Attribute lists become inline attribute items with types
//! mapped from the DTD attribute types.

use xmltree::dtd::{AttType, ContentSpec, DefaultDecl, Dtd};
use xsd::SimpleType;

use crate::lang::ast::{
    AncestorPattern, AttributeItem, ChildPattern, Particle, PathExpr, RuleAst, RuleBody, SchemaAst,
    Span,
};
use crate::lang::LangError;
use crate::schema::BonxaiSchema;

/// Converts a DTD into an equivalent BonXai schema.
///
/// DTDs do not declare root elements; pass the intended roots (usually
/// the `<!DOCTYPE name …>` name).
pub fn dtd_to_bonxai(dtd: &Dtd, roots: &[&str]) -> Result<BonxaiSchema, LangError> {
    let mut ast = SchemaAst {
        globals: roots.iter().map(|r| (*r).to_owned()).collect(),
        ..SchemaAst::default()
    };

    let all_names: Vec<String> = dtd.elements.keys().cloned().collect();

    for (name, spec) in &dtd.elements {
        let mut cp = ChildPattern::default();
        match spec {
            ContentSpec::Empty => {}
            ContentSpec::Any => {
                cp.mixed = true;
                cp.particle = Some(star_of_names(&all_names));
            }
            ContentSpec::Mixed(syms) => {
                cp.mixed = true;
                let names: Vec<String> = syms
                    .iter()
                    .map(|&s| dtd.alphabet.name(s).to_owned())
                    .collect();
                if !names.is_empty() {
                    cp.particle = Some(star_of_names(&names));
                }
            }
            ContentSpec::Children(regex) => {
                cp.particle = Some(regex_to_particle(regex, dtd));
            }
        }
        for def in dtd.attributes_of(name) {
            cp.attributes.push(AttributeItem {
                name: def.name.clone(),
                optional: !matches!(def.default, DefaultDecl::Required),
            });
        }
        ast.rules.push(RuleAst {
            pattern: AncestorPattern {
                path: PathExpr::Seq(vec![PathExpr::AnyChain, PathExpr::Name(name.clone())]),
                attributes: Vec::new(),
                source: name.clone(),
            },
            body: RuleBody::Complex(cp),
            span: Span::default(),
        });
    }

    // Attribute-type rules: scoped per element (DTD types per element).
    for (elem, defs) in &dtd.attlists {
        for def in defs {
            let (st, facets) = att_type_to_simple(&def.att_type);
            if st == SimpleType::String && facets.is_empty() {
                continue; // the default; no rule needed
            }
            ast.rules.push(RuleAst {
                pattern: AncestorPattern {
                    path: PathExpr::Seq(vec![PathExpr::AnyChain, PathExpr::Name(elem.clone())]),
                    attributes: vec![def.name.clone()],
                    source: format!("{elem}/@{}", def.name),
                },
                body: RuleBody::Simple(st, facets),
                span: Span::default(),
            });
        }
    }

    BonxaiSchema::from_ast(ast)
}

fn star_of_names(names: &[String]) -> Particle {
    let alts: Vec<Particle> = names.iter().map(|n| Particle::Element(n.clone())).collect();
    Particle::Star(Box::new(if alts.len() == 1 {
        alts.into_iter().next().expect("len checked")
    } else {
        Particle::Alt(alts)
    }))
}

fn regex_to_particle(r: &relang::Regex, dtd: &Dtd) -> Particle {
    use relang::Regex;
    match r {
        Regex::Empty | Regex::Epsilon => Particle::Seq(Vec::new()),
        Regex::Sym(s) => Particle::Element(dtd.alphabet.name(*s).to_owned()),
        Regex::Concat(parts) => {
            Particle::Seq(parts.iter().map(|p| regex_to_particle(p, dtd)).collect())
        }
        Regex::Alt(parts) => {
            Particle::Alt(parts.iter().map(|p| regex_to_particle(p, dtd)).collect())
        }
        Regex::Interleave(parts) => {
            Particle::Interleave(parts.iter().map(|p| regex_to_particle(p, dtd)).collect())
        }
        Regex::Star(inner) => Particle::Star(Box::new(regex_to_particle(inner, dtd))),
        Regex::Plus(inner) => Particle::Plus(Box::new(regex_to_particle(inner, dtd))),
        Regex::Opt(inner) => Particle::Opt(Box::new(regex_to_particle(inner, dtd))),
        Regex::Repeat(inner, lo, hi) => Particle::Repeat(
            Box::new(regex_to_particle(inner, dtd)),
            *lo,
            match hi {
                relang::UpperBound::Finite(m) => Some(*m),
                relang::UpperBound::Unbounded => None,
            },
        ),
    }
}

fn att_type_to_simple(t: &AttType) -> (SimpleType, xsd::simple_types::Facets) {
    use xsd::simple_types::Facets;
    match t {
        AttType::Cdata => (SimpleType::String, Facets::default()),
        AttType::Id => (SimpleType::Id, Facets::default()),
        AttType::IdRef | AttType::IdRefs => (SimpleType::IdRef, Facets::default()),
        AttType::NmToken | AttType::NmTokens | AttType::Entity => {
            (SimpleType::NmToken, Facets::default())
        }
        // DTD enumerations map exactly onto the enumeration facet.
        AttType::Enumerated(values) => (
            SimpleType::NmToken,
            Facets {
                enumeration: values.clone(),
                ..Facets::default()
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::dtd::parse_dtd;
    use xmltree::parse_document;

    /// A reduced version of Figure 2's DTD.
    const DTD: &str = r#"
        <!ENTITY % markup "bold|italic">
        <!ELEMENT document (template, content)>
        <!ELEMENT template (section)>
        <!ELEMENT content (section)*>
        <!ELEMENT section (#PCDATA|section|%markup;)*>
        <!ATTLIST section title CDATA #IMPLIED
                          level CDATA #IMPLIED>
        <!ELEMENT bold (#PCDATA|%markup;)*>
        <!ELEMENT italic (#PCDATA|%markup;)*>
    "#;

    #[test]
    fn converted_schema_agrees_with_dtd_validator() {
        let dtd = parse_dtd(DTD).unwrap();
        let schema = dtd_to_bonxai(&dtd, &["document"]).unwrap();
        let docs = [
            r#"<document><template><section/></template>
               <content><section title="A">x <bold>y</bold></section></content></document>"#,
            r#"<document><content/><template><section/></template></document>"#, // wrong order
            r#"<document><template><section/></template><content><template/></content></document>"#,
            r#"<document><template><section/></template><content/></document>"#,
        ];
        for src in docs {
            let doc = parse_document(src).unwrap();
            assert_eq!(
                xmltree::dtd::is_valid(&dtd, &doc),
                schema.is_valid(&doc),
                "{src}"
            );
        }
    }

    #[test]
    fn converted_schema_is_one_suffix_style() {
        // every rule LHS is //name — a 1-suffix schema, as the paper notes
        // DTDs are.
        let dtd = parse_dtd(DTD).unwrap();
        let schema = dtd_to_bonxai(&dtd, &["document"]).unwrap();
        let (_, k) = crate::translate::classify_bxsd(&schema.bxsd)
            .expect("DTD conversion yields suffix rules");
        assert_eq!(k, 1);
    }

    #[test]
    fn empty_and_any_content() {
        let dtd = parse_dtd("<!ELEMENT a EMPTY> <!ELEMENT b ANY> <!ELEMENT c (a, b)>").unwrap();
        let schema = dtd_to_bonxai(&dtd, &["c"]).unwrap();
        let doc = parse_document(r#"<c><a/><b>anything <a/> goes</b></c>"#).unwrap();
        assert!(
            schema.is_valid(&doc),
            "{:?}",
            schema.validate(&doc).structure.violations
        );
        let bad = parse_document(r#"<c><a>no children</a><b/></c>"#).unwrap();
        assert!(!schema.is_valid(&bad));
    }

    #[test]
    fn attribute_types_mapped() {
        let dtd = parse_dtd(
            r#"<!ELEMENT a EMPTY>
               <!ATTLIST a id ID #REQUIRED kind (x|y) "x">"#,
        )
        .unwrap();
        let schema = dtd_to_bonxai(&dtd, &["a"]).unwrap();
        let good = parse_document(r#"<a id="i1" kind="x"/>"#).unwrap();
        assert!(schema.is_valid(&good));
        let missing = parse_document(r#"<a kind="x"/>"#).unwrap();
        assert!(!schema.is_valid(&missing));
        let bad_token = parse_document(r#"<a id="two words"/>"#).unwrap();
        assert!(!schema.is_valid(&bad_token));
    }
}

#[cfg(test)]
mod any_tests {
    use crate::schema::BonxaiSchema;
    use xmltree::parse_document;

    /// The `any` wildcard: open content through the whole pipeline.
    #[test]
    fn any_wildcard_end_to_end() {
        let schema = BonxaiSchema::parse(
            r#"
            global { doc }
            grammar {
              doc = { element head, element blob }
              head = { }
              blob = { any }
            }
        "#,
        )
        .unwrap();
        // blob accepts arbitrary content: any order, repetition, text and
        // attributes. (Descendants still match their own rules — a nested
        // <head> must satisfy the head rule, which empty ones do.)
        let ok = parse_document(
            r#"<doc><head/><blob x="1">text <head/><blob>more <head/><head/></blob></blob></doc>"#,
        )
        .unwrap();
        assert!(
            schema.is_valid(&ok),
            "{:?}",
            schema.validate(&ok).structure.violations
        );
        // but head stays strict
        let bad = parse_document(r#"<doc><head>nope</head><blob/></doc>"#).unwrap();
        assert!(!schema.is_valid(&bad));

        // printing round-trips the wildcard
        let printed = schema.to_source();
        assert!(printed.contains("{ any }"), "{printed}");
        let again = BonxaiSchema::parse(&printed).unwrap();
        assert!(again.is_valid(&ok));
        assert!(!again.is_valid(&bad));
    }

    #[test]
    fn any_cannot_mix_with_elements() {
        let err =
            BonxaiSchema::parse("global { a } grammar { a = { any, element b } }").unwrap_err();
        assert!(err.message.contains("any"), "{err}");
    }
}
