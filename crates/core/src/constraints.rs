//! Integrity constraints: `unique`, `key`, and `keyref` (Section 3.1).
//!
//! "BonXai allows to express the same integrity constraints as XML Schema
//! (i.e., unique, key, and keyref)." A constraint has a *selector* — an
//! ancestor pattern choosing the constrained nodes — and a list of
//! *fields* — attribute or child-element values forming the tuple.
//!
//! The concrete syntax accepted in the `constraints { … }` block:
//!
//! ```text
//! constraints {
//!   unique //style { @name }
//!   key styleKey = //userstyles/style { @name }
//!   keyref //content//style { @name } references styleKey
//! }
//! ```

use std::collections::BTreeMap;
use std::fmt;

use relang::{Alphabet, CompiledDre, Sym};
use xmltree::{Document, NodeId};

use crate::lang::ast::PathExpr;

/// The three constraint kinds of XML Schema / BonXai.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConstraintKind {
    /// Tuples must be pairwise distinct where fully present.
    Unique,
    /// Tuples must be present and pairwise distinct.
    Key,
    /// Tuples must occur among the tuples of the referenced key.
    KeyRef {
        /// Name of the referenced key.
        refer: String,
    },
}

/// A field of a constraint tuple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Field {
    /// `@name` — an attribute of the selected element.
    Attribute(String),
    /// `name` — the text content of the first child element so named.
    ChildText(String),
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::Attribute(n) => write!(f, "@{n}"),
            Field::ChildText(n) => write!(f, "{n}"),
        }
    }
}

/// One integrity constraint.
#[derive(Clone, Debug, PartialEq)]
pub struct Constraint {
    /// Optional name (required for keys so keyrefs can reference them).
    pub name: Option<String>,
    /// The kind.
    pub kind: ConstraintKind,
    /// Selector: an ancestor pattern over element names.
    pub selector: PathExpr,
    /// The tuple fields.
    pub fields: Vec<Field>,
}

/// A constraint violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConstraintViolation {
    /// Two selected nodes share a tuple under `unique`/`key`.
    Duplicate {
        /// Constraint name or index description.
        constraint: String,
        /// The duplicated tuple.
        tuple: Vec<String>,
        /// The two offending nodes.
        nodes: (NodeId, NodeId),
    },
    /// A `key` field is absent on a selected node.
    MissingField {
        /// Constraint name or index description.
        constraint: String,
        /// The missing field.
        field: String,
        /// The offending node.
        node: NodeId,
    },
    /// A `keyref` tuple has no matching key tuple.
    DanglingRef {
        /// Constraint name or index description.
        constraint: String,
        /// The dangling tuple.
        tuple: Vec<String>,
        /// The offending node.
        node: NodeId,
    },
    /// A `keyref` references an unknown key name.
    UnknownKey {
        /// The missing key name.
        refer: String,
    },
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintViolation::Duplicate {
                constraint, tuple, ..
            } => {
                write!(f, "{constraint}: duplicate tuple {tuple:?}")
            }
            ConstraintViolation::MissingField {
                constraint, field, ..
            } => {
                write!(f, "{constraint}: key field {field} missing")
            }
            ConstraintViolation::DanglingRef {
                constraint, tuple, ..
            } => {
                write!(f, "{constraint}: tuple {tuple:?} matches no key")
            }
            ConstraintViolation::UnknownKey { refer } => {
                write!(f, "keyref references unknown key {refer:?}")
            }
        }
    }
}

/// Checks `constraints` against `doc`. `alphabet` is the schema's element
/// alphabet (selector patterns are interpreted over it).
pub fn check_constraints(
    constraints: &[Constraint],
    alphabet: &Alphabet,
    doc: &Document,
) -> Vec<ConstraintViolation> {
    let mut violations = Vec::new();
    // Tuples per key name, collected first so keyrefs can look them up
    // regardless of declaration order.
    let mut key_tuples: BTreeMap<&str, Vec<Vec<String>>> = BTreeMap::new();

    let compiled: Vec<CompiledDre> = constraints
        .iter()
        .map(|c| {
            let regex = crate::lang::lower::path_to_regex_resolved(&c.selector, alphabet);
            CompiledDre::compile(&regex, alphabet.len())
        })
        .collect();

    // Precompute symbolic ancestor strings once.
    let paths: Vec<(NodeId, Option<Vec<Sym>>)> = doc
        .iter_elements()
        .map(|n| {
            let path: Option<Vec<Sym>> = doc
                .anc_str(n)
                .iter()
                .map(|name| alphabet.lookup(name))
                .collect();
            (n, path)
        })
        .collect();

    // Collects the complete tuples of constraint `idx`, reporting missing
    // key fields along the way.
    let collect = |idx: usize, violations: &mut Vec<ConstraintViolation>| {
        let constraint = &constraints[idx];
        let label = constraint
            .name
            .clone()
            .unwrap_or_else(|| format!("constraint #{idx}"));
        let mut out: Vec<(NodeId, Vec<String>)> = Vec::new();
        for (node, path) in &paths {
            let Some(path) = path else { continue };
            if !compiled[idx].matches(path) {
                continue;
            }
            let mut tuple = Vec::with_capacity(constraint.fields.len());
            let mut missing = None;
            for field in &constraint.fields {
                match field_value(doc, *node, field) {
                    Some(v) => tuple.push(v),
                    None => {
                        missing = Some(field);
                        break;
                    }
                }
            }
            match missing {
                Some(field) => {
                    if constraint.kind == ConstraintKind::Key {
                        violations.push(ConstraintViolation::MissingField {
                            constraint: label.clone(),
                            field: field.to_string(),
                            node: *node,
                        });
                    }
                    // partial tuples do not participate
                }
                None => out.push((*node, tuple)),
            }
        }
        (label, out)
    };

    // Pass 1: unique and key constraints (collect key tuple sets).
    for (idx, constraint) in constraints.iter().enumerate() {
        if matches!(constraint.kind, ConstraintKind::KeyRef { .. }) {
            continue;
        }
        let (label, tuples) = collect(idx, &mut violations);
        let mut seen: BTreeMap<Vec<String>, NodeId> = BTreeMap::new();
        for (node, tuple) in &tuples {
            if let Some(&first) = seen.get(tuple) {
                violations.push(ConstraintViolation::Duplicate {
                    constraint: label.clone(),
                    tuple: tuple.clone(),
                    nodes: (first, *node),
                });
            } else {
                seen.insert(tuple.clone(), *node);
            }
        }
        if constraint.kind == ConstraintKind::Key {
            if let Some(name) = &constraint.name {
                key_tuples.insert(name, tuples.into_iter().map(|(_, t)| t).collect());
            }
        }
    }

    // Pass 2: keyrefs, now that all keys are known.
    for (idx, constraint) in constraints.iter().enumerate() {
        let ConstraintKind::KeyRef { refer } = &constraint.kind else {
            continue;
        };
        let Some(key) = key_tuples.get(refer.as_str()) else {
            violations.push(ConstraintViolation::UnknownKey {
                refer: refer.clone(),
            });
            continue;
        };
        let (label, tuples) = collect(idx, &mut violations);
        for (node, tuple) in tuples {
            if !key.contains(&tuple) {
                violations.push(ConstraintViolation::DanglingRef {
                    constraint: label.clone(),
                    tuple,
                    node,
                });
            }
        }
    }
    violations
}

fn field_value(doc: &Document, node: NodeId, field: &Field) -> Option<String> {
    match field {
        Field::Attribute(name) => doc.attribute(node, name).map(str::to_owned),
        Field::ChildText(name) => {
            let child = doc
                .element_children(node)
                .find(|&c| doc.name(c) == Some(name.as_str()))?;
            let text: String = doc
                .children(child)
                .iter()
                .filter_map(|&c| doc.text(c))
                .collect();
            Some(text)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::builder::elem;

    fn alphabet() -> Alphabet {
        Alphabet::from_names(["doc", "userstyles", "style", "content", "item"])
    }

    fn selector(names: &[&str]) -> PathExpr {
        // //n1/n2/…
        let mut parts = vec![PathExpr::AnyChain];
        parts.extend(names.iter().map(|n| PathExpr::Name((*n).to_owned())));
        PathExpr::Seq(parts)
    }

    fn doc_with_styles(names: &[&str], refs: &[&str]) -> Document {
        let mut root = elem("doc");
        let mut us = elem("userstyles");
        for n in names {
            us = us.child(elem("style").attr("name", n));
        }
        let mut content = elem("content");
        for r in refs {
            content = content.child(elem("style").attr("name", r));
        }
        root = root.child(us).child(content);
        root.build()
    }

    #[test]
    fn unique_detects_duplicates() {
        let c = Constraint {
            name: None,
            kind: ConstraintKind::Unique,
            selector: selector(&["userstyles", "style"]),
            fields: vec![Field::Attribute("name".to_owned())],
        };
        let ok = doc_with_styles(&["a", "b"], &[]);
        assert!(check_constraints(std::slice::from_ref(&c), &alphabet(), &ok).is_empty());
        let dup = doc_with_styles(&["a", "a"], &[]);
        let v = check_constraints(&[c], &alphabet(), &dup);
        assert!(matches!(v[0], ConstraintViolation::Duplicate { .. }));
    }

    #[test]
    fn key_requires_presence() {
        let c = Constraint {
            name: Some("styleKey".to_owned()),
            kind: ConstraintKind::Key,
            selector: selector(&["userstyles", "style"]),
            fields: vec![Field::Attribute("name".to_owned())],
        };
        let mut doc = doc_with_styles(&["a"], &[]);
        // add a style without a name
        let us = doc.element_children(doc.root()).next().unwrap();
        doc.add_element(us, "style");
        let v = check_constraints(&[c], &alphabet(), &doc);
        assert!(matches!(v[0], ConstraintViolation::MissingField { .. }));
    }

    #[test]
    fn keyref_resolves_against_key() {
        let key = Constraint {
            name: Some("styleKey".to_owned()),
            kind: ConstraintKind::Key,
            selector: selector(&["userstyles", "style"]),
            fields: vec![Field::Attribute("name".to_owned())],
        };
        let kref = Constraint {
            name: None,
            kind: ConstraintKind::KeyRef {
                refer: "styleKey".to_owned(),
            },
            selector: selector(&["content", "style"]),
            fields: vec![Field::Attribute("name".to_owned())],
        };
        let ok = doc_with_styles(&["a", "b"], &["a", "b", "a"]);
        assert!(check_constraints(&[key.clone(), kref.clone()], &alphabet(), &ok).is_empty());
        let bad = doc_with_styles(&["a"], &["ghost"]);
        let v = check_constraints(&[key, kref], &alphabet(), &bad);
        assert!(matches!(v[0], ConstraintViolation::DanglingRef { .. }));
    }

    #[test]
    fn keyref_declared_before_key_still_resolves() {
        let kref = Constraint {
            name: None,
            kind: ConstraintKind::KeyRef {
                refer: "k".to_owned(),
            },
            selector: selector(&["content", "style"]),
            fields: vec![Field::Attribute("name".to_owned())],
        };
        let key = Constraint {
            name: Some("k".to_owned()),
            kind: ConstraintKind::Key,
            selector: selector(&["userstyles", "style"]),
            fields: vec![Field::Attribute("name".to_owned())],
        };
        let ok = doc_with_styles(&["a"], &["a"]);
        assert!(check_constraints(&[kref, key], &alphabet(), &ok).is_empty());
    }

    #[test]
    fn unknown_key_reported_once() {
        let kref = Constraint {
            name: None,
            kind: ConstraintKind::KeyRef {
                refer: "nope".to_owned(),
            },
            selector: selector(&["content", "style"]),
            fields: vec![Field::Attribute("name".to_owned())],
        };
        let doc = doc_with_styles(&[], &["a", "b"]);
        let v = check_constraints(&[kref], &alphabet(), &doc);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], ConstraintViolation::UnknownKey { .. }));
    }

    #[test]
    fn child_text_fields() {
        let c = Constraint {
            name: Some("itemKey".to_owned()),
            kind: ConstraintKind::Key,
            selector: selector(&["item"]),
            fields: vec![Field::ChildText("style".to_owned())],
        };
        let doc = elem("doc")
            .child(elem("item").child(elem("style").text("x")))
            .child(elem("item").child(elem("style").text("x")))
            .build();
        let v = check_constraints(&[c], &alphabet(), &doc);
        assert!(matches!(v[0], ConstraintViolation::Duplicate { .. }));
    }
}
