//! The differential conformance harness: one input, every validation
//! path, one verdict.
//!
//! The repo's fast validators ([`crate::validate`]) share automata
//! machinery — Glushkov construction, DFA determinization, the
//! relevance product, per-schema caches. A bug in that machinery can
//! make *all* of them agree on a wrong answer. The [`crate::oracle`]
//! module exists to break that failure mode: it re-derives the paper's
//! priority semantics from the AST with none of the shared machinery.
//! This module is the driver that pits them against each other.
//!
//! [`check`] runs a single `(schema, document-bytes)` pair through
//!
//! * the **oracle** (naive tree walk, independent matching engines),
//! * **tree-product** and **tree-lockstep** validation,
//! * **stream-product** and **stream-lockstep** validation,
//!
//! each parse/stream under every lexer engine available on this machine
//! (the detected SIMD kernel and the scalar fallback) plus the
//! buffered-`io::Read` source. Every run must produce a report
//! byte-identical to the oracle's — same violations at the same node
//! ids in the same order, same per-node match sets. Anything else is
//! returned as a [`Divergence`], and **a divergence is always a bug**:
//! either in a fast path, in the shared automata layer, or in the
//! oracle itself. It is never "acceptable disagreement"; the policy is
//! that the divergence is diagnosed and fixed, and the offending input
//! is checked into the corpus under `data/conformance/`.
//!
//! Malformed inputs short-circuit: every parsing path must *reject*
//! the bytes, and a path that instead accepts them (or reports a
//! different error) is a divergence of its own. This is what the fuzz
//! harness leans on — mutated bytes rarely stay well-formed, and the
//! lexer engines must still agree byte-for-byte.

use crate::bxsd::Bxsd;
use crate::oracle;
use crate::validate::{BxsdReport, CompiledBxsd, ValidateOptions};
use xmltree::simd::Engine;
use xmltree::{parse_from_reader, Document, XmlReader};

/// One validation run that disagreed with the reference answer.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which path diverged: `oracle`, `tree-product`, `tree-lockstep`,
    /// `stream-product`, `stream-lockstep`, or `parse`.
    pub path: &'static str,
    /// Lexer engine and byte source the run used, e.g. `sse2/str`.
    pub config: String,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} {}] {}", self.path, self.config, self.detail)
    }
}

/// The outcome of running one input through every path.
#[derive(Debug)]
pub struct Outcome {
    /// The oracle's report, when the input parsed at all.
    pub oracle: Option<BxsdReport>,
    /// Every disagreement between paths. Empty means full agreement.
    pub divergences: Vec<Divergence>,
}

impl Outcome {
    /// The agreed verdict: `Some(true)` if everything agreed the
    /// document is valid, `Some(false)` if everything agreed it is
    /// invalid, `None` if the input was (unanimously) malformed.
    /// Meaningless when [`Self::divergences`] is non-empty.
    pub fn verdict(&self) -> Option<bool> {
        self.oracle.as_ref().map(BxsdReport::is_valid)
    }
}

/// The lexer engines to cross-check: whatever [`Engine::detect`] picked
/// plus the scalar fallback (deduplicated when they coincide).
fn engines() -> Vec<(&'static str, Engine)> {
    let detected = Engine::detect();
    let name = match detected {
        Engine::Sse2 => "sse2",
        Engine::Neon => "neon",
        Engine::Scalar => "scalar",
    };
    let mut out = vec![(name, detected)];
    if detected != Engine::Scalar {
        out.push(("scalar", Engine::Scalar));
    }
    out
}

fn parse_with(input: &str, engine: Engine) -> Result<Document, xmltree::ParseError> {
    let mut reader = XmlReader::from_str(input);
    reader.set_engine(engine);
    parse_from_reader(reader).map(|p| p.document)
}

fn parse_with_io(input: &str, engine: Engine) -> Result<Document, xmltree::ParseError> {
    let mut reader = XmlReader::from_reader(input.as_bytes());
    reader.set_engine(engine);
    parse_from_reader(reader).map(|p| p.document)
}

fn diff_reports(got: &BxsdReport, want: &BxsdReport) -> Option<String> {
    if got.violations != want.violations {
        return Some(format!(
            "violations diverge: got {:?}, oracle has {:?}",
            got.violations, want.violations
        ));
    }
    if got.matches != want.matches {
        return Some(format!(
            "rule matches diverge: got {:?}, oracle has {:?}",
            got.matches, want.matches
        ));
    }
    None
}

/// Runs `input` against `bxsd` through every validation path and lexer
/// engine, comparing all of them to the oracle. `record_matches`
/// additionally demands agreement on the per-node matching-rule sets
/// (the `--rules` data), not just violations.
pub fn check(bxsd: &Bxsd, input: &str, record_matches: bool) -> Outcome {
    let mut divergences = Vec::new();
    let engines = engines();

    // Reference parse: detected engine, in-memory source. All other
    // engine/source combinations must agree with it — on the tree when
    // it parses (checked implicitly by validating each parse below),
    // and on the rejection when it does not.
    let reference = parse_with(input, engines[0].1);
    let doc = match reference {
        Err(ref err) => {
            let want = err.to_string();
            for &(name, engine) in &engines {
                for (src, parsed) in [
                    ("str", parse_with(input, engine)),
                    ("io", parse_with_io(input, engine)),
                ] {
                    match parsed {
                        Ok(_) => divergences.push(Divergence {
                            path: "parse",
                            config: format!("{name}/{src}"),
                            detail: format!("accepted input the reference parse rejects ({want})"),
                        }),
                        Err(e) if e.to_string() != want => divergences.push(Divergence {
                            path: "parse",
                            config: format!("{name}/{src}"),
                            detail: format!(
                                "error {:?} differs from reference {want:?}",
                                e.to_string()
                            ),
                        }),
                        Err(_) => {}
                    }
                }
            }
            return Outcome {
                oracle: None,
                divergences,
            };
        }
        Ok(doc) => doc,
    };

    let want = oracle::validate_with(bxsd, &doc, record_matches);
    let compiled = CompiledBxsd::new(bxsd);
    let product = ValidateOptions {
        record_matches,
        force_lockstep: false,
    };
    let lockstep = ValidateOptions {
        record_matches,
        force_lockstep: true,
    };

    for &(name, engine) in &engines {
        for (src, parsed) in [
            ("str", parse_with(input, engine)),
            ("io", parse_with_io(input, engine)),
        ] {
            // Tree paths, on this engine's own parse of the bytes.
            match parsed {
                Err(e) => divergences.push(Divergence {
                    path: "parse",
                    config: format!("{name}/{src}"),
                    detail: format!("rejected input the reference parse accepts: {e}"),
                }),
                Ok(doc) => {
                    for (path, opts) in [("tree-product", product), ("tree-lockstep", lockstep)] {
                        if let Some(d) = diff_reports(&compiled.validate_with(&doc, opts), &want) {
                            divergences.push(Divergence {
                                path,
                                config: format!("{name}/{src}"),
                                detail: d,
                            });
                        }
                    }
                }
            }
            // Streaming paths, re-lexing the bytes under the same config.
            for (path, opts) in [("stream-product", product), ("stream-lockstep", lockstep)] {
                let got = if src == "str" {
                    let mut reader = XmlReader::from_str(input);
                    reader.set_engine(engine);
                    compiled.validate_stream_with(&mut reader, opts)
                } else {
                    let mut reader = XmlReader::from_reader(input.as_bytes());
                    reader.set_engine(engine);
                    compiled.validate_stream_with(&mut reader, opts)
                };
                match got {
                    Err(e) => divergences.push(Divergence {
                        path,
                        config: format!("{name}/{src}"),
                        detail: format!("stream rejected input the reference parse accepts: {e}"),
                    }),
                    Ok(got) => {
                        if let Some(d) = diff_reports(&got, &want) {
                            divergences.push(Divergence {
                                path,
                                config: format!("{name}/{src}"),
                                detail: d,
                            });
                        }
                    }
                }
            }
        }
    }

    Outcome {
        oracle: Some(want),
        divergences,
    }
}
