//! Incremental revalidation: cost proportional to the edit, not the
//! document.
//!
//! The relevance-product run ([`crate::validate`]) is a deterministic
//! top-down state machine over the tree: each element's behaviour is a
//! function of (its ancestor product state, its attributes, its child
//! names, its text children). A full run therefore leaves behind
//! exactly the memo needed to replay only what an edit touched. This
//! module captures that memo as a [`ValidationState`] — SoA arrays
//! indexed by arena [`NodeId`], mirroring the streaming validator's
//! `HotFrame` fields (ancestor product state, content-DFA exit state,
//! per-pass violations) — and replays [`xmltree::Edit`]s against it
//! with [`CompiledBxsd::revalidate`].
//!
//! ## The dirty-propagation rule
//!
//! One *pass* is the per-element unit of work of `run_product`: given
//! the element's ancestor product state, it derives the relevant rule,
//! walks the children once (content-DFA stepping, unknown-name
//! detection with sibling dead-state poisoning, text detection, child
//! ancestor states), and emits the element's violations. A pass reads
//! nothing outside its element and the *names* of its children, so its
//! output can only change if
//!
//! 1. its own ancestor product state changed, or
//! 2. its attributes, text children, or child list changed — exactly
//!    what the mutation API logs as [`xmltree::Edit::Dirty`].
//!
//! Revalidation therefore re-runs the pass of every logged dirty node,
//! and from there recurses *downward* only into children whose
//! recomputed ancestor product state differs from the stored one (this
//! subsumes the content-DFA-exit early-stop: a child whose state is
//! unchanged has an unchanged subtree report, so if additionally the
//! parent's recomputed exit state matches, nothing below or beside it
//! is revisited).
//!
//! ## Why no ancestor walk-up is needed
//!
//! An ancestor's pass depends on its own ancestor state and its
//! children's *names*. Element names are immutable in place — the only
//! way to change the name at a tree position is `replace_subtree`,
//! which logs `Dirty(parent)` — and every mutation already logs the
//! element whose child list or content it touches. So the logged dirty
//! set is upward-closed by construction: no edit can change the pass
//! of a strict ancestor of its logged node, and the upward walk
//! terminates immediately. (The stored exit states make this checkable:
//! a debug assertion could recompute any ancestor's exit state and find
//! it unchanged.)
//!
//! ## Report identity
//!
//! Violations are stored per *generating pass*. Any two violations with
//! the same `node` come from the same pass (a pass emits at most one
//! `NoGoverningDefinition` for a child, and a child that triggered one
//! is dead — relevant rule `None` — so its own pass emits nothing for
//! itself), so concatenating the per-pass vectors in ascending
//! generating-node order and stable-sorting by node reproduces the
//! fresh run's canonically ordered report byte for byte.
//! `tests/incremental_equivalence.rs` pins this against both the fresh
//! validator and the oracle.
//!
//! Schemas whose relevance product exceeded its budget (Theorem 9
//! fallback) have no product states to memoize; for them `revalidate`
//! transparently degrades to a full fresh run — correct, just not
//! incremental — and [`ValidationState::is_incremental`] reports it.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use relang::ops::RelevanceProduct;
use relang::Sym;
use xmltree::{Document, Edit, NodeId};
use xsd::violation::{Violation, ViolationKind};

use crate::validate::{BxsdReport, CompiledBxsd, ContentEval};

/// Sentinel for "no ancestor product state stored" (text node, detached
/// node, or never visited). Real product states are bounded by the
/// compile budget, far below this.
const NOT_COMPUTED: u32 = u32::MAX;

/// Sentinel exit state: the node's content model is not evaluated by an
/// inline DFA (no relevant rule, simple content, buffered fallback), or
/// the DFA died before the end of the child word.
const NO_EXIT: u32 = u32::MAX;

/// Persistent per-document validation memo, produced by
/// [`CompiledBxsd::validate_persistent`] and updated in place by
/// [`CompiledBxsd::revalidate`]. All arrays are indexed by arena
/// [`NodeId`], so they survive edits (the arena never reuses ids).
#[derive(Clone, Debug, Default)]
pub struct ValidationState {
    /// Document generation this state is current for.
    generation: u64,
    /// Per node: ancestor product state, or [`NOT_COMPUTED`].
    anc: Vec<u32>,
    /// Per node: content-DFA exit state after the child word, or
    /// [`NO_EXIT`].
    exit: Vec<u32>,
    /// Per node: the violations its *pass* emitted (for the node itself
    /// and `NoGoverningDefinition` for an unknown-named child).
    viols: Vec<Vec<Violation>>,
    /// Nodes whose pass emitted at least one violation, in id order —
    /// makes report assembly O(violations), not O(document).
    has_viols: BTreeSet<NodeId>,
    /// The root element's name is not a start symbol: the report is the
    /// single `RootNotAllowed` violation and no passes run (matching
    /// the fresh validator's early return).
    root_rejected: bool,
    /// Set when the schema has no relevance product (lock-step
    /// fallback): the full fresh report, recomputed on every
    /// revalidation.
    fallback: Option<BxsdReport>,
    /// Elements whose pass ran during the last
    /// `validate_persistent`/`revalidate` call (the work measure the
    /// incremental engine is accountable to).
    passes: usize,
}

impl ValidationState {
    /// The document generation this state reflects.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether revalidation is actually incremental (`false`: the
    /// schema runs lock-step, so every revalidation is a full run).
    pub fn is_incremental(&self) -> bool {
        self.fallback.is_none()
    }

    /// Elements whose pass was (re)executed by the last
    /// [`CompiledBxsd::validate_persistent`] or
    /// [`CompiledBxsd::revalidate`] call.
    pub fn last_passes(&self) -> usize {
        self.passes
    }

    /// Assembles the current report — byte-identical to
    /// [`CompiledBxsd::validate`] on the same document.
    pub fn report(&self) -> BxsdReport {
        if let Some(r) = &self.fallback {
            return r.clone();
        }
        let mut violations = Vec::new();
        for &n in &self.has_viols {
            violations.extend_from_slice(&self.viols[n.0]);
        }
        // Stable, exactly like the fresh run's canonical ordering; any
        // two equal-node violations come from one pass (module docs).
        violations.sort_by_key(|v| v.node);
        BxsdReport {
            violations,
            matches: BTreeMap::new(),
        }
    }

    /// Grows the SoA arrays to cover nodes the edits appended.
    fn cover(&mut self, n: usize) {
        if self.anc.len() < n {
            self.anc.resize(n, NOT_COMPUTED);
            self.exit.resize(n, NO_EXIT);
            self.viols.resize(n, Vec::new());
        }
    }

    /// Forgets everything about `node`'s subtree (it was detached).
    fn purge(&mut self, doc: &Document, node: NodeId) {
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            self.anc[n.0] = NOT_COMPUTED;
            self.exit[n.0] = NO_EXIT;
            self.viols[n.0].clear();
            self.has_viols.remove(&n);
            stack.extend_from_slice(doc.children(n));
        }
    }
}

impl CompiledBxsd<'_> {
    /// The opt-in full run: validates `doc` (default options) and
    /// returns the per-node memo that [`Self::revalidate`] replays
    /// edits against. `state.report()` is the validation report.
    pub fn validate_persistent(&self, doc: &Document) -> ValidationState {
        let mut state = ValidationState::default();
        self.full_run(doc, &mut state);
        state
    }

    /// Replays `edits` (an [`xmltree::EditLog`] suffix,
    /// `log.since(state.generation())`) against `state`, re-running
    /// only the passes the edits can have changed, and returns the
    /// updated report — byte-identical to a fresh [`Self::validate`]
    /// of the edited document.
    pub fn revalidate(
        &self,
        doc: &Document,
        state: &mut ValidationState,
        edits: &[(u64, Edit)],
    ) -> BxsdReport {
        state.passes = 0;
        if state.generation == doc.generation() && edits.is_empty() {
            return state.report();
        }
        // Lock-step fallback, a replaced root, or an edit trail that
        // does not reach the document's current generation (the caller
        // cleared the log too early): full fresh run.
        let covered = edits.last().is_some_and(|&(g, _)| g == doc.generation());
        if state.fallback.is_some()
            || !covered
            || edits.iter().any(|&(_, e)| e == Edit::RootReplaced)
        {
            self.full_run(doc, &mut *state);
            return state.report();
        }
        state.cover(doc.len());
        if state.root_rejected {
            // Names are immutable in place, so only RootReplaced (full
            // rerun above) can un-reject the root; the report stays the
            // single RootNotAllowed violation whatever else was edited.
            state.generation = doc.generation();
            return state.report();
        }
        let p = self
            .relevance
            .as_ref()
            .expect("incremental state implies a relevance product")
            .clone();

        // Detached subtrees first: their memo is stale, and a Dirty
        // entry pointing into one must be recognized as unreachable.
        for &(_, edit) in edits {
            if let Edit::Detached(n) = edit {
                state.purge(doc, n);
            }
        }
        // Dirty passes, ancestors first (parent ids precede child ids
        // in the arena, for parsed and edited documents alike), so a
        // nested dirty node re-runs with its up-to-date ancestor state.
        let dirty: BTreeSet<NodeId> = edits
            .iter()
            .filter_map(|&(_, e)| match e {
                Edit::Dirty(n) => Some(n),
                _ => None,
            })
            .collect();
        let syms = self.resolve_names(doc);
        let mut visited = HashSet::new();
        for &n in &dirty {
            if visited.contains(&n) || !is_attached(doc, n) {
                continue;
            }
            debug_assert_ne!(state.anc[n.0], NOT_COMPUTED, "attached ⇒ memoized");
            self.run_passes(&p, doc, &syms, state, n, &mut visited);
        }
        state.generation = doc.generation();
        state.report()
    }

    /// Full traversal from the root, rebuilding `state` from scratch.
    fn full_run(&self, doc: &Document, state: &mut ValidationState) {
        state.anc.clear();
        state.exit.clear();
        state.viols.clear();
        state.has_viols.clear();
        state.root_rejected = false;
        state.fallback = None;
        state.generation = doc.generation();
        state.passes = 0;
        let Some(p) = self.relevance.clone() else {
            // No product ⇒ nothing to memoize; degrade to a stored
            // fresh report (recomputed on every revalidation).
            state.passes = doc.element_count();
            state.fallback = Some(self.validate(doc));
            return;
        };
        assert!(
            (p.n_states() as u64) < u64::from(NOT_COMPUTED),
            "product states collide with the NOT_COMPUTED sentinel"
        );
        state.cover(doc.len());
        let root = doc.root();
        let root_name = doc.name(root).expect("root is an element");
        let root_sym = self.bxsd.ename.lookup(root_name);
        let Some(root_sym) = root_sym.filter(|s| self.bxsd.start.contains(s)) else {
            state.root_rejected = true;
            state.viols[root.0] = vec![Violation {
                node: root,
                kind: ViolationKind::RootNotAllowed(root_name.to_owned()),
            }];
            state.has_viols.insert(root);
            return;
        };
        state.anc[root.0] = p.step(p.initial(), root_sym);
        let syms = self.resolve_names(doc);
        let mut visited = HashSet::new();
        self.run_passes(&p, doc, &syms, state, root, &mut visited);
    }

    /// Re-runs the pass of `start` (whose `state.anc` entry must be
    /// current) and recurses into exactly those children whose
    /// recomputed ancestor product state differs from the memo. On a
    /// fresh state every stored child state is [`NOT_COMPUTED`], so the
    /// same loop performs the full traversal.
    fn run_passes(
        &self,
        p: &RelevanceProduct,
        doc: &Document,
        syms: &[Option<Sym>],
        state: &mut ValidationState,
        start: NodeId,
        visited: &mut HashSet<NodeId>,
    ) {
        let mut word: Vec<Sym> = Vec::new();
        let mut stack = vec![start];
        while let Some(node) = stack.pop() {
            visited.insert(node);
            state.passes += 1;
            let q = state.anc[node.0];
            let relevant = p.relevant(q).map(|i| i as usize);
            // The fused child pass of `run_product`, with child states
            // diffed against the memo instead of pushed unconditionally.
            let mut content = self.content_eval(relevant, &mut word);
            let mut count = 0usize;
            let mut unknown_at = None;
            let mut has_text = false;
            let mut viols = std::mem::take(&mut state.viols[node.0]);
            viols.clear();
            for &child in doc.children(node) {
                let Some(nid) = doc.name_id(child) else {
                    has_text = has_text
                        || doc
                            .text(child)
                            .is_some_and(|t| !t.chars().all(char::is_whitespace));
                    continue;
                };
                let child_q = if unknown_at.is_some() {
                    // Sibling dead-state poisoning: children after the
                    // first unknown name are dead and report nothing.
                    p.dead()
                } else {
                    match syms[nid as usize] {
                        Some(sym) => {
                            content.step(sym, count, &mut word);
                            count += 1;
                            p.step(q, sym)
                        }
                        None => {
                            viols.push(Violation {
                                node: child,
                                kind: ViolationKind::NoGoverningDefinition(
                                    doc.name(child).expect("element").to_owned(),
                                ),
                            });
                            unknown_at = Some(count);
                            p.dead()
                        }
                    }
                };
                if state.anc[child.0] != child_q {
                    state.anc[child.0] = child_q;
                    stack.push(child);
                }
            }
            state.exit[node.0] = match &content {
                ContentEval::Dfa {
                    q, failed: None, ..
                } => *q as u32,
                _ => NO_EXIT,
            };
            let failed_at = unknown_at.or_else(|| content.finish(count, &word));
            self.check_node(doc, node, relevant, failed_at, has_text, &mut viols);
            if viols.is_empty() {
                state.has_viols.remove(&node);
            } else {
                state.has_viols.insert(node);
            }
            state.viols[node.0] = viols;
        }
    }
}

/// Whether `node` is still reachable from the document root (a logged
/// dirty node may since have been carried away by a detach).
fn is_attached(doc: &Document, node: NodeId) -> bool {
    let mut n = node;
    while let Some(parent) = doc.parent(n) {
        n = parent;
    }
    n == doc.root()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bxsd::BxsdBuilder;
    use relang::Regex;
    use xmltree::builder::elem;
    use xsd::{AttributeUse, ContentModel};

    /// The Figure-5-style schema of the validate tests.
    fn example() -> crate::bxsd::Bxsd {
        let mut b = BxsdBuilder::new();
        b.start("document");
        let template = b.ename.intern("template");
        let content = b.ename.intern("content");
        let section = b.ename.intern("section");
        b.suffix_rule(
            &["document"],
            ContentModel::new(Regex::concat(vec![
                Regex::sym(template),
                Regex::sym(content),
            ])),
        );
        b.suffix_rule(
            &["template"],
            ContentModel::new(Regex::opt(Regex::sym(section))),
        );
        b.suffix_rule(
            &["content"],
            ContentModel::new(Regex::star(Regex::sym(section))),
        );
        b.suffix_rule(
            &["section"],
            ContentModel::new(Regex::star(Regex::sym(section)))
                .with_mixed(true)
                .with_attributes([AttributeUse::required("title")]),
        );
        b.build().unwrap()
    }

    fn doc() -> Document {
        elem("document")
            .child(elem("template"))
            .child(elem("content").child(elem("section").attr("title", "Intro")))
            .build()
    }

    /// Drives one edit closure through the incremental engine and
    /// asserts report identity against a fresh validation.
    fn check(schema: &crate::bxsd::Bxsd, doc: &mut Document, edit: impl FnOnce(&mut Document)) {
        let c = CompiledBxsd::new(schema);
        doc.enable_edit_log();
        let mut state = c.validate_persistent(doc);
        assert_eq!(state.report().violations, c.validate(doc).violations);
        let g = state.generation();
        edit(doc);
        let edits = doc.edit_log().unwrap().since(g).to_vec();
        let got = c.revalidate(doc, &mut state, &edits);
        let want = c.validate(doc);
        assert_eq!(got.violations, want.violations);
        assert_eq!(state.report().violations, want.violations);
    }

    #[test]
    fn attribute_edit_flips_validity_both_ways() {
        let x = example();
        let mut d = doc();
        let section = d
            .iter_elements()
            .find(|&n| d.name(n) == Some("section"))
            .unwrap();
        check(&x, &mut d, |d| d.remove_attribute(section, "title"));
        assert!(!CompiledBxsd::new(&x).validate(&d).is_valid());
        check(&x, &mut d, |d| d.set_attribute(section, "title", "Back"));
        assert!(CompiledBxsd::new(&x).validate(&d).is_valid());
    }

    #[test]
    fn small_edit_reruns_few_passes() {
        let x = example();
        let mut d = doc();
        let content = d
            .iter_elements()
            .find(|&n| d.name(n) == Some("content"))
            .unwrap();
        // Widen the document so a full run is visibly larger.
        for _ in 0..50 {
            let s = d.add_element(content, "section");
            d.set_attribute(s, "title", "t");
        }
        let c = CompiledBxsd::new(&x);
        d.enable_edit_log();
        let mut state = c.validate_persistent(&d);
        let full_passes = state.last_passes();
        let g = state.generation();
        let s = d.iter_elements().last().unwrap();
        d.set_attribute(s, "title", "still fine");
        let edits = d.edit_log().unwrap().since(g).to_vec();
        let got = c.revalidate(&d, &mut state, &edits);
        assert!(got.is_valid());
        assert_eq!(state.last_passes(), 1, "one dirty leaf, one pass");
        assert!(full_passes > 50);
    }

    #[test]
    fn structural_edits_match_fresh() {
        let x = example();
        let mut d = doc();
        let content = d
            .iter_elements()
            .find(|&n| d.name(n) == Some("content"))
            .unwrap();
        check(&x, &mut d, |d| {
            d.insert_child(content, 0, "zzz");
        });
        let zzz = d
            .iter_elements()
            .find(|&n| d.name(n) == Some("zzz"))
            .unwrap();
        check(&x, &mut d, |d| d.remove_child(content, zzz));
        check(&x, &mut d, |d| {
            let t = d.add_element(content, "section");
            d.add_text(t, "mixed is fine");
        });
    }

    #[test]
    fn root_replacement_falls_back_to_full_run() {
        let x = example();
        let mut d = doc();
        check(&x, &mut d, |d| {
            let src = Document::new("section");
            d.replace_subtree(d.root(), &src, src.root());
        });
        assert!(matches!(
            CompiledBxsd::new(&x).validate(&d).violations[0].kind,
            ViolationKind::RootNotAllowed(_)
        ));
    }

    #[test]
    fn rejected_root_stays_rejected_under_edits() {
        let x = example();
        let mut d = elem("zzz").child(elem("template")).build();
        let template = d.iter_elements().nth(1).unwrap();
        check(&x, &mut d, |d| {
            d.add_element(template, "section");
        });
    }

    #[test]
    fn lockstep_schema_degrades_to_full_runs() {
        let x = example();
        let c = CompiledBxsd::with_budget(&x, 0);
        let mut d = doc();
        d.enable_edit_log();
        let mut state = c.validate_persistent(&d);
        assert!(!state.is_incremental());
        assert_eq!(state.report().violations, c.validate(&d).violations);
        let g = state.generation();
        let section = d
            .iter_elements()
            .find(|&n| d.name(n) == Some("section"))
            .unwrap();
        d.remove_attribute(section, "title");
        let edits = d.edit_log().unwrap().since(g).to_vec();
        let got = c.revalidate(&d, &mut state, &edits);
        assert_eq!(got.violations, c.validate(&d).violations);
        assert!(!got.is_valid());
    }

    #[test]
    fn stale_dirty_entry_on_detached_subtree_is_skipped() {
        let x = example();
        let mut d = doc();
        let content = d
            .iter_elements()
            .find(|&n| d.name(n) == Some("content"))
            .unwrap();
        let section = d
            .iter_elements()
            .find(|&n| d.name(n) == Some("section"))
            .unwrap();
        check(&x, &mut d, |d| {
            // Dirty the section, then detach it: the Dirty entry must
            // not be replayed against the removed subtree.
            d.remove_attribute(section, "title");
            d.remove_child(content, section);
        });
        assert!(CompiledBxsd::new(&x).validate(&d).is_valid());
    }

    #[test]
    fn unknown_name_poisoning_is_replayed() {
        let x = example();
        let mut d = doc();
        let content = d
            .iter_elements()
            .find(|&n| d.name(n) == Some("content"))
            .unwrap();
        // Unknown first child dead-ends its following siblings; both
        // inserting and removing it must reproduce the fresh report.
        check(&x, &mut d, |d| {
            d.insert_child(content, 0, "mystery");
        });
        let mystery = d
            .iter_elements()
            .find(|&n| d.name(n) == Some("mystery"))
            .unwrap();
        check(&x, &mut d, |d| d.remove_child(content, mystery));
    }
}
