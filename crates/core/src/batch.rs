//! Work-stealing batch validation.
//!
//! One compiled schema, many documents: the common shape of corpus
//! validation (the paper's experiments re-validate whole document sets
//! per schema). The engine here is a small scoped work-stealing pool:
//!
//! * each worker owns a deque, seeded round-robin; it pops its own work
//!   from the front and steals from the *back* of other workers' deques
//!   when it runs dry, so a straggler document never serializes the tail
//!   of the batch the way the old one-scoped-thread-per-chunk scheme did
//!   (a chunk with one pathological document idled every other core);
//! * a shared injector queue accepts jobs *streamed in* after the
//!   workers have started — used for file-path batches, where the main
//!   thread feeds paths while workers are already parsing;
//! * every job carries its input index and results are sorted by it, so
//!   reports come back in input order regardless of worker count or
//!   scheduling — `--jobs 1` and `--jobs 8` produce identical output
//!   (`tests/batch_determinism.rs` pins this).
//!
//! Workers share the compiled schema read-only; no job spawns further
//! jobs, so a worker may exit once the injector is closed and every
//! deque is empty (work already claimed by another worker needs no
//! tracking — its result is on that worker's local list).

use std::collections::VecDeque;
use std::path::Path;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use xmltree::Document;

use crate::validate::{BxsdReport, CompiledBxsd, ValidateOptions};

/// The outcome of validating one file of a batch.
#[derive(Clone, Debug)]
pub struct FileReport {
    /// The path as given by the caller.
    pub path: String,
    /// The validation report, or the I/O / parse error that prevented
    /// one from existing (the streamed analogue of "failed to parse").
    pub report: Result<BxsdReport, String>,
}

impl FileReport {
    /// Whether the file was read, parsed, and found conforming.
    pub fn is_valid(&self) -> bool {
        matches!(&self.report, Ok(r) if r.is_valid())
    }
}

/// Default worker count: one per available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Clamps a requested worker count to the cores actually available.
///
/// Every pool entry point funnels through this: the workers are
/// CPU-bound (parsing + automaton runs, no blocking I/O overlap worth
/// speaking of), so asking for more threads than cores just adds
/// context-switch and steal-scan overhead — `--jobs 64` on a 4-core box
/// used to spawn 64 threads that fought over 4 cores. Zero means "pick
/// for me" and resolves to [`default_jobs`].
pub fn clamp_jobs(jobs: usize) -> usize {
    let cores = default_jobs();
    if jobs == 0 {
        cores
    } else {
        jobs.min(cores)
    }
}

/// Runs `f` over `items` on the work-stealing pool, returning results in
/// input order — the generic primitive under batch validation, shared by
/// the parallel lint paths. `jobs` is clamped to the item count; `jobs
/// <= 1` maps inline on the calling thread (the deterministic baseline).
/// Output is identical for every `jobs` value because each job carries
/// its input index and results are sorted by it.
///
/// Unlike the `validate_*` wrappers this does **not** apply
/// [`clamp_jobs`] — callers that take a user-facing `--jobs` flag clamp
/// first; tests that deliberately oversubscribe pass raw counts.
pub fn map_indexed<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = jobs.min(items.len()).max(1);
    run_pool(seed_queues(items.into_iter(), n), std::iter::empty(), f)
}

/// Jobs not yet claimed by a worker. `closed` flips once the feeder is
/// done; workers then drain and exit.
struct Injector<T> {
    jobs: VecDeque<(usize, T)>,
    closed: bool,
}

struct Shared<T> {
    /// One deque per worker. Owner pops the front; thieves pop the back,
    /// so contention lands on opposite ends.
    queues: Vec<Mutex<VecDeque<(usize, T)>>>,
    injector: Mutex<Injector<T>>,
    /// Signalled on every injector push and on close.
    cv: Condvar,
}

impl<T> Shared<T> {
    fn try_claim(&self, me: usize) -> Option<(usize, T)> {
        if let Some(job) = self.queues[me].lock().unwrap().pop_front() {
            return Some(job);
        }
        if let Some(job) = self.injector.lock().unwrap().jobs.pop_front() {
            return Some(job);
        }
        (0..self.queues.len())
            .filter(|&j| j != me)
            .find_map(|j| self.queues[j].lock().unwrap().pop_back())
    }
}

fn worker_loop<T, R>(
    shared: &Shared<T>,
    me: usize,
    f: &(impl Fn(T) -> R + Sync),
) -> Vec<(usize, R)> {
    let mut out = Vec::new();
    loop {
        if let Some((i, job)) = shared.try_claim(me) {
            out.push((i, f(job)));
            continue;
        }
        let mut inj = shared.injector.lock().unwrap();
        if let Some((i, job)) = inj.jobs.pop_front() {
            drop(inj);
            out.push((i, f(job)));
        } else if inj.closed {
            // Deques are only filled before spawn (fixed batches) or
            // never (streamed batches), so an all-empty scan after close
            // is conclusive; jobs already claimed elsewhere sit on their
            // claimer's local result list and need no tracking.
            drop(inj);
            if shared.queues.iter().all(|q| q.lock().unwrap().is_empty()) {
                return out;
            }
        } else {
            // Open but dry: park until the feeder pushes or closes. The
            // timeout guards against a wakeup racing the steal scan
            // above; correctness needs only eventual recheck.
            let _unused = shared.cv.wait_timeout(inj, Duration::from_millis(2));
        }
    }
}

/// Runs `preloaded` deques plus the `feed` stream through `n` workers,
/// returning results sorted back into input-index order.
fn run_pool<T, R, F, I>(mut preloaded: Vec<VecDeque<(usize, T)>>, feed: I, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
    I: Iterator<Item = (usize, T)>,
{
    let n = preloaded.len();
    if n <= 1 {
        // Single worker: no pool, no threads — the deterministic
        // baseline the determinism test compares the pool against.
        let mut out: Vec<(usize, R)> = preloaded
            .pop()
            .into_iter()
            .flatten()
            .chain(feed)
            .map(|(i, t)| (i, f(t)))
            .collect();
        out.sort_by_key(|&(i, _)| i);
        return out.into_iter().map(|(_, r)| r).collect();
    }
    let shared = Shared {
        queues: preloaded.into_iter().map(Mutex::new).collect(),
        injector: Mutex::new(Injector {
            jobs: VecDeque::new(),
            closed: false,
        }),
        cv: Condvar::new(),
    };
    let mut out: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|me| {
                let shared = &shared;
                let f = &f;
                scope.spawn(move || worker_loop(shared, me, f))
            })
            .collect();
        for job in feed {
            let mut inj = shared.injector.lock().unwrap();
            inj.jobs.push_back(job);
            drop(inj);
            shared.cv.notify_one();
        }
        shared.injector.lock().unwrap().closed = true;
        shared.cv.notify_all();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("validation workers do not panic"))
            .collect()
    });
    out.sort_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Distributes indexed jobs round-robin over `n` deques.
fn seed_queues<T>(jobs: impl Iterator<Item = T>, n: usize) -> Vec<VecDeque<(usize, T)>> {
    let mut queues: Vec<VecDeque<(usize, T)>> = (0..n).map(|_| VecDeque::new()).collect();
    for (i, job) in jobs.enumerate() {
        queues[i % n].push_back((i, job));
    }
    queues
}

impl CompiledBxsd<'_> {
    /// Validates many in-memory documents on a work-stealing pool with
    /// one worker per available core, preserving input order. The
    /// compiled schema is shared read-only across workers.
    pub fn validate_batch(&self, docs: &[Document], opts: ValidateOptions) -> Vec<BxsdReport> {
        self.validate_batch_with_jobs(docs, opts, default_jobs())
    }

    /// [`Self::validate_batch`] with an explicit worker count. `jobs` is
    /// clamped to the number of documents; `jobs <= 1` validates inline
    /// on the calling thread. Reports are identical for every `jobs`
    /// value — input order in, input order out.
    pub fn validate_batch_with_jobs(
        &self,
        docs: &[Document],
        opts: ValidateOptions,
        jobs: usize,
    ) -> Vec<BxsdReport> {
        let n = clamp_jobs(jobs).min(docs.len()).max(1);
        run_pool(
            seed_queues(docs.iter(), n),
            std::iter::empty(),
            |doc: &Document| self.validate_with(doc, opts),
        )
    }

    /// Validates many XML *files*, each in one streaming pass (O(depth)
    /// memory per worker, never building trees). Paths are streamed into
    /// the pool's injector, so parsing begins while the job list is
    /// still being fed. Reports come back in input order; a file that
    /// cannot be read or parsed yields `Err` in its [`FileReport`]
    /// without disturbing the rest of the batch.
    pub fn validate_paths<P: AsRef<Path>>(
        &self,
        paths: &[P],
        opts: ValidateOptions,
        jobs: usize,
    ) -> Vec<FileReport> {
        let n = clamp_jobs(jobs).min(paths.len()).max(1);
        let queues: Vec<VecDeque<(usize, &Path)>> = (0..n).map(|_| VecDeque::new()).collect();
        run_pool(
            queues,
            paths.iter().map(AsRef::as_ref).enumerate(),
            |path: &Path| {
                let shown = path.display().to_string();
                let report = match std::fs::File::open(path) {
                    Err(e) => Err(format!("cannot read {shown}: {e}")),
                    Ok(file) => {
                        let mut reader = xmltree::XmlReader::from_reader(file);
                        self.validate_stream_with(&mut reader, opts)
                            .map_err(|e| e.to_string())
                    }
                };
                FileReport {
                    path: shown,
                    report,
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::lower::lower;
    use crate::lang::parser::parse_schema;

    fn compiled_schema() -> crate::bxsd::Bxsd {
        let ast = parse_schema(
            "global { doc } grammar { doc = { (element item | element note)* } \
             item = mixed { } note = mixed { } }",
        )
        .expect("schema parses");
        lower(&ast).expect("schema lowers").bxsd
    }

    fn docs(n: usize) -> Vec<Document> {
        (0..n)
            .map(|i| {
                let body = if i % 3 == 0 {
                    "<doc><bogus/></doc>".to_owned()
                } else {
                    format!("<doc>{}</doc>", "<item>x</item>".repeat(i % 7 + 1))
                };
                xmltree::parse_document(&body).expect("doc parses")
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_for_every_worker_count() {
        let bxsd = compiled_schema();
        let compiled = CompiledBxsd::new(&bxsd);
        let docs = docs(23);
        let opts = ValidateOptions::default();
        let sequential: Vec<_> = docs
            .iter()
            .map(|d| compiled.validate_with(d, opts))
            .collect();
        for jobs in [1, 2, 3, 8, 64] {
            let batch = compiled.validate_batch_with_jobs(&docs, opts, jobs);
            assert_eq!(batch.len(), sequential.len());
            for (b, s) in batch.iter().zip(&sequential) {
                assert_eq!(b.violations, s.violations, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let bxsd = compiled_schema();
        let compiled = CompiledBxsd::new(&bxsd);
        assert!(compiled
            .validate_batch(&[], ValidateOptions::default())
            .is_empty());
        let none: [&str; 0] = [];
        assert!(compiled
            .validate_paths(&none, ValidateOptions::default(), 4)
            .is_empty());
    }

    #[test]
    fn missing_file_reports_error_in_place() {
        let bxsd = compiled_schema();
        let compiled = CompiledBxsd::new(&bxsd);
        let dir = std::env::temp_dir().join("bonxai-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.xml");
        std::fs::write(&good, "<doc><item>x</item></doc>").unwrap();
        let bad = dir.join("does-not-exist.xml");
        let paths = vec![good.clone(), bad, good];
        let reports = compiled.validate_paths(&paths, ValidateOptions::default(), 2);
        assert_eq!(reports.len(), 3);
        assert!(reports[0].is_valid());
        assert!(reports[1].report.is_err());
        assert!(reports[2].is_valid());
    }
}
