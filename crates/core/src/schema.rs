//! [`BonxaiSchema`]: the user-facing schema object tying together the
//! surface syntax, the formal core, and integrity constraints.

use xmltree::Document;
use xsd::violation::Violation;

use crate::bxsd::Bxsd;
use crate::constraints::ConstraintViolation;
use crate::lang::{self, LangError, SchemaAst};
use crate::validate::{BxsdReport, CompiledBxsd, ValidateOptions};

/// A complete BonXai schema: parsed surface form plus its lowered core.
///
/// ```
/// use bonxai_core::BonxaiSchema;
/// let schema = BonxaiSchema::parse(r#"
///     global { note }
///     grammar {
///       note = { element to, element body }
///       to   = { type xs:string }
///       body = mixed { }
///     }
/// "#).unwrap();
/// let doc = xmltree::parse_document("<note><to>Ada</to><body>hi</body></note>").unwrap();
/// assert!(schema.validate(&doc).is_valid());
/// ```
#[derive(Clone, Debug)]
pub struct BonxaiSchema {
    /// The surface AST (groups, namespaces, constraints, rule order).
    pub ast: SchemaAst,
    /// The lowered formal core.
    pub bxsd: Bxsd,
    /// For each BXSD rule, the source rule index in `ast.rules`.
    pub rule_source: Vec<usize>,
}

/// A full validation report: structural violations plus constraint
/// violations.
#[derive(Clone, Debug)]
pub struct ValidationReport {
    /// The structural (rule-based) report, with matched-rule info.
    pub structure: BxsdReport,
    /// Integrity-constraint violations.
    pub constraints: Vec<ConstraintViolation>,
}

impl ValidationReport {
    /// Whether the document conforms (structure and constraints).
    pub fn is_valid(&self) -> bool {
        self.structure.is_valid() && self.constraints.is_empty()
    }

    /// All structural violations.
    pub fn violations(&self) -> &[Violation] {
        &self.structure.violations
    }
}

impl BonxaiSchema {
    /// Parses and lowers a schema from BonXai compact syntax.
    pub fn parse(source: &str) -> Result<BonxaiSchema, LangError> {
        let ast = lang::parse_schema(source)?;
        Self::from_ast(ast)
    }

    /// Builds a schema from an already-parsed AST.
    pub fn from_ast(ast: SchemaAst) -> Result<BonxaiSchema, LangError> {
        let lowered = lang::lower(&ast)?;
        Ok(BonxaiSchema {
            ast,
            bxsd: lowered.bxsd,
            rule_source: lowered.rule_source,
        })
    }

    /// Builds a schema object from a formal BXSD (lifting it to surface
    /// syntax for display).
    pub fn from_bxsd(bxsd: Bxsd) -> BonxaiSchema {
        let ast = lang::lift(&bxsd);
        let rule_source = (0..bxsd.n_rules()).collect();
        BonxaiSchema {
            ast,
            bxsd,
            rule_source,
        }
    }

    /// Validates a document: rule structure + integrity constraints.
    pub fn validate(&self, doc: &Document) -> ValidationReport {
        self.validate_with(doc, ValidateOptions::default())
    }

    /// Validates a document with explicit [`ValidateOptions`] (e.g. to
    /// record per-node rule matches for highlighting).
    pub fn validate_with(&self, doc: &Document, opts: ValidateOptions) -> ValidationReport {
        let structure = CompiledBxsd::new(&self.bxsd).validate_with(doc, opts);
        let constraints =
            crate::constraints::check_constraints(&self.ast.constraints, &self.bxsd.ename, doc);
        ValidationReport {
            structure,
            constraints,
        }
    }

    /// Whether `doc` conforms to the schema.
    pub fn is_valid(&self, doc: &Document) -> bool {
        self.validate(doc).is_valid()
    }

    /// Renders the schema in BonXai compact syntax.
    pub fn to_source(&self) -> String {
        let names: Vec<String> = self
            .bxsd
            .ename
            .entries()
            .map(|(_, n)| n.to_owned())
            .collect();
        lang::print_schema(&self.ast, &names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::parse_document;

    const SCHEMA: &str = r#"
        global { library }
        grammar {
          library = { (element book)* }
          book = { attribute id, element title, (element author)+ }
          title = mixed { }
          author = mixed { }
          @id = { type xs:NMTOKEN }
        }
        constraints {
          key bookKey = //book { @id }
        }
    "#;

    #[test]
    fn parse_validate_roundtrip() {
        let schema = BonxaiSchema::parse(SCHEMA).unwrap();
        let good = parse_document(
            r#"<library>
                 <book id="b1"><title>T</title><author>A</author></book>
                 <book id="b2"><title>U</title><author>B</author><author>C</author></book>
               </library>"#,
        )
        .unwrap();
        let r = schema.validate(&good);
        assert!(
            r.is_valid(),
            "{:?} {:?}",
            r.structure.violations,
            r.constraints
        );
    }

    #[test]
    fn constraint_violations_reported() {
        let schema = BonxaiSchema::parse(SCHEMA).unwrap();
        let dup = parse_document(
            r#"<library>
                 <book id="b1"><title>T</title><author>A</author></book>
                 <book id="b1"><title>U</title><author>B</author></book>
               </library>"#,
        )
        .unwrap();
        let r = schema.validate(&dup);
        assert!(r.structure.is_valid());
        assert!(!r.is_valid());
        assert_eq!(r.constraints.len(), 1);
    }

    #[test]
    fn to_source_reparses() {
        let schema = BonxaiSchema::parse(SCHEMA).unwrap();
        let printed = schema.to_source();
        let again = BonxaiSchema::parse(&printed).unwrap();
        let doc = parse_document(
            r#"<library><book id="x"><title>T</title><author>A</author></book></library>"#,
        )
        .unwrap();
        assert_eq!(schema.is_valid(&doc), again.is_valid(&doc));
    }

    #[test]
    fn structural_error_beats_constraints() {
        let schema = BonxaiSchema::parse(SCHEMA).unwrap();
        let bad = parse_document(r#"<library><book id="b"/></library>"#).unwrap();
        let r = schema.validate(&bad);
        assert!(!r.structure.is_valid());
    }
}
