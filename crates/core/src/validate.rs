//! Validation of documents against BXSDs under the priority semantics,
//! with matched-rule reporting (the tool feature from \[19\]: "validate XML
//! against them and highlights matching rules").
//!
//! ## The hot path
//!
//! Definition 1 needs, per node, the set of rules whose ancestor pattern
//! matches `anc-str(v)` and the last ("relevant") one. Two evaluation
//! strategies are implemented:
//!
//! * **Product** (the default): a [`RelevanceProduct`] — the reachable
//!   synchronized product of all N ancestor DFAs, each state annotated
//!   with its matching set and relevant rule. Per node this costs a
//!   *single* transition lookup instead of N, and the tree is walked in
//!   one pass (child word construction, content checks, and child
//!   queueing fused). Lemma 7 is the paper-side justification: relevance
//!   is readable off product states.
//! * **Lock-step** (the fallback and the reference): all N DFAs advanced
//!   side by side, `None` = dead. The product is worst-case exponential
//!   (Theorem 9), so [`CompiledBxsd::with_budget`] bounds its size and
//!   falls back to lock-step transparently when the bound is exceeded.
//!
//! Both paths produce byte-identical reports — the equivalence proptest
//! in `tests/validate_equivalence.rs` pins that down. Per-node
//! [`NodeMatch`] recording is opt-in via
//! [`ValidateOptions::record_matches`]; validation itself never needs it.
//!
//! ## Streaming
//!
//! Validation is a single top-down pass over ancestor paths (the Section 5
//! translation machinery evaluates `anc-str(v)` prefix by prefix), so it
//! needs no tree at all: [`CompiledBxsd::validate_stream`] drives the same
//! relevance product (or lock-step fallback) directly over the events of
//! an [`XmlReader`], keeping one frame per *open* element — O(depth)
//! memory regardless of document size. Reports are byte-identical to the
//! tree paths because (a) the tree parser is itself a fold over the same
//! event stream, so node ids coincide by construction, and (b) every path
//! orders violations canonically (stable-sorted by node, i.e. document
//! order). `tests/stream_equivalence.rs` pins the equivalence.

use std::collections::BTreeMap;
use std::sync::Arc;

use relang::cache::AutomataCache;
use relang::ops::{ProductState, RelevanceProduct};
use relang::{CompiledDre, Dfa, Regex, StateId, Sym};
use xmltree::stream::{AttrList, ByteSrc, EventSink, TextChunk, TextInterest, XmlReader};
use xmltree::{Document, NameId, NodeId};
use xsd::violation::{Violation, ViolationKind};

use crate::bxsd::Bxsd;

/// Default cap on relevance-product states; beyond this the validator
/// silently falls back to lock-step evaluation (Theorem 9 makes a cap
/// mandatory — the product can be exponential in the rule count).
pub const DEFAULT_PRODUCT_BUDGET: usize = 1 << 14;

/// Per-node rule-match information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeMatch {
    /// All rule indices whose ancestor expression matches this node's
    /// ancestor string, in schema order.
    pub matching: Vec<usize>,
    /// The relevant (highest-priority) rule, if any. Nodes with no
    /// matching rule are unconstrained under Definition 1.
    pub relevant: Option<usize>,
}

/// Options controlling a validation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ValidateOptions {
    /// Record a [`NodeMatch`] for every element (needed for rule
    /// highlighting; costs an allocation per node, so off by default).
    pub record_matches: bool,
    /// Use the lock-step reference evaluator even when the relevance
    /// product is available (ablations, differential testing).
    pub force_lockstep: bool,
}

/// The result of validating a document against a BXSD.
#[derive(Clone, Debug)]
pub struct BxsdReport {
    /// All violations (empty = the document conforms), canonically
    /// ordered: stable-sorted by node id, i.e. document order. The
    /// canonical order is what makes reports from the tree paths and the
    /// streaming path (which discover violations in different traversal
    /// orders) directly comparable with `==`.
    pub violations: Vec<Violation>,
    /// Rule matches per element node (populated only when
    /// [`ValidateOptions::record_matches`] is set).
    pub matches: BTreeMap<NodeId, NodeMatch>,
}

impl BxsdReport {
    /// Whether the document conforms.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A BXSD compiled for repeated validation: one DFA per ancestor
/// expression, one matcher per content model, and (budget permitting)
/// the relevance product over the ancestor DFAs.
pub struct CompiledBxsd<'a> {
    pub(crate) bxsd: &'a Bxsd,
    ancestor_dfas: Vec<Arc<Dfa>>,
    pub(crate) content_matchers: Vec<Arc<CompiledDre>>,
    pub(crate) relevance: Option<Arc<RelevanceProduct>>,
    /// Per rule: whether its content model declares a required attribute.
    /// When false and the element carries no attributes at all, the
    /// attribute check is provably a no-op and is skipped on the hot path.
    requires_attr: Vec<bool>,
    /// Per rule: whether significant text under the element is a
    /// violation (element-only content: not mixed, not open, no simple
    /// content). Only such frames scan text nodes for non-whitespace.
    text_sensitive: Vec<bool>,
}

impl<'a> CompiledBxsd<'a> {
    /// Compiles all rule expressions of `bxsd` with the default product
    /// budget ([`DEFAULT_PRODUCT_BUDGET`]).
    pub fn new(bxsd: &'a Bxsd) -> Self {
        Self::with_budget(bxsd, DEFAULT_PRODUCT_BUDGET)
    }

    /// Compiles `bxsd`, allowing at most `budget` relevance-product
    /// states. A budget of 0 disables the product entirely; validation
    /// then always runs lock-step.
    pub fn with_budget(bxsd: &'a Bxsd, budget: usize) -> Self {
        Self::build(bxsd, budget, None)
    }

    /// [`Self::with_budget`] with a shared [`AutomataCache`]: ancestor
    /// DFAs and the relevance product are memoized by regex structure,
    /// so recompiling a schema (or compiling one the lint pass already
    /// probed) reuses the constructions. The compiled validator is
    /// identical to an uncached build.
    pub fn with_cache(bxsd: &'a Bxsd, budget: usize, cache: &mut AutomataCache) -> Self {
        Self::build(bxsd, budget, Some(cache))
    }

    fn build(bxsd: &'a Bxsd, budget: usize, mut cache: Option<&mut AutomataCache>) -> Self {
        let n = bxsd.ename.len();
        let ancestor_dfas: Vec<Arc<Dfa>> = bxsd
            .rules
            .iter()
            .map(|r| match cache.as_deref_mut() {
                Some(c) => c.raw_dfa(&r.ancestor, n),
                None => Arc::new(relang::ops::regex_to_dfa(&r.ancestor, n)),
            })
            .collect();
        let content_matchers = bxsd
            .rules
            .iter()
            .map(|r| match cache.as_deref_mut() {
                Some(c) => c.compiled_dre(&r.content.regex, n),
                None => Arc::new(CompiledDre::compile(&r.content.regex, n)),
            })
            .collect();
        let relevance = if budget == 0 {
            None
        } else {
            match cache {
                Some(c) => {
                    let ancestors: Vec<Regex> =
                        bxsd.rules.iter().map(|r| r.ancestor.clone()).collect();
                    c.relevance_product(n, &ancestors, budget)
                }
                None => {
                    let refs: Vec<&Dfa> = ancestor_dfas.iter().map(Arc::as_ref).collect();
                    RelevanceProduct::build_refs(n, &refs, budget).map(Arc::new)
                }
            }
        };
        let requires_attr = bxsd
            .rules
            .iter()
            .map(|r| r.content.attributes.iter().any(|a| a.required))
            .collect();
        let text_sensitive = bxsd
            .rules
            .iter()
            .map(|r| !r.content.mixed && !r.content.open && r.content.simple_content.is_none())
            .collect();
        CompiledBxsd {
            bxsd,
            ancestor_dfas,
            content_matchers,
            relevance,
            requires_attr,
            text_sensitive,
        }
    }

    /// The underlying schema.
    pub fn bxsd(&self) -> &Bxsd {
        self.bxsd
    }

    /// Number of relevance-product states, or `None` when the product
    /// exceeded its budget (validation falls back to lock-step).
    pub fn product_states(&self) -> Option<usize> {
        self.relevance.as_ref().map(|p| p.n_states())
    }

    /// Validates `doc` under the priority semantics (default options:
    /// fastest available path, no per-node match recording).
    pub fn validate(&self, doc: &Document) -> BxsdReport {
        self.validate_with(doc, ValidateOptions::default())
    }

    /// Validates `doc` with explicit [`ValidateOptions`].
    pub fn validate_with(&self, doc: &Document, opts: ValidateOptions) -> BxsdReport {
        let mut report = BxsdReport {
            violations: Vec::new(),
            matches: BTreeMap::new(),
        };
        let root = doc.root();
        let root_name = doc.name(root).expect("root is an element");
        let root_sym = self.bxsd.ename.lookup(root_name);
        let Some(root_sym) = root_sym.filter(|s| self.bxsd.start.contains(s)) else {
            report.violations.push(Violation {
                node: root,
                kind: ViolationKind::RootNotAllowed(root_name.to_owned()),
            });
            return report;
        };
        // Monomorphize over match recording so the no-recording hot path
        // carries no per-node recording branches.
        match (&self.relevance, opts.force_lockstep, opts.record_matches) {
            (Some(p), false, false) => {
                self.run_product::<false>(p, doc, root, root_sym, &mut report)
            }
            (Some(p), false, true) => self.run_product::<true>(p, doc, root, root_sym, &mut report),
            (_, _, false) => self.run_lockstep::<false>(doc, root, root_sym, &mut report),
            (_, _, true) => self.run_lockstep::<true>(doc, root, root_sym, &mut report),
        }
        report.violations.sort_by_key(|v| v.node);
        report
    }

    /// Validates the document streamed by `reader` without building a
    /// tree, holding one frame per *open* element (O(depth) memory).
    /// Default options; see [`Self::validate_stream_with`].
    pub fn validate_stream<S: ByteSrc>(
        &self,
        reader: &mut XmlReader<S>,
    ) -> Result<BxsdReport, xmltree::ParseError> {
        self.validate_stream_with(reader, ValidateOptions::default())
    }

    /// Streaming validation with explicit [`ValidateOptions`].
    ///
    /// The report is byte-identical to parsing the same bytes and calling
    /// [`Self::validate_with`]: node ids are assigned by counting
    /// `StartElement`/`Text` events, which is exactly the order in which
    /// the tree parser (itself a fold over the same events) allocates
    /// arena nodes. Uses the relevance product when available and not
    /// overridden, with the same transparent lock-step fallback as the
    /// tree path. Returns `Err` on malformed XML — the analogue of
    /// failing to parse before tree validation — in which case no report
    /// exists.
    pub fn validate_stream_with<S: ByteSrc>(
        &self,
        reader: &mut XmlReader<S>,
        opts: ValidateOptions,
    ) -> Result<BxsdReport, xmltree::ParseError> {
        let mut report = BxsdReport {
            violations: Vec::new(),
            matches: BTreeMap::new(),
        };
        match (&self.relevance, opts.force_lockstep) {
            (Some(p), false) => {
                self.run_stream(reader, &ProductEngine(p), opts.record_matches, &mut report)?
            }
            _ => self.run_stream(
                reader,
                &LockstepEngine {
                    dfas: &self.ancestor_dfas,
                },
                opts.record_matches,
                &mut report,
            )?,
        }
        report.violations.sort_by_key(|v| v.node);
        Ok(report)
    }

    /// Product fast path: one relevance transition per node, one pass over
    /// each node's children with the relevant rule's content DFA stepped
    /// inline (no second pass over the child word).
    fn run_product<const RECORD: bool>(
        &self,
        p: &RelevanceProduct,
        doc: &Document,
        root: NodeId,
        root_sym: Sym,
        report: &mut BxsdReport,
    ) {
        let syms = self.resolve_names(doc);
        let mut stack = vec![(root, p.step(p.initial(), root_sym))];
        let mut word: Vec<Sym> = Vec::new();
        while let Some((node, q)) = stack.pop() {
            let relevant = p.relevant(q).map(|i| i as usize);
            if RECORD {
                report.matches.insert(
                    node,
                    NodeMatch {
                        matching: p.matching(q).iter().map(|&i| i as usize).collect(),
                        relevant,
                    },
                );
            }

            // One pass over the children: content-model stepping,
            // unknown-name detection, text detection, and child queueing.
            let mut content = self.content_eval(relevant, &mut word);
            let mut count = 0usize;
            let mut unknown_at = None;
            let mut has_text = false;
            for &child in doc.children(node) {
                let Some(nid) = doc.name_id(child) else {
                    has_text = has_text
                        || doc
                            .text(child)
                            .is_some_and(|t| !t.chars().all(char::is_whitespace));
                    continue;
                };
                if unknown_at.is_some() {
                    stack.push((child, p.dead()));
                    continue;
                }
                match syms[nid as usize] {
                    Some(sym) => {
                        content.step(sym, count, &mut word);
                        count += 1;
                        stack.push((child, p.step(q, sym)));
                    }
                    None => {
                        report.violations.push(Violation {
                            node: child,
                            kind: ViolationKind::NoGoverningDefinition(
                                doc.name(child).expect("element").to_owned(),
                            ),
                        });
                        unknown_at = Some(count);
                        stack.push((child, p.dead()));
                    }
                }
            }

            let failed_at = unknown_at.or_else(|| content.finish(count, &word));
            self.check_node(
                doc,
                node,
                relevant,
                failed_at,
                has_text,
                &mut report.violations,
            );
        }
    }

    /// Lock-step reference path: every ancestor DFA advanced side by
    /// side (`None` = dead). Also a single pass over each node's
    /// children; state vectors are pooled to avoid re-allocating one per
    /// node.
    fn run_lockstep<const RECORD: bool>(
        &self,
        doc: &Document,
        root: NodeId,
        root_sym: Sym,
        report: &mut BxsdReport,
    ) {
        let n = self.ancestor_dfas.len();
        let init: Vec<Option<StateId>> = self
            .ancestor_dfas
            .iter()
            .map(|d| d.transition(d.initial(), root_sym))
            .collect();
        let syms = self.resolve_names(doc);
        let mut stack = vec![(root, init)];
        let mut pool: Vec<Vec<Option<StateId>>> = Vec::new();
        let mut word: Vec<Sym> = Vec::new();
        while let Some((node, states)) = stack.pop() {
            let is_match = |(i, s): (usize, &Option<StateId>)| {
                s.is_some_and(|q| self.ancestor_dfas[i].is_final(q))
                    .then_some(i)
            };
            let relevant;
            if RECORD {
                let matching: Vec<usize> = states.iter().enumerate().filter_map(is_match).collect();
                relevant = matching.last().copied();
                report
                    .matches
                    .insert(node, NodeMatch { matching, relevant });
            } else {
                // No recording requested: find the last matching rule
                // without materializing the full set.
                relevant = states.iter().enumerate().rev().find_map(is_match);
            }

            let mut content = self.content_eval(relevant, &mut word);
            let mut count = 0usize;
            let mut unknown_at = None;
            let mut has_text = false;
            for &child in doc.children(node) {
                let Some(nid) = doc.name_id(child) else {
                    has_text = has_text
                        || doc
                            .text(child)
                            .is_some_and(|t| !t.chars().all(char::is_whitespace));
                    continue;
                };
                let mut next = pool.pop().unwrap_or_default();
                next.clear();
                if unknown_at.is_some() {
                    next.resize(n, None);
                    stack.push((child, next));
                    continue;
                }
                match syms[nid as usize] {
                    Some(sym) => {
                        content.step(sym, count, &mut word);
                        count += 1;
                        next.extend(
                            states
                                .iter()
                                .zip(&self.ancestor_dfas)
                                .map(|(s, d)| s.and_then(|q| d.transition(q, sym))),
                        );
                        stack.push((child, next));
                    }
                    None => {
                        report.violations.push(Violation {
                            node: child,
                            kind: ViolationKind::NoGoverningDefinition(
                                doc.name(child).expect("element").to_owned(),
                            ),
                        });
                        unknown_at = Some(count);
                        next.resize(n, None);
                        stack.push((child, next));
                    }
                }
            }

            let failed_at = unknown_at.or_else(|| content.finish(count, &word));
            self.check_node(
                doc,
                node,
                relevant,
                failed_at,
                has_text,
                &mut report.violations,
            );
            pool.push(states);
        }
    }

    /// Resolves the document's distinct element names against the schema
    /// alphabet once, so the per-child hot loop maps a node to its symbol
    /// with a single array load (`None` = name not in the schema).
    pub(crate) fn resolve_names(&self, doc: &Document) -> Vec<Option<Sym>> {
        doc.distinct_names()
            .iter()
            .map(|n| self.bxsd.ename.lookup(n))
            .collect()
    }

    /// Sets up per-node content-model evaluation for the relevant rule.
    /// `word` is the caller's scratch buffer, cleared here when the rare
    /// buffered fallback is selected.
    #[inline]
    pub(crate) fn content_eval<'c>(
        &'c self,
        relevant: Option<usize>,
        word: &mut Vec<Sym>,
    ) -> ContentEval<'c> {
        let Some(i) = relevant else {
            return ContentEval::Skip;
        };
        let model = &self.bxsd.rules[i].content;
        if model.simple_content.is_some() {
            ContentEval::Simple
        } else if let Some(dfa) = self.content_matchers[i].as_dfa() {
            ContentEval::Dfa {
                dfa,
                q: dfa.initial(),
                failed: None,
            }
        } else {
            word.clear();
            ContentEval::Buffered(self.content_matchers[i].as_ref())
        }
    }

    /// Per-node text, attribute, and content-model checks, shared verbatim
    /// by both evaluation paths so their reports cannot drift apart.
    /// `has_text` (any non-whitespace text child) and `failed_at` (where
    /// content matching failed) are computed during the fused child pass
    /// so the children are only traversed once.
    pub(crate) fn check_node(
        &self,
        doc: &Document,
        node: NodeId,
        relevant: Option<usize>,
        failed_at: Option<usize>,
        has_text: bool,
        violations: &mut Vec<Violation>,
    ) {
        let Some(i) = relevant else {
            return;
        };
        let model = &self.bxsd.rules[i].content;
        if model.simple_content.is_some() {
            xsd::violation::check_text(doc, node, model, violations);
        } else if !model.mixed && !model.open && has_text {
            violations.push(Violation {
                node,
                kind: ViolationKind::UnexpectedText(doc.name(node).expect("element").to_owned()),
            });
        }
        if !doc.attributes(node).is_empty() || self.requires_attr[i] {
            xsd::violation::check_attributes(doc, node, model, violations);
        }
        if let Some(at) = failed_at {
            violations.push(Violation {
                node,
                kind: ViolationKind::ContentModel {
                    element: doc.name(node).expect("element").to_owned(),
                    at,
                },
            });
        }
    }

    /// The streaming counterpart of `run_product`/`run_lockstep`, generic
    /// over the ancestor-state engine. The reader *pushes* events into a
    /// [`StreamSink`] via [`XmlReader::drive`] — the fused loop steps the
    /// sink straight off the structural index for the common
    /// start/end/text cycle, falling back to token construction for
    /// anything irregular. Per start the parent frame's content DFA is
    /// stepped and a child frame is pushed; per end the finished frame is
    /// checked and popped. Nothing outside the frame stack (plus a
    /// per-distinct-name symbol cache) is retained, so memory is
    /// O(depth), not O(document).
    fn run_stream<S: ByteSrc, E: AncEngine>(
        &self,
        reader: &mut XmlReader<S>,
        eng: &E,
        record: bool,
        report: &mut BxsdReport,
    ) -> Result<(), xmltree::ParseError> {
        let meta = self
            .bxsd
            .rules
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let check_attrs = self.requires_attr[i];
                if r.content.simple_content.is_some() {
                    return RuleMeta {
                        dfa: None,
                        q0: 0,
                        flags: F_SIMPLE,
                        interest: TextInterest::Collect,
                        check_attrs,
                    };
                }
                let dfa = self.content_matchers[i].as_dfa();
                let mut flags = if dfa.is_none() { F_BUFFERED } else { 0 };
                let mut interest = TextInterest::Ignore;
                if self.text_sensitive[i] {
                    flags |= F_TRACK_TEXT;
                    interest = TextInterest::NonWhitespace;
                }
                RuleMeta {
                    dfa,
                    q0: dfa.map_or(0, |d| d.initial() as u32),
                    flags,
                    interest,
                    check_attrs,
                }
            })
            .collect();
        let mut sink = StreamSink {
            cx: self,
            meta,
            eng,
            record,
            report,
            stack: Vec::with_capacity(16),
            words: Vec::new(),
            texts: Vec::new(),
            attr_stack: Vec::new(),
            viol_scratch: Vec::new(),
            spare_viol: Vec::new(),
            state_pool: Vec::new(),
            next_node: 0,
            root_rejected: false,
            syms: Vec::new(),
        };
        reader.drive(&mut sink)
    }

    /// [`Self::check_node`] over a finished stream frame instead of a
    /// tree node: same checks, same order, same violations. Attribute
    /// violations arrive pre-computed (the start tag checked them off
    /// the borrowed token) and are spliced in at the position the tree
    /// path reports them: after the text check, before content. The
    /// vector is drained, not consumed, so the caller can recycle it.
    #[allow(clippy::too_many_arguments)]
    fn check_stream_node(
        &self,
        node: NodeId,
        name: &str,
        attr_violations: &mut Vec<Violation>,
        relevant: Option<usize>,
        failed_at: Option<usize>,
        has_text: bool,
        text: Option<&str>,
        violations: &mut Vec<Violation>,
    ) {
        let Some(i) = relevant else {
            return;
        };
        let model = &self.bxsd.rules[i].content;
        if model.simple_content.is_some() {
            xsd::violation::check_simple_text(node, name, model, text.unwrap_or(""), violations);
        } else if !model.mixed && !model.open && has_text {
            violations.push(Violation {
                node,
                kind: ViolationKind::UnexpectedText(name.to_owned()),
            });
        }
        violations.append(attr_violations);
        if let Some(at) = failed_at {
            violations.push(Violation {
                node,
                kind: ViolationKind::ContentModel {
                    element: name.to_owned(),
                    at,
                },
            });
        }
    }
}

/// Incremental content-model evaluation for one node's children. The
/// common case steps the relevant rule's content DFA child by child; the
/// rare non-DFA matchers (`xs:all`, huge counters) buffer the child word
/// and decide at [`ContentEval::finish`].
pub(crate) enum ContentEval<'a> {
    /// No relevant rule: the node is unconstrained (Definition 1).
    Skip,
    /// Simple content: any element child at all fails at position 0.
    Simple,
    /// Content DFA stepped inline; `failed` is the first dead position.
    Dfa {
        dfa: &'a Dfa,
        q: StateId,
        failed: Option<usize>,
    },
    /// Buffered fallback, resolved via [`CompiledDre::first_error`].
    Buffered(&'a CompiledDre),
}

impl ContentEval<'_> {
    /// Consumes the `pos`-th known element child.
    #[inline]
    pub(crate) fn step(&mut self, sym: Sym, pos: usize, word: &mut Vec<Sym>) {
        match self {
            ContentEval::Skip | ContentEval::Simple => {}
            ContentEval::Dfa { dfa, q, failed } => {
                if failed.is_none() {
                    match dfa.transition(*q, sym) {
                        Some(t) => *q = t,
                        None => *failed = Some(pos),
                    }
                }
            }
            ContentEval::Buffered(_) => word.push(sym),
        }
    }

    /// Where content matching failed, `None` if the child word matches.
    /// Exactly [`CompiledDre::first_error`] over the known-child word.
    #[inline]
    pub(crate) fn finish(self, count: usize, word: &[Sym]) -> Option<usize> {
        match self {
            ContentEval::Skip => None,
            ContentEval::Simple => (count > 0).then_some(0),
            ContentEval::Dfa { dfa, q, failed } => {
                failed.or_else(|| (!dfa.is_final(q)).then_some(count))
            }
            ContentEval::Buffered(m) => m.first_error(word),
        }
    }
}

/// Ancestor-state evaluation strategy for the streaming validator —
/// the same two strategies as the tree paths (`run_product` /
/// `run_lockstep`), expressed per transition so one frame-stack driver
/// serves both.
trait AncEngine {
    /// The per-element ancestor state (a single product state, or one
    /// `Option<StateId>` per ancestor DFA in lock-step).
    type State;
    /// State of the root element (its ancestor string is `root_sym`).
    fn start(&self, root_sym: Sym) -> Self::State;
    /// State of a child reached by `sym` from `parent`.
    fn child(&self, parent: &Self::State, sym: Sym) -> Self::State;
    /// The absorbing dead state (below unknown-named elements).
    fn dead(&self) -> Self::State;
    /// The relevant (last matching) rule in `q`, per Definition 1.
    fn relevant(&self, q: &Self::State) -> Option<usize>;
    /// All matching rules in `q`, in schema order.
    fn matching(&self, q: &Self::State) -> Vec<usize>;

    /// [`Self::child`] drawing storage from `pool` where the state type
    /// allocates. The default ignores the pool (POD states).
    #[inline]
    fn child_with(
        &self,
        parent: &Self::State,
        sym: Sym,
        _pool: &mut Vec<Self::State>,
    ) -> Self::State {
        self.child(parent, sym)
    }

    /// [`Self::dead`] drawing storage from `pool`.
    #[inline]
    fn dead_with(&self, _pool: &mut Vec<Self::State>) -> Self::State {
        self.dead()
    }

    /// Returns a finished state's storage to `pool` for reuse. No-op for
    /// POD states.
    #[inline]
    fn retire(&self, _state: Self::State, _pool: &mut Vec<Self::State>) {}
}

/// Relevance-product engine: one table lookup per transition (Lemma 7).
struct ProductEngine<'a>(&'a RelevanceProduct);

impl AncEngine for ProductEngine<'_> {
    type State = ProductState;

    fn start(&self, root_sym: Sym) -> ProductState {
        self.0.step(self.0.initial(), root_sym)
    }

    fn child(&self, parent: &ProductState, sym: Sym) -> ProductState {
        self.0.step(*parent, sym)
    }

    fn dead(&self) -> ProductState {
        self.0.dead()
    }

    fn relevant(&self, q: &ProductState) -> Option<usize> {
        self.0.relevant(*q).map(|i| i as usize)
    }

    fn matching(&self, q: &ProductState) -> Vec<usize> {
        self.0.matching(*q).iter().map(|&i| i as usize).collect()
    }
}

/// Lock-step engine: all N ancestor DFAs advanced side by side
/// (`None` = dead), used when the product exceeded its budget.
struct LockstepEngine<'a> {
    dfas: &'a [Arc<Dfa>],
}

impl AncEngine for LockstepEngine<'_> {
    type State = Vec<Option<StateId>>;

    fn start(&self, root_sym: Sym) -> Self::State {
        self.dfas
            .iter()
            .map(|d| d.transition(d.initial(), root_sym))
            .collect()
    }

    fn child(&self, parent: &Self::State, sym: Sym) -> Self::State {
        parent
            .iter()
            .zip(self.dfas)
            .map(|(s, d)| s.and_then(|q| d.transition(q, sym)))
            .collect()
    }

    fn dead(&self) -> Self::State {
        vec![None; self.dfas.len()]
    }

    fn relevant(&self, q: &Self::State) -> Option<usize> {
        q.iter()
            .enumerate()
            .rev()
            .find_map(|(i, s)| s.is_some_and(|q| self.dfas[i].is_final(q)).then_some(i))
    }

    fn matching(&self, q: &Self::State) -> Vec<usize> {
        q.iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_some_and(|q| self.dfas[i].is_final(q)).then_some(i))
            .collect()
    }

    fn child_with(
        &self,
        parent: &Self::State,
        sym: Sym,
        pool: &mut Vec<Self::State>,
    ) -> Self::State {
        let mut v = pool.pop().unwrap_or_default();
        v.clear();
        v.extend(
            parent
                .iter()
                .zip(self.dfas)
                .map(|(s, d)| s.and_then(|q| d.transition(q, sym))),
        );
        v
    }

    fn dead_with(&self, pool: &mut Vec<Self::State>) -> Self::State {
        let mut v = pool.pop().unwrap_or_default();
        v.clear();
        v.resize(self.dfas.len(), None);
        v
    }

    fn retire(&self, state: Self::State, pool: &mut Vec<Self::State>) {
        pool.push(state);
    }
}

// Flag bits of [`HotFrame::flags`]. Together with `relevant`, `dfa`,
// and `q` they encode what `ContentEval` + the old frame's Option/bool
// fields encoded, in one byte.
/// Element-only content: text nodes must be scanned for non-whitespace.
const F_TRACK_TEXT: u8 = 1 << 0;
/// Non-whitespace text was seen among the children.
const F_HAS_TEXT: u8 = 1 << 1;
/// Simple content: any element child fails at position 0; child text
/// accumulates in the `texts` side table for the type check.
const F_SIMPLE: u8 = 1 << 2;
/// Buffered content fallback: the child word accumulates in the `words`
/// side table, resolved via `CompiledDre::first_error` at the end tag.
const F_BUFFERED: u8 = 1 << 3;
/// The content DFA died; `fail_pos` holds the position.
const F_FAILED_DFA: u8 = 1 << 4;
/// An unknown-named child was seen; `fail_pos` holds its position
/// (overwriting any earlier DFA failure — unknown children win, exactly
/// as `unknown_at.or_else(...)` did).
const F_FAILED_UNKNOWN: u8 = 1 << 5;
/// This frame parked a non-empty attribute-violation vector on the
/// sink's `attr_stack`.
const F_ATTR_VIOL: u8 = 1 << 6;

/// `relevant` value for "no matching rule" (Definition 1: unconstrained).
const NO_RULE: u32 = u32::MAX;

/// The hot per-open-element state of the streaming validator — the part
/// that is pushed, mutated, and popped on every element. The old
/// `StreamFrame` carried its cold storage (violation vectors, child
/// words, accumulated text) inline, moving ~150 bytes per push/pop;
/// those now live in depth-indexed side tables on [`StreamSink`], and
/// what remains is small enough to stay in cache (a compile-time
/// assertion below pins the size for both engines).
struct HotFrame<'c, St> {
    node: NodeId,
    /// Content DFA of the relevant rule, stepped inline via `q`
    /// (`None`: no rule, simple content, or the buffered fallback).
    dfa: Option<&'c Dfa>,
    /// Ancestor state; children derive theirs from it via the engine.
    state: St,
    /// Relevant rule index, or [`NO_RULE`].
    relevant: u32,
    /// Known element children consumed so far (saturating; a document
    /// would need > 4 billion children of one node to hit the cap).
    count: u32,
    /// Current content-DFA state (meaningful only when `dfa` is set).
    q: u32,
    /// Position of the first content failure; which kind won is in
    /// `flags` ([`F_FAILED_UNKNOWN`] beats [`F_FAILED_DFA`]).
    fail_pos: u32,
    /// [`F_TRACK_TEXT`] … [`F_ATTR_VIOL`].
    flags: u8,
}

// The layout guard the frame diet is accountable to: both engines' hot
// frames fit a single cache line. `frames_bytes` in the validation
// bench JSON reports the same numbers, so regressions show up in
// BENCH_validation.json too.
const _: () = assert!(std::mem::size_of::<HotFrame<'static, ProductState>>() <= 64);
const _: () = assert!(std::mem::size_of::<HotFrame<'static, Vec<Option<StateId>>>>() <= 64);

/// Hot-frame sizes in bytes, `(product engine, lock-step engine)` —
/// exported so the bench harness records frame-layout regressions.
pub fn stream_frame_sizes() -> (usize, usize) {
    (
        std::mem::size_of::<HotFrame<'static, ProductState>>(),
        std::mem::size_of::<HotFrame<'static, Vec<Option<StateId>>>>(),
    )
}

/// Per-rule frame-setup decisions, precomputed once per stream so the
/// start-tag hot path reads one row instead of chasing four separate
/// tables (`rules[i].content`, `content_matchers[i]`,
/// `text_sensitive[i]`, `requires_attr[i]`).
struct RuleMeta<'c> {
    /// Content DFA to step inline, from `initial()` = `q0`.
    dfa: Option<&'c Dfa>,
    q0: u32,
    /// Initial frame flags: [`F_SIMPLE`] / [`F_BUFFERED`] /
    /// [`F_TRACK_TEXT`] as the rule's content model dictates.
    flags: u8,
    interest: TextInterest,
    /// The rule has a required attribute, so the (possibly empty)
    /// attribute list must be checked.
    check_attrs: bool,
}

/// The streaming validator as an [`EventSink`]: [`XmlReader::drive`]
/// pushes start/end/text events into it, fused straight off the
/// structural index where possible. Holds the hot frame stack plus the
/// cold side tables the frames index by depth.
struct StreamSink<'v, 'c, E: AncEngine> {
    cx: &'c CompiledBxsd<'c>,
    /// One row per rule; see [`RuleMeta`].
    meta: Vec<RuleMeta<'c>>,
    eng: &'c E,
    record: bool,
    report: &'v mut BxsdReport,
    stack: Vec<HotFrame<'c, E::State>>,
    /// Child word per depth, used only by [`F_BUFFERED`] frames.
    words: Vec<Vec<Sym>>,
    /// Accumulated child text per depth, used only by [`F_SIMPLE`] frames.
    texts: Vec<String>,
    /// Parked attribute violations of [`F_ATTR_VIOL`] frames, LIFO.
    /// Almost always empty: valid attribute lists park nothing.
    attr_stack: Vec<Vec<Violation>>,
    /// The attribute check's working vector — empty between events, so
    /// the clean (no-violation) path touches no pool at all; a verdict
    /// is moved onto `attr_stack` only when non-empty.
    viol_scratch: Vec<Violation>,
    /// Recycled violation vectors backing `viol_scratch` refills.
    spare_viol: Vec<Vec<Violation>>,
    /// Recycled ancestor-state storage (lock-step `Vec`s; unused by the
    /// POD product states).
    state_pool: Vec<E::State>,
    /// Next node id, counting element and text nodes in event order —
    /// the arena allocation order of the tree parser.
    next_node: usize,
    /// A rejected root mirrors the tree path's early return: the rest
    /// of the document is drained (malformed XML must still error) but
    /// produces no further violations or matches.
    root_rejected: bool,
    /// Streaming analogue of `resolve_names`: the reader's dense
    /// first-occurrence `NameId`s index straight into this side table,
    /// so after an element name's first occurrence the match path is
    /// one array load — no hashing, no string compare.
    syms: Vec<Option<Sym>>,
}

impl<E: AncEngine> EventSink for StreamSink<'_, '_, E> {
    fn start_element(
        &mut self,
        name: &str,
        name_id: NameId,
        attributes: &AttrList<'_>,
        _self_closing: bool,
    ) -> TextInterest {
        let node = NodeId(self.next_node);
        self.next_node += 1;
        if self.root_rejected {
            return TextInterest::Ignore;
        }
        let idx = name_id.index();
        if idx >= self.syms.len() {
            // New ids are handed out densely, one per first
            // occurrence — which is always a start tag.
            debug_assert_eq!(idx, self.syms.len());
            self.syms.push(self.cx.bxsd.ename.lookup(name));
        }
        let sym = self.syms[idx];
        let depth = self.stack.len();
        let state = if let Some(parent) = self.stack.last_mut() {
            if parent.flags & F_FAILED_UNKNOWN != 0 {
                self.eng.dead_with(&mut self.state_pool)
            } else {
                match sym {
                    Some(sym) => {
                        // The parent's content step, inlined off the
                        // frame fields (what `ContentEval::step` did).
                        if let Some(dfa) = parent.dfa {
                            if parent.flags & F_FAILED_DFA == 0 {
                                match dfa.transition(parent.q as StateId, sym) {
                                    Some(t) => parent.q = t as u32,
                                    None => {
                                        parent.flags |= F_FAILED_DFA;
                                        parent.fail_pos = parent.count;
                                    }
                                }
                            }
                        } else if parent.flags & F_BUFFERED != 0 {
                            self.words[depth - 1].push(sym);
                        }
                        parent.count = parent.count.saturating_add(1);
                        self.eng
                            .child_with(&parent.state, sym, &mut self.state_pool)
                    }
                    None => {
                        self.report.violations.push(Violation {
                            node,
                            kind: ViolationKind::NoGoverningDefinition(name.to_owned()),
                        });
                        parent.flags |= F_FAILED_UNKNOWN;
                        parent.fail_pos = parent.count;
                        self.eng.dead_with(&mut self.state_pool)
                    }
                }
            }
        } else {
            match sym.filter(|s| self.cx.bxsd.start.contains(s)) {
                Some(sym) => self.eng.start(sym),
                None => {
                    self.report.violations.push(Violation {
                        node,
                        kind: ViolationKind::RootNotAllowed(name.to_owned()),
                    });
                    self.root_rejected = true;
                    return TextInterest::Ignore;
                }
            }
        };
        let relevant = self.eng.relevant(&state);
        if self.record {
            self.report.matches.insert(
                node,
                NodeMatch {
                    matching: self.eng.matching(&state),
                    relevant,
                },
            );
        }
        if self.words.len() <= depth {
            self.words.push(Vec::new());
            self.texts.push(String::new());
        }
        let mut flags = 0u8;
        let mut dfa = None;
        let mut q = 0u32;
        let mut interest = TextInterest::Ignore;
        if let Some(i) = relevant {
            let m = &self.meta[i];
            flags = m.flags;
            dfa = m.dfa;
            q = m.q0;
            interest = m.interest;
            if flags & F_SIMPLE != 0 {
                // Text is only accumulated where it will be checked
                // (simple content), so arbitrary amounts of ignored
                // text cannot grow the side tables.
                self.texts[depth].clear();
            } else if flags & F_BUFFERED != 0 {
                self.words[depth].clear();
            }
            // Attributes are checked right here, against the reader's
            // borrowed list — nothing is copied out of its buffer. The
            // (almost always empty) verdict is parked on the side stack
            // and emitted at the end tag, where the tree path reports
            // it, so the within-node violation order stays identical.
            if m.check_attrs || !attributes.is_empty() {
                xsd::violation::check_attribute_pairs(
                    node,
                    attributes.iter().map(|a| (a.name, a.value)),
                    &self.cx.bxsd.rules[i].content,
                    &mut self.viol_scratch,
                );
                if !self.viol_scratch.is_empty() {
                    flags |= F_ATTR_VIOL;
                    let refill = self.spare_viol.pop().unwrap_or_default();
                    self.attr_stack
                        .push(std::mem::replace(&mut self.viol_scratch, refill));
                }
            }
        }
        self.stack.push(HotFrame {
            node,
            dfa,
            state,
            relevant: relevant.map_or(NO_RULE, |i| i as u32),
            count: 0,
            q,
            fail_pos: 0,
            flags,
        });
        interest
    }

    fn end_element(&mut self, name: &str, _name_id: NameId) {
        if self.root_rejected {
            return;
        }
        let frame = self.stack.pop().expect("events are well nested");
        let depth = self.stack.len(); // the popped frame's own depth
        let relevant = (frame.relevant != NO_RULE).then_some(frame.relevant as usize);
        // What `unknown_at.or_else(|| content.finish(...))` computed,
        // read off the frame fields.
        let failed_at = if frame.flags & F_FAILED_UNKNOWN != 0 {
            Some(frame.fail_pos as usize)
        } else if frame.flags & F_SIMPLE != 0 {
            (frame.count > 0).then_some(0)
        } else if let Some(dfa) = frame.dfa {
            if frame.flags & F_FAILED_DFA != 0 {
                Some(frame.fail_pos as usize)
            } else {
                (!dfa.is_final(frame.q as StateId)).then_some(frame.count as usize)
            }
        } else if frame.flags & F_BUFFERED != 0 {
            let i = frame.relevant as usize;
            self.cx.content_matchers[i].first_error(&self.words[depth])
        } else {
            None
        };
        let mut av = if frame.flags & F_ATTR_VIOL != 0 {
            self.attr_stack.pop().expect("flagged frame parked its vec")
        } else {
            Vec::new() // never allocates; stays empty
        };
        self.cx.check_stream_node(
            frame.node,
            name,
            &mut av,
            relevant,
            failed_at,
            frame.flags & F_HAS_TEXT != 0,
            (frame.flags & F_SIMPLE != 0).then(|| self.texts[depth].as_str()),
            &mut self.report.violations,
        );
        if av.capacity() > 0 {
            av.clear();
            self.spare_viol.push(av);
        }
        self.eng.retire(frame.state, &mut self.state_pool);
    }

    fn text(&mut self, chunk: TextChunk<'_>) {
        // Text nodes occupy arena slots in the tree build.
        self.next_node += 1;
        if self.root_rejected {
            return;
        }
        let depth = self.stack.len();
        let frame = self
            .stack
            .last_mut()
            .expect("text only occurs inside the root");
        match chunk {
            TextChunk::NonWs(true) => frame.flags |= F_HAS_TEXT,
            TextChunk::NonWs(false) | TextChunk::Skipped => {}
            TextChunk::Collect(t) => self.texts[depth - 1].push_str(t),
        }
    }
}

/// One-shot validation under the priority semantics (default options).
pub fn validate(bxsd: &Bxsd, doc: &Document) -> BxsdReport {
    CompiledBxsd::new(bxsd).validate(doc)
}

/// One-shot validation with explicit [`ValidateOptions`].
pub fn validate_with(bxsd: &Bxsd, doc: &Document, opts: ValidateOptions) -> BxsdReport {
    CompiledBxsd::new(bxsd).validate_with(doc, opts)
}

/// Whether `doc` conforms to `bxsd` (priority semantics).
pub fn is_valid(bxsd: &Bxsd, doc: &Document) -> bool {
    validate(bxsd, doc).is_valid()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bxsd::BxsdBuilder;
    use relang::{Regex, Sym};
    use xmltree::builder::elem;
    use xsd::{AttributeUse, ContentModel};

    fn recording() -> ValidateOptions {
        ValidateOptions {
            record_matches: true,
            ..ValidateOptions::default()
        }
    }

    /// The Figure-5-style schema from the bxsd module tests, with a
    /// required title on content sections.
    fn example() -> Bxsd {
        let mut b = BxsdBuilder::new();
        b.start("document");
        let template = b.ename.intern("template");
        let content = b.ename.intern("content");
        let section = b.ename.intern("section");
        b.suffix_rule(
            &["document"],
            ContentModel::new(Regex::concat(vec![
                Regex::sym(template),
                Regex::sym(content),
            ])),
        );
        b.suffix_rule(
            &["template"],
            ContentModel::new(Regex::opt(Regex::sym(section))),
        );
        b.suffix_rule(
            &["content"],
            ContentModel::new(Regex::star(Regex::sym(section))),
        );
        b.suffix_rule(
            &["section"],
            ContentModel::new(Regex::star(Regex::sym(section)))
                .with_mixed(true)
                .with_attributes([AttributeUse::required("title")]),
        );
        b.suffix_rule(
            &["template", "section"],
            ContentModel::new(Regex::opt(Regex::sym(section))),
        );
        b.build().unwrap()
    }

    #[test]
    fn accepts_valid_document() {
        let x = example();
        let doc = elem("document")
            .child(elem("template").child(elem("section")))
            .child(elem("content").child(elem("section").attr("title", "Intro").text("hi")))
            .build();
        let r = validate(&x, &doc);
        assert!(r.is_valid(), "{:?}", r.violations);
    }

    #[test]
    fn example_schema_uses_the_product_path() {
        let x = example();
        let c = CompiledBxsd::new(&x);
        assert!(
            c.product_states().is_some(),
            "Figure-5-style schema must fit the default budget"
        );
    }

    #[test]
    fn matches_recorded_only_on_request() {
        let x = example();
        let doc = elem("document")
            .child(elem("template"))
            .child(elem("content"))
            .build();
        let c = CompiledBxsd::new(&x);
        assert!(c.validate(&doc).matches.is_empty());
        assert_eq!(c.validate_with(&doc, recording()).matches.len(), 3);
    }

    #[test]
    fn priority_overrides_general_rule() {
        let x = example();
        // A template section must NOT need a title (rule 4 wins over 3).
        let doc = elem("document")
            .child(elem("template").child(elem("section")))
            .child(elem("content"))
            .build();
        let r = validate_with(&x, &doc, recording());
        assert!(r.is_valid(), "{:?}", r.violations);
        // the template section matched rules [3, 4], relevant = 4
        let tsec = doc
            .elements()
            .into_iter()
            .find(|&n| doc.name(n) == Some("section"))
            .unwrap();
        let m = &r.matches[&tsec];
        assert_eq!(m.matching, vec![3, 4]);
        assert_eq!(m.relevant, Some(4));
    }

    #[test]
    fn general_rule_applies_where_special_does_not() {
        let x = example();
        // content section without title: rule 3 is relevant → violation
        let doc = elem("document")
            .child(elem("template"))
            .child(elem("content").child(elem("section")))
            .build();
        let r = validate(&x, &doc);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::MissingAttribute(a) if a == "title")));
    }

    #[test]
    fn nodes_without_matching_rule_are_unconstrained() {
        let mut b = BxsdBuilder::new();
        b.start("a");
        let a = b.ename.intern("a");
        let bb = b.ename.intern("b");
        // only rule: a's children must be b
        b.rule(Regex::word(&[a]), ContentModel::new(Regex::sym(bb)));
        let x = b.build().unwrap();
        // b itself has no rule: anything under it is fine (Definition 1)
        let doc = elem("a")
            .child(elem("b").child(elem("b")).child(elem("b")).text("text"))
            .build();
        let r = validate_with(&x, &doc, recording());
        assert!(r.is_valid(), "{:?}", r.violations);
        let bnode = doc.element_children(doc.root()).next().unwrap();
        assert_eq!(r.matches[&bnode].relevant, None);
    }

    #[test]
    fn wrong_root_rejected() {
        let x = example();
        let doc = elem("section").build();
        let r = validate(&x, &doc);
        assert!(matches!(
            r.violations[0].kind,
            ViolationKind::RootNotAllowed(_)
        ));
    }

    #[test]
    fn unknown_child_fails_constrained_parent() {
        let x = example();
        let doc = elem("document")
            .child(elem("template"))
            .child(elem("content").child(elem("zzz")))
            .build();
        let r = validate(&x, &doc);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::ContentModel { element, at: 0 } if element == "content")));
    }

    #[test]
    fn compiled_validator_agrees_with_reference_relevance() {
        let x = example();
        let doc = elem("document")
            .child(elem("template").child(elem("section").child(elem("section"))))
            .child(
                elem("content").child(
                    elem("section")
                        .attr("title", "t")
                        .child(elem("section").attr("title", "u")),
                ),
            )
            .build();
        let r = validate_with(&x, &doc, recording());
        for (&node, m) in &r.matches {
            let path: Vec<Sym> = doc
                .anc_str(node)
                .iter()
                .map(|n| x.ename.lookup(n).unwrap())
                .collect();
            assert_eq!(m.relevant, x.relevant_rule(&path), "node {node:?}");
        }
    }

    /// Documents exercising every violation class against `example()`.
    fn test_documents() -> Vec<xmltree::Document> {
        vec![
            elem("document")
                .child(elem("template").child(elem("section")))
                .child(elem("content").child(elem("section").attr("title", "Intro").text("hi")))
                .build(),
            elem("document")
                .child(elem("template"))
                .child(elem("content").child(elem("section")))
                .build(),
            elem("document")
                .child(elem("template"))
                .child(elem("content").child(elem("zzz")).child(elem("section")))
                .build(),
            elem("section").build(),
            elem("document")
                .child(elem("content"))
                .child(elem("template"))
                .build(),
        ]
    }

    #[test]
    fn product_and_lockstep_agree() {
        let x = example();
        let c = CompiledBxsd::new(&x);
        assert!(c.product_states().is_some());
        for doc in test_documents() {
            let fast = c.validate_with(&doc, recording());
            let slow = c.validate_with(
                &doc,
                ValidateOptions {
                    record_matches: true,
                    force_lockstep: true,
                },
            );
            assert_eq!(fast.violations, slow.violations);
            assert_eq!(fast.matches, slow.matches);
        }
    }

    #[test]
    fn budget_overflow_falls_back_to_lockstep() {
        let x = example();
        let tiny = CompiledBxsd::with_budget(&x, 1);
        assert_eq!(tiny.product_states(), None);
        let full = CompiledBxsd::new(&x);
        for doc in test_documents() {
            let a = tiny.validate_with(&doc, recording());
            let b = full.validate_with(&doc, recording());
            assert_eq!(a.violations, b.violations);
            assert_eq!(a.matches, b.matches);
        }
    }

    /// Streams `input` and tree-validates the parse of the same bytes;
    /// asserts byte-identical reports under all four strategy/recording
    /// combinations. Returns the (sorted) violations for further checks.
    fn assert_stream_equivalence(c: &CompiledBxsd<'_>, input: &str) -> Vec<Violation> {
        let doc = xmltree::parse_document(input).expect("test inputs are well-formed");
        let mut out = Vec::new();
        for force_lockstep in [false, true] {
            for record_matches in [false, true] {
                let opts = ValidateOptions {
                    record_matches,
                    force_lockstep,
                };
                let tree = c.validate_with(&doc, opts);
                let mut reader = XmlReader::from_str(input);
                let streamed = c.validate_stream_with(&mut reader, opts).unwrap();
                assert_eq!(streamed.violations, tree.violations, "{opts:?} on {input}");
                assert_eq!(streamed.matches, tree.matches, "{opts:?} on {input}");
                out = streamed.violations;
            }
        }
        out
    }

    #[test]
    fn stream_matches_tree_on_example_documents() {
        let x = example();
        let c = CompiledBxsd::new(&x);
        for doc in test_documents() {
            let input = xmltree::to_string(&doc);
            assert_stream_equivalence(&c, &input);
        }
    }

    #[test]
    fn stream_matches_tree_without_product() {
        let x = example();
        let c = CompiledBxsd::with_budget(&x, 0);
        assert_eq!(c.product_states(), None);
        for doc in test_documents() {
            let input = xmltree::to_string(&doc);
            assert_stream_equivalence(&c, &input);
        }
    }

    #[test]
    fn stream_rejects_malformed_xml() {
        let x = example();
        let c = CompiledBxsd::new(&x);
        let mut reader = XmlReader::from_str("<document><template></document>");
        assert!(c.validate_stream(&mut reader).is_err());
        // Root rejection still surfaces later parse errors (the tree
        // path would fail at parse time, before validation).
        let mut reader = XmlReader::from_str("<zzz><a></b></zzz>");
        assert!(c.validate_stream(&mut reader).is_err());
    }

    #[test]
    fn stream_works_from_io_reader() {
        let x = example();
        let c = CompiledBxsd::new(&x);
        let input =
            "<document><template/><content><section title=\"t\">hi</section></content></document>";
        let mut reader = XmlReader::from_reader(input.as_bytes());
        let r = c.validate_stream(&mut reader).unwrap();
        assert!(r.is_valid(), "{:?}", r.violations);
    }

    #[test]
    fn whitespace_only_text_in_element_only_content_is_fine() {
        // Pretty-printed documents put whitespace text between children
        // of element-only models; that must not be UnexpectedText — in
        // either validator.
        let x = example();
        let c = CompiledBxsd::new(&x);
        let input = "<document>\n  <template/>\n  <content>\n    <section title=\"t\"/>\n  </content>\n</document>";
        let violations = assert_stream_equivalence(&c, input);
        assert!(violations.is_empty(), "{violations:?}");
        // …while real text there still is a violation, at the right node.
        let bad = "<document>\n  <template/>stray\n  <content/>\n</document>";
        let violations = assert_stream_equivalence(&c, bad);
        assert_eq!(violations.len(), 1);
        assert!(
            matches!(&violations[0].kind, ViolationKind::UnexpectedText(e) if e == "document"),
            "{violations:?}"
        );
    }

    #[test]
    fn batch_matches_sequential() {
        let x = example();
        let c = CompiledBxsd::new(&x);
        let docs = test_documents();
        let batch = c.validate_batch(&docs, recording());
        assert_eq!(batch.len(), docs.len());
        for (doc, got) in docs.iter().zip(&batch) {
            let want = c.validate_with(doc, recording());
            assert_eq!(got.violations, want.violations);
            assert_eq!(got.matches, want.matches);
        }
    }
}
