//! Validation of documents against BXSDs under the priority semantics,
//! with matched-rule reporting (the tool feature from \[19\]: "validate XML
//! against them and highlights matching rules").

use std::collections::BTreeMap;

use relang::{CompiledDre, Dfa};
use xmltree::{Document, NodeId};
use xsd::violation::{Violation, ViolationKind};

use crate::bxsd::Bxsd;

/// Per-node rule-match information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeMatch {
    /// All rule indices whose ancestor expression matches this node's
    /// ancestor string, in schema order.
    pub matching: Vec<usize>,
    /// The relevant (highest-priority) rule, if any. Nodes with no
    /// matching rule are unconstrained under Definition 1.
    pub relevant: Option<usize>,
}

/// The result of validating a document against a BXSD.
#[derive(Clone, Debug)]
pub struct BxsdReport {
    /// All violations (empty = the document conforms).
    pub violations: Vec<Violation>,
    /// Rule matches per element node.
    pub matches: BTreeMap<NodeId, NodeMatch>,
}

impl BxsdReport {
    /// Whether the document conforms.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A BXSD compiled for repeated validation: one DFA per ancestor
/// expression (run in lock-step down the tree) and one matcher per
/// content model.
pub struct CompiledBxsd<'a> {
    bxsd: &'a Bxsd,
    ancestor_dfas: Vec<Dfa>,
    content_matchers: Vec<CompiledDre>,
}

impl<'a> CompiledBxsd<'a> {
    /// Compiles all rule expressions of `bxsd`.
    pub fn new(bxsd: &'a Bxsd) -> Self {
        let n = bxsd.ename.len();
        let ancestor_dfas = bxsd
            .rules
            .iter()
            .map(|r| relang::ops::regex_to_dfa(&r.ancestor, n))
            .collect();
        let content_matchers = bxsd
            .rules
            .iter()
            .map(|r| CompiledDre::compile(&r.content.regex, n))
            .collect();
        CompiledBxsd {
            bxsd,
            ancestor_dfas,
            content_matchers,
        }
    }

    /// The underlying schema.
    pub fn bxsd(&self) -> &Bxsd {
        self.bxsd
    }

    /// Validates `doc` under the priority semantics.
    pub fn validate(&self, doc: &Document) -> BxsdReport {
        let mut report = BxsdReport {
            violations: Vec::new(),
            matches: BTreeMap::new(),
        };
        let root = doc.root();
        let root_name = doc.name(root).expect("root is an element");
        let root_sym = self.bxsd.ename.lookup(root_name);
        if !root_sym.is_some_and(|s| self.bxsd.start.contains(&s)) {
            report.violations.push(Violation {
                node: root,
                kind: ViolationKind::RootNotAllowed(root_name.to_owned()),
            });
            return report;
        }
        // Per-rule ancestor-DFA states (None = dead).
        let init: Vec<Option<usize>> = self
            .ancestor_dfas
            .iter()
            .map(|d| {
                let sym = root_sym.expect("checked");
                d.transition(d.initial(), sym)
            })
            .collect();
        // Explicit work stack: documents can be arbitrarily deep.
        let mut stack = vec![(root, init)];
        while let Some((node, states)) = stack.pop() {
            self.visit(doc, node, states, &mut report, &mut stack);
        }
        report
    }

    fn visit(
        &self,
        doc: &Document,
        node: NodeId,
        states: Vec<Option<usize>>,
        report: &mut BxsdReport,
        stack: &mut Vec<(NodeId, Vec<Option<usize>>)>,
    ) {
        let matching: Vec<usize> = states
            .iter()
            .enumerate()
            .filter(|(i, s)| s.is_some_and(|q| self.ancestor_dfas[*i].is_final(q)))
            .map(|(i, _)| i)
            .collect();
        let relevant = matching.last().copied();
        report.matches.insert(
            node,
            NodeMatch {
                matching: matching.clone(),
                relevant,
            },
        );

        // Child word over EName. Definition 1 considers trees labeled from
        // EName; a name outside the alphabet is a violation at the child
        // itself (and fails a constrained parent's content model) — this
        // matches the behavior of the translated schemas, whose `(EName)*`
        // filler states also reject foreign names.
        let mut word = Vec::new();
        let mut unknown_at = None;
        for (i, child) in doc.element_children(node).enumerate() {
            match self.bxsd.ename.lookup(doc.name(child).expect("element")) {
                Some(sym) => word.push(sym),
                None => {
                    report.violations.push(Violation {
                        node: child,
                        kind: ViolationKind::NoGoverningDefinition(
                            doc.name(child).expect("element").to_owned(),
                        ),
                    });
                    unknown_at = Some(i);
                    break;
                }
            }
        }

        if let Some(i) = relevant {
            let model = &self.bxsd.rules[i].content;
            let name = doc.name(node).expect("element");
            xsd::violation::check_text(doc, node, model, &mut report.violations);
            xsd::violation::check_attributes(doc, node, model, &mut report.violations);
            let failed_at = unknown_at.or_else(|| {
                if model.simple_content.is_some() {
                    // simple content: no element children at all
                    (!word.is_empty() || unknown_at.is_some()).then_some(0)
                } else {
                    self.content_matchers[i].first_error(&word)
                }
            });
            if let Some(at) = failed_at {
                report.violations.push(Violation {
                    node,
                    kind: ViolationKind::ContentModel {
                        element: name.to_owned(),
                        at,
                    },
                });
            }
        }

        // Queue the children with advanced rule states. Children with
        // unknown names get no matches.
        for (i, child) in doc.element_children(node).enumerate() {
            let next: Vec<Option<usize>> = match word.get(i) {
                Some(&sym) => states
                    .iter()
                    .zip(&self.ancestor_dfas)
                    .map(|(s, d)| s.and_then(|q| d.transition(q, sym)))
                    .collect(),
                None => vec![None; states.len()],
            };
            stack.push((child, next));
        }
    }
}

/// One-shot validation under the priority semantics.
pub fn validate(bxsd: &Bxsd, doc: &Document) -> BxsdReport {
    CompiledBxsd::new(bxsd).validate(doc)
}

/// Whether `doc` conforms to `bxsd` (priority semantics).
pub fn is_valid(bxsd: &Bxsd, doc: &Document) -> bool {
    validate(bxsd, doc).is_valid()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bxsd::BxsdBuilder;
    use relang::{Regex, Sym};
    use xmltree::builder::elem;
    use xsd::{AttributeUse, ContentModel};

    /// The Figure-5-style schema from the bxsd module tests, with a
    /// required title on content sections.
    fn example() -> Bxsd {
        let mut b = BxsdBuilder::new();
        b.start("document");
        let template = b.ename.intern("template");
        let content = b.ename.intern("content");
        let section = b.ename.intern("section");
        b.suffix_rule(
            &["document"],
            ContentModel::new(Regex::concat(vec![
                Regex::sym(template),
                Regex::sym(content),
            ])),
        );
        b.suffix_rule(&["template"], ContentModel::new(Regex::opt(Regex::sym(section))));
        b.suffix_rule(&["content"], ContentModel::new(Regex::star(Regex::sym(section))));
        b.suffix_rule(
            &["section"],
            ContentModel::new(Regex::star(Regex::sym(section)))
                .with_mixed(true)
                .with_attributes([AttributeUse::required("title")]),
        );
        b.suffix_rule(
            &["template", "section"],
            ContentModel::new(Regex::opt(Regex::sym(section))),
        );
        b.build().unwrap()
    }

    #[test]
    fn accepts_valid_document() {
        let x = example();
        let doc = elem("document")
            .child(elem("template").child(elem("section")))
            .child(
                elem("content")
                    .child(elem("section").attr("title", "Intro").text("hi")),
            )
            .build();
        let r = validate(&x, &doc);
        assert!(r.is_valid(), "{:?}", r.violations);
    }

    #[test]
    fn priority_overrides_general_rule() {
        let x = example();
        // A template section must NOT need a title (rule 4 wins over 3).
        let doc = elem("document")
            .child(elem("template").child(elem("section")))
            .child(elem("content"))
            .build();
        let r = validate(&x, &doc);
        assert!(r.is_valid(), "{:?}", r.violations);
        // the template section matched rules [3, 4], relevant = 4
        let tsec = doc
            .elements()
            .into_iter()
            .find(|&n| {
                doc.name(n) == Some("section")
            })
            .unwrap();
        let m = &r.matches[&tsec];
        assert_eq!(m.matching, vec![3, 4]);
        assert_eq!(m.relevant, Some(4));
    }

    #[test]
    fn general_rule_applies_where_special_does_not() {
        let x = example();
        // content section without title: rule 3 is relevant → violation
        let doc = elem("document")
            .child(elem("template"))
            .child(elem("content").child(elem("section")))
            .build();
        let r = validate(&x, &doc);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::MissingAttribute(a) if a == "title")));
    }

    #[test]
    fn nodes_without_matching_rule_are_unconstrained() {
        let mut b = BxsdBuilder::new();
        b.start("a");
        let a = b.ename.intern("a");
        let bb = b.ename.intern("b");
        // only rule: a's children must be b
        b.rule(
            Regex::word(&[a]),
            ContentModel::new(Regex::sym(bb)),
        );
        let x = b.build().unwrap();
        // b itself has no rule: anything under it is fine (Definition 1)
        let doc = elem("a")
            .child(elem("b").child(elem("b")).child(elem("b")).text("text"))
            .build();
        let r = validate(&x, &doc);
        assert!(r.is_valid(), "{:?}", r.violations);
        let bnode = doc.element_children(doc.root()).next().unwrap();
        assert_eq!(r.matches[&bnode].relevant, None);
    }

    #[test]
    fn wrong_root_rejected() {
        let x = example();
        let doc = elem("section").build();
        let r = validate(&x, &doc);
        assert!(matches!(
            r.violations[0].kind,
            ViolationKind::RootNotAllowed(_)
        ));
    }

    #[test]
    fn unknown_child_fails_constrained_parent() {
        let x = example();
        let doc = elem("document")
            .child(elem("template"))
            .child(elem("content").child(elem("zzz")))
            .build();
        let r = validate(&x, &doc);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::ContentModel { element, at: 0 } if element == "content")));
    }

    #[test]
    fn compiled_validator_agrees_with_reference_relevance() {
        let x = example();
        let doc = elem("document")
            .child(elem("template").child(elem("section").child(elem("section"))))
            .child(
                elem("content").child(
                    elem("section")
                        .attr("title", "t")
                        .child(elem("section").attr("title", "u")),
                ),
            )
            .build();
        let r = validate(&x, &doc);
        for (&node, m) in &r.matches {
            let path: Vec<Sym> = doc
                .anc_str(node)
                .iter()
                .map(|n| x.ename.lookup(n).unwrap())
                .collect();
            assert_eq!(m.relevant, x.relevant_rule(&path), "node {node:?}");
        }
    }
}
