//! The practical BonXai language (Section 3): compact syntax, parser,
//! printer, and the lowering to / lifting from the formal BXSD core.

pub mod ast;
pub mod lexer;
pub mod lift;
pub mod lower;
pub mod parser;
pub mod printer;

pub use ast::{
    AncestorPattern, AttributeItem, ChildPattern, Particle, PathExpr, RuleAst, RuleBody, SchemaAst,
    Span,
};
pub use lexer::LangError;
pub use lift::lift;
pub use lower::{lower, lower_lenient, LowerIssue, Lowered, LoweredLenient};
pub use parser::{parse_ancestor_pattern, parse_schema};
pub use printer::print_schema;
