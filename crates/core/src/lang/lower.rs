//! Lowering the practical language to the formal core (BXSD).
//!
//! Groups are expanded, ancestor patterns become regular expressions over
//! the schema's element alphabet (with `//` as `EName*`), and attribute
//! rules (`@size = { type xs:integer }`) are resolved into the static
//! attribute types carried by each rule's content model.
//!
//! Attribute-type resolution is static: for an element rule `P = {…
//! attribute a …}` the type of `a` is taken from the *latest* attribute
//! rule `Q(@…a…) = { type T }` whose element pattern `Q` intersects `P`.
//! This is exact whenever attribute-rule patterns subsume the element
//! patterns they apply to — which covers the global `(@name|@title) =
//! { type xs:string }` style of Figures 4/5 and everything our printer
//! emits.

use std::collections::BTreeMap;

use relang::{Alphabet, Regex};
use xsd::{simple_types::Facets, AttributeUse, ContentModel, SimpleType};

use crate::bxsd::{Bxsd, Rule};
use crate::lang::ast::{AttributeItem, ChildPattern, Particle, PathExpr, RuleBody, SchemaAst};
use crate::lang::lexer::LangError;

/// The result of lowering: the formal schema plus provenance.
#[derive(Clone, Debug)]
pub struct Lowered {
    /// The formal core schema.
    pub bxsd: Bxsd,
    /// For each BXSD rule, the index of the source rule in the AST.
    pub rule_source: Vec<usize>,
}

/// A structural problem collected during [`lower_lenient`].
#[derive(Clone, Debug)]
pub struct LowerIssue {
    /// Index of the offending rule in `ast.rules`.
    pub rule: usize,
    /// Description, e.g. `unknown group "markup"`.
    pub message: String,
    /// Whether the offender is an attribute rule with a non-type body
    /// (such rules are skipped entirely by the lenient lowering).
    pub attribute_rule: bool,
}

/// The result of lenient lowering: never fails on semantic problems.
///
/// Unknown/cyclic group references and malformed attribute rules are
/// collected as [`LowerIssue`]s — the offending content model falls back
/// to empty content — and the UPA gate is skipped (the schema is built
/// with [`Bxsd::new_unchecked`]). This is the entry point for analysis
/// tooling that must report *all* problems instead of refusing at the
/// first; [`lower`] is the strict wrapper used everywhere else.
#[derive(Clone, Debug)]
pub struct LoweredLenient {
    /// The formal core schema (UPA **not** enforced).
    pub bxsd: Bxsd,
    /// For each BXSD rule, the index of the source rule in the AST.
    pub rule_source: Vec<usize>,
    /// Structural problems found along the way.
    pub issues: Vec<LowerIssue>,
}

/// Lowers a parsed schema to its BXSD core.
pub fn lower(ast: &SchemaAst) -> Result<Lowered, LangError> {
    let parts = lower_parts(ast);
    if let Some(issue) = parts.issues.into_iter().next() {
        let source = &ast.rules[issue.rule].pattern.source;
        let msg = if issue.attribute_rule {
            format!("attribute rule {:?} {}", source, issue.message)
        } else {
            format!("in rule {:?}: {}", source, issue.message)
        };
        return Err(LangError::new(0, 0, msg));
    }
    let rule_source = parts.rule_source;
    let bxsd = Bxsd::new(parts.alphabet, parts.start, parts.rules).map_err(|e| match e {
        crate::bxsd::BxsdError::NotDeterministic { rule, witness } => LangError::new(
            0,
            0,
            format!(
                "content model of rule {:?} violates UPA: {witness}",
                ast.rules[rule_source[rule]].pattern.source
            ),
        ),
    })?;
    Ok(Lowered { bxsd, rule_source })
}

/// Lowers a parsed schema without refusing on semantic problems.
///
/// See [`LoweredLenient`]: issues are collected, offending content models
/// fall back to empty content, and UPA is not enforced.
pub fn lower_lenient(ast: &SchemaAst) -> LoweredLenient {
    let parts = lower_parts(ast);
    LoweredLenient {
        bxsd: Bxsd::new_unchecked(parts.alphabet, parts.start, parts.rules),
        rule_source: parts.rule_source,
        issues: parts.issues,
    }
}

/// Everything both lowering modes need, before the UPA gate.
struct LowerParts {
    alphabet: Alphabet,
    start: std::collections::BTreeSet<relang::Sym>,
    rules: Vec<Rule>,
    rule_source: Vec<usize>,
    issues: Vec<LowerIssue>,
}

fn lower_parts(ast: &SchemaAst) -> LowerParts {
    // 1. The element alphabet: everything mentioned anywhere.
    let mut alphabet = Alphabet::new();
    alphabet.reserve(count_schema_names(ast));
    for g in &ast.globals {
        alphabet.intern(g);
    }
    for rule in &ast.rules {
        collect_path_names(&rule.pattern.path, &mut alphabet);
        if let RuleBody::Complex(cp) = &rule.body {
            if let Some(p) = &cp.particle {
                collect_particle_names(p, &mut alphabet);
            }
        }
    }
    for (_, p) in &ast.groups {
        collect_particle_names(p, &mut alphabet);
    }
    for c in &ast.constraints {
        collect_path_names(&c.selector, &mut alphabet);
    }

    let groups: BTreeMap<&str, &Particle> =
        ast.groups.iter().map(|(n, p)| (n.as_str(), p)).collect();
    let attribute_groups: BTreeMap<&str, &Vec<AttributeItem>> = ast
        .attribute_groups
        .iter()
        .map(|(n, a)| (n.as_str(), a))
        .collect();

    // 2. Attribute rules (LHS carries attribute names).
    struct AttrRule {
        path: Regex,
        names: Vec<String>,
        simple_type: SimpleType,
        facets: Facets,
    }
    let mut issues: Vec<LowerIssue> = Vec::new();
    let mut attr_rules: Vec<AttrRule> = Vec::new();
    for (idx, rule) in ast.rules.iter().enumerate() {
        if rule.pattern.attributes.is_empty() {
            continue;
        }
        let (simple_type, facets) = match &rule.body {
            RuleBody::Simple(st, facets) => (*st, facets.clone()),
            RuleBody::Complex(_) => {
                issues.push(LowerIssue {
                    rule: idx,
                    message: "must have a '{ type … }' body".to_string(),
                    attribute_rule: true,
                });
                continue;
            }
        };
        attr_rules.push(AttrRule {
            path: path_to_regex_resolved(&rule.pattern.path, &alphabet),
            names: rule.pattern.attributes.clone(),
            simple_type,
            facets,
        });
    }

    // 3. Element rules.
    let resolve_attr_type = |name: &str, elem_path: &Regex| -> (SimpleType, Facets) {
        for ar in attr_rules.iter().rev() {
            if ar.names.iter().any(|n| n == name)
                && relang::ops::language::intersection_witness(&ar.path, elem_path, alphabet.len())
                    .is_some()
            {
                return (ar.simple_type, ar.facets.clone());
            }
        }
        (SimpleType::AnySimpleType, Facets::default())
    };

    let mut rules = Vec::new();
    let mut rule_source = Vec::new();
    for (idx, rule) in ast.rules.iter().enumerate() {
        if !rule.pattern.attributes.is_empty() {
            continue; // attribute rules are folded into content models
        }
        let ancestor = path_to_regex_resolved(&rule.pattern.path, &alphabet);
        let content = match &rule.body {
            RuleBody::Simple(st, facets) => {
                ContentModel::simple(*st).with_simple_facets(facets.clone())
            }
            RuleBody::Complex(cp) => lower_child_pattern(
                cp,
                &groups,
                &attribute_groups,
                &alphabet,
                &ancestor,
                &resolve_attr_type,
            )
            .unwrap_or_else(|msg| {
                issues.push(LowerIssue {
                    rule: idx,
                    message: msg,
                    attribute_rule: false,
                });
                ContentModel::new(Regex::Epsilon)
            }),
        };
        rules.push(Rule::new(ancestor, content));
        rule_source.push(idx);
    }

    let mut start = std::collections::BTreeSet::new();
    for g in &ast.globals {
        start.insert(alphabet.lookup(g).expect("interned above"));
    }
    LowerParts {
        alphabet,
        start,
        rules,
        rule_source,
        issues,
    }
}

fn lower_child_pattern(
    cp: &ChildPattern,
    groups: &BTreeMap<&str, &Particle>,
    attribute_groups: &BTreeMap<&str, &Vec<AttributeItem>>,
    alphabet: &Alphabet,
    elem_path: &Regex,
    resolve_attr_type: &impl Fn(&str, &Regex) -> (SimpleType, Facets),
) -> Result<ContentModel, String> {
    if cp.open {
        // `any`: wildcard content (attribute items are redundant under an
        // open model but harmless).
        return Ok(ContentModel::any_content(alphabet));
    }
    let regex = match &cp.particle {
        None => Regex::Epsilon,
        Some(p) => {
            let mut stack = Vec::new();
            particle_to_regex(p, groups, alphabet, &mut stack)?
        }
    };
    let mut attr_items: Vec<AttributeItem> = cp.attributes.clone();
    for gref in &cp.attribute_group_refs {
        let items = attribute_groups
            .get(gref.as_str())
            .ok_or_else(|| format!("unknown attribute group {gref:?}"))?;
        attr_items.extend((*items).clone());
    }
    let attributes: Vec<AttributeUse> = attr_items
        .into_iter()
        .map(|item| {
            let (simple_type, facets) = resolve_attr_type(&item.name, elem_path);
            AttributeUse {
                simple_type,
                facets,
                required: !item.optional,
                name: item.name,
            }
        })
        .collect();
    Ok(ContentModel::new(regex)
        .with_mixed(cp.mixed)
        .with_attributes(attributes))
}

fn particle_to_regex(
    p: &Particle,
    groups: &BTreeMap<&str, &Particle>,
    alphabet: &Alphabet,
    stack: &mut Vec<String>,
) -> Result<Regex, String> {
    Ok(match p {
        Particle::Element(name) => Regex::sym(
            alphabet
                .lookup(name)
                .expect("element names were interned during collection"),
        ),
        Particle::GroupRef(name) => {
            if stack.iter().any(|g| g == name) {
                return Err(format!("cyclic group reference through {name:?}"));
            }
            let inner = groups
                .get(name.as_str())
                .ok_or_else(|| format!("unknown group {name:?}"))?;
            stack.push(name.clone());
            let r = particle_to_regex(inner, groups, alphabet, stack)?;
            stack.pop();
            r
        }
        Particle::Seq(items) => Regex::concat(
            items
                .iter()
                .map(|i| particle_to_regex(i, groups, alphabet, stack))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Particle::Alt(items) => Regex::alt(
            items
                .iter()
                .map(|i| particle_to_regex(i, groups, alphabet, stack))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Particle::Interleave(items) => Regex::interleave(
            items
                .iter()
                .map(|i| particle_to_regex(i, groups, alphabet, stack))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Particle::Star(inner) => Regex::star(particle_to_regex(inner, groups, alphabet, stack)?),
        Particle::Plus(inner) => Regex::plus(particle_to_regex(inner, groups, alphabet, stack)?),
        Particle::Opt(inner) => Regex::opt(particle_to_regex(inner, groups, alphabet, stack)?),
        Particle::Repeat(inner, lo, hi) => Regex::repeat(
            particle_to_regex(inner, groups, alphabet, stack)?,
            *lo,
            hi.map_or(relang::UpperBound::Unbounded, relang::UpperBound::Finite),
        ),
    })
}

/// Converts a path expression into a regex over `alphabet`. Names not in
/// the alphabet denote the empty language (they can never match).
pub fn path_to_regex_resolved(path: &PathExpr, alphabet: &Alphabet) -> Regex {
    match path {
        PathExpr::Empty => Regex::Epsilon,
        PathExpr::Name(n) => alphabet.lookup(n).map_or(Regex::Empty, Regex::sym),
        PathExpr::AnyChain => Regex::star(Regex::sym_set(alphabet.symbols())),
        PathExpr::Seq(items) => Regex::concat(
            items
                .iter()
                .map(|i| path_to_regex_resolved(i, alphabet))
                .collect(),
        ),
        PathExpr::Alt(items) => Regex::alt(
            items
                .iter()
                .map(|i| path_to_regex_resolved(i, alphabet))
                .collect(),
        ),
        PathExpr::Star(inner) => Regex::star(path_to_regex_resolved(inner, alphabet)),
        PathExpr::Plus(inner) => Regex::plus(path_to_regex_resolved(inner, alphabet)),
        PathExpr::Opt(inner) => Regex::opt(path_to_regex_resolved(inner, alphabet)),
        PathExpr::Repeat(inner, lo, hi) => Regex::repeat(
            path_to_regex_resolved(inner, alphabet),
            *lo,
            hi.map_or(relang::UpperBound::Unbounded, relang::UpperBound::Finite),
        ),
    }
}

/// Upper bound on the number of name mentions in the schema, so the
/// alphabet's slot table can be pre-sized once instead of rebuilt while
/// lowering interns the symbol set.
fn count_schema_names(ast: &SchemaAst) -> usize {
    let mut n = ast.globals.len();
    for rule in &ast.rules {
        n += count_path_names(&rule.pattern.path);
        if let RuleBody::Complex(cp) = &rule.body {
            if let Some(p) = &cp.particle {
                n += count_particle_names(p);
            }
        }
    }
    for (_, p) in &ast.groups {
        n += count_particle_names(p);
    }
    for c in &ast.constraints {
        n += count_path_names(&c.selector);
    }
    n
}

fn count_path_names(path: &PathExpr) -> usize {
    match path {
        PathExpr::Empty | PathExpr::AnyChain => 0,
        PathExpr::Name(_) => 1,
        PathExpr::Seq(items) | PathExpr::Alt(items) => items.iter().map(count_path_names).sum(),
        PathExpr::Star(i) | PathExpr::Plus(i) | PathExpr::Opt(i) | PathExpr::Repeat(i, _, _) => {
            count_path_names(i)
        }
    }
}

fn count_particle_names(p: &Particle) -> usize {
    match p {
        Particle::Element(_) => 1,
        Particle::GroupRef(_) => 0,
        Particle::Seq(items) | Particle::Alt(items) | Particle::Interleave(items) => {
            items.iter().map(count_particle_names).sum()
        }
        Particle::Star(i) | Particle::Plus(i) | Particle::Opt(i) | Particle::Repeat(i, _, _) => {
            count_particle_names(i)
        }
    }
}

fn collect_path_names(path: &PathExpr, alphabet: &mut Alphabet) {
    match path {
        PathExpr::Empty | PathExpr::AnyChain => {}
        PathExpr::Name(n) => {
            alphabet.intern(n);
        }
        PathExpr::Seq(items) | PathExpr::Alt(items) => {
            for i in items {
                collect_path_names(i, alphabet);
            }
        }
        PathExpr::Star(i) | PathExpr::Plus(i) | PathExpr::Opt(i) | PathExpr::Repeat(i, _, _) => {
            collect_path_names(i, alphabet)
        }
    }
}

fn collect_particle_names(p: &Particle, alphabet: &mut Alphabet) {
    match p {
        Particle::Element(n) => {
            alphabet.intern(n);
        }
        Particle::GroupRef(_) => {}
        Particle::Seq(items) | Particle::Alt(items) | Particle::Interleave(items) => {
            for i in items {
                collect_particle_names(i, alphabet);
            }
        }
        Particle::Star(i) | Particle::Plus(i) | Particle::Opt(i) | Particle::Repeat(i, _, _) => {
            collect_particle_names(i, alphabet)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parser::parse_schema;
    use crate::validate::is_valid;
    use xmltree::builder::elem;

    #[test]
    fn lowers_figure4_style_dtd_equivalent() {
        let src = r#"
            global { document }
            grammar {
              document = { element template, element content }
              template = { element section }
              content = { (element section)* }
              section = mixed { attribute title?, (element section)* }
              @title = { type xs:string }
            }
        "#;
        let lowered = lower(&parse_schema(src).unwrap()).unwrap();
        let b = &lowered.bxsd;
        assert_eq!(b.n_rules(), 4); // the @title rule folds into attributes
        assert_eq!(lowered.rule_source, vec![0, 1, 2, 3]);

        let good = elem("document")
            .child(elem("template").child(elem("section").attr("title", "t").text("x")))
            .child(elem("content"))
            .build();
        assert!(is_valid(b, &good));
        let bad = elem("document").child(elem("content")).build();
        assert!(!is_valid(b, &bad));
    }

    #[test]
    fn groups_expand() {
        let src = r#"
            global { p }
            groups {
              group markup = { element b | element i }
            }
            grammar {
              p = mixed { (group markup)* }
              (b|i) = mixed { (group markup)* }
            }
        "#;
        let lowered = lower(&parse_schema(src).unwrap()).unwrap();
        let doc = elem("p")
            .text("hello ")
            .child(elem("b").text("bold").child(elem("i").text("it")))
            .build();
        assert!(is_valid(&lowered.bxsd, &doc));
    }

    #[test]
    fn attribute_types_resolve_by_pattern() {
        let src = r#"
            global { doc }
            grammar {
              doc = { (element item)* }
              item = { attribute n }
              @n = { type xs:string }
              item/@n = { type xs:integer }
            }
        "#;
        // later rule wins: items' n attributes are integers
        let lowered = lower(&parse_schema(src).unwrap()).unwrap();
        let rule = lowered
            .bxsd
            .rules
            .iter()
            .find(|r| !r.content.attributes.is_empty())
            .unwrap();
        assert_eq!(rule.content.attributes[0].simple_type, SimpleType::Integer);
        let good = elem("doc").child(elem("item").attr("n", "42")).build();
        assert!(is_valid(&lowered.bxsd, &good));
        let bad = elem("doc").child(elem("item").attr("n", "x")).build();
        assert!(!is_valid(&lowered.bxsd, &bad));
    }

    #[test]
    fn simple_content_rules() {
        let src = r#"
            global { doc }
            grammar {
              doc = { element price }
              price = { type xs:decimal }
            }
        "#;
        let lowered = lower(&parse_schema(src).unwrap()).unwrap();
        let good = elem("doc").child(elem("price").text("9.99")).build();
        assert!(is_valid(&lowered.bxsd, &good));
        let bad = elem("doc").child(elem("price").text("cheap")).build();
        assert!(!is_valid(&lowered.bxsd, &bad));
    }

    #[test]
    fn upa_violation_reported_with_source() {
        let src = r#"
            global { a }
            grammar {
              a = { (element b | element c)*, element b }
            }
        "#;
        let err = lower(&parse_schema(src).unwrap()).unwrap_err();
        assert!(err.message.contains("UPA"), "{err}");
        assert!(err.message.contains('a'), "{err}");
    }

    #[test]
    fn unknown_group_reported() {
        let src = "global { a } grammar { a = { group nope } }";
        let err = lower(&parse_schema(src).unwrap()).unwrap_err();
        assert!(err.message.contains("unknown group"), "{err}");
    }

    #[test]
    fn cyclic_group_reported() {
        let src = r#"
            global { a }
            groups {
              group g = { element x, group g }
            }
            grammar { a = { group g } }
        "#;
        let err = lower(&parse_schema(src).unwrap()).unwrap_err();
        assert!(err.message.contains("cyclic"), "{err}");
    }
}
