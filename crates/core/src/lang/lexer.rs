//! Lexer for the BonXai compact syntax.
//!
//! `#` starts a line comment. Names follow XML conventions (letters,
//! digits, `_`, `-`, `.`, `:`), which makes `attribute-group` and
//! `xs:string` single tokens. Counted repetitions `{2,5}` are lexed as one
//! token — a `{` immediately followed by a digit cannot start a rule body.
//! Namespace URIs are read by the parser in line mode (they contain `/`).

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// A name / keyword (`element`, `section`, `xs:string`, …).
    Ident(String),
    /// `@`.
    At,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `=`.
    Eq,
    /// `,`.
    Comma,
    /// `|`.
    Pipe,
    /// `&`.
    Amp,
    /// `*`.
    Star,
    /// `+`.
    Plus,
    /// `?`.
    Question,
    /// `/`.
    Slash,
    /// `//`.
    DSlash,
    /// `{n,m}` with `None` = `*` upper bound.
    Count(u32, Option<u32>),
    /// A quoted string literal (`"…"`, used for facet values).
    Str(String),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::At => write!(f, "@"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Eq => write!(f, "="),
            Tok::Comma => write!(f, ","),
            Tok::Pipe => write!(f, "|"),
            Tok::Amp => write!(f, "&"),
            Tok::Star => write!(f, "*"),
            Tok::Plus => write!(f, "+"),
            Tok::Question => write!(f, "?"),
            Tok::Slash => write!(f, "/"),
            Tok::DSlash => write!(f, "//"),
            Tok::Count(n, Some(m)) => write!(f, "{{{n},{m}}}"),
            Tok::Count(n, None) => write!(f, "{{{n},*}}"),
            Tok::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Byte offset in the source.
    pub offset: usize,
}

/// A BonXai parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LangError {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Description.
    pub message: String,
}

impl LangError {
    pub(crate) fn new(line: u32, col: u32, message: impl Into<String>) -> Self {
        LangError {
            line,
            col,
            message: message.into(),
        }
    }

    pub(crate) fn at(tok: &Spanned, message: impl Into<String>) -> Self {
        Self::new(tok.line, tok.col, message)
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LangError {}

/// The lexer; also retains the raw source so the parser can read URI
/// lines verbatim.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
        }
    }

    fn col(&self) -> u32 {
        (self.pos - self.line_start) as u32 + 1
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        LangError::new(self.line, self.col(), msg)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(c)
    }

    /// Skips whitespace and `#` comments.
    pub fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    /// Reads the rest of the current line as a raw string (for URIs).
    pub fn take_rest_of_line(&mut self) -> String {
        // skip leading horizontal whitespace
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.bump();
        }
        let start = self.pos;
        while !matches!(self.peek(), None | Some(b'\n') | Some(b'#')) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap_or("")
            .trim_end()
            .to_owned();
        text
    }

    /// Produces the next token, or `None` at end of input.
    pub fn next_token(&mut self) -> Result<Option<Spanned>, LangError> {
        self.skip_trivia();
        let (line, col, offset) = (self.line, self.col(), self.pos);
        let Some(c) = self.peek() else {
            return Ok(None);
        };
        let tok = match c {
            b'@' => {
                self.bump();
                Tok::At
            }
            b'{' => {
                // Counted repetition if a digit follows (after ws).
                let save = (self.pos, self.line, self.line_start);
                self.bump();
                let mut probe = self.pos;
                while matches!(self.src.get(probe), Some(b' ' | b'\t')) {
                    probe += 1;
                }
                if matches!(self.src.get(probe), Some(b'0'..=b'9')) {
                    self.lex_counter()?
                } else {
                    let _ = save;
                    Tok::LBrace
                }
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b'=' => {
                self.bump();
                Tok::Eq
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b'|' => {
                self.bump();
                Tok::Pipe
            }
            b'&' => {
                self.bump();
                Tok::Amp
            }
            b'*' => {
                self.bump();
                Tok::Star
            }
            b'+' => {
                self.bump();
                Tok::Plus
            }
            b'?' => {
                self.bump();
                Tok::Question
            }
            b'/' => {
                self.bump();
                if self.peek() == Some(b'/') {
                    self.bump();
                    Tok::DSlash
                } else {
                    Tok::Slash
                }
            }
            b'"' => {
                self.bump();
                let mut value = String::new();
                loop {
                    match self.bump() {
                        None => return Err(self.err("unterminated string literal")),
                        Some(b'"') => break,
                        Some(b'\\') => match self.bump() {
                            Some(b'"') => value.push('"'),
                            Some(b'\\') => value.push('\\'),
                            _ => return Err(self.err("bad escape in string literal")),
                        },
                        Some(c) if c < 0x80 => value.push(c as char),
                        Some(first) => {
                            // multi-byte UTF-8 sequence
                            let mut bytes = vec![first];
                            while matches!(self.peek(), Some(c) if (c & 0xC0) == 0x80) {
                                bytes.push(self.bump().expect("peeked"));
                            }
                            value.push_str(
                                std::str::from_utf8(&bytes)
                                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
                            );
                        }
                    }
                }
                Tok::Str(value)
            }
            c if is_name_start(c) => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if is_name_char(c)) {
                    self.bump();
                }
                Tok::Ident(
                    std::str::from_utf8(&self.src[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in name"))?
                        .to_owned(),
                )
            }
            other => return Err(self.err(format!("unexpected character {:?}", other as char))),
        };
        Ok(Some(Spanned {
            tok,
            line,
            col,
            offset,
        }))
    }

    fn lex_counter(&mut self) -> Result<Tok, LangError> {
        // positioned just after '{'
        let lo = self.lex_number()?;
        self.skip_inline_ws();
        if self.peek() != Some(b',') {
            return Err(self.err("expected ',' in counter"));
        }
        self.bump();
        self.skip_inline_ws();
        let hi = if self.peek() == Some(b'*') {
            self.bump();
            None
        } else {
            Some(self.lex_number()?)
        };
        self.skip_inline_ws();
        if self.peek() != Some(b'}') {
            return Err(self.err("expected '}' in counter"));
        }
        self.bump();
        if let Some(m) = hi {
            if m < lo {
                return Err(self.err("counter upper bound below lower bound"));
            }
        }
        Ok(Tok::Count(lo, hi))
    }

    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.bump();
        }
    }

    fn lex_number(&mut self) -> Result<u32, LangError> {
        self.skip_inline_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected number"));
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .expect("digits")
            .parse()
            .map_err(|_| self.err("number too large"))
    }
}

fn is_name_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_name_char(c: u8) -> bool {
    is_name_start(c) || c.is_ascii_digit() || matches!(c, b'-' | b'.' | b':')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_all(src: &str) -> Vec<Tok> {
        let mut l = Lexer::new(src);
        let mut out = Vec::new();
        while let Some(t) = l.next_token().unwrap() {
            out.push(t.tok);
        }
        out
    }

    #[test]
    fn lexes_rule_shapes() {
        let toks = lex_all("content//section = mixed { attribute title, (element section)* }");
        assert_eq!(toks[0], Tok::Ident("content".into()));
        assert_eq!(toks[1], Tok::DSlash);
        assert_eq!(toks[2], Tok::Ident("section".into()));
        assert_eq!(toks[3], Tok::Eq);
        assert_eq!(toks[4], Tok::Ident("mixed".into()));
        assert_eq!(toks[5], Tok::LBrace);
        assert!(toks.contains(&Tok::Comma));
        assert_eq!(*toks.last().unwrap(), Tok::RBrace);
    }

    #[test]
    fn lexes_counters_vs_braces() {
        let toks = lex_all("element a{2,5} { element b{1,*} }");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("element".into()),
                Tok::Ident("a".into()),
                Tok::Count(2, Some(5)),
                Tok::LBrace,
                Tok::Ident("element".into()),
                Tok::Ident("b".into()),
                Tok::Count(1, None),
                Tok::RBrace,
            ]
        );
    }

    #[test]
    fn lexes_attribute_tokens() {
        let toks = lex_all("(@name|@color)");
        assert_eq!(
            toks,
            vec![
                Tok::LParen,
                Tok::At,
                Tok::Ident("name".into()),
                Tok::Pipe,
                Tok::At,
                Tok::Ident("color".into()),
                Tok::RParen,
            ]
        );
    }

    #[test]
    fn qualified_names_are_single_tokens() {
        let toks = lex_all("type xs:string attribute-group fontattr");
        assert_eq!(toks[1], Tok::Ident("xs:string".into()));
        assert_eq!(toks[2], Tok::Ident("attribute-group".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex_all("a # comment with { } = stuff\nb");
        assert_eq!(toks, vec![Tok::Ident("a".into()), Tok::Ident("b".into())]);
    }

    #[test]
    fn rest_of_line_for_uris() {
        let mut l = Lexer::new("target namespace http://my.org/ns#frag\nglobal");
        assert_eq!(
            l.next_token().unwrap().unwrap().tok,
            Tok::Ident("target".into())
        );
        assert_eq!(
            l.next_token().unwrap().unwrap().tok,
            Tok::Ident("namespace".into())
        );
        // NOTE: '#' inside URIs must be preserved — take_rest_of_line stops
        // at '#': document the limitation by testing current behavior.
        let uri = l.take_rest_of_line();
        assert_eq!(uri, "http://my.org/ns");
    }

    #[test]
    fn bad_counter_rejected() {
        let mut l = Lexer::new("a{3,2}");
        l.next_token().unwrap();
        assert!(l.next_token().is_err());
    }

    #[test]
    fn counters_with_spaces() {
        let toks = lex_all("a{ 2 , 4 }");
        assert_eq!(toks[1], Tok::Count(2, Some(4)));
    }
}
