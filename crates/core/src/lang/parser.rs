//! Parser for the BonXai compact syntax (the language of Figures 4/5).
//!
//! Operator precedence in child patterns, loosest to tightest:
//! `,` (top-level item list and in-parens sequencing), `|`, `&`, postfix
//! (`*`, `+`, `?`, `{n,m}`). Attribute items (`attribute x?`,
//! `attribute-group g`) may only appear as top-level comma items of a
//! rule body or attribute group — they are not part of the children
//! regex.
//!
//! Ancestor patterns follow Section 3.1: `/` is one child step, `//` a
//! descendant gap, and a pattern whose first meaningful token is a name
//! or `@` implicitly starts with `//` (so a bare label matches all
//! elements of that name, as in DTDs). Attribute names may only appear at
//! the end.

use xsd::{simple_types::Facets, SimpleType};

use crate::constraints::{Constraint, ConstraintKind, Field};
use crate::lang::ast::{
    AncestorPattern, AttributeItem, ChildPattern, Particle, PathExpr, RuleAst, RuleBody, SchemaAst,
    Span,
};
use crate::lang::lexer::{LangError, Lexer, Spanned, Tok};

/// The source span covered by a rule's left-hand-side token run.
fn lhs_span(lhs: &[Spanned]) -> Span {
    match (lhs.first(), lhs.last()) {
        (Some(a), Some(b)) => Span {
            line: a.line,
            col: a.col,
            offset: a.offset,
            len: b.offset + b.tok.to_string().len() - a.offset,
        },
        _ => Span::default(),
    }
}

/// Parses a BonXai schema source file.
pub fn parse_schema(src: &str) -> Result<SchemaAst, LangError> {
    Parser::new(src).parse()
}

/// Parses a standalone ancestor pattern (used by tests and tools).
pub fn parse_ancestor_pattern(src: &str) -> Result<AncestorPattern, LangError> {
    let mut lexer = Lexer::new(src);
    let mut toks = Vec::new();
    while let Some(t) = lexer.next_token()? {
        toks.push(t);
    }
    PatternParser::new(&toks, src).parse_full()
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    src: &'a str,
    peeked: Option<Spanned>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            lexer: Lexer::new(src),
            src,
            peeked: None,
        }
    }

    fn peek(&mut self) -> Result<Option<&Spanned>, LangError> {
        if self.peeked.is_none() {
            self.peeked = self.lexer.next_token()?;
        }
        Ok(self.peeked.as_ref())
    }

    fn next(&mut self) -> Result<Option<Spanned>, LangError> {
        if let Some(t) = self.peeked.take() {
            return Ok(Some(t));
        }
        self.lexer.next_token()
    }

    fn expect_tok(&mut self, tok: &Tok) -> Result<Spanned, LangError> {
        match self.next()? {
            Some(t) if t.tok == *tok => Ok(t),
            Some(t) => Err(LangError::at(
                &t,
                format!("expected {tok}, found {}", t.tok),
            )),
            None => Err(LangError::new(
                0,
                0,
                format!("expected {tok}, found end of input"),
            )),
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Spanned), LangError> {
        match self.next()? {
            Some(t) => match &t.tok {
                Tok::Ident(s) => Ok((s.clone(), t)),
                other => Err(LangError::at(&t, format!("expected a name, found {other}"))),
            },
            None => Err(LangError::new(0, 0, "expected a name, found end of input")),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), LangError> {
        let (name, t) = self.expect_ident()?;
        if name == kw {
            Ok(())
        } else {
            Err(LangError::at(
                &t,
                format!("expected {kw:?}, found {name:?}"),
            ))
        }
    }

    #[allow(clippy::while_let_loop)] // `?` inside the condition
    fn parse(mut self) -> Result<SchemaAst, LangError> {
        let mut ast = SchemaAst::default();
        loop {
            let Some(t) = self.peek()? else { break };
            let keyword = match &t.tok {
                Tok::Ident(s) => s.clone(),
                other => {
                    return Err(LangError::at(
                        t,
                        format!("expected a block keyword, found {other}"),
                    ))
                }
            };
            let t = self.next()?.expect("peeked");
            match keyword.as_str() {
                "target" => {
                    self.expect_keyword("namespace")?;
                    debug_assert!(self.peeked.is_none());
                    ast.target_namespace = Some(self.lexer.take_rest_of_line());
                }
                "default" => {
                    self.expect_keyword("namespace")?;
                    debug_assert!(self.peeked.is_none());
                    ast.namespaces
                        .push((String::new(), self.lexer.take_rest_of_line()));
                }
                "namespace" => {
                    let (prefix, _) = self.expect_ident()?;
                    self.expect_tok(&Tok::Eq)?;
                    debug_assert!(self.peeked.is_none());
                    ast.namespaces
                        .push((prefix, self.lexer.take_rest_of_line()));
                }
                "global" => {
                    self.expect_tok(&Tok::LBrace)?;
                    loop {
                        let (name, _) = self.expect_ident()?;
                        ast.globals.push(name);
                        match self.next()? {
                            Some(Spanned {
                                tok: Tok::Comma, ..
                            }) => continue,
                            Some(Spanned {
                                tok: Tok::RBrace, ..
                            }) => break,
                            Some(t) => {
                                return Err(LangError::at(
                                    &t,
                                    "expected ',' or '}' in global block",
                                ))
                            }
                            None => return Err(LangError::new(0, 0, "unterminated global block")),
                        }
                    }
                }
                "groups" => self.parse_groups_block(&mut ast)?,
                "grammar" => self.parse_grammar_block(&mut ast)?,
                "constraints" => self.parse_constraints_block(&mut ast)?,
                other => {
                    return Err(LangError::at(
                        &t,
                        format!("unknown top-level block {other:?}"),
                    ))
                }
            }
        }
        Ok(ast)
    }

    fn parse_groups_block(&mut self, ast: &mut SchemaAst) -> Result<(), LangError> {
        self.expect_tok(&Tok::LBrace)?;
        loop {
            match self.next()? {
                Some(Spanned {
                    tok: Tok::RBrace, ..
                }) => return Ok(()),
                Some(t) => match &t.tok {
                    Tok::Ident(kw) if kw == "group" => {
                        let (name, _) = self.expect_ident()?;
                        self.expect_tok(&Tok::Eq)?;
                        let body = self.parse_body_braced()?;
                        let ChildPattern {
                            open,
                            mixed,
                            attributes,
                            attribute_group_refs,
                            particle,
                        } = body;
                        if open
                            || mixed
                            || !attributes.is_empty()
                            || !attribute_group_refs.is_empty()
                        {
                            return Err(LangError::at(
                                &t,
                                "element groups may not contain attributes, 'mixed', or 'any'",
                            ));
                        }
                        let particle = particle
                            .ok_or_else(|| LangError::at(&t, "element group must not be empty"))?;
                        ast.groups.push((name, particle));
                    }
                    Tok::Ident(kw) if kw == "attribute-group" => {
                        let (name, _) = self.expect_ident()?;
                        self.expect_tok(&Tok::Eq)?;
                        let body = self.parse_body_braced()?;
                        if body.mixed || body.particle.is_some() {
                            return Err(LangError::at(
                                &t,
                                "attribute groups may only contain attribute items",
                            ));
                        }
                        let mut items = body.attributes;
                        if !body.attribute_group_refs.is_empty() {
                            return Err(LangError::at(
                                &t,
                                "attribute groups may not reference other attribute groups",
                            ));
                        }
                        items.sort_by(|a, b| a.name.cmp(&b.name));
                        ast.attribute_groups.push((name, items));
                    }
                    other => {
                        return Err(LangError::at(
                            &t,
                            format!("expected group or attribute-group, found {other}"),
                        ))
                    }
                },
                None => return Err(LangError::new(0, 0, "unterminated groups block")),
            }
        }
    }

    fn parse_grammar_block(&mut self, ast: &mut SchemaAst) -> Result<(), LangError> {
        self.expect_tok(&Tok::LBrace)?;
        loop {
            if matches!(
                self.peek()?,
                Some(Spanned {
                    tok: Tok::RBrace,
                    ..
                })
            ) {
                self.next()?;
                return Ok(());
            }
            if self.peek()?.is_none() {
                return Err(LangError::new(0, 0, "unterminated grammar block"));
            }
            // LHS: tokens until '='.
            let mut lhs = Vec::new();
            loop {
                match self.next()? {
                    Some(Spanned { tok: Tok::Eq, .. }) => break,
                    Some(t) => lhs.push(t),
                    None => return Err(LangError::new(0, 0, "rule without '='")),
                }
            }
            let span = lhs_span(&lhs);
            let pattern = PatternParser::new(&lhs, self.src).parse_full()?;
            let body = self.parse_rule_body()?;
            ast.rules.push(RuleAst {
                pattern,
                body,
                span,
            });
        }
    }

    fn parse_rule_body(&mut self) -> Result<RuleBody, LangError> {
        // [mixed] { … }  or  { type xs:… }
        let mut mixed = false;
        if matches!(self.peek()?, Some(Spanned { tok: Tok::Ident(s), .. }) if s == "mixed") {
            self.next()?;
            mixed = true;
        }
        // Peek into the braces for a `type` body.
        let open = self.expect_tok(&Tok::LBrace)?;
        if matches!(self.peek()?, Some(Spanned { tok: Tok::Ident(s), .. }) if s == "type") {
            self.next()?;
            let (qname, _) = self.expect_ident()?;
            // optional facet block: { min "0", enum "a", … }
            let facets = if matches!(
                self.peek()?,
                Some(Spanned {
                    tok: Tok::LBrace,
                    ..
                })
            ) {
                self.next()?;
                self.parse_facets()?
            } else {
                Facets::default()
            };
            self.expect_tok(&Tok::RBrace)?;
            if mixed {
                return Err(LangError::at(
                    &open,
                    "'mixed' cannot combine with a type body",
                ));
            }
            let st = SimpleType::from_qname(&qname);
            facets
                .check(st)
                .map_err(|e| LangError::at(&open, format!("invalid facets for {qname}: {e}")))?;
            return Ok(RuleBody::Simple(st, facets));
        }
        let mut body = self.parse_body_items()?;
        body.mixed = mixed;
        Ok(RuleBody::Complex(body))
    }

    /// Parses facet items up to the closing `}` (already inside the facet
    /// braces): `min "0", max "100", minLength "1", maxLength "9",
    /// enum "a"` (enum repeatable).
    fn parse_facets(&mut self) -> Result<Facets, LangError> {
        let mut facets = Facets::default();
        loop {
            let (kind, t) = self.expect_ident()?;
            let value = match self.next()? {
                Some(Spanned {
                    tok: Tok::Str(v), ..
                }) => v,
                Some(t) => return Err(LangError::at(&t, "facet values must be quoted strings")),
                None => return Err(LangError::new(0, 0, "unterminated facet list")),
            };
            match kind.as_str() {
                "min" => facets.min_inclusive = Some(value),
                "max" => facets.max_inclusive = Some(value),
                "minLength" => {
                    facets.min_length = Some(
                        value
                            .parse()
                            .map_err(|_| LangError::at(&t, format!("bad minLength {value:?}")))?,
                    )
                }
                "maxLength" => {
                    facets.max_length = Some(
                        value
                            .parse()
                            .map_err(|_| LangError::at(&t, format!("bad maxLength {value:?}")))?,
                    )
                }
                "enum" => facets.enumeration.push(value),
                other => return Err(LangError::at(&t, format!("unknown facet {other:?}"))),
            }
            match self.next()? {
                Some(Spanned {
                    tok: Tok::Comma, ..
                }) => continue,
                Some(Spanned {
                    tok: Tok::RBrace, ..
                }) => return Ok(facets),
                Some(t) => return Err(LangError::at(&t, "expected ',' or '}' in facets")),
                None => return Err(LangError::new(0, 0, "unterminated facet list")),
            }
        }
    }

    /// Parses `{ items }` (the brace was not consumed yet).
    fn parse_body_braced(&mut self) -> Result<ChildPattern, LangError> {
        self.expect_tok(&Tok::LBrace)?;
        self.parse_body_items()
    }

    /// Parses body items up to the closing `}` (already inside braces).
    fn parse_body_items(&mut self) -> Result<ChildPattern, LangError> {
        let mut toks = Vec::new();
        loop {
            match self.next()? {
                Some(Spanned {
                    tok: Tok::RBrace, ..
                }) => break,
                Some(t) => toks.push(t),
                None => return Err(LangError::new(0, 0, "unterminated rule body")),
            }
        }
        BodyParser {
            toks: &toks,
            pos: 0,
        }
        .parse()
    }

    fn parse_constraints_block(&mut self, ast: &mut SchemaAst) -> Result<(), LangError> {
        self.expect_tok(&Tok::LBrace)?;
        loop {
            match self.next()? {
                Some(Spanned {
                    tok: Tok::RBrace, ..
                }) => return Ok(()),
                Some(t) => {
                    let kw = match &t.tok {
                        Tok::Ident(s) => s.clone(),
                        other => {
                            return Err(LangError::at(
                                &t,
                                format!("expected a constraint kind, found {other}"),
                            ))
                        }
                    };
                    let constraint = match kw.as_str() {
                        "unique" => {
                            let selector = self.parse_selector()?;
                            let fields = self.parse_fields()?;
                            Constraint {
                                name: None,
                                kind: ConstraintKind::Unique,
                                selector,
                                fields,
                            }
                        }
                        "key" => {
                            let (name, _) = self.expect_ident()?;
                            self.expect_tok(&Tok::Eq)?;
                            let selector = self.parse_selector()?;
                            let fields = self.parse_fields()?;
                            Constraint {
                                name: Some(name),
                                kind: ConstraintKind::Key,
                                selector,
                                fields,
                            }
                        }
                        "keyref" => {
                            let selector = self.parse_selector()?;
                            let fields = self.parse_fields()?;
                            self.expect_keyword("references")?;
                            let (refer, _) = self.expect_ident()?;
                            Constraint {
                                name: None,
                                kind: ConstraintKind::KeyRef { refer },
                                selector,
                                fields,
                            }
                        }
                        other => {
                            return Err(LangError::at(
                                &t,
                                format!("unknown constraint kind {other:?}"),
                            ))
                        }
                    };
                    ast.constraints.push(constraint);
                }
                None => return Err(LangError::new(0, 0, "unterminated constraints block")),
            }
        }
    }

    /// Parses a selector pattern up to (not including) the `{`.
    fn parse_selector(&mut self) -> Result<PathExpr, LangError> {
        let mut toks = Vec::new();
        loop {
            match self.peek()? {
                Some(Spanned {
                    tok: Tok::LBrace, ..
                }) => break,
                Some(_) => toks.push(self.next()?.expect("peeked")),
                None => return Err(LangError::new(0, 0, "constraint selector without fields")),
            }
        }
        let pattern = PatternParser::new(&toks, self.src).parse_full()?;
        if !pattern.attributes.is_empty() {
            return Err(LangError::new(
                0,
                0,
                "constraint selectors must not contain attribute names",
            ));
        }
        Ok(pattern.path)
    }

    /// Parses `{ field (, field)* }`.
    fn parse_fields(&mut self) -> Result<Vec<Field>, LangError> {
        self.expect_tok(&Tok::LBrace)?;
        let mut fields = Vec::new();
        loop {
            let field = match self.next()? {
                Some(Spanned { tok: Tok::At, .. }) => {
                    let (name, _) = self.expect_ident()?;
                    Field::Attribute(name)
                }
                Some(Spanned {
                    tok: Tok::Ident(name),
                    ..
                }) => Field::ChildText(name),
                Some(t) => return Err(LangError::at(&t, "expected a field")),
                None => return Err(LangError::new(0, 0, "unterminated field list")),
            };
            fields.push(field);
            match self.next()? {
                Some(Spanned {
                    tok: Tok::Comma, ..
                }) => continue,
                Some(Spanned {
                    tok: Tok::RBrace, ..
                }) => return Ok(fields),
                Some(t) => return Err(LangError::at(&t, "expected ',' or '}' in fields")),
                None => return Err(LangError::new(0, 0, "unterminated field list")),
            }
        }
    }
}

// -------------------------------------------------------------------
// Ancestor patterns.
// -------------------------------------------------------------------

/// Intermediate result: a path, attribute names, or a path followed by
/// attribute names.
enum Pat {
    Path(PathExpr),
    Attrs(Vec<String>),
    PathAttrs(PathExpr, Vec<String>),
}

struct PatternParser<'a> {
    toks: &'a [Spanned],
    pos: usize,
    src: &'a str,
}

impl<'a> PatternParser<'a> {
    fn new(toks: &'a [Spanned], src: &'a str) -> Self {
        PatternParser { toks, pos: 0, src }
    }

    fn err_here(&self, msg: impl Into<String>) -> LangError {
        match self.toks.get(self.pos).or_else(|| self.toks.last()) {
            Some(t) => LangError::at(t, msg),
            None => LangError::new(0, 0, msg),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos).map(|t| &t.tok);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn source_span(&self) -> String {
        match (self.toks.first(), self.toks.last()) {
            (Some(a), Some(b)) => {
                let end = b.offset + b.tok.to_string().len();
                self.src.get(a.offset..end).unwrap_or("").trim().to_owned()
            }
            _ => String::new(),
        }
    }

    fn parse_full(mut self) -> Result<AncestorPattern, LangError> {
        if self.toks.is_empty() {
            return Err(LangError::new(0, 0, "empty ancestor pattern"));
        }
        let source = self.source_span();
        // Implicit leading `//` when the first meaningful token (looking
        // through opening parentheses) is a name or `@`.
        let implicit = {
            let mut i = 0;
            while matches!(self.toks.get(i).map(|t| &t.tok), Some(Tok::LParen)) {
                i += 1;
            }
            matches!(
                self.toks.get(i).map(|t| &t.tok),
                Some(Tok::Ident(_)) | Some(Tok::At)
            )
        };
        let pat = self.parse_alt()?;
        if self.pos < self.toks.len() {
            return Err(self.err_here("trailing tokens in ancestor pattern"));
        }
        let (path, attributes) = match pat {
            Pat::Path(p) => (p, Vec::new()),
            Pat::Attrs(a) => (PathExpr::Empty, a),
            Pat::PathAttrs(p, a) => (p, a),
        };
        let path = if implicit {
            match path {
                PathExpr::Empty => PathExpr::AnyChain,
                p => PathExpr::Seq(vec![PathExpr::AnyChain, p]),
            }
        } else if matches!(path, PathExpr::Empty) && !attributes.is_empty() {
            return Err(LangError::new(
                0,
                0,
                "attribute pattern must have an element path",
            ));
        } else {
            path
        };
        Ok(AncestorPattern {
            path,
            attributes,
            source,
        })
    }

    fn parse_alt(&mut self) -> Result<Pat, LangError> {
        let mut branches = vec![self.parse_cat()?];
        while matches!(self.peek(), Some(Tok::Pipe)) {
            self.bump();
            branches.push(self.parse_cat()?);
        }
        if branches.len() == 1 {
            return Ok(branches.pop().expect("len checked"));
        }
        if branches.iter().all(|b| matches!(b, Pat::Attrs(_))) {
            let mut names = Vec::new();
            for b in branches {
                if let Pat::Attrs(a) = b {
                    names.extend(a);
                }
            }
            return Ok(Pat::Attrs(names));
        }
        let paths: Option<Vec<PathExpr>> = branches
            .into_iter()
            .map(|b| match b {
                Pat::Path(p) => Some(p),
                _ => None,
            })
            .collect();
        match paths {
            Some(ps) => Ok(Pat::Path(PathExpr::Alt(ps))),
            None => Err(self.err_here("alternation may not mix element paths and attribute names")),
        }
    }

    fn parse_cat(&mut self) -> Result<Pat, LangError> {
        let mut parts: Vec<PathExpr> = Vec::new();
        let mut attrs: Option<Vec<String>> = None;
        loop {
            // A step may begin with an explicit separator.
            let gap = match self.peek() {
                Some(Tok::Slash) => {
                    self.bump();
                    false
                }
                Some(Tok::DSlash) => {
                    self.bump();
                    true
                }
                Some(Tok::Ident(_) | Tok::At | Tok::LParen) => false,
                _ => break,
            };
            if attrs.is_some() {
                return Err(
                    self.err_here("attribute names may only occur at the end of ancestor patterns")
                );
            }
            if gap {
                parts.push(PathExpr::AnyChain);
            }
            match self.parse_postfix()? {
                Pat::Path(p) => parts.push(p),
                Pat::Attrs(a) => attrs = Some(a),
                Pat::PathAttrs(p, a) => {
                    parts.push(p);
                    attrs = Some(a);
                }
            }
        }
        if parts.is_empty() && attrs.is_none() {
            return Err(self.err_here("expected an ancestor pattern step"));
        }
        let path = match parts.len() {
            0 => PathExpr::Empty,
            1 => parts.pop().expect("len checked"),
            _ => PathExpr::Seq(parts),
        };
        Ok(match attrs {
            None => Pat::Path(path),
            Some(a) if matches!(path, PathExpr::Empty) => Pat::Attrs(a),
            Some(a) => Pat::PathAttrs(path, a),
        })
    }

    fn parse_postfix(&mut self) -> Result<Pat, LangError> {
        let mut pat = self.parse_atom()?;
        while let Some(Tok::Star | Tok::Plus | Tok::Question | Tok::Count(_, _)) = self.peek() {
            let op = self.bump().expect("peeked").clone();
            pat = match pat {
                Pat::Path(p) => Pat::Path(match op {
                    Tok::Star => PathExpr::Star(Box::new(p)),
                    Tok::Plus => PathExpr::Plus(Box::new(p)),
                    Tok::Question => PathExpr::Opt(Box::new(p)),
                    Tok::Count(lo, hi) => PathExpr::Repeat(Box::new(p), lo, hi),
                    _ => unreachable!("matched above"),
                }),
                _ => {
                    return Err(
                        self.err_here("repetition operators cannot apply to attribute names")
                    )
                }
            };
        }
        Ok(pat)
    }

    fn parse_atom(&mut self) -> Result<Pat, LangError> {
        match self.bump().cloned() {
            Some(Tok::Ident(name)) => Ok(Pat::Path(PathExpr::Name(name))),
            Some(Tok::At) => match self.bump().cloned() {
                Some(Tok::Ident(name)) => Ok(Pat::Attrs(vec![name])),
                _ => Err(self.err_here("expected an attribute name after '@'")),
            },
            Some(Tok::LParen) => {
                let inner = self.parse_alt()?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(inner),
                    _ => Err(self.err_here("expected ')'")),
                }
            }
            Some(other) => Err(self.err_here(format!("unexpected {other} in ancestor pattern"))),
            None => Err(self.err_here("unexpected end of ancestor pattern")),
        }
    }
}

// -------------------------------------------------------------------
// Child patterns.
// -------------------------------------------------------------------

enum CItem {
    P(Particle),
    Attr(AttributeItem),
    AGroup(String),
    Any,
}

struct BodyParser<'a> {
    toks: &'a [Spanned],
    pos: usize,
}

impl<'a> BodyParser<'a> {
    fn err_here(&self, msg: impl Into<String>) -> LangError {
        match self.toks.get(self.pos).or_else(|| self.toks.last()) {
            Some(t) => LangError::at(t, msg),
            None => LangError::new(0, 0, msg),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos).map(|t| &t.tok);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    #[allow(clippy::while_let_loop)] // `?`-carrying loop conditions
    fn parse(mut self) -> Result<ChildPattern, LangError> {
        let mut out = ChildPattern::default();
        let mut particles = Vec::new();
        if self.toks.is_empty() {
            return Ok(out); // empty content
        }
        loop {
            match self.parse_top_item()? {
                CItem::P(p) => particles.push(p),
                CItem::Attr(a) => out.attributes.push(a),
                CItem::AGroup(g) => out.attribute_group_refs.push(g),
                CItem::Any => out.open = true,
            }
            match self.peek() {
                Some(Tok::Comma) => {
                    self.bump();
                }
                None => break,
                Some(other) => {
                    return Err(self.err_here(format!("expected ',' between items, found {other}")))
                }
            }
        }
        out.particle = match particles.len() {
            0 => None,
            1 => Some(particles.pop().expect("len checked")),
            _ => Some(Particle::Seq(particles)),
        };
        if out.open && out.particle.is_some() {
            return Err(self.err_here("'any' cannot be combined with element content"));
        }
        Ok(out)
    }

    fn parse_top_item(&mut self) -> Result<CItem, LangError> {
        match self.peek() {
            Some(Tok::Ident(kw)) if kw == "attribute" => {
                self.bump();
                let name = self.expect_name()?;
                let optional = if matches!(self.peek(), Some(Tok::Question)) {
                    self.bump();
                    true
                } else {
                    false
                };
                Ok(CItem::Attr(AttributeItem { name, optional }))
            }
            Some(Tok::Ident(kw)) if kw == "attribute-group" => {
                self.bump();
                Ok(CItem::AGroup(self.expect_name()?))
            }
            Some(Tok::Ident(kw)) if kw == "any" => {
                self.bump();
                Ok(CItem::Any)
            }
            _ => Ok(CItem::P(self.parse_alt(false)?)),
        }
    }

    fn expect_name(&mut self) -> Result<String, LangError> {
        match self.bump().cloned() {
            Some(Tok::Ident(name)) => Ok(name),
            _ => Err(self.err_here("expected a name")),
        }
    }

    /// `alt := inter ('|' inter)*`; with `commas`, also
    /// `seq := alt (',' alt)*` around it (inside parentheses).
    fn parse_alt(&mut self, _in_parens: bool) -> Result<Particle, LangError> {
        let mut branches = vec![self.parse_inter()?];
        while matches!(self.peek(), Some(Tok::Pipe)) {
            self.bump();
            branches.push(self.parse_inter()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("len checked")
        } else {
            Particle::Alt(branches)
        })
    }

    fn parse_seq_in_parens(&mut self) -> Result<Particle, LangError> {
        let mut items = vec![self.parse_alt(true)?];
        while matches!(self.peek(), Some(Tok::Comma)) {
            self.bump();
            items.push(self.parse_alt(true)?);
        }
        Ok(if items.len() == 1 {
            items.pop().expect("len checked")
        } else {
            Particle::Seq(items)
        })
    }

    fn parse_inter(&mut self) -> Result<Particle, LangError> {
        let mut items = vec![self.parse_postfix()?];
        while matches!(self.peek(), Some(Tok::Amp)) {
            self.bump();
            items.push(self.parse_postfix()?);
        }
        Ok(if items.len() == 1 {
            items.pop().expect("len checked")
        } else {
            Particle::Interleave(items)
        })
    }

    fn parse_postfix(&mut self) -> Result<Particle, LangError> {
        let mut p = self.parse_atom()?;
        loop {
            p = match self.peek() {
                Some(Tok::Star) => {
                    self.bump();
                    Particle::Star(Box::new(p))
                }
                Some(Tok::Plus) => {
                    self.bump();
                    Particle::Plus(Box::new(p))
                }
                Some(Tok::Question) => {
                    self.bump();
                    Particle::Opt(Box::new(p))
                }
                Some(Tok::Count(lo, hi)) => {
                    let (lo, hi) = (*lo, *hi);
                    self.bump();
                    Particle::Repeat(Box::new(p), lo, hi)
                }
                _ => break,
            };
        }
        Ok(p)
    }

    fn parse_atom(&mut self) -> Result<Particle, LangError> {
        match self.bump().cloned() {
            Some(Tok::Ident(kw)) if kw == "element" => Ok(Particle::Element(self.expect_name()?)),
            Some(Tok::Ident(kw)) if kw == "group" => Ok(Particle::GroupRef(self.expect_name()?)),
            Some(Tok::Ident(kw)) if kw == "attribute" || kw == "attribute-group" => {
                Err(self
                    .err_here("attributes may only appear as top-level comma items of a rule body"))
            }
            Some(Tok::LParen) => {
                let inner = self.parse_seq_in_parens()?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(inner),
                    _ => Err(self.err_here("expected ')'")),
                }
            }
            Some(other) => {
                Err(self.err_here(format!("expected element, group, or '(' — found {other}")))
            }
            None => Err(self.err_here("unexpected end of rule body")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure5_schema() {
        let src = r#"
            target namespace http://mydomain.org/namespace
            namespace xs = http://www.w3.org/2001/XMLSchema
            global { document }
            groups {
              attribute-group fontattr = { attribute name?, attribute size? }
              group markup = { ( element bold | element italic | element font
                               | element style | element color )* }
            }
            grammar {
              document = { element template, element userstyles, element content }
              content = { (element section)* }
              template = { (element section)? }
              userstyles = { (element style)* }
              content//section = mixed { attribute title, (element section | group markup)* }
              content//style = mixed { attribute name, group markup }
              content//font = mixed { attribute-group fontattr, group markup }
              content//color = mixed { attribute color, group markup }
              (bold|italic) = mixed { group markup }
              template//section = { element titlefont?, element style?, element section? }
              template//style = { element font? & element color? }
              userstyles/style = { attribute name, element font? & element color? }
              (userstyles|template)//color = { attribute color }
              (userstyles|template)//(font|titlefont) = { attribute-group fontattr }
              (@name | @color | @title) = { type xs:string }
              @size = { type xs:integer }
            }
        "#;
        let ast = parse_schema(src).unwrap();
        assert_eq!(
            ast.target_namespace.as_deref(),
            Some("http://mydomain.org/namespace")
        );
        assert_eq!(ast.namespaces.len(), 1);
        assert_eq!(ast.globals, vec!["document"]);
        assert_eq!(ast.groups.len(), 1);
        assert_eq!(ast.attribute_groups.len(), 1);
        assert_eq!(ast.rules.len(), 16);

        // content//section: path = // content // section, attrs none
        let r = &ast.rules[4];
        assert!(r.pattern.attributes.is_empty());
        match &r.body {
            RuleBody::Complex(cp) => {
                assert!(cp.mixed);
                assert_eq!(cp.attributes.len(), 1);
                assert_eq!(cp.attributes[0].name, "title");
                assert!(!cp.attributes[0].optional);
                assert!(matches!(cp.particle, Some(Particle::Star(_))));
            }
            other => panic!("{other:?}"),
        }

        // (@name | @color | @title): attribute rule
        let r = &ast.rules[14];
        assert_eq!(r.pattern.attributes, vec!["name", "color", "title"]);
        assert_eq!(r.pattern.path, PathExpr::AnyChain);
        assert_eq!(
            r.body,
            RuleBody::Simple(SimpleType::String, Facets::default())
        );

        // @size: integer
        let r = &ast.rules[15];
        assert_eq!(r.pattern.attributes, vec!["size"]);
        assert_eq!(
            r.body,
            RuleBody::Simple(SimpleType::Integer, Facets::default())
        );
    }

    #[test]
    fn implicit_descendant_prefix() {
        let p = parse_ancestor_pattern("section").unwrap();
        assert_eq!(
            p.path,
            PathExpr::Seq(vec![PathExpr::AnyChain, PathExpr::Name("section".into())])
        );
        // anchored patterns stay anchored
        let p = parse_ancestor_pattern("/a/b").unwrap();
        assert_eq!(
            p.path,
            PathExpr::Seq(vec![PathExpr::Name("a".into()), PathExpr::Name("b".into())])
        );
        // `//a` is explicit descendant
        let p = parse_ancestor_pattern("//a").unwrap();
        assert_eq!(
            p.path,
            PathExpr::Seq(vec![PathExpr::AnyChain, PathExpr::Name("a".into())])
        );
    }

    #[test]
    fn section31_example_pattern() {
        // (/a/a)*(@c|@d) — anchored; even-depth a-chains; c/d attributes
        let p = parse_ancestor_pattern("(/a/a)*(@c|@d)").unwrap();
        assert_eq!(p.attributes, vec!["c", "d"]);
        assert_eq!(
            p.path,
            PathExpr::Star(Box::new(PathExpr::Seq(vec![
                PathExpr::Name("a".into()),
                PathExpr::Name("a".into())
            ])))
        );
    }

    #[test]
    fn attributes_must_be_at_end() {
        // /a/@b/c is explicitly disallowed in the paper
        assert!(parse_ancestor_pattern("/a/@b/c").is_err());
    }

    #[test]
    fn pattern_operators() {
        let p = parse_ancestor_pattern("/a(/b|/c)+/d{2,3}").unwrap();
        match p.path {
            PathExpr::Seq(items) => {
                assert_eq!(items.len(), 3);
                assert!(matches!(items[1], PathExpr::Plus(_)));
                assert!(matches!(items[2], PathExpr::Repeat(_, 2, Some(3))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn interleave_and_counting_in_bodies() {
        let src = r#"
            global { r }
            grammar {
              r = { element a{1,3} & element b? }
            }
        "#;
        let ast = parse_schema(src).unwrap();
        match &ast.rules[0].body {
            RuleBody::Complex(cp) => match cp.particle.as_ref().unwrap() {
                Particle::Interleave(items) => {
                    assert!(matches!(items[0], Particle::Repeat(_, 1, Some(3))));
                    assert!(matches!(items[1], Particle::Opt(_)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn constraints_block() {
        let src = r#"
            global { doc }
            grammar { doc = { (element style)* } }
            constraints {
              unique //style { @name }
              key styleKey = //userstyles/style { @name, kindfield }
              keyref //content//style { @name } references styleKey
            }
        "#;
        let ast = parse_schema(src).unwrap();
        assert_eq!(ast.constraints.len(), 3);
        assert_eq!(ast.constraints[0].kind, ConstraintKind::Unique);
        assert_eq!(ast.constraints[1].name.as_deref(), Some("styleKey"));
        assert_eq!(ast.constraints[1].fields.len(), 2);
        assert!(matches!(
            &ast.constraints[2].kind,
            ConstraintKind::KeyRef { refer } if refer == "styleKey"
        ));
    }

    #[test]
    fn errors_are_positioned() {
        let e = parse_schema("global { }").unwrap_err();
        assert!(e.line >= 1);
        assert!(parse_schema("grammar { a = }").is_err());
        assert!(parse_schema("grammar { a = { element } }").is_err());
        assert!(parse_schema("bogus { }").is_err());
        // attribute under a repetition: rejected
        assert!(parse_schema("grammar { a = { (attribute x)* } }").is_err());
    }

    #[test]
    fn invalid_facet_bounds_are_schema_errors() {
        // Regression: a bound that does not parse as the base type used
        // to become NaN at validation time and silently reject (min) or
        // admit (max) every value; it must be rejected at schema parse.
        let ok = r#"grammar { a = { type xs:integer { min "0", max "10" } } }"#;
        assert!(parse_schema(ok).is_ok());
        let bad = r#"grammar { a = { type xs:integer { max "ten" } } }"#;
        let e = parse_schema(bad).unwrap_err();
        assert!(e.to_string().contains("invalid facets"), "{e}");
        let inverted = r#"grammar { a = { type xs:integer { min "10", max "9" } } }"#;
        let e = parse_schema(inverted).unwrap_err();
        assert!(e.to_string().contains("exceeds"), "{e}");
        // the same bound is fine where it is lexicographically sensible
        let string_bound = r#"grammar { a = { type xs:string { max "ten" } } }"#;
        assert!(parse_schema(string_bound).is_ok());
    }

    #[test]
    fn empty_body_is_empty_content() {
        let ast = parse_schema("grammar { a = { } }").unwrap();
        match &ast.rules[0].body {
            RuleBody::Complex(cp) => {
                assert!(cp.particle.is_none());
                assert!(cp.attributes.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }
}
