//! Pretty-printing schemas back to the BonXai compact syntax.
//!
//! `parse_schema ∘ print_schema` is semantics-preserving (checked by the
//! round-trip tests): patterns are printed with explicit `/`, `//`, and
//! anchoring so that the implicit-`//` convention cannot change their
//! meaning on re-parse.

use std::fmt::Write as _;

use crate::constraints::{Constraint, ConstraintKind};
use crate::lang::ast::{Particle, PathExpr, RuleBody, SchemaAst};

/// Renders a schema in the compact syntax.
///
/// `all_names` is the element alphabet, used to render a bare `EName*`
/// in positions where `//` syntax cannot express it (e.g. at the end of
/// a pattern) as an explicit `(n1|…|nk)*` group.
pub fn print_schema(ast: &SchemaAst, all_names: &[String]) -> String {
    let mut out = String::new();
    if let Some(tns) = &ast.target_namespace {
        let _ = writeln!(out, "target namespace {tns}");
    }
    for (prefix, uri) in &ast.namespaces {
        if prefix.is_empty() {
            let _ = writeln!(out, "default namespace {uri}");
        } else {
            let _ = writeln!(out, "namespace {prefix} = {uri}");
        }
    }
    if !ast.globals.is_empty() {
        let _ = writeln!(out, "global {{ {} }}", ast.globals.join(", "));
    }
    if !ast.groups.is_empty() || !ast.attribute_groups.is_empty() {
        let _ = writeln!(out, "groups {{");
        for (name, items) in &ast.attribute_groups {
            let rendered: Vec<String> = items
                .iter()
                .map(|a| format!("attribute {}{}", a.name, if a.optional { "?" } else { "" }))
                .collect();
            let _ = writeln!(
                out,
                "  attribute-group {name} = {{ {} }}",
                rendered.join(", ")
            );
        }
        for (name, p) in &ast.groups {
            let _ = writeln!(out, "  group {name} = {{ {} }}", particle_str(p));
        }
        let _ = writeln!(out, "}}");
    }
    let _ = writeln!(out, "grammar {{");
    for rule in &ast.rules {
        let lhs = pattern_str(&rule.pattern.path, &rule.pattern.attributes, all_names);
        let rhs = match &rule.body {
            RuleBody::Simple(st, facets) if facets.is_empty() => {
                format!("{{ type {} }}", st.qname())
            }
            RuleBody::Simple(st, facets) => {
                format!("{{ type {} {} }}", st.qname(), facets.display())
            }
            RuleBody::Complex(cp) if cp.open => "{ any }".to_owned(),
            RuleBody::Complex(cp) => {
                let mut items: Vec<String> = Vec::new();
                for a in &cp.attributes {
                    items.push(format!(
                        "attribute {}{}",
                        a.name,
                        if a.optional { "?" } else { "" }
                    ));
                }
                for g in &cp.attribute_group_refs {
                    items.push(format!("attribute-group {g}"));
                }
                if let Some(p) = &cp.particle {
                    items.push(particle_str(p));
                }
                let body = if items.is_empty() {
                    "{ }".to_owned()
                } else {
                    format!("{{ {} }}", items.join(", "))
                };
                if cp.mixed {
                    format!("mixed {body}")
                } else {
                    body
                }
            }
        };
        let _ = writeln!(out, "  {lhs} = {rhs}");
    }
    let _ = writeln!(out, "}}");
    if !ast.constraints.is_empty() {
        let _ = writeln!(out, "constraints {{");
        for c in &ast.constraints {
            let _ = writeln!(out, "  {}", constraint_str(c, all_names));
        }
        let _ = writeln!(out, "}}");
    }
    out
}

/// Renders an ancestor pattern (path + optional trailing attributes).
pub fn pattern_str(path: &PathExpr, attributes: &[String], all_names: &[String]) -> String {
    // A pure attribute rule over any element path prints as `@a` /
    // `(@a|@b)` — the implicit leading `//` restores the AnyChain.
    if matches!(path, PathExpr::AnyChain) && !attributes.is_empty() {
        let alts: Vec<String> = attributes.iter().map(|a| format!("@{a}")).collect();
        return if alts.len() == 1 {
            alts.into_iter().next().expect("len checked")
        } else {
            format!("({})", alts.join("|"))
        };
    }
    let mut out = path_str(path, all_names);
    match attributes.len() {
        0 => {}
        1 => {
            if !out.is_empty() && !out.ends_with('/') {
                out.push('/');
            }
            out.push('@');
            out.push_str(&attributes[0]);
        }
        _ => {
            if !out.is_empty() && !out.ends_with('/') {
                out.push('/');
            }
            let alts: Vec<String> = attributes.iter().map(|a| format!("@{a}")).collect();
            let _ = write!(out, "({})", alts.join("|"));
        }
    }
    out
}

/// Renders a path expression with explicit anchoring (`/…` or `//…`).
pub fn path_str(path: &PathExpr, all_names: &[String]) -> String {
    let items: Vec<&PathExpr> = match path {
        PathExpr::Seq(items) => items.iter().collect(),
        PathExpr::Empty => return String::new(),
        other => vec![other],
    };
    let mut out = String::new();
    let mut pending_gap = false;
    let mut emitted_any = false;
    for (i, item) in items.iter().enumerate() {
        if matches!(item, PathExpr::AnyChain) {
            if i + 1 == items.len() {
                // trailing EName*: no `//` syntax for it — explicit group
                out.push_str(&sep(pending_gap, emitted_any));
                out.push_str(&any_chain_str(all_names));
                emitted_any = true;
                pending_gap = false;
            } else {
                pending_gap = true;
            }
            continue;
        }
        out.push_str(&sep(pending_gap, emitted_any));
        pending_gap = false;
        out.push_str(&atom_str(item, all_names));
        emitted_any = true;
    }
    return out;

    fn sep(gap: bool, emitted_any: bool) -> String {
        match (gap, emitted_any) {
            (true, _) => "//".to_owned(),
            (false, _) => "/".to_owned(),
        }
    }
}

/// Renders a non-seq path atom (adding parentheses where needed).
fn atom_str(p: &PathExpr, all_names: &[String]) -> String {
    match p {
        PathExpr::Name(n) => n.clone(),
        PathExpr::Empty => String::new(),
        PathExpr::AnyChain => any_chain_str(all_names),
        PathExpr::Seq(_) => format!("({})", path_str(p, all_names)),
        PathExpr::Alt(items) => {
            let branches: Vec<String> = items
                .iter()
                .map(|i| match i {
                    PathExpr::Name(n) => n.clone(),
                    other => path_str(other, all_names),
                })
                .collect();
            format!("({})", branches.join("|"))
        }
        PathExpr::Star(inner) => format!("{}*", group_if_seq(inner, all_names)),
        PathExpr::Plus(inner) => format!("{}+", group_if_seq(inner, all_names)),
        PathExpr::Opt(inner) => format!("{}?", group_if_seq(inner, all_names)),
        PathExpr::Repeat(inner, lo, Some(hi)) => {
            format!("{}{{{lo},{hi}}}", group_if_seq(inner, all_names))
        }
        PathExpr::Repeat(inner, lo, None) => {
            format!("{}{{{lo},*}}", group_if_seq(inner, all_names))
        }
    }
}

fn group_if_seq(p: &PathExpr, all_names: &[String]) -> String {
    match p {
        PathExpr::Name(_) => atom_str(p, all_names),
        PathExpr::Seq(_) => format!("({})", path_str(p, all_names)),
        _ => atom_str(p, all_names),
    }
}

/// `EName*` as an explicit group.
fn any_chain_str(all_names: &[String]) -> String {
    format!("({})*", all_names.join("|"))
}

/// Renders a child-pattern particle.
pub fn particle_str(p: &Particle) -> String {
    particle_prec(p, 0)
}

/// prec: 0 = seq (`,`), 1 = alt (`|`), 2 = inter (`&`), 3 = postfix.
fn particle_prec(p: &Particle, ctx: u8) -> String {
    let (s, prec) = match p {
        Particle::Element(n) => (format!("element {n}"), 3),
        Particle::GroupRef(n) => (format!("group {n}"), 3),
        Particle::Seq(items) => (
            items
                .iter()
                .map(|i| particle_prec(i, 1))
                .collect::<Vec<_>>()
                .join(", "),
            0,
        ),
        Particle::Alt(items) => (
            items
                .iter()
                .map(|i| particle_prec(i, 2))
                .collect::<Vec<_>>()
                .join(" | "),
            1,
        ),
        Particle::Interleave(items) => (
            items
                .iter()
                .map(|i| particle_prec(i, 3))
                .collect::<Vec<_>>()
                .join(" & "),
            2,
        ),
        Particle::Star(inner) => (format!("{}*", particle_atom(inner)), 3),
        Particle::Plus(inner) => (format!("{}+", particle_atom(inner)), 3),
        Particle::Opt(inner) => (format!("{}?", particle_atom(inner)), 3),
        Particle::Repeat(inner, lo, Some(hi)) => {
            (format!("{}{{{lo},{hi}}}", particle_atom(inner)), 3)
        }
        Particle::Repeat(inner, lo, None) => (format!("{}{{{lo},*}}", particle_atom(inner)), 3),
    };
    if prec < ctx {
        format!("({s})")
    } else {
        s
    }
}

/// Postfix operands always get parentheses unless they are leaf refs —
/// `element a` takes postfix directly (`element a?`), everything else is
/// grouped.
fn particle_atom(p: &Particle) -> String {
    match p {
        Particle::Element(_) | Particle::GroupRef(_) => particle_prec(p, 3),
        _ => format!("({})", particle_prec(p, 0)),
    }
}

fn constraint_str(c: &Constraint, all_names: &[String]) -> String {
    let fields: Vec<String> = c.fields.iter().map(|f| f.to_string()).collect();
    let selector = path_str(&c.selector, all_names);
    match &c.kind {
        ConstraintKind::Unique => {
            format!("unique {selector} {{ {} }}", fields.join(", "))
        }
        ConstraintKind::Key => format!(
            "key {} = {selector} {{ {} }}",
            c.name.as_deref().unwrap_or("unnamed"),
            fields.join(", ")
        ),
        ConstraintKind::KeyRef { refer } => format!(
            "keyref {selector} {{ {} }} references {refer}",
            fields.join(", ")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parser::{parse_ancestor_pattern, parse_schema};

    #[test]
    fn pattern_roundtrips() {
        for src in [
            "//section",
            "/document/template",
            "//content//section",
            "//(bold|italic)",
            "//(userstyles|template)//(font|titlefont)",
            "(/a/a)*/@c",
            "//style/@name",
        ] {
            let p = parse_ancestor_pattern(src).unwrap();
            let printed = pattern_str(&p.path, &p.attributes, &[]);
            let p2 = parse_ancestor_pattern(&printed).unwrap();
            assert_eq!(p.path, p2.path, "{src} printed as {printed}");
            assert_eq!(p.attributes, p2.attributes, "{src} printed as {printed}");
        }
    }

    #[test]
    fn schema_roundtrips_through_printer() {
        let src = r#"
            target namespace http://example.org/ns
            global { document }
            groups {
              attribute-group fa = { attribute name?, attribute size? }
              group markup = { (element bold | element italic)* }
            }
            grammar {
              document = { element content }
              content = mixed { attribute-group fa, group markup }
              (bold|italic) = mixed { group markup }
              @size = { type xs:integer }
            }
            constraints {
              key k = //content { @name }
              keyref //bold { @name } references k
            }
        "#;
        let ast = parse_schema(src).unwrap();
        let printed = print_schema(&ast, &[]);
        let ast2 = parse_schema(&printed).unwrap();
        assert_eq!(ast.globals, ast2.globals);
        assert_eq!(ast.groups, ast2.groups);
        assert_eq!(ast.attribute_groups, ast2.attribute_groups);
        assert_eq!(ast.rules.len(), ast2.rules.len());
        for (a, b) in ast.rules.iter().zip(&ast2.rules) {
            assert_eq!(a.pattern.path, b.pattern.path);
            assert_eq!(a.pattern.attributes, b.pattern.attributes);
            assert_eq!(a.body, b.body);
        }
        assert_eq!(ast.constraints, ast2.constraints);
    }

    #[test]
    fn particle_precedence_printing() {
        let src = "global { r } grammar { r = { element a, (element b | element c)* } }";
        let ast = parse_schema(src).unwrap();
        let printed = print_schema(&ast, &[]);
        assert!(printed.contains("element a, (element b | element c)*"));
    }
}
