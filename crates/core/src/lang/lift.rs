//! Lifting a formal BXSD back into the practical language — the last step
//! of the XSD → BonXai front-end pipeline.
//!
//! Ancestor regexes become path expressions (`EName*` subterms become
//! `//` gaps), content models become child patterns, and the carried
//! attribute types are re-expressed as attribute rules (a single global
//! `@a = { type T }` when the type is uniform, scoped
//! `<pattern>/@a = { type T }` rules otherwise).

use std::collections::BTreeMap;

use relang::Regex;
use xsd::{simple_types::Facets, ContentModel, SimpleType};

use crate::bxsd::Bxsd;
use crate::lang::ast::{
    AncestorPattern, AttributeItem, ChildPattern, Particle, PathExpr, RuleAst, RuleBody, SchemaAst,
    Span,
};

/// Lifts a BXSD into a surface schema AST (printable with
/// [`crate::lang::printer::print_schema`]).
pub fn lift(bxsd: &Bxsd) -> SchemaAst {
    let names: Vec<String> = bxsd.ename.entries().map(|(_, n)| n.to_owned()).collect();
    let mut ast = SchemaAst {
        globals: bxsd
            .start
            .iter()
            .map(|&s| bxsd.ename.name(s).to_owned())
            .collect(),
        ..SchemaAst::default()
    };

    // Collect attribute types: name → set of non-trivial (type, facets)
    // combinations used.
    let mut attr_types: BTreeMap<&str, Vec<(SimpleType, Facets)>> = BTreeMap::new();
    for rule in &bxsd.rules {
        for a in &rule.content.attributes {
            let e = attr_types.entry(a.name.as_str()).or_default();
            let key = (a.simple_type, a.facets.clone());
            if !e.contains(&key) {
                e.push(key);
            }
        }
    }

    for rule in &bxsd.rules {
        let path = regex_to_path(&rule.ancestor, bxsd);
        let body = content_to_body(&rule.content, bxsd);
        let source = crate::lang::printer::pattern_str(&path, &[], &names);
        ast.rules.push(RuleAst {
            pattern: AncestorPattern {
                path: path.clone(),
                attributes: Vec::new(),
                source,
            },
            body,
            span: Span::default(),
        });
        // Scoped attribute-type rules for non-uniform attribute names.
        for a in &rule.content.attributes {
            if a.simple_type == SimpleType::AnySimpleType && a.facets.is_empty() {
                continue;
            }
            let uniform = attr_types[a.name.as_str()].len() == 1;
            if !uniform {
                let source =
                    crate::lang::printer::pattern_str(&path, std::slice::from_ref(&a.name), &names);
                ast.rules.push(RuleAst {
                    pattern: AncestorPattern {
                        path: path.clone(),
                        attributes: vec![a.name.clone()],
                        source,
                    },
                    body: RuleBody::Simple(a.simple_type, a.facets.clone()),
                    span: Span::default(),
                });
            }
        }
    }

    // Global attribute-type rules for uniformly typed names.
    for (name, types) in attr_types {
        let only = &types[0];
        let trivial = only.0 == SimpleType::AnySimpleType && only.1.is_empty();
        if types.len() == 1 && !trivial {
            ast.rules.push(RuleAst {
                pattern: AncestorPattern {
                    path: PathExpr::AnyChain,
                    attributes: vec![name.to_owned()],
                    source: format!("@{name}"),
                },
                body: RuleBody::Simple(only.0, only.1.clone()),
                span: Span::default(),
            });
        }
    }

    ast
}

/// Converts an ancestor regex to a path expression, recognizing
/// `(n1+…+nk)*` over the full alphabet as the `//` gap.
pub fn regex_to_path(r: &Regex, bxsd: &Bxsd) -> PathExpr {
    let n = bxsd.ename.len();
    if is_any_chain(r, n) {
        return PathExpr::AnyChain;
    }
    match r {
        Regex::Empty => PathExpr::Alt(Vec::new()), // unmatched; rendered as ()
        Regex::Epsilon => PathExpr::Empty,
        Regex::Sym(s) => PathExpr::Name(bxsd.ename.name(*s).to_owned()),
        Regex::Concat(parts) => {
            PathExpr::Seq(parts.iter().map(|p| regex_to_path(p, bxsd)).collect())
        }
        Regex::Alt(parts) => PathExpr::Alt(parts.iter().map(|p| regex_to_path(p, bxsd)).collect()),
        Regex::Star(inner) => PathExpr::Star(Box::new(regex_to_path(inner, bxsd))),
        Regex::Plus(inner) => PathExpr::Plus(Box::new(regex_to_path(inner, bxsd))),
        Regex::Opt(inner) => PathExpr::Opt(Box::new(regex_to_path(inner, bxsd))),
        Regex::Repeat(inner, lo, hi) => PathExpr::Repeat(
            Box::new(regex_to_path(inner, bxsd)),
            *lo,
            match hi {
                relang::UpperBound::Finite(m) => Some(*m),
                relang::UpperBound::Unbounded => None,
            },
        ),
        Regex::Interleave(_) => {
            unreachable!("ancestor expressions never contain interleaving")
        }
    }
}

fn is_any_chain(r: &Regex, n_syms: usize) -> bool {
    match r {
        Regex::Star(inner) => {
            let mut syms = match &**inner {
                Regex::Sym(s) => vec![*s],
                Regex::Alt(parts) => {
                    let mut syms = Vec::new();
                    for p in parts {
                        match p {
                            Regex::Sym(s) => syms.push(*s),
                            _ => return false,
                        }
                    }
                    syms
                }
                _ => return false,
            };
            syms.sort_unstable();
            syms.dedup();
            syms.len() == n_syms
        }
        _ => false,
    }
}

fn content_to_body(cm: &ContentModel, bxsd: &Bxsd) -> RuleBody {
    if let Some(st) = cm.simple_content {
        return RuleBody::Simple(st, cm.simple_facets.clone());
    }
    let particle = match &cm.regex {
        Regex::Epsilon => None,
        r => Some(regex_to_particle(r, bxsd)),
    };
    if cm.open {
        return RuleBody::Complex(ChildPattern {
            open: true,
            ..ChildPattern::default()
        });
    }
    RuleBody::Complex(ChildPattern {
        open: false,
        mixed: cm.mixed,
        attributes: cm
            .attributes
            .iter()
            .map(|a| AttributeItem {
                name: a.name.clone(),
                optional: !a.required,
            })
            .collect(),
        attribute_group_refs: Vec::new(),
        particle,
    })
}

fn regex_to_particle(r: &Regex, bxsd: &Bxsd) -> Particle {
    match r {
        Regex::Empty | Regex::Epsilon => Particle::Seq(Vec::new()),
        Regex::Sym(s) => Particle::Element(bxsd.ename.name(*s).to_owned()),
        Regex::Concat(parts) => {
            Particle::Seq(parts.iter().map(|p| regex_to_particle(p, bxsd)).collect())
        }
        Regex::Alt(parts) => {
            Particle::Alt(parts.iter().map(|p| regex_to_particle(p, bxsd)).collect())
        }
        Regex::Interleave(parts) => {
            Particle::Interleave(parts.iter().map(|p| regex_to_particle(p, bxsd)).collect())
        }
        Regex::Star(inner) => Particle::Star(Box::new(regex_to_particle(inner, bxsd))),
        Regex::Plus(inner) => Particle::Plus(Box::new(regex_to_particle(inner, bxsd))),
        Regex::Opt(inner) => Particle::Opt(Box::new(regex_to_particle(inner, bxsd))),
        Regex::Repeat(inner, lo, hi) => Particle::Repeat(
            Box::new(regex_to_particle(inner, bxsd)),
            *lo,
            match hi {
                relang::UpperBound::Finite(m) => Some(*m),
                relang::UpperBound::Unbounded => None,
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bxsd::BxsdBuilder;
    use crate::lang::lower::lower;
    use crate::lang::parser::parse_schema;
    use crate::lang::printer::print_schema;
    use crate::validate::is_valid;
    use xmltree::builder::elem;
    use xsd::AttributeUse;

    fn example_bxsd() -> Bxsd {
        let mut b = BxsdBuilder::new();
        b.start("document");
        let template = b.ename.intern("template");
        let content = b.ename.intern("content");
        let section = b.ename.intern("section");
        b.suffix_rule(
            &["document"],
            ContentModel::new(Regex::concat(vec![
                Regex::sym(template),
                Regex::sym(content),
            ])),
        );
        b.suffix_rule(
            &["template"],
            ContentModel::new(Regex::opt(Regex::sym(section))),
        );
        b.suffix_rule(
            &["content"],
            ContentModel::new(Regex::star(Regex::sym(section))),
        );
        b.suffix_rule(
            &["section"],
            ContentModel::new(Regex::star(Regex::sym(section)))
                .with_mixed(true)
                .with_attributes([
                    AttributeUse::required("title"),
                    AttributeUse::optional("level").with_type(SimpleType::Integer),
                ]),
        );
        b.build().unwrap()
    }

    #[test]
    fn lift_print_parse_lower_roundtrip() {
        let b = example_bxsd();
        let ast = lift(&b);
        let names: Vec<String> = b.ename.entries().map(|(_, n)| n.to_owned()).collect();
        let printed = print_schema(&ast, &names);
        let reparsed = parse_schema(&printed).expect("printed schema parses");
        let lowered = lower(&reparsed).expect("reparsed schema lowers");

        let docs = [
            elem("document")
                .child(elem("template").child(elem("section")))
                .child(
                    elem("content").child(
                        elem("section")
                            .attr("title", "Intro")
                            .attr("level", "2")
                            .text("hi"),
                    ),
                )
                .build(),
            elem("document")
                .child(elem("template"))
                .child(elem("content").child(elem("section"))) // missing title
                .build(),
            elem("document")
                .child(elem("template"))
                .child(
                    elem("content").child(elem("section").attr("title", "t").attr("level", "two")),
                )
                .build(),
            elem("content").build(),
        ];
        for doc in &docs {
            assert_eq!(
                is_valid(&b, doc),
                is_valid(&lowered.bxsd, doc),
                "{}\n--- printed schema ---\n{printed}",
                xmltree::to_string(doc)
            );
        }
    }

    #[test]
    fn uniform_attribute_types_become_global_rules() {
        let b = example_bxsd();
        let ast = lift(&b);
        // the integer "level" attribute gets a global @level rule
        assert!(ast.rules.iter().any(|r| {
            r.pattern.attributes == vec!["level".to_owned()]
                && r.body == RuleBody::Simple(SimpleType::Integer, Facets::default())
        }));
        // "title" is xs:string everywhere → one global rule
        assert!(ast.rules.iter().any(|r| {
            r.pattern.attributes == vec!["title".to_owned()]
                && r.body == RuleBody::Simple(SimpleType::String, Facets::default())
        }));
    }

    #[test]
    fn any_chain_is_recognized() {
        let b = example_bxsd();
        let ast = lift(&b);
        // rule 0's path starts with // (AnyChain)
        match &ast.rules[0].pattern.path {
            PathExpr::Seq(items) => assert_eq!(items[0], PathExpr::AnyChain),
            other => panic!("{other:?}"),
        }
    }
}
