//! Surface AST of the practical BonXai language (Section 3.1).
//!
//! A BonXai schema consists of up to five blocks:
//!
//! ```text
//! target namespace <uri>
//! namespace xs = <uri>
//! global { document }
//! groups {
//!   group markup = { element bold | element italic | … }
//!   attribute-group fontattr = { attribute name?, attribute size? }
//! }
//! grammar {
//!   <ancestor pattern> = [mixed] { <child pattern> }
//!   @size = { type xs:integer }
//! }
//! constraints { … }
//! ```

use xsd::{simple_types::Facets, SimpleType};

/// A parsed BonXai schema file.
#[derive(Clone, Debug, Default)]
pub struct SchemaAst {
    /// `target namespace <uri>`.
    pub target_namespace: Option<String>,
    /// `namespace <prefix> = <uri>` declarations.
    pub namespaces: Vec<(String, String)>,
    /// The `global { … }` block: allowed root element names.
    pub globals: Vec<String>,
    /// Named content-model groups.
    pub groups: Vec<(String, Particle)>,
    /// Named attribute groups.
    pub attribute_groups: Vec<(String, Vec<AttributeItem>)>,
    /// The `grammar { … }` block, in priority order (later overrides).
    pub rules: Vec<RuleAst>,
    /// The `constraints { … }` block.
    pub constraints: Vec<crate::constraints::Constraint>,
}

/// A region of schema source text: the 1-based line/column of its start
/// plus the byte range it covers. The all-zero [`Span::default`] means
/// "no source position" (e.g. rules synthesized by lifting or import).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// 1-based line of the first byte (0 = unknown).
    pub line: u32,
    /// 1-based column of the first byte.
    pub col: u32,
    /// Byte offset of the first byte in the source.
    pub offset: usize,
    /// Length of the region in bytes.
    pub len: usize,
}

impl Span {
    /// Whether this span carries a real source position.
    pub fn is_known(&self) -> bool {
        self.line != 0
    }
}

/// One grammar rule.
#[derive(Clone, Debug, PartialEq)]
pub struct RuleAst {
    /// The left-hand side.
    pub pattern: AncestorPattern,
    /// The right-hand side.
    pub body: RuleBody,
    /// Source span of the rule's left-hand side ([`Span::default`] when
    /// the rule has no surface source, e.g. lifted from a formal BXSD).
    pub span: Span,
}

/// An ancestor pattern, already split into its element part and the
/// optional trailing attribute part (attribute names may only occur at
/// the end of ancestor patterns — "in XML, attributes cannot have
/// children").
#[derive(Clone, Debug, PartialEq)]
pub struct AncestorPattern {
    /// The element-path part.
    pub path: PathExpr,
    /// Trailing attribute alternatives (`(@c|@d)`), if this is an
    /// attribute rule.
    pub attributes: Vec<String>,
    /// The original source text (kept for diagnostics and printing).
    pub source: String,
}

/// The element-path part of an ancestor pattern: a regular expression
/// whose atoms are element names, with `/` (child), `//` (descendant
/// gap), `|`, `*`, `+`, `?`, `{n,m}` and grouping.
#[derive(Clone, Debug, PartialEq)]
pub enum PathExpr {
    /// The empty path (only meaningful as a prefix of attribute rules or
    /// under `//`-prefixed patterns).
    Empty,
    /// An element name.
    Name(String),
    /// `EName*` — the gap a `//` step denotes.
    AnyChain,
    /// Concatenation of steps.
    Seq(Vec<PathExpr>),
    /// Alternation.
    Alt(Vec<PathExpr>),
    /// Kleene star.
    Star(Box<PathExpr>),
    /// One or more.
    Plus(Box<PathExpr>),
    /// Zero or one.
    Opt(Box<PathExpr>),
    /// Counted repetition; `None` = unbounded.
    Repeat(Box<PathExpr>, u32, Option<u32>),
}

/// A rule right-hand side.
#[derive(Clone, Debug, PartialEq)]
pub enum RuleBody {
    /// `[mixed] { <child pattern> }`.
    Complex(ChildPattern),
    /// `{ type xs:… [{ facets }] }` — simple content (for element rules)
    /// or the attribute's type (for attribute rules), with optional
    /// restriction facets (`min`, `max`, `minLength`, `maxLength`,
    /// `enum`, values quoted).
    Simple(SimpleType, Facets),
}

/// The content of a complex rule body.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ChildPattern {
    /// `any` keyword present: wildcard content — any children, any
    /// attributes, any text (Section 3.1's anytype/anyattribute).
    pub open: bool,
    /// `mixed` keyword present.
    pub mixed: bool,
    /// Attribute items declared inline (`attribute title`, `attribute
    /// name?`).
    pub attributes: Vec<AttributeItem>,
    /// `attribute-group` references.
    pub attribute_group_refs: Vec<String>,
    /// The element particle (None = empty content).
    pub particle: Option<Particle>,
}

/// One attribute item in a child pattern or attribute group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttributeItem {
    /// Attribute name.
    pub name: String,
    /// `?` suffix: the attribute is optional.
    pub optional: bool,
}

/// The element structure of a child pattern.
#[derive(Clone, Debug, PartialEq)]
pub enum Particle {
    /// `element name`.
    Element(String),
    /// `group name`.
    GroupRef(String),
    /// Concatenation (`,`).
    Seq(Vec<Particle>),
    /// Union (`|`).
    Alt(Vec<Particle>),
    /// Interleaving (`&`, the `xs:all` analogue).
    Interleave(Vec<Particle>),
    /// `p*`.
    Star(Box<Particle>),
    /// `p+`.
    Plus(Box<Particle>),
    /// `p?`.
    Opt(Box<Particle>),
    /// `p{n,m}`; `None` = `*` upper bound.
    Repeat(Box<Particle>, u32, Option<u32>),
}
