//! The conformance **oracle**: a deliberately slow, obviously correct
//! reference interpreter for the priority semantics of Definition 1.
//!
//! Everything here is written for auditability, not speed, and shares
//! only the *AST* (`Bxsd`, `Regex`, `ContentModel`) with the production
//! validators in [`crate::validate`]:
//!
//! * regex matching is a **direct Glushkov NFA simulation** — positions,
//!   `first`/`last`/`follow` computed by the textbook structural
//!   recursion, the position set advanced symbol by symbol. No DFA, no
//!   determinization, no relevance product, no memoization; the automaton
//!   is rebuilt from the AST on every call;
//! * counting and interleaving are naively unrolled into core operators
//!   (or, beyond the unroll budget, decided by a from-the-definitions
//!   Brzozowski derivative written out here rather than imported), so no
//!   matcher machinery is shared with the fast paths either;
//! * the document is walked by naive recursion, recomputing each node's
//!   ancestor state from scratch — there is no per-node automaton state
//!   to get wrong.
//!
//! The payoff is differential testing: `tests/conformance_differential.rs`
//! and `bonxai conform` validate every corpus document through the tree,
//! streaming, lock-step, and relevance-product paths *and* this oracle,
//! and any divergence — verdict or error position — is a bug by
//! definition. The reports produced here are byte-identical to
//! [`crate::validate::CompiledBxsd::validate_with`] on conforming *and*
//! non-conforming documents (same violations, same canonical node order).

use relang::{Regex, Sym, UpperBound};
use xmltree::{Document, NodeId};
use xsd::violation::{Violation, ViolationKind};
use xsd::ContentModel;

use crate::bxsd::Bxsd;
use crate::validate::{BxsdReport, NodeMatch};

/// Node budget for unrolling counters/interleaves into core operators.
/// Generous on purpose — the oracle is allowed to be slow — but bounded,
/// so `a{5000,50000}` falls through to the derivative decision procedure
/// instead of materializing a fifty-thousand-position automaton.
const UNROLL_BUDGET: usize = 50_000;

/// Validates `doc` against `bxsd` with the reference interpreter.
/// Produces the same report as [`crate::validate::validate`].
pub fn validate(bxsd: &Bxsd, doc: &Document) -> BxsdReport {
    validate_with(bxsd, doc, false)
}

/// [`validate`] with optional per-node match recording (the analogue of
/// [`crate::validate::ValidateOptions::record_matches`]).
pub fn validate_with(bxsd: &Bxsd, doc: &Document, record_matches: bool) -> BxsdReport {
    let mut report = BxsdReport {
        violations: Vec::new(),
        matches: std::collections::BTreeMap::new(),
    };
    let root = doc.root();
    let root_name = doc.name(root).expect("root is an element");
    let root_ok = doc
        .name(root)
        .and_then(|n| bxsd.ename.lookup(n))
        .is_some_and(|s| bxsd.start.contains(&s));
    if !root_ok {
        report.violations.push(Violation {
            node: root,
            kind: ViolationKind::RootNotAllowed(root_name.to_owned()),
        });
        return report;
    }
    let mut walker = Walker {
        bxsd,
        doc,
        record_matches,
        report: &mut report,
    };
    let mut anc = Vec::new();
    walker.walk(root, &mut anc, true);
    report.violations.sort_by_key(|v| v.node);
    report
}

/// The recursive tree walk. `anc` is the symbol form of the ancestor
/// string of the node currently being visited (grown and shrunk around
/// each recursive call); `alive` is false below any unknown-named
/// element or any sibling that followed one.
struct Walker<'a> {
    bxsd: &'a Bxsd,
    doc: &'a Document,
    record_matches: bool,
    report: &'a mut BxsdReport,
}

impl Walker<'_> {
    fn walk(&mut self, node: NodeId, anc: &mut Vec<Sym>, alive: bool) {
        let sym = self
            .doc
            .name(node)
            .and_then(|n| self.bxsd.ename.lookup(n))
            .filter(|_| alive);
        let relevant;
        if let Some(sym) = sym {
            anc.push(sym);
            // The relevant rule is the *last* rule whose ancestor
            // expression matches anc-str(v) (Definition 1), each match
            // decided independently by a fresh Glushkov simulation.
            let matching: Vec<usize> = self
                .bxsd
                .rules
                .iter()
                .enumerate()
                .filter(|(_, r)| accepts(&r.ancestor, anc))
                .map(|(i, _)| i)
                .collect();
            relevant = matching.last().copied();
            if self.record_matches {
                self.report
                    .matches
                    .insert(node, NodeMatch { matching, relevant });
            }
        } else {
            relevant = None;
            if self.record_matches {
                self.report.matches.insert(
                    node,
                    NodeMatch {
                        matching: Vec::new(),
                        relevant: None,
                    },
                );
            }
        }

        // One pass over the children: collect the known-child word up to
        // the first unknown-named child (which is itself a violation and
        // caps the word — children after it are unconstrained), and note
        // significant text.
        let mut word: Vec<Sym> = Vec::new();
        let mut unknown_at = None;
        let mut has_text = false;
        for &child in self.doc.children(node) {
            match self.doc.name(child) {
                None => {
                    has_text = has_text
                        || self
                            .doc
                            .text(child)
                            .is_some_and(|t| !t.chars().all(char::is_whitespace));
                }
                Some(child_name) => {
                    if unknown_at.is_some() {
                        continue;
                    }
                    match self.bxsd.ename.lookup(child_name) {
                        Some(s) => word.push(s),
                        None => {
                            self.report.violations.push(Violation {
                                node: child,
                                kind: ViolationKind::NoGoverningDefinition(child_name.to_owned()),
                            });
                            unknown_at = Some(word.len());
                        }
                    }
                }
            }
        }

        self.check_node(node, relevant, &word, unknown_at, has_text);

        // Recurse. A child is alive only if this node is alive with a
        // known name and no earlier sibling had an unknown name.
        let mut seen_unknown = false;
        for &child in self.doc.children(node) {
            let Some(child_name) = self.doc.name(child) else {
                continue;
            };
            let child_known = self.bxsd.ename.lookup(child_name).is_some();
            let child_alive = sym.is_some() && !seen_unknown && child_known;
            self.walk(child, anc, child_alive);
            seen_unknown = seen_unknown || !child_known;
        }
        if sym.is_some() {
            anc.pop();
        }
    }

    /// The per-node checks of Definition 1, in the exact order the
    /// production paths report them: text, attributes, content model.
    fn check_node(
        &mut self,
        node: NodeId,
        relevant: Option<usize>,
        word: &[Sym],
        unknown_at: Option<usize>,
        has_text: bool,
    ) {
        let Some(i) = relevant else {
            return;
        };
        let model = &self.bxsd.rules[i].content;
        let name = self.doc.name(node).expect("element");
        if model.simple_content.is_some() {
            self.check_simple_text(node, name, model);
        } else if !model.mixed && !model.open && has_text {
            self.report.violations.push(Violation {
                node,
                kind: ViolationKind::UnexpectedText(name.to_owned()),
            });
        }
        self.check_attributes(node, model);
        let failed_at = unknown_at.or_else(|| {
            if model.simple_content.is_some() {
                // Simple content admits no element children at all.
                (!word.is_empty()).then_some(0)
            } else {
                first_error(&model.regex, word)
            }
        });
        if let Some(at) = failed_at {
            self.report.violations.push(Violation {
                node,
                kind: ViolationKind::ContentModel {
                    element: name.to_owned(),
                    at,
                },
            });
        }
    }

    /// Simple-content text check: the concatenated direct text children,
    /// trimmed for the type check, reported untrimmed.
    fn check_simple_text(&mut self, node: NodeId, name: &str, model: &ContentModel) {
        let Some(st) = model.simple_content else {
            return;
        };
        let text: String = self
            .doc
            .children(node)
            .iter()
            .filter_map(|&c| self.doc.text(c))
            .collect();
        let value = text.trim();
        if !st.validates(value) || !model.simple_facets.validates(st, value) {
            let expected = if model.simple_facets.is_empty() {
                st.qname().to_owned()
            } else {
                format!("{} {}", st.qname(), model.simple_facets.display())
            };
            self.report.violations.push(Violation {
                node,
                kind: ViolationKind::InvalidTextValue {
                    element: name.to_owned(),
                    value: text,
                    expected,
                },
            });
        }
    }

    /// Attribute check, straight from the definition: every written
    /// attribute must be declared and typed, every required declaration
    /// must be written. `xmlns…` declarations are exempt; an `open`
    /// model admits anything.
    fn check_attributes(&mut self, node: NodeId, model: &ContentModel) {
        if model.open {
            return;
        }
        let attrs = self.doc.attributes(node);
        for a in attrs {
            if a.name.starts_with("xmlns") {
                continue;
            }
            match model.attributes.iter().find(|d| d.name == a.name) {
                None => self.report.violations.push(Violation {
                    node,
                    kind: ViolationKind::UndeclaredAttribute(a.name.clone()),
                }),
                Some(decl) => {
                    if !decl.validates(&a.value) {
                        self.report.violations.push(Violation {
                            node,
                            kind: ViolationKind::InvalidAttributeValue {
                                attribute: a.name.clone(),
                                value: a.value.clone(),
                                expected: decl.type_display(),
                            },
                        });
                    }
                }
            }
        }
        for decl in &model.attributes {
            if decl.required && !attrs.iter().any(|a| a.name == decl.name) {
                self.report.violations.push(Violation {
                    node,
                    kind: ViolationKind::MissingAttribute(decl.name.clone()),
                });
            }
        }
    }
}

/// Whole-word membership via the Glushkov simulation.
pub fn accepts(r: &Regex, word: &[Sym]) -> bool {
    first_error(r, word).is_none()
}

/// Where matching fails: index of the first position at which the word
/// leaves every viable prefix (`word.len()` = proper prefix of a longer
/// match), `None` if the word matches. Mirrors the contract of the fast
/// paths' `CompiledDre::first_error`, derived independently.
pub fn first_error(r: &Regex, word: &[Sym]) -> Option<usize> {
    match r.desugar(UNROLL_BUDGET) {
        Some(core) => Glushkov::build(&core).first_error(word),
        None => deriv_first_error(r, word),
    }
}

/// The Glushkov position automaton of a *core* expression, built fresh
/// per call. State = a set of positions (plus the implicit start);
/// `first`, `last`, `follow` come from the standard structural
/// recursion (Glushkov 1961).
struct Glushkov {
    nullable: bool,
    first: Vec<usize>,
    last: Vec<bool>,
    follow: Vec<Vec<usize>>,
    sym: Vec<Sym>,
}

/// Per-subexpression summary used while building [`Glushkov`].
struct Frag {
    nullable: bool,
    first: Vec<usize>,
    last: Vec<usize>,
}

impl Glushkov {
    fn build(r: &Regex) -> Glushkov {
        let mut g = Glushkov {
            nullable: false,
            first: Vec::new(),
            last: Vec::new(),
            follow: Vec::new(),
            sym: Vec::new(),
        };
        let frag = g.visit(r);
        g.nullable = frag.nullable;
        g.first = frag.first;
        let mut last = vec![false; g.sym.len()];
        for p in frag.last {
            last[p] = true;
        }
        g.last = last;
        g
    }

    fn visit(&mut self, r: &Regex) -> Frag {
        match r {
            Regex::Empty => Frag {
                nullable: false,
                first: Vec::new(),
                last: Vec::new(),
            },
            Regex::Epsilon => Frag {
                nullable: true,
                first: Vec::new(),
                last: Vec::new(),
            },
            Regex::Sym(s) => {
                let p = self.sym.len();
                self.sym.push(*s);
                self.follow.push(Vec::new());
                Frag {
                    nullable: false,
                    first: vec![p],
                    last: vec![p],
                }
            }
            Regex::Concat(parts) => {
                let mut nullable = true;
                let mut first = Vec::new();
                // Positions whose next symbol may begin the next part:
                // the lasts of the suffix of already-visited parts that
                // ends in a (possibly empty) run of nullable parts.
                let mut pending: Vec<usize> = Vec::new();
                let mut last = Vec::new();
                for part in parts {
                    let f = self.visit(part);
                    for &p in &pending {
                        self.follow[p].extend(f.first.iter().copied());
                    }
                    if nullable {
                        first.extend(f.first.iter().copied());
                    }
                    if f.nullable {
                        pending.extend(f.last.iter().copied());
                        last.extend(f.last.iter().copied());
                    } else {
                        pending = f.last.clone();
                        last = f.last;
                    }
                    nullable &= f.nullable;
                }
                Frag {
                    nullable,
                    first,
                    last,
                }
            }
            Regex::Alt(parts) => {
                let mut nullable = false;
                let mut first = Vec::new();
                let mut last = Vec::new();
                for part in parts {
                    let f = self.visit(part);
                    nullable |= f.nullable;
                    first.extend(f.first);
                    last.extend(f.last);
                }
                Frag {
                    nullable,
                    first,
                    last,
                }
            }
            Regex::Star(inner) | Regex::Plus(inner) => {
                let f = self.visit(inner);
                for &p in &f.last {
                    self.follow[p].extend(f.first.iter().copied());
                }
                Frag {
                    nullable: matches!(r, Regex::Star(_)) || f.nullable,
                    first: f.first,
                    last: f.last,
                }
            }
            Regex::Opt(inner) => {
                let f = self.visit(inner);
                Frag {
                    nullable: true,
                    first: f.first,
                    last: f.last,
                }
            }
            Regex::Repeat(..) | Regex::Interleave(..) => {
                unreachable!("caller desugars extended operators")
            }
        }
    }

    fn first_error(&self, word: &[Sym]) -> Option<usize> {
        let mut active = vec![false; self.sym.len()];
        let mut any = false;
        for (i, &a) in word.iter().enumerate() {
            let mut next = vec![false; self.sym.len()];
            let mut nonempty = false;
            let sources: Box<dyn Iterator<Item = usize>> = if i == 0 {
                Box::new(self.first.iter().copied())
            } else {
                Box::new(
                    (0..active.len())
                        .filter(|&p| active[p])
                        .flat_map(|p| self.follow[p].iter().copied()),
                )
            };
            for p in sources {
                if self.sym[p] == a {
                    next[p] = true;
                    nonempty = true;
                }
            }
            if !nonempty {
                return Some(i);
            }
            active = next;
            any = true;
        }
        let accepted = if any {
            (0..active.len()).any(|p| active[p] && self.last[p])
        } else {
            self.nullable
        };
        if accepted {
            None
        } else {
            Some(word.len())
        }
    }
}

// ---------------------------------------------------------------------
// Brzozowski derivatives, from the definitions (Brzozowski 1964). Used
// only when unrolling is infeasible (huge counters, rich interleaves):
// exact for every operator, reimplemented here so the oracle shares no
// matcher code with the fast paths' own derivative fallback.
// ---------------------------------------------------------------------

fn deriv_first_error(r: &Regex, word: &[Sym]) -> Option<usize> {
    let mut cur = r.clone();
    for (i, &a) in word.iter().enumerate() {
        cur = deriv(&cur, a);
        if is_empty_lang(&cur) {
            return Some(i);
        }
    }
    if nullable(&cur) {
        None
    } else {
        Some(word.len())
    }
}

/// `ε ∈ L(r)`?
fn nullable(r: &Regex) -> bool {
    match r {
        Regex::Empty | Regex::Sym(_) => false,
        Regex::Epsilon | Regex::Star(_) | Regex::Opt(_) => true,
        Regex::Concat(parts) | Regex::Interleave(parts) => parts.iter().all(nullable),
        Regex::Alt(parts) => parts.iter().any(nullable),
        Regex::Plus(inner) => nullable(inner),
        Regex::Repeat(inner, lo, _) => *lo == 0 || nullable(inner),
    }
}

/// `L(r) = ∅`?
fn is_empty_lang(r: &Regex) -> bool {
    match r {
        Regex::Empty => true,
        Regex::Epsilon | Regex::Sym(_) | Regex::Star(_) | Regex::Opt(_) => false,
        Regex::Concat(parts) | Regex::Interleave(parts) => parts.iter().any(is_empty_lang),
        Regex::Alt(parts) => parts.iter().all(is_empty_lang),
        Regex::Plus(inner) => is_empty_lang(inner),
        Regex::Repeat(inner, lo, _) => *lo > 0 && is_empty_lang(inner),
    }
}

/// `a⁻¹L(r)`, kept small by the AST's normalizing constructors plus
/// sort+dedup of alternations (ACI), which bounds growth over a word.
fn deriv(r: &Regex, a: Sym) -> Regex {
    match r {
        Regex::Empty | Regex::Epsilon => Regex::Empty,
        Regex::Sym(s) => {
            if *s == a {
                Regex::Epsilon
            } else {
                Regex::Empty
            }
        }
        Regex::Concat(parts) => {
            // d(r1 r2 … rk) = d(r1) r2…rk + [r1 nullable] d(r2…rk)
            let mut alts = Vec::new();
            for (i, part) in parts.iter().enumerate() {
                let mut seq = vec![deriv(part, a)];
                seq.extend(parts[i + 1..].iter().cloned());
                alts.push(Regex::concat(seq));
                if !nullable(part) {
                    break;
                }
            }
            aci_alt(alts)
        }
        Regex::Alt(parts) => aci_alt(parts.iter().map(|p| deriv(p, a)).collect()),
        Regex::Star(inner) | Regex::Plus(inner) => {
            Regex::concat(vec![deriv(inner, a), Regex::star((**inner).clone())])
        }
        Regex::Opt(inner) => deriv(inner, a),
        Regex::Repeat(inner, lo, hi) => {
            let rest_hi = match hi {
                UpperBound::Unbounded => UpperBound::Unbounded,
                UpperBound::Finite(0) => return Regex::Empty,
                UpperBound::Finite(m) => UpperBound::Finite(m - 1),
            };
            Regex::concat(vec![
                deriv(inner, a),
                Regex::repeat((**inner).clone(), lo.saturating_sub(1), rest_hi),
            ])
        }
        Regex::Interleave(parts) => {
            // d(r1 & … & rk) = Σi r1 & … & d(ri) & … & rk
            let mut alts = Vec::new();
            for i in 0..parts.len() {
                let mut ps = parts.clone();
                ps[i] = deriv(&parts[i], a);
                alts.push(Regex::interleave(ps));
            }
            aci_alt(alts)
        }
    }
}

/// Alternation normalized up to associativity/commutativity/idempotence.
fn aci_alt(parts: Vec<Regex>) -> Regex {
    match Regex::alt(parts) {
        Regex::Alt(mut inner) => {
            inner.sort();
            inner.dedup();
            if inner.len() == 1 {
                return inner.pop().expect("len checked");
            }
            Regex::Alt(inner)
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Regex {
        Regex::Sym(Sym(i))
    }
    fn w(items: &[u32]) -> Vec<Sym> {
        items.iter().map(|&i| Sym(i)).collect()
    }

    #[test]
    fn glushkov_core_matching() {
        // a (b + c)* b
        let r = Regex::concat(vec![s(0), Regex::star(Regex::alt(vec![s(1), s(2)])), s(1)]);
        assert!(accepts(&r, &w(&[0, 1])));
        assert!(accepts(&r, &w(&[0, 2, 1, 1])));
        assert!(!accepts(&r, &w(&[0])));
        assert!(!accepts(&r, &w(&[1])));
        assert!(!accepts(&r, &w(&[])));
    }

    #[test]
    fn glushkov_first_error_positions() {
        let r = Regex::concat(vec![s(0), s(1), s(2)]);
        assert_eq!(first_error(&r, &w(&[0, 1, 2])), None);
        assert_eq!(first_error(&r, &w(&[0, 2])), Some(1));
        assert_eq!(first_error(&r, &w(&[0, 1])), Some(2));
        assert_eq!(first_error(&r, &w(&[1])), Some(0));
    }

    #[test]
    fn glushkov_empty_word() {
        assert_eq!(first_error(&Regex::star(s(0)), &[]), None);
        assert_eq!(first_error(&s(0), &[]), Some(0));
        assert_eq!(first_error(&Regex::Empty, &[]), Some(0));
    }

    #[test]
    fn counting_unrolls() {
        let r = Regex::repeat(s(0), 2, UpperBound::Finite(4));
        assert!(!accepts(&r, &w(&[0])));
        assert!(accepts(&r, &w(&[0, 0])));
        assert!(accepts(&r, &w(&[0, 0, 0, 0])));
        assert!(!accepts(&r, &w(&[0, 0, 0, 0, 0])));
    }

    #[test]
    fn huge_counter_uses_derivatives() {
        let r = Regex::repeat(s(0), 5_000, UpperBound::Finite(50_000));
        assert!(r.desugar(UNROLL_BUDGET).is_none(), "must exercise fallback");
        assert!(!accepts(&r, &w(&[0; 10])));
        assert!(accepts(&r, &vec![Sym(0); 5_000]));
        assert_eq!(first_error(&r, &w(&[0; 10])), Some(10));
    }

    #[test]
    fn interleave_matching() {
        // a & b? & c — xs:all style
        let r = Regex::Interleave(vec![s(0), Regex::opt(s(1)), s(2)]);
        assert!(accepts(&r, &w(&[0, 2])));
        assert!(accepts(&r, &w(&[2, 1, 0])));
        assert!(!accepts(&r, &w(&[0])));
        assert!(!accepts(&r, &w(&[0, 2, 2])));
    }

    #[test]
    fn rich_interleave_uses_derivatives() {
        // a+ & b — not expressible by the permutation unroll
        let r = Regex::Interleave(vec![Regex::plus(s(0)), s(1)]);
        assert!(r.desugar(UNROLL_BUDGET).is_none(), "must exercise fallback");
        assert!(accepts(&r, &w(&[0, 1, 0])));
        assert!(accepts(&r, &w(&[1, 0])));
        assert!(!accepts(&r, &w(&[0, 0])));
        assert_eq!(first_error(&r, &w(&[1, 1])), Some(1));
    }
}
