//! BonXai Schema Definitions — Definition 1 of the paper.
//!
//! > A BonXai Schema Definition (BXSD) is a pair B = (EName, S, R) where
//! > S ⊆ EName is a set of start elements and R is an ordered list
//! > r1 → s1, …, rn → sn of rules, where all ri are regular expressions
//! > over EName and all si are deterministic regular expressions.
//! >
//! > A rule ri → si is **relevant** for a node u if i is the largest index
//! > such that anc-str(u) ∈ L(ri). A document conforms to B if the label
//! > of its root is in S and, for each node u, if ri → si is relevant for
//! > u, then ch-str(u) ∈ L(si).
//!
//! Later rules override earlier ones — the priority system of Section 3.2,
//! introduced because neither the universal nor the existential semantics
//! of pattern-based schemas is compatible with UPA (deterministic regular
//! expressions are not closed under union or intersection).

use std::collections::BTreeSet;
use std::fmt;

use relang::regex::determinism::NonDeterminism;
use relang::{Alphabet, Regex, Sym};
use xsd::ContentModel;

/// One BonXai rule: ancestor expression → content model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// The ancestor expression `ri` (matched against `anc-str(u)`; need
    /// not be deterministic).
    pub ancestor: Regex,
    /// The content model `si` (must be a deterministic expression).
    pub content: ContentModel,
}

impl Rule {
    /// Creates a rule from its two sides.
    pub fn new(ancestor: Regex, content: impl Into<ContentModel>) -> Rule {
        Rule {
            ancestor,
            content: content.into(),
        }
    }
}

/// A BonXai Schema Definition (the formal core of BonXai).
#[derive(Clone, Debug)]
pub struct Bxsd {
    /// The element-name alphabet `EName`.
    pub ename: Alphabet,
    /// The start elements S (allowed root names).
    pub start: BTreeSet<Sym>,
    /// The ordered rule list R; **later rules have higher priority**.
    pub rules: Vec<Rule>,
}

/// Errors detected when assembling a BXSD.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BxsdError {
    /// A rule's content model violates the determinism (UPA) requirement.
    NotDeterministic {
        /// Index of the offending rule.
        rule: usize,
        /// The checker's witness.
        witness: NonDeterminism,
    },
}

impl fmt::Display for BxsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BxsdError::NotDeterministic { rule, witness } => {
                write!(f, "content model of rule {rule} violates UPA: {witness}")
            }
        }
    }
}

impl std::error::Error for BxsdError {}

impl Bxsd {
    /// Assembles a BXSD, checking that every right-hand side is a
    /// deterministic expression (the UPA requirement of Definition 1).
    pub fn new(ename: Alphabet, start: BTreeSet<Sym>, rules: Vec<Rule>) -> Result<Bxsd, BxsdError> {
        for (i, rule) in rules.iter().enumerate() {
            rule.content
                .check_deterministic()
                .map_err(|witness| BxsdError::NotDeterministic { rule: i, witness })?;
        }
        Ok(Bxsd {
            ename,
            start,
            rules,
        })
    }

    /// Assembles a BXSD **without** the UPA check — for analysis tooling
    /// (the lint pass) that reports determinism violations itself rather
    /// than refusing to build. Validators accept such schemas but their
    /// verdicts on ambiguous content models are unspecified; check with
    /// [`xsd::ContentModel::check_deterministic`] before trusting them.
    pub fn new_unchecked(ename: Alphabet, start: BTreeSet<Sym>, rules: Vec<Rule>) -> Bxsd {
        Bxsd {
            ename,
            start,
            rules,
        }
    }

    /// Number of rules.
    pub fn n_rules(&self) -> usize {
        self.rules.len()
    }

    /// The paper's size measure: total symbol occurrences over all
    /// left- and right-hand sides.
    pub fn size(&self) -> usize {
        self.rules
            .iter()
            .map(|r| r.ancestor.size() + r.content.size())
            .sum()
    }

    /// The index of the relevant rule for an ancestor string, i.e. the
    /// largest `i` with `anc_str ∈ L(ri)` — `None` if no rule matches.
    ///
    /// This is the reference implementation (derivative-based matching per
    /// rule); the compiled validator in [`crate::validate`] is the fast
    /// path.
    pub fn relevant_rule(&self, anc_str: &[Sym]) -> Option<usize> {
        self.rules
            .iter()
            .enumerate()
            .rev()
            .find(|(_, r)| relang::regex::derivative::matches(&r.ancestor, anc_str))
            .map(|(i, _)| i)
    }

    /// Renders the schema in the formal `ri → si` notation (one rule per
    /// line) for diagnostics and the experiment harnesses.
    pub fn display(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let roots: Vec<&str> = self.start.iter().map(|&s| self.ename.name(s)).collect();
        let _ = writeln!(out, "start: {{{}}}", roots.join(", "));
        for (i, rule) in self.rules.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:3}: {} -> {}{}",
                i,
                relang::regex::display_regex(&rule.ancestor, &self.ename),
                if rule.content.mixed { "mixed " } else { "" },
                relang::regex::display_regex(&rule.content.regex, &self.ename),
            );
        }
        out
    }
}

/// Convenience builder mirroring the compact way the paper writes BXSDs.
#[derive(Clone, Debug, Default)]
pub struct BxsdBuilder {
    /// Accumulating alphabet.
    pub ename: Alphabet,
    start: BTreeSet<Sym>,
    rules: Vec<Rule>,
}

impl BxsdBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a start element by name.
    pub fn start(&mut self, name: &str) -> &mut Self {
        let sym = self.ename.intern(name);
        self.start.insert(sym);
        self
    }

    /// Appends a rule (later rules take priority).
    pub fn rule(&mut self, ancestor: Regex, content: impl Into<ContentModel>) -> &mut Self {
        self.rules.push(Rule::new(ancestor, content));
        self
    }

    /// A placeholder for `EName*` (the paper's `//`), resolved against
    /// the complete alphabet when [`BxsdBuilder::build`] runs. Use it to
    /// assemble rule LHS regexes that mix `//`-gaps with other operators.
    pub fn any_chain(&self) -> Regex {
        any_star_marker()
    }

    /// Appends a rule whose LHS is `EName* · w` (the paper's `//w`) for a
    /// word of names, interning as needed.
    pub fn suffix_rule(&mut self, word: &[&str], content: impl Into<ContentModel>) -> &mut Self {
        // `EName*` must be over the *final* alphabet, so a placeholder is
        // pushed here and resolved in build().
        let mut parts = vec![any_star_marker()];
        for name in word {
            parts.push(Regex::sym(self.ename.intern(name)));
        }
        self.rules.push(Rule::new(Regex::concat(parts), content));
        self
    }

    /// Finalizes the schema, resolving `//` markers against the complete
    /// alphabet and checking determinism of all content models.
    pub fn build(self) -> Result<Bxsd, BxsdError> {
        let any = Regex::star(Regex::sym_set(self.ename.symbols()));
        let rules = self
            .rules
            .into_iter()
            .map(|r| Rule {
                ancestor: substitute_marker(&r.ancestor, &any),
                content: r.content,
            })
            .collect();
        Bxsd::new(self.ename, self.start, rules)
    }
}

/// A marker regex standing for `EName*` before the alphabet is complete.
/// Uses an impossible symbol index that real alphabets never reach.
pub(crate) fn any_star_marker() -> Regex {
    Regex::Star(Box::new(Regex::Sym(Sym(u32::MAX))))
}

pub(crate) fn substitute_marker(r: &Regex, any: &Regex) -> Regex {
    if *r == any_star_marker() {
        return any.clone();
    }
    match r {
        Regex::Concat(parts) => {
            Regex::Concat(parts.iter().map(|p| substitute_marker(p, any)).collect())
        }
        Regex::Alt(parts) => Regex::Alt(parts.iter().map(|p| substitute_marker(p, any)).collect()),
        Regex::Interleave(parts) => {
            Regex::Interleave(parts.iter().map(|p| substitute_marker(p, any)).collect())
        }
        Regex::Star(inner) => Regex::Star(Box::new(substitute_marker(inner, any))),
        Regex::Plus(inner) => Regex::Plus(Box::new(substitute_marker(inner, any))),
        Regex::Opt(inner) => Regex::Opt(Box::new(substitute_marker(inner, any))),
        Regex::Repeat(inner, lo, hi) => {
            Regex::Repeat(Box::new(substitute_marker(inner, any)), *lo, *hi)
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 5's section rules in miniature: a general rule for section
    /// and a higher-priority rule for sections below template.
    fn example() -> Bxsd {
        let mut b = BxsdBuilder::new();
        b.start("document");
        let document = b.ename.intern("document");
        let template = b.ename.intern("template");
        let content = b.ename.intern("content");
        let section = b.ename.intern("section");
        let _ = (document, template, content);
        b.suffix_rule(
            &["document"],
            ContentModel::new(Regex::concat(vec![
                Regex::sym(template),
                Regex::sym(content),
            ])),
        );
        b.suffix_rule(
            &["template"],
            ContentModel::new(Regex::opt(Regex::sym(section))),
        );
        b.suffix_rule(
            &["content"],
            ContentModel::new(Regex::star(Regex::sym(section))),
        );
        // general rule first, special case later (higher priority)
        b.suffix_rule(
            &["section"],
            ContentModel::new(Regex::star(Regex::sym(section))).with_mixed(true),
        );
        b.suffix_rule(
            &["template", "section"],
            ContentModel::new(Regex::opt(Regex::sym(section))),
        );
        b.build().unwrap()
    }

    fn syms(b: &Bxsd, names: &[&str]) -> Vec<Sym> {
        names.iter().map(|n| b.ename.lookup(n).unwrap()).collect()
    }

    #[test]
    fn relevant_rule_respects_priority() {
        let x = example();
        // content section: only the general section rule (index 3) matches
        let p = syms(&x, &["document", "content", "section"]);
        assert_eq!(x.relevant_rule(&p), Some(3));
        // template section: rules 3 and 4 match; 4 wins
        let p = syms(&x, &["document", "template", "section"]);
        assert_eq!(x.relevant_rule(&p), Some(4));
        // deeper template section: still rule 4 (suffix //template section
        // requires section directly below template) — nested sections are
        // NOT below template directly, so rule 3 applies again
        let p = syms(&x, &["document", "template", "section", "section"]);
        assert_eq!(x.relevant_rule(&p), Some(3));
        // no rule matches the root path of an unknown name? all names are
        // known here; a path ending in template matches rule 1
        let p = syms(&x, &["document", "template"]);
        assert_eq!(x.relevant_rule(&p), Some(1));
    }

    #[test]
    fn upa_checked_on_build() {
        let mut b = BxsdBuilder::new();
        b.start("a");
        let a = b.ename.intern("a");
        let bb = b.ename.intern("b");
        b.rule(
            Regex::sym(a),
            ContentModel::new(Regex::concat(vec![
                Regex::star(Regex::alt(vec![Regex::sym(a), Regex::sym(bb)])),
                Regex::sym(a),
            ])),
        );
        assert!(matches!(
            b.build(),
            Err(BxsdError::NotDeterministic { rule: 0, .. })
        ));
    }

    #[test]
    fn size_counts_both_sides() {
        let x = example();
        assert!(x.size() > 0);
        // suffix rules contribute |EName| for the EName* part plus the word
        let single_rule = {
            let mut b = BxsdBuilder::new();
            b.start("a");
            let a = b.ename.intern("a");
            b.suffix_rule(&["a"], ContentModel::new(Regex::sym(a)));
            b.build().unwrap()
        };
        // EName* (1 symbol) + a (1) on the left, a (1) on the right
        assert_eq!(single_rule.size(), 3);
    }

    #[test]
    fn display_is_readable() {
        let x = example();
        let s = x.display();
        assert!(s.contains("start: {document}"));
        assert!(s.contains("-> mixed"));
    }

    #[test]
    fn no_relevant_rule_is_none() {
        let mut b = BxsdBuilder::new();
        b.start("a");
        let a = b.ename.intern("a");
        b.rule(Regex::word(&[a, a]), ContentModel::empty());
        let x = b.build().unwrap();
        assert_eq!(x.relevant_rule(&[a]), None);
        assert_eq!(x.relevant_rule(&[a, a]), Some(0));
    }
}
