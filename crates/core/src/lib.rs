//! # bonxai-core — the BonXai schema language
//!
//! A faithful implementation of *BonXai: Combining the simplicity of DTD
//! with the expressiveness of XML Schema* (Martens, Neven, Niewerth,
//! Schwentick — PODS 2015):
//!
//! * [`bxsd`] — the formal core (Definition 1): ordered rules
//!   `ancestor-regex → deterministic content model` with priority
//!   semantics;
//! * [`validate`] — document validation with matched-rule reporting;
//! * [`oracle`] — the deliberately-slow reference interpreter the fast
//!   paths are differentially tested against;
//! * [`conformance`] — the differential driver that runs one input
//!   through every validation path × lexer engine and reports any
//!   disagreement with the oracle as a bug;
//! * [`batch`] — work-stealing multi-document validation (in-memory
//!   trees or streamed files), deterministic in input order;
//! * [`incremental`] — persistent [`incremental::ValidationState`] +
//!   [`CompiledBxsd::revalidate`]: replay an edit log instead of
//!   revalidating the whole document;
//! * [`semantics`] — the universal/existential alternatives (Section 3.2)
//!   for comparison;
//! * [`translate`] — Algorithms 1–4 and the k-suffix fast paths
//!   (Theorems 12/13), composed into end-to-end pipelines;
//! * [`lang`] — the practical language of Section 3 (the compact syntax
//!   of Figures 4/5): lexer, parser, printer, lowering, lifting;
//! * [`schema`] — [`BonxaiSchema`], the user-facing schema object;
//! * [`constraints`] — `unique`/`key`/`keyref` integrity constraints;
//! * [`dtd_import`] — DTD → BonXai conversion (Figure 2 → Figure 4);
//! * [`pipeline`] — BonXai text ⇄ XSD text, end to end;
//! * [`lint`] — static analysis: dead/unreachable rules, UPA witnesses,
//!   vacuous content, fragment/blow-up advisories (`bonxai lint`);
//! * [`analysis`] — whole-schema decision procedures: satisfiability and
//!   inclusion/equivalence with verified witness documents
//!   (`bonxai diff`, `bonxai sat`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod batch;
pub mod bxsd;
pub mod conformance;
pub mod constraints;
pub mod dtd_import;
pub mod incremental;
pub mod lang;
pub mod lint;
pub mod oracle;
pub mod pipeline;
pub mod schema;
pub mod semantics;
pub mod translate;
pub mod validate;

pub use analysis::{
    analyze_sat, diff_bxsd, AnalysisError, AnalysisOptions, DiffReport, DiffStats, Direction,
    Evolution, SatReport, UnsatRule, Witness, WitnessKind,
};
pub use batch::{clamp_jobs, default_jobs, map_indexed, FileReport};
pub use bxsd::{Bxsd, BxsdBuilder, BxsdError, Rule};
pub use incremental::ValidationState;
pub use pipeline::{
    bonxai_to_xsd_text, xsd_to_bonxai_text, PipelineError, SchemaCompiler, Translated,
};
pub use schema::{BonxaiSchema, ValidationReport};
pub use semantics::{conforms, Semantics};
pub use validate::{
    is_valid, stream_frame_sizes, validate, validate_with, BxsdReport, CompiledBxsd, NodeMatch,
    ValidateOptions, DEFAULT_PRODUCT_BUDGET,
};
