//! Algorithm 2: translating a DFA-based XSD into an equivalent BXSD
//! (Lemma 5 — linearly many rules, but possibly exponential-size regexes).
//!
//! ```text
//! 1: for every state q:  rq := a regular expression for (Q, EName, δ, q0, {q})
//! 2:                     sq := λ(q)
//! 3: R := rq1 → sq1, …, rqn → sqn
//! ```
//!
//! Line 1 is the DFA→regex conversion that is exponential in the worst
//! case (Ehrenfeucht & Zeiger; Theorem 8 of the paper shows the blow-up is
//! unavoidable even with BonXai's priorities). The rule order is
//! arbitrary because the languages `L(rq)` are pairwise disjoint — `A` is
//! deterministic, so every ancestor string reaches exactly one state.

use std::collections::BTreeSet;

use relang::ops::eliminate::language_reaching;
use relang::regex::props::is_empty_language;
use xsd::DfaXsd;

use crate::bxsd::{Bxsd, Rule};

/// Translates a DFA-based XSD into an equivalent BXSD.
///
/// States unreachable from `q0` produce empty ancestor languages and are
/// skipped (their rules could never be relevant).
pub fn dfa_xsd_to_bxsd(schema: &DfaXsd) -> Bxsd {
    let q0 = schema.dfa.initial();
    let mut rules = Vec::new();
    for q in 0..schema.dfa.n_states() {
        if q == q0 {
            continue;
        }
        let rq = language_reaching(&schema.dfa, q);
        if is_empty_language(&rq) {
            continue;
        }
        rules.push(Rule::new(rq, schema.model(q).clone()));
    }
    let start: BTreeSet<_> = schema.roots.iter().copied().collect();
    Bxsd::new(schema.ename.clone(), start, rules)
        .expect("content models are moved verbatim, so UPA is preserved")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::is_valid as bxsd_valid;
    use relang::ops::language::intersection_witness;
    use relang::Regex;
    use xmltree::builder::elem;
    use xsd::{ContentModel, DfaXsdBuilder};

    fn example() -> DfaXsd {
        let mut b = DfaXsdBuilder::new();
        let q_doc = b.add_state();
        let q_template = b.add_state();
        let q_content = b.add_state();
        let q_tsec = b.add_state();
        let q_sec = b.add_state();
        b.root("document");
        b.transition(0, "document", q_doc);
        b.transition(q_doc, "template", q_template);
        b.transition(q_doc, "content", q_content);
        b.transition(q_template, "section", q_tsec);
        b.transition(q_tsec, "section", q_tsec);
        b.transition(q_content, "section", q_sec);
        b.transition(q_sec, "section", q_sec);
        let template = b.ename.lookup("template").unwrap();
        let content = b.ename.lookup("content").unwrap();
        let section = b.ename.lookup("section").unwrap();
        b.lambda(
            q_doc,
            ContentModel::new(Regex::concat(vec![
                Regex::sym(template),
                Regex::sym(content),
            ])),
        );
        b.lambda(
            q_template,
            ContentModel::new(Regex::opt(Regex::sym(section))),
        );
        b.lambda(
            q_content,
            ContentModel::new(Regex::star(Regex::sym(section))),
        );
        b.lambda(q_tsec, ContentModel::new(Regex::opt(Regex::sym(section))));
        b.lambda(
            q_sec,
            ContentModel::new(Regex::star(Regex::sym(section))).with_mixed(true),
        );
        b.build().unwrap()
    }

    #[test]
    fn produces_one_rule_per_reachable_state() {
        let d = example();
        let b = dfa_xsd_to_bxsd(&d);
        assert_eq!(b.n_rules(), 5);
    }

    #[test]
    fn rule_languages_are_pairwise_disjoint() {
        let d = example();
        let b = dfa_xsd_to_bxsd(&d);
        let n = b.ename.len();
        for i in 0..b.n_rules() {
            for j in i + 1..b.n_rules() {
                assert_eq!(
                    intersection_witness(&b.rules[i].ancestor, &b.rules[j].ancestor, n),
                    None,
                    "rules {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn translation_preserves_validation() {
        let d = example();
        let b = dfa_xsd_to_bxsd(&d);
        let docs = [
            elem("document")
                .child(elem("template").child(elem("section").child(elem("section"))))
                .child(elem("content").child(elem("section").text("t")))
                .build(),
            elem("document")
                .child(
                    elem("template")
                        .child(elem("section"))
                        .child(elem("section")),
                )
                .child(elem("content"))
                .build(),
            elem("document")
                .child(elem("template"))
                .child(elem("content").child(elem("section").text("ok")))
                .build(),
            elem("template").build(),
        ];
        for doc in &docs {
            assert_eq!(
                d.is_valid(doc),
                bxsd_valid(&b, doc),
                "{}",
                xmltree::to_string(doc)
            );
        }
    }

    #[test]
    fn unreachable_states_are_dropped() {
        let mut builder = DfaXsdBuilder::new();
        let q1 = builder.add_state();
        let orphan = builder.add_state();
        builder.root("a");
        builder.transition(0, "a", q1);
        builder.lambda(q1, ContentModel::empty());
        builder.lambda(orphan, ContentModel::empty());
        let d = builder.build().unwrap();
        let b = dfa_xsd_to_bxsd(&d);
        assert_eq!(b.n_rules(), 1);
    }
}
