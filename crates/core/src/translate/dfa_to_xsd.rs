//! Algorithm 4: translating a DFA-based XSD to an equivalent XSD
//! (Lemma 7 — linear time).
//!
//! ```text
//! 1: Types := Q
//! 2: T0 := {a[δ(q0, a)] | a ∈ S, δ(q0, a) ≠ ∅}
//! 3: for each state q, ρ(q) := λ(q) with every a replaced by a[δ(q, a)]
//! ```
//!
//! In the factored representation the relabeling of line 3 is just the
//! construction of the child-type map from δ — the regexes are moved
//! verbatim, preserving UPA.

use std::collections::BTreeMap;

use relang::Sym;
use xsd::{DfaXsd, TypeId, Xsd};

/// Translates a DFA-based XSD into an equivalent XSD.
///
/// Non-initial state `q` becomes the type named `T{q}`; unreachable states
/// are kept (they are harmless and keep the mapping trivial — run
/// [`xsd::minimize_types`] afterwards to drop them and merge equivalents).
pub fn dfa_xsd_to_xsd(schema: &DfaXsd) -> Xsd {
    let q0 = schema.dfa.initial();
    // Dense type ids for all non-initial states.
    let mut type_of_state: BTreeMap<usize, TypeId> = BTreeMap::new();
    for q in 0..schema.dfa.n_states() {
        if q == q0 {
            continue;
        }
        type_of_state.insert(q, TypeId(type_of_state.len() as u32));
    }
    // Line 3: ρ(q) from λ(q) and δ(q, ·).
    let mut defs = Vec::with_capacity(type_of_state.len());
    for q in 0..schema.dfa.n_states() {
        if q == q0 {
            continue;
        }
        let model = schema.model(q).clone();
        let child_type: BTreeMap<Sym, TypeId> = model
            .regex
            .symbols()
            .into_iter()
            .map(|a| {
                let t = schema
                    .dfa
                    .transition(q, a)
                    .expect("DfaXsd invariant: names in λ(q) are wired");
                (a, type_of_state[&t])
            })
            .collect();
        defs.push((
            format!("T{q}"),
            xsd::TypeDef {
                content: model,
                child_type,
            },
        ));
    }
    // Line 2: T0.
    let t0: BTreeMap<Sym, TypeId> = schema
        .roots
        .iter()
        .filter_map(|&a| schema.dfa.transition(q0, a).map(|t| (a, type_of_state[&t])))
        .collect();

    Xsd::new(schema.ename.clone(), defs, t0).expect("a valid DFA-based XSD yields a valid XSD")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::xsd_to_dfa::xsd_to_dfa_xsd;
    use relang::Regex;
    use xmltree::builder::elem;
    use xsd::{ContentModel, DfaXsdBuilder};

    fn example() -> DfaXsd {
        let mut b = DfaXsdBuilder::new();
        let q_doc = b.add_state();
        let q_template = b.add_state();
        let q_content = b.add_state();
        let q_tsec = b.add_state();
        let q_sec = b.add_state();
        b.root("document");
        b.transition(0, "document", q_doc);
        b.transition(q_doc, "template", q_template);
        b.transition(q_doc, "content", q_content);
        b.transition(q_template, "section", q_tsec);
        b.transition(q_tsec, "section", q_tsec);
        b.transition(q_content, "section", q_sec);
        b.transition(q_sec, "section", q_sec);
        let template = b.ename.lookup("template").unwrap();
        let content = b.ename.lookup("content").unwrap();
        let section = b.ename.lookup("section").unwrap();
        b.lambda(
            q_doc,
            ContentModel::new(Regex::concat(vec![
                Regex::sym(template),
                Regex::sym(content),
            ])),
        );
        b.lambda(
            q_template,
            ContentModel::new(Regex::opt(Regex::sym(section))),
        );
        b.lambda(
            q_content,
            ContentModel::new(Regex::star(Regex::sym(section))),
        );
        b.lambda(q_tsec, ContentModel::new(Regex::opt(Regex::sym(section))));
        b.lambda(
            q_sec,
            ContentModel::new(Regex::star(Regex::sym(section))).with_mixed(true),
        );
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_with_algorithm_1() {
        let d = example();
        let x = dfa_xsd_to_xsd(&d);
        assert_eq!(x.n_types(), d.n_states() - 1);
        let d2 = xsd_to_dfa_xsd(&x);
        // same language on samples
        let docs = [
            elem("document")
                .child(elem("template").child(elem("section").child(elem("section"))))
                .child(elem("content").child(elem("section").text("t")))
                .build(),
            elem("document")
                .child(elem("template").child(elem("section").text("bad")))
                .child(elem("content"))
                .build(),
            elem("document").child(elem("content")).build(),
        ];
        for doc in &docs {
            assert_eq!(d.is_valid(doc), xsd::is_valid(&x, doc));
            assert_eq!(d.is_valid(doc), d2.is_valid(doc));
        }
    }

    #[test]
    fn content_models_are_moved_not_rebuilt() {
        let d = example();
        let x = dfa_xsd_to_xsd(&d);
        for q in 1..d.n_states() {
            let t = x.type_by_name(&format!("T{q}")).unwrap();
            assert_eq!(x.content(t), d.model(q));
        }
    }
}
