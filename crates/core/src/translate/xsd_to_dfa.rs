//! Algorithm 1: translating an XSD to an equivalent DFA-based XSD
//! (Lemma 4 — linear time).
//!
//! ```text
//! 1: S := {a | ∃t such that a[t] ∈ T0}
//! 2: Q := {q0} ⊎ Types
//! 3: for each a[t] ∈ T0,  δ(q0, a) := t
//! 4: for each t1 and a with a[t2] in ρ(t1),  δ(t1, a) := t2
//! 5: for each t,  λ(t) := µ(ρ(t))     (µ drops the types from symbols)
//! ```
//!
//! Our factored XSD representation already stores ρ(t) as a plain regex
//! plus a child-type map, so µ is the identity on the regex — the content
//! models are moved, never rebuilt, preserving UPA.

use std::collections::BTreeSet;

use relang::Dfa;
use xsd::{DfaXsd, Xsd};

/// Translates `xsd` into an equivalent DFA-based XSD.
///
/// State 0 is `q0`; state `1 + t` corresponds to type `t`.
pub fn xsd_to_dfa_xsd(xsd: &Xsd) -> DfaXsd {
    let n_states = 1 + xsd.n_types();
    let mut dfa = Dfa::new(xsd.ename.len(), n_states, 0);

    // Line 3: T0 wiring.
    for (&a, &t) in xsd.start_elements() {
        dfa.set_transition(0, a, Some(1 + t.index()));
    }
    // Line 4: child typing becomes the transition function.
    for t1 in xsd.type_ids() {
        for (&a, &t2) in &xsd.type_def(t1).child_type {
            dfa.set_transition(1 + t1.index(), a, Some(1 + t2.index()));
        }
    }
    // Line 5: λ(t) := µ(ρ(t)) — the content model, moved verbatim.
    let mut lambda = vec![None; n_states];
    for t in xsd.type_ids() {
        lambda[1 + t.index()] = Some(xsd.content(t).clone());
    }
    // Line 1: S.
    let roots: BTreeSet<_> = xsd.start_elements().keys().copied().collect();

    DfaXsd::new(xsd.ename.clone(), dfa, roots, lambda)
        .expect("a valid XSD yields a valid DFA-based XSD")
}

#[cfg(test)]
mod tests {
    use super::*;
    use relang::Regex;
    use xmltree::builder::elem;
    use xsd::{ContentModel, TypeDef, XsdBuilder};

    fn example() -> Xsd {
        let mut b = XsdBuilder::new();
        let document = b.ename.intern("document");
        let template = b.ename.intern("template");
        let content = b.ename.intern("content");
        let section = b.ename.intern("section");
        let t_doc = b.declare_type("Tdoc");
        let t_template = b.declare_type("Ttemplate");
        let t_content = b.declare_type("Tcontent");
        let t_tsec = b.declare_type("TtemplateSection");
        let t_sec = b.declare_type("Tsection");
        b.define(
            t_doc,
            TypeDef {
                content: ContentModel::new(Regex::concat(vec![
                    Regex::sym(template),
                    Regex::sym(content),
                ])),
                child_type: [(template, t_template), (content, t_content)].into(),
            },
        );
        b.define(
            t_template,
            TypeDef {
                content: ContentModel::new(Regex::opt(Regex::sym(section))),
                child_type: [(section, t_tsec)].into(),
            },
        );
        b.define(
            t_content,
            TypeDef {
                content: ContentModel::new(Regex::star(Regex::sym(section))),
                child_type: [(section, t_sec)].into(),
            },
        );
        b.define(
            t_tsec,
            TypeDef {
                content: ContentModel::new(Regex::opt(Regex::sym(section))),
                child_type: [(section, t_tsec)].into(),
            },
        );
        b.define(
            t_sec,
            TypeDef {
                content: ContentModel::new(Regex::star(Regex::sym(section))).with_mixed(true),
                child_type: [(section, t_sec)].into(),
            },
        );
        b.add_start(document, t_doc);
        b.build().unwrap()
    }

    #[test]
    fn translation_is_linear_in_structure() {
        let x = example();
        let d = xsd_to_dfa_xsd(&x);
        assert_eq!(d.n_states(), 1 + x.n_types());
    }

    #[test]
    fn translation_preserves_validation() {
        let x = example();
        let d = xsd_to_dfa_xsd(&x);
        let docs = [
            // valid
            elem("document")
                .child(elem("template").child(elem("section")))
                .child(elem("content").child(elem("section").text("hi")))
                .build(),
            // invalid: two template sections
            elem("document")
                .child(
                    elem("template")
                        .child(elem("section"))
                        .child(elem("section")),
                )
                .child(elem("content"))
                .build(),
            // invalid: text in template section
            elem("document")
                .child(elem("template").child(elem("section").text("x")))
                .child(elem("content"))
                .build(),
            // invalid root
            elem("content").build(),
        ];
        for doc in &docs {
            assert_eq!(
                xsd::is_valid(&x, doc),
                d.is_valid(doc),
                "{}",
                xmltree::to_string(doc)
            );
        }
    }

    #[test]
    fn content_models_are_moved_not_rebuilt() {
        let x = example();
        let d = xsd_to_dfa_xsd(&x);
        for t in x.type_ids() {
            assert_eq!(d.model(1 + t.index()), x.content(t));
        }
    }
}
