//! The efficient translations for the k-suffix fragment (Section 4.4).
//!
//! * **Theorem 12**: each k-suffix based BXSD translates in polynomial
//!   time into an equivalent k-suffix DFA-based XSD of linear size —
//!   implemented with an Aho–Corasick automaton over the rule words
//!   ([`suffix_bxsd_to_dfa_xsd`]), rather than the exponential product of
//!   Algorithm 3.
//! * **Theorem 13**: for constant k, each k-suffix DFA-based XSD
//!   translates in polynomial time into an equivalent k-suffix based BXSD
//!   ([`k_suffix_dfa_to_bxsd`]) — no DFA-to-regex state elimination, so
//!   the Theorem 8 blow-up is avoided.
//!
//! A *suffix language* (Definition 11) is `{w}` or `L(EName* w)`; a BXSD
//! is k-suffix based if every rule's LHS is a suffix language with
//! `|w| ≤ k`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use relang::{Dfa, Regex, Sym};
use xsd::{ContentModel, DfaXsd};

use crate::bxsd::{Bxsd, Rule};

/// A suffix language (Definition 11).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SuffixLang {
    /// `{w}` — exactly the word `w`.
    Exact(Vec<Sym>),
    /// `L(EName* w)` — all strings ending in `w`.
    Suffix(Vec<Sym>),
}

impl SuffixLang {
    /// The word `w`.
    pub fn word(&self) -> &[Sym] {
        match self {
            SuffixLang::Exact(w) | SuffixLang::Suffix(w) => w,
        }
    }
}

/// Recognizes whether `r` denotes a suffix language over an alphabet of
/// `n_syms` symbols (syntactically: a word, or `EName* · word`).
pub fn classify_suffix(r: &Regex, n_syms: usize) -> Option<SuffixLang> {
    if let Some(w) = as_word(r) {
        return Some(SuffixLang::Exact(w));
    }
    match r {
        Regex::Star(inner) if is_full_symset(inner, n_syms) => Some(SuffixLang::Suffix(Vec::new())),
        Regex::Concat(parts) if !parts.is_empty() => {
            let (head, tail) = parts.split_first().expect("nonempty");
            let prefix_ok = matches!(head, Regex::Star(inner) if is_full_symset(inner, n_syms));
            if !prefix_ok {
                return None;
            }
            let mut w = Vec::with_capacity(tail.len());
            for p in tail {
                match p {
                    Regex::Sym(s) => w.push(*s),
                    _ => return None,
                }
            }
            Some(SuffixLang::Suffix(w))
        }
        _ => None,
    }
}

/// If every rule LHS is a suffix language, returns the rules' words (in
/// rule order) and the fragment's k = the maximum word length.
pub fn classify_bxsd(bxsd: &Bxsd) -> Option<(Vec<SuffixLang>, usize)> {
    let n = bxsd.ename.len();
    let langs: Option<Vec<SuffixLang>> = bxsd
        .rules
        .iter()
        .map(|r| classify_suffix(&r.ancestor, n))
        .collect();
    let langs = langs?;
    let k = langs.iter().map(|l| l.word().len()).max().unwrap_or(0);
    Some((langs, k))
}

fn as_word(r: &Regex) -> Option<Vec<Sym>> {
    match r {
        Regex::Epsilon => Some(Vec::new()),
        Regex::Sym(s) => Some(vec![*s]),
        Regex::Concat(parts) => {
            let mut w = Vec::with_capacity(parts.len());
            for p in parts {
                match p {
                    Regex::Sym(s) => w.push(*s),
                    _ => return None,
                }
            }
            Some(w)
        }
        _ => None,
    }
}

fn is_full_symset(r: &Regex, n_syms: usize) -> bool {
    let syms: BTreeSet<Sym> = match r {
        Regex::Sym(s) => [*s].into(),
        Regex::Alt(parts) => {
            let mut set = BTreeSet::new();
            for p in parts {
                match p {
                    Regex::Sym(s) => {
                        set.insert(*s);
                    }
                    _ => return false,
                }
            }
            set
        }
        _ => return false,
    };
    syms.len() == n_syms
}

// ---------------------------------------------------------------------
// Theorem 12: suffix-based BXSD → DFA-based XSD via Aho–Corasick.
// ---------------------------------------------------------------------

/// Error cases of the fast path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KSuffixError {
    /// Some rule LHS is not a suffix language — use Algorithm 3 instead.
    NotSuffixBased {
        /// Index of the offending rule.
        rule: usize,
    },
    /// The schema is not k-suffix: two states share a k-suffix.
    NotKSuffix {
        /// The shared suffix (as names).
        suffix: Vec<String>,
    },
    /// Exploration exceeded the state budget.
    BudgetExceeded,
}

impl std::fmt::Display for KSuffixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KSuffixError::NotSuffixBased { rule } => {
                write!(f, "rule {rule} is not a suffix language")
            }
            KSuffixError::NotKSuffix { suffix } => {
                write!(f, "schema is not k-suffix: suffix {suffix:?} is ambiguous")
            }
            KSuffixError::BudgetExceeded => write!(f, "state budget exceeded"),
        }
    }
}

impl std::error::Error for KSuffixError {}

/// Translates a suffix-based BXSD into an equivalent DFA-based XSD in
/// polynomial time (Theorem 12).
///
/// The automaton is an Aho–Corasick machine over the rule words: its
/// state after reading an ancestor string knows exactly which rule words
/// are suffixes of the string (the AC output function), which determines
/// the relevant rule. Exact-word rules `{w}` additionally need the depth
/// capped at `D+1` where `D` is the longest exact word.
pub fn suffix_bxsd_to_dfa_xsd(bxsd: &Bxsd) -> Result<DfaXsd, KSuffixError> {
    let n = bxsd.ename.len();
    let langs: Vec<SuffixLang> = bxsd
        .rules
        .iter()
        .enumerate()
        .map(|(i, r)| {
            classify_suffix(&r.ancestor, n).ok_or(KSuffixError::NotSuffixBased { rule: i })
        })
        .collect::<Result<_, _>>()?;

    let ac = AhoCorasick::build(&langs, n);
    // Depth cap: exact rules need exact depths up to D; beyond D+1 all
    // depths behave identically.
    let depth_cap = langs
        .iter()
        .filter(|l| matches!(l, SuffixLang::Exact(_)))
        .map(|l| l.word().len())
        .max()
        .map_or(1, |d| d + 1);

    // Relevant rule for an (ac state, capped depth) pair.
    let relevant = |ac_state: usize, depth: usize| -> Option<usize> {
        ac.outputs[ac_state]
            .iter()
            .rev()
            .copied()
            .find(|&i| match &langs[i] {
                SuffixLang::Suffix(_) => true,
                SuffixLang::Exact(w) => depth == w.len(),
            })
    };

    // Explore reachable (ac, depth) states; fresh q0 = state 0.
    let mut ids: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut order: Vec<(usize, usize)> = Vec::new();
    let mut transitions: Vec<Vec<usize>> = Vec::new(); // per state, per sym
    let mut queue = VecDeque::new();
    let mut intern = |key: (usize, usize),
                      order: &mut Vec<(usize, usize)>,
                      queue: &mut VecDeque<(usize, usize)>| {
        *ids.entry(key).or_insert_with(|| {
            order.push(key);
            queue.push_back(key);
            order.len() - 1
        })
    };

    // Root transitions from q0.
    let mut root_targets: BTreeMap<Sym, usize> = BTreeMap::new();
    for &a in &bxsd.start {
        let key = (ac.goto(ac.root, a), 1.min(depth_cap));
        let id = intern(key, &mut order, &mut queue);
        root_targets.insert(a, id);
    }
    while let Some((acs, d)) = queue.pop_front() {
        let mut row = Vec::with_capacity(n);
        for a in 0..n {
            let key = (ac.goto(acs, Sym(a as u32)), (d + 1).min(depth_cap));
            row.push(intern(key, &mut order, &mut queue));
        }
        transitions.push(row);
    }

    let n_states = 1 + order.len();
    let mut dfa = Dfa::new(n, n_states, 0);
    for (&a, &t) in &root_targets {
        dfa.set_transition(0, a, Some(1 + t));
    }
    for (p, row) in transitions.iter().enumerate() {
        for (a, &t) in row.iter().enumerate() {
            dfa.set_transition(1 + p, Sym(a as u32), Some(1 + t));
        }
    }
    let mut lambda: Vec<Option<ContentModel>> = vec![None; n_states];
    for (p, &(acs, d)) in order.iter().enumerate() {
        lambda[1 + p] = Some(match relevant(acs, d) {
            Some(i) => bxsd.rules[i].content.clone(),
            None => ContentModel::any_content(&bxsd.ename),
        });
    }
    let roots: BTreeSet<Sym> = bxsd.start.iter().copied().collect();
    Ok(DfaXsd::new(bxsd.ename.clone(), dfa, roots, lambda)
        .expect("Aho–Corasick construction satisfies Definition 3"))
}

/// A complete-goto Aho–Corasick automaton over the rule words.
struct AhoCorasick {
    root: usize,
    /// goto table: per node, per symbol.
    table: Vec<Vec<usize>>,
    /// Rule indices whose word is a suffix of the input at this node,
    /// sorted ascending.
    outputs: Vec<Vec<usize>>,
}

impl AhoCorasick {
    fn goto(&self, node: usize, a: Sym) -> usize {
        self.table[node][a.index()]
    }

    #[allow(clippy::needless_range_loop)] // goto-table row indexing
    fn build(langs: &[SuffixLang], n_syms: usize) -> AhoCorasick {
        // Trie.
        let mut children: Vec<BTreeMap<Sym, usize>> = vec![BTreeMap::new()];
        let mut ends: Vec<Vec<usize>> = vec![Vec::new()];
        for (i, lang) in langs.iter().enumerate() {
            let mut node = 0usize;
            for &a in lang.word() {
                node = match children[node].get(&a) {
                    Some(&c) => c,
                    None => {
                        children.push(BTreeMap::new());
                        ends.push(Vec::new());
                        let c = children.len() - 1;
                        children[node].insert(a, c);
                        c
                    }
                };
            }
            ends[node].push(i);
        }
        let n_nodes = children.len();
        // Failure links + complete goto via BFS.
        let mut fail = vec![0usize; n_nodes];
        let mut table = vec![vec![0usize; n_syms]; n_nodes];
        let mut outputs: Vec<Vec<usize>> = ends.clone();
        let mut queue = VecDeque::new();
        for a in 0..n_syms {
            match children[0].get(&Sym(a as u32)) {
                Some(&c) => {
                    fail[c] = 0;
                    table[0][a] = c;
                    queue.push_back(c);
                }
                None => table[0][a] = 0,
            }
        }
        while let Some(node) = queue.pop_front() {
            let mut out = outputs[fail[node]].clone();
            out.extend(outputs[node].iter().copied());
            out.sort_unstable();
            out.dedup();
            outputs[node] = out;
            for a in 0..n_syms {
                match children[node].get(&Sym(a as u32)) {
                    Some(&c) => {
                        fail[c] = table[fail[node]][a];
                        table[node][a] = c;
                        queue.push_back(c);
                    }
                    None => table[node][a] = table[fail[node]][a],
                }
            }
        }
        AhoCorasick {
            root: 0,
            table,
            outputs,
        }
    }
}

// ---------------------------------------------------------------------
// Theorem 13: k-suffix DFA-based XSD → suffix-based BXSD.
// ---------------------------------------------------------------------

/// Translates a k-suffix DFA-based XSD into an equivalent k-suffix based
/// BXSD (Theorem 13), verifying the k-suffix property along the way.
///
/// Rules are emitted with pairwise disjoint left-hand sides — exact words
/// `{w}` for realizable ancestor strings shorter than k, suffix rules
/// `EName* w` for the realizable k-suffixes — so priorities are irrelevant
/// in the output, as the paper observes for this fragment.
pub fn k_suffix_dfa_to_bxsd(
    schema: &DfaXsd,
    k: usize,
    budget: usize,
) -> Result<Bxsd, KSuffixError> {
    let dfa = &schema.dfa;
    let q0 = dfa.initial();
    let allowed: Vec<BTreeSet<Sym>> = (0..dfa.n_states())
        .map(|q| {
            if q == q0 {
                schema.roots.iter().copied().collect()
            } else {
                schema.model(q).regex.symbols().into_iter().collect()
            }
        })
        .collect();

    // Explore realizable (state, suffix ≤ k) pairs; exact strings are
    // those still shorter than k.
    let mut short: BTreeMap<Vec<Sym>, usize> = BTreeMap::new();
    let mut long: BTreeMap<Vec<Sym>, usize> = BTreeMap::new();
    let mut seen: BTreeSet<(usize, Vec<Sym>, bool)> = BTreeSet::new();
    let start = (q0, Vec::new(), true);
    seen.insert(start.clone());
    let mut queue = VecDeque::from([start]);
    while let Some((q, suffix, is_exact)) = queue.pop_front() {
        if seen.len() > budget {
            return Err(KSuffixError::BudgetExceeded);
        }
        if q != q0 {
            let map = if is_exact && suffix.len() < k {
                &mut short
            } else {
                &mut long
            };
            if let Some(&prev) = map.get(&suffix) {
                if prev != q {
                    return Err(KSuffixError::NotKSuffix {
                        suffix: suffix
                            .iter()
                            .map(|&s| schema.ename.name(s).to_owned())
                            .collect(),
                    });
                }
            } else {
                map.insert(suffix.clone(), q);
            }
        }
        for &a in &allowed[q] {
            let Some(t) = dfa.transition(q, a) else {
                continue;
            };
            let mut next = suffix.clone();
            next.push(a);
            let mut next_exact = is_exact;
            if next.len() > k {
                next.remove(0);
                next_exact = false;
            }
            let item = (t, next, next_exact);
            if seen.insert(item.clone()) {
                queue.push_back(item);
            }
        }
    }

    // Emit rules: exact short strings first, then k-suffixes (the order
    // is irrelevant — the LHS languages are pairwise disjoint).
    let any = Regex::star(Regex::sym_set(schema.ename.symbols()));
    let mut rules = Vec::with_capacity(short.len() + long.len());
    for (w, q) in &short {
        rules.push(Rule::new(Regex::word(w), schema.model(*q).clone()));
    }
    for (w, q) in &long {
        let mut parts = vec![any.clone()];
        parts.extend(w.iter().map(|&s| Regex::sym(s)));
        rules.push(Rule::new(Regex::concat(parts), schema.model(*q).clone()));
    }
    let start: BTreeSet<Sym> = schema.roots.iter().copied().collect();
    Ok(Bxsd::new(schema.ename.clone(), start, rules)
        .expect("content models are moved verbatim, so UPA is preserved"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bxsd::BxsdBuilder;
    use crate::translate::bxsd_to_dfa::bxsd_to_dfa_xsd;
    use crate::validate::is_valid as bxsd_valid;
    use xmltree::builder::elem;
    use xsd::DfaXsdBuilder;

    #[test]
    fn classify_recognizes_shapes() {
        let mut b = BxsdBuilder::new();
        b.start("a");
        let a = b.ename.intern("a");
        let c = b.ename.intern("c");
        // //a c
        b.suffix_rule(&["a", "c"], ContentModel::empty());
        // exact word a c
        b.rule(Regex::word(&[a, c]), ContentModel::empty());
        // not a suffix language: (a + c a)
        b.rule(
            Regex::alt(vec![Regex::sym(a), Regex::word(&[c, a])]),
            ContentModel::empty(),
        );
        let x = b.build().unwrap();
        let n = x.ename.len();
        assert_eq!(
            classify_suffix(&x.rules[0].ancestor, n),
            Some(SuffixLang::Suffix(vec![a, c]))
        );
        assert_eq!(
            classify_suffix(&x.rules[1].ancestor, n),
            Some(SuffixLang::Exact(vec![a, c]))
        );
        assert_eq!(classify_suffix(&x.rules[2].ancestor, n), None);
        assert!(classify_bxsd(&x).is_none());
    }

    /// A 2-suffix schema exercising priorities between overlapping
    /// suffix rules.
    fn suffix_schema() -> Bxsd {
        let mut b = BxsdBuilder::new();
        b.start("doc");
        let sec = b.ename.intern("sec");
        let tpl = b.ename.intern("tpl");
        b.suffix_rule(
            &["doc"],
            ContentModel::new(Regex::concat(vec![
                Regex::sym(tpl),
                Regex::star(Regex::sym(sec)),
            ])),
        );
        b.suffix_rule(&["tpl"], ContentModel::new(Regex::opt(Regex::sym(sec))));
        b.suffix_rule(
            &["sec"],
            ContentModel::new(Regex::star(Regex::sym(sec))).with_mixed(true),
        );
        b.suffix_rule(
            &["tpl", "sec"],
            ContentModel::new(Regex::opt(Regex::sym(sec))),
        );
        b.build().unwrap()
    }

    fn sample_docs() -> Vec<xmltree::Document> {
        vec![
            elem("doc")
                .child(elem("tpl").child(elem("sec").child(elem("sec").text("deep"))))
                .child(elem("sec").text("hello"))
                .build(),
            elem("doc")
                .child(elem("tpl").child(elem("sec").text("no text here")))
                .build(),
            elem("doc").child(elem("sec")).build(),
            elem("doc")
                .child(elem("tpl").child(elem("sec").child(elem("sec")).child(elem("sec"))))
                .build(),
        ]
    }

    #[test]
    fn fast_path_agrees_with_algorithm_3() {
        let b = suffix_schema();
        let fast = suffix_bxsd_to_dfa_xsd(&b).unwrap();
        let slow = bxsd_to_dfa_xsd(&b);
        for doc in &sample_docs() {
            assert_eq!(
                fast.is_valid(doc),
                slow.is_valid(doc),
                "{}",
                xmltree::to_string(doc)
            );
            assert_eq!(fast.is_valid(doc), bxsd_valid(&b, doc));
        }
    }

    #[test]
    fn fast_path_output_is_k_suffix() {
        let b = suffix_schema();
        let fast = suffix_bxsd_to_dfa_xsd(&b).unwrap();
        // all rules are suffix rules with |w| ≤ 2 and no exact rules
        assert_eq!(
            xsd::ksuffix::is_k_suffix(&fast, 2, 100_000),
            xsd::ksuffix::KSuffixOutcome::Yes
        );
    }

    #[test]
    fn exact_rules_use_depth() {
        let mut b = BxsdBuilder::new();
        b.start("a");
        let a = b.ename.intern("a");
        // //a → a?   but the root itself (exact word "a") must have a child
        b.suffix_rule(&["a"], ContentModel::new(Regex::opt(Regex::sym(a))));
        b.rule(Regex::word(&[a]), ContentModel::new(Regex::sym(a)));
        let x = b.build().unwrap();
        let fast = suffix_bxsd_to_dfa_xsd(&x).unwrap();
        let leaf_only = elem("a").build(); // root must have a child → invalid
        let chain2 = elem("a").child(elem("a")).build();
        let chain3 = elem("a").child(elem("a").child(elem("a"))).build();
        for doc in [&leaf_only, &chain2, &chain3] {
            assert_eq!(fast.is_valid(doc), bxsd_valid(&x, doc));
        }
        assert!(!fast.is_valid(&leaf_only));
        assert!(fast.is_valid(&chain2));
        assert!(fast.is_valid(&chain3));
    }

    /// Build a 2-suffix DFA-based XSD directly and convert it back.
    #[test]
    fn theorem13_roundtrip() {
        let mut builder = DfaXsdBuilder::new();
        let q_doc = builder.add_state();
        let q_tsec = builder.add_state(); // sec under tpl-ish context
        let q_sec = builder.add_state();
        let q_tpl = builder.add_state();
        builder.root("doc");
        builder.transition(0, "doc", q_doc);
        builder.transition(q_doc, "tpl", q_tpl);
        builder.transition(q_doc, "sec", q_sec);
        builder.transition(q_tpl, "sec", q_tsec);
        builder.transition(q_tsec, "sec", q_sec);
        builder.transition(q_sec, "sec", q_sec);
        let sec = builder.ename.lookup("sec").unwrap();
        let tpl = builder.ename.lookup("tpl").unwrap();
        builder.lambda(
            q_doc,
            ContentModel::new(Regex::concat(vec![
                Regex::opt(Regex::sym(tpl)),
                Regex::star(Regex::sym(sec)),
            ])),
        );
        builder.lambda(q_tpl, ContentModel::new(Regex::opt(Regex::sym(sec))));
        builder.lambda(q_tsec, ContentModel::new(Regex::star(Regex::sym(sec))));
        builder.lambda(
            q_sec,
            ContentModel::new(Regex::star(Regex::sym(sec))).with_mixed(true),
        );
        let schema = builder.build().unwrap();

        let b = k_suffix_dfa_to_bxsd(&schema, 2, 100_000).unwrap();
        // output is suffix-based with k ≤ 2
        let (_, k) = classify_bxsd(&b).expect("output is suffix-based");
        assert!(k <= 2);
        // language agreement
        let docs = [
            elem("doc")
                .child(elem("tpl").child(elem("sec").child(elem("sec").text("x"))))
                .child(elem("sec"))
                .build(),
            elem("doc")
                .child(elem("sec").child(elem("sec")).text("mix"))
                .build(),
            elem("doc").child(elem("sec")).child(elem("tpl")).build(),
            elem("doc")
                .child(elem("tpl").child(elem("sec").text("text not allowed")))
                .build(),
        ];
        for doc in &docs {
            assert_eq!(
                schema.is_valid(doc),
                bxsd_valid(&b, doc),
                "{}",
                xmltree::to_string(doc)
            );
        }
    }

    #[test]
    fn theorem13_rejects_non_k_suffix() {
        // The running example (template vs content sections at any depth)
        // is not k-suffix for any k.
        let mut builder = DfaXsdBuilder::new();
        let q_doc = builder.add_state();
        let q_t = builder.add_state();
        let q_c = builder.add_state();
        let q_ts = builder.add_state();
        let q_cs = builder.add_state();
        builder.root("doc");
        builder.transition(0, "doc", q_doc);
        builder.transition(q_doc, "t", q_t);
        builder.transition(q_doc, "c", q_c);
        builder.transition(q_t, "s", q_ts);
        builder.transition(q_ts, "s", q_ts);
        builder.transition(q_c, "s", q_cs);
        builder.transition(q_cs, "s", q_cs);
        let t = builder.ename.lookup("t").unwrap();
        let c = builder.ename.lookup("c").unwrap();
        let s = builder.ename.lookup("s").unwrap();
        builder.lambda(
            q_doc,
            ContentModel::new(Regex::concat(vec![Regex::sym(t), Regex::sym(c)])),
        );
        builder.lambda(q_t, ContentModel::new(Regex::opt(Regex::sym(s))));
        builder.lambda(q_c, ContentModel::new(Regex::star(Regex::sym(s))));
        builder.lambda(q_ts, ContentModel::new(Regex::opt(Regex::sym(s))));
        builder.lambda(
            q_cs,
            ContentModel::new(Regex::star(Regex::sym(s))).with_mixed(true),
        );
        let schema = builder.build().unwrap();
        assert!(matches!(
            k_suffix_dfa_to_bxsd(&schema, 3, 100_000),
            Err(KSuffixError::NotKSuffix { .. })
        ));
    }
}
