//! The paper's translation algorithms (Section 4.2) and the k-suffix
//! fast paths (Section 4.4).
//!
//! | Paper | Module | Direction | Cost |
//! |---|---|---|---|
//! | Algorithm 1 (Lemma 4) | [`xsd_to_dfa`] | XSD → DFA-based XSD | linear |
//! | Algorithm 2 (Lemma 5) | [`dfa_to_bxsd`] | DFA-based XSD → BXSD | exp. regexes (Thm 8) |
//! | Algorithm 3 (Lemma 6) | [`bxsd_to_dfa`] | BXSD → DFA-based XSD | exp. states (Thm 9) |
//! | Algorithm 4 (Lemma 7) | [`dfa_to_xsd`] | DFA-based XSD → XSD | linear |
//! | Theorem 12 | [`ksuffix`] | suffix BXSD → DFA-based XSD | poly, linear size |
//! | Theorem 13 | [`ksuffix`] | k-suffix DFA-based XSD → BXSD | poly for fixed k |
//!
//! None of these constructions ever takes a union, intersection, or
//! complement of a content model — the expressions are *moved*, which is
//! what keeps UPA intact across translations (Section 4.1).

pub mod bxsd_to_dfa;
pub mod dfa_to_bxsd;
pub mod dfa_to_xsd;
pub mod ksuffix;
pub mod xsd_to_dfa;

pub use bxsd_to_dfa::{bxsd_to_dfa_xsd, bxsd_to_dfa_xsd_strict, bxsd_to_dfa_xsd_with_cache};
pub use dfa_to_bxsd::dfa_xsd_to_bxsd;
pub use dfa_to_xsd::dfa_xsd_to_xsd;
pub use ksuffix::{
    classify_bxsd, classify_suffix, k_suffix_dfa_to_bxsd, suffix_bxsd_to_dfa_xsd, KSuffixError,
    SuffixLang,
};
pub use xsd_to_dfa::xsd_to_dfa_xsd;

use crate::bxsd::Bxsd;
use relang::cache::AutomataCache;
use xsd::{DfaXsd, Xsd};

/// Options for the end-to-end translations.
#[derive(Clone, Copy, Debug)]
pub struct TranslateOptions {
    /// Try the k-suffix fast path for k up to this bound before falling
    /// back to the general algorithms (Section 4.4: 98% of real schemas
    /// have k ≤ 3).
    pub max_fast_k: usize,
    /// State budget for k-suffix exploration.
    pub ksuffix_budget: usize,
    /// Minimize the type set of produced XSDs ([`xsd::minimize_types`]).
    pub minimize: bool,
}

impl Default for TranslateOptions {
    fn default() -> Self {
        TranslateOptions {
            max_fast_k: 3,
            ksuffix_budget: 1_000_000,
            minimize: true,
        }
    }
}

/// Which path an end-to-end translation took (reported for experiments).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Path {
    /// The k-suffix fast path, with the k that succeeded.
    Fast(usize),
    /// The general (worst-case exponential) algorithm.
    General,
}

/// XSD → BXSD: Algorithm 1, then Theorem 13 for small k when possible,
/// otherwise Algorithm 2.
pub fn xsd_to_bxsd(xsd: &Xsd, opts: &TranslateOptions) -> (Bxsd, Path) {
    let d = xsd_to_dfa_xsd(xsd);
    dfa_xsd_to_bxsd_auto(&d, opts)
}

/// DFA-based XSD → BXSD with automatic fast-path selection.
pub fn dfa_xsd_to_bxsd_auto(d: &DfaXsd, opts: &TranslateOptions) -> (Bxsd, Path) {
    for k in 0..=opts.max_fast_k {
        if let Ok(b) = k_suffix_dfa_to_bxsd(d, k, opts.ksuffix_budget) {
            return (b, Path::Fast(k));
        }
    }
    (dfa_xsd_to_bxsd(d), Path::General)
}

/// BXSD → XSD: Theorem 12 when the schema is suffix-based, otherwise
/// Algorithm 3; then Algorithm 4 (and optional minimization).
pub fn bxsd_to_xsd(bxsd: &Bxsd, opts: &TranslateOptions) -> (Xsd, Path) {
    bxsd_to_xsd_impl(bxsd, opts, None)
}

/// [`bxsd_to_xsd`] with a shared [`AutomataCache`]. The Theorem 12 fast
/// path is purely syntactic (an Aho–Corasick construction — no DFAs to
/// memoize); the cache pays off when the schema falls back to
/// Algorithm 3, whose per-rule minimal DFAs the lint pass has typically
/// already built.
pub fn bxsd_to_xsd_with_cache(
    bxsd: &Bxsd,
    opts: &TranslateOptions,
    cache: &mut AutomataCache,
) -> (Xsd, Path) {
    bxsd_to_xsd_impl(bxsd, opts, Some(cache))
}

fn bxsd_to_xsd_impl(
    bxsd: &Bxsd,
    opts: &TranslateOptions,
    cache: Option<&mut AutomataCache>,
) -> (Xsd, Path) {
    let (d, path) = match suffix_bxsd_to_dfa_xsd(bxsd) {
        Ok(d) => {
            let k = classify_bxsd(bxsd).map(|(_, k)| k).unwrap_or(0);
            (d, Path::Fast(k))
        }
        Err(_) => match cache {
            Some(c) => (bxsd_to_dfa_xsd_with_cache(bxsd, c), Path::General),
            None => (bxsd_to_dfa_xsd(bxsd), Path::General),
        },
    };
    let x = dfa_xsd_to_xsd(&d);
    let x = if opts.minimize {
        xsd::minimize_types(&x)
    } else {
        x
    };
    (x, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bxsd::BxsdBuilder;
    use crate::validate::is_valid as bxsd_valid;
    use relang::Regex;
    use xmltree::builder::elem;
    use xsd::ContentModel;

    #[test]
    fn end_to_end_roundtrip_preserves_language() {
        let mut b = BxsdBuilder::new();
        b.start("doc");
        let item = b.ename.intern("item");
        let name = b.ename.intern("name");
        b.suffix_rule(&["doc"], ContentModel::new(Regex::star(Regex::sym(item))));
        b.suffix_rule(
            &["item"],
            ContentModel::new(Regex::concat(vec![
                Regex::sym(name),
                Regex::star(Regex::sym(item)),
            ])),
        );
        b.suffix_rule(&["name"], ContentModel::empty().with_mixed(true));
        let bxsd = b.build().unwrap();

        let opts = TranslateOptions::default();
        let (x, path) = bxsd_to_xsd(&bxsd, &opts);
        assert_eq!(path, Path::Fast(1));
        let (back, _) = xsd_to_bxsd(&x, &opts);

        let docs = [
            elem("doc")
                .child(elem("item").child(elem("name").text("n")))
                .child(
                    elem("item")
                        .child(elem("name"))
                        .child(elem("item").child(elem("name"))),
                )
                .build(),
            elem("doc").child(elem("item")).build(), // missing name
            elem("doc").child(elem("name")).build(),
        ];
        for doc in &docs {
            let expected = bxsd_valid(&bxsd, doc);
            assert_eq!(
                xsd::is_valid(&x, doc),
                expected,
                "{}",
                xmltree::to_string(doc)
            );
            assert_eq!(
                bxsd_valid(&back, doc),
                expected,
                "{}",
                xmltree::to_string(doc)
            );
        }
    }

    #[test]
    fn general_path_taken_for_non_suffix_schemas() {
        // LHS (a + b a) is not a suffix language.
        let mut b = BxsdBuilder::new();
        b.start("a");
        let a = b.ename.intern("a");
        let bb = b.ename.intern("b");
        b.rule(
            Regex::concat(vec![
                Regex::star(Regex::sym_set([a, bb])),
                Regex::alt(vec![
                    Regex::sym(a),
                    Regex::concat(vec![Regex::sym(bb), Regex::sym(a)]),
                ]),
            ]),
            ContentModel::new(Regex::opt(Regex::sym(bb))),
        );
        let bxsd = b.build().unwrap();
        let (_, path) = bxsd_to_xsd(&bxsd, &TranslateOptions::default());
        assert_eq!(path, Path::General);
    }
}
