//! Algorithm 3: translating a BXSD into an equivalent DFA-based XSD
//! (Lemma 6 — at most exponential in |B|).
//!
//! ```text
//! 1: for each rule i:  Ai := minimal complete DFA for L(ri)
//! 2: A := A1 × … × An
//! 3: for each product state (q1, …, qn):
//! 4:   if some qi is accepting:
//! 5:     i := the largest such index; λ((q1,…,qn)) := si     (priority!)
//! 6:   else: λ((q1,…,qn)) := (EName)*
//! ```
//!
//! As the paper notes, "it is straightforward to change it such that it
//! only computes reachable states … a transition δ(p, a), for which the
//! label a does not occur in λ(p), can never be taken in a conforming
//! document" — [`bxsd_to_dfa_xsd`] implements that pruned, lazy variant;
//! [`bxsd_to_dfa_xsd_strict`] materializes the full product for
//! differential testing on small inputs.

use std::collections::BTreeSet;
use std::sync::Arc;

use relang::cache::AutomataCache;
use relang::ops::{full_product, lazy_product_pruned, minimize, regex_to_dfa, Product};
use relang::{Dfa, Sym};
use xsd::{ContentModel, DfaXsd};

use crate::bxsd::Bxsd;

/// Translates a BXSD into an equivalent DFA-based XSD, materializing only
/// reachable, λ-pruned product states.
pub fn bxsd_to_dfa_xsd(bxsd: &Bxsd) -> DfaXsd {
    build(bxsd, true, None)
}

/// [`bxsd_to_dfa_xsd`] with a shared [`AutomataCache`]: line 1's minimal
/// rule DFAs come from the memo (canonical minimization makes the cached
/// and fresh components — and hence the whole translation — identical).
pub fn bxsd_to_dfa_xsd_with_cache(bxsd: &Bxsd, cache: &mut AutomataCache) -> DfaXsd {
    build(bxsd, true, Some(cache))
}

/// Reference implementation with the full (unpruned) product of all rule
/// automata — exponential in the number of rules; small inputs only.
pub fn bxsd_to_dfa_xsd_strict(bxsd: &Bxsd) -> DfaXsd {
    build(bxsd, false, None)
}

fn build(bxsd: &Bxsd, lazy: bool, mut cache: Option<&mut AutomataCache>) -> DfaXsd {
    let n = bxsd.ename.len();
    // Line 1: minimal complete DFAs for the rule languages.
    let components: Vec<Arc<Dfa>> = bxsd
        .rules
        .iter()
        .map(|r| match cache.as_deref_mut() {
            Some(c) => c.min_dfa(&r.ancestor, n),
            None => Arc::new(minimize(&regex_to_dfa(&r.ancestor, n))),
        })
        .collect();
    let refs: Vec<&Dfa> = components.iter().map(Arc::as_ref).collect();

    // Lines 4–6, as a function of a product tuple.
    let relevant = |tuple: &[usize]| -> Option<usize> {
        (0..components.len())
            .rev()
            .find(|&i| components[i].is_final(tuple[i]))
    };
    // Symbols each rule's content model mentions (for the λ-pruning).
    let rule_syms: Vec<BTreeSet<Sym>> = bxsd
        .rules
        .iter()
        .map(|r| r.content.regex.symbols().into_iter().collect())
        .collect();
    let start_tuple: Vec<usize> = components.iter().map(|c| c.initial()).collect();
    let roots: BTreeSet<Sym> = bxsd.start.iter().copied().collect();

    // Line 2: the product.
    let product: Product = if components.is_empty() {
        // No rules: a single unconstrained state.
        let mut dfa = Dfa::new(n, 1, 0);
        for a in 0..n {
            dfa.set_transition(0, Sym(a as u32), Some(0));
        }
        Product {
            dfa,
            tuples: vec![vec![]],
        }
    } else if lazy {
        lazy_product_pruned(&refs, |tuple, a| {
            let by_lambda = match relevant(tuple) {
                Some(i) => rule_syms[i].contains(&a),
                None => true, // filler state: (EName)* allows everything
            };
            by_lambda || (tuple == start_tuple.as_slice() && roots.contains(&a))
        })
    } else {
        full_product(&refs)
    };

    // Assemble the DFA-based XSD with a fresh initial state (the product
    // start state may have incoming transitions; Definition 3 forbids
    // that for q0). Product state p becomes state 1 + p.
    let k = product.dfa.n_states();
    let mut dfa = Dfa::new(n, k + 1, 0);
    for p in 0..k {
        for a in 0..n {
            if let Some(t) = product.dfa.transition(p, Sym(a as u32)) {
                dfa.set_transition(1 + p, Sym(a as u32), Some(1 + t));
            }
        }
    }
    let start_state = product.dfa.initial();
    for &a in &roots {
        let t = product
            .dfa
            .transition(start_state, a)
            .expect("root transitions are kept by the pruning");
        dfa.set_transition(0, a, Some(1 + t));
    }

    let mut lambda: Vec<Option<ContentModel>> = vec![None; k + 1];
    for (p, tuple) in product.tuples.iter().enumerate() {
        lambda[1 + p] = Some(match relevant(tuple) {
            Some(i) => bxsd.rules[i].content.clone(),
            None => ContentModel::any_content(&bxsd.ename),
        });
    }

    DfaXsd::new(bxsd.ename.clone(), dfa, roots, lambda)
        .expect("Algorithm 3 output satisfies the Definition 3 invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bxsd::BxsdBuilder;
    use crate::validate::is_valid as bxsd_valid;
    use relang::Regex;
    use xmltree::builder::elem;
    use xmltree::Document;

    fn figure5_style() -> Bxsd {
        let mut b = BxsdBuilder::new();
        b.start("document");
        let template = b.ename.intern("template");
        let content = b.ename.intern("content");
        let section = b.ename.intern("section");
        b.suffix_rule(
            &["document"],
            ContentModel::new(Regex::concat(vec![
                Regex::sym(template),
                Regex::sym(content),
            ])),
        );
        b.suffix_rule(
            &["template"],
            ContentModel::new(Regex::opt(Regex::sym(section))),
        );
        b.suffix_rule(
            &["content"],
            ContentModel::new(Regex::star(Regex::sym(section))),
        );
        b.suffix_rule(
            &["section"],
            ContentModel::new(Regex::star(Regex::sym(section))).with_mixed(true),
        );
        b.suffix_rule(
            &["template", "section"],
            ContentModel::new(Regex::opt(Regex::sym(section))),
        );
        b.build().unwrap()
    }

    fn sample_docs() -> Vec<Document> {
        vec![
            elem("document")
                .child(elem("template").child(elem("section").child(elem("section"))))
                .child(elem("content").child(elem("section").text("t")))
                .build(),
            elem("document")
                .child(
                    elem("template")
                        .child(elem("section"))
                        .child(elem("section")),
                )
                .child(elem("content"))
                .build(),
            elem("document")
                .child(elem("template").child(elem("section").text("no text allowed")))
                .child(elem("content"))
                .build(),
            elem("document")
                .child(elem("content"))
                .child(elem("template"))
                .build(),
            elem("section").build(),
            elem("document")
                .child(elem("template"))
                .child(
                    elem("content")
                        .child(elem("section").text("a"))
                        .child(elem("section").child(elem("section"))),
                )
                .build(),
        ]
    }

    #[test]
    fn translation_preserves_validation() {
        let b = figure5_style();
        let d = bxsd_to_dfa_xsd(&b);
        for doc in &sample_docs() {
            assert_eq!(
                bxsd_valid(&b, doc),
                d.is_valid(doc),
                "{}",
                xmltree::to_string(doc)
            );
        }
    }

    #[test]
    fn lazy_and_strict_agree() {
        let b = figure5_style();
        let lazy = bxsd_to_dfa_xsd(&b);
        let strict = bxsd_to_dfa_xsd_strict(&b);
        assert!(lazy.n_states() <= strict.n_states());
        for doc in &sample_docs() {
            assert_eq!(lazy.is_valid(doc), strict.is_valid(doc));
        }
    }

    #[test]
    fn priorities_resolve_overlaps() {
        // //b → c  overridden by  //a b → d  for b directly under a.
        let mut builder = BxsdBuilder::new();
        builder.start("a");
        let c = builder.ename.intern("c");
        let d = builder.ename.intern("d");
        let bb = builder.ename.intern("b");
        builder.suffix_rule(&["a"], ContentModel::new(Regex::star(Regex::sym(bb))));
        builder.suffix_rule(&["b"], ContentModel::new(Regex::sym(c)));
        builder.suffix_rule(&["a", "b"], ContentModel::new(Regex::sym(d)));
        // leaves unconstrained:
        builder.suffix_rule(&["c"], ContentModel::empty());
        builder.suffix_rule(&["d"], ContentModel::empty());
        let b = builder.build().unwrap();
        let schema = bxsd_to_dfa_xsd(&b);
        let direct = elem("a").child(elem("b").child(elem("d"))).build();
        let direct_bad = elem("a").child(elem("b").child(elem("c"))).build();
        for doc in [&direct, &direct_bad] {
            assert_eq!(bxsd_valid(&b, doc), schema.is_valid(doc));
        }
        assert!(schema.is_valid(&direct));
        assert!(!schema.is_valid(&direct_bad));
    }

    #[test]
    fn unmatched_paths_get_filler() {
        let mut builder = BxsdBuilder::new();
        builder.start("a");
        let bb = builder.ename.intern("b");
        builder.rule(
            Regex::word(&[builder.ename.lookup("a").unwrap()]),
            ContentModel::new(Regex::star(Regex::sym(bb))),
        );
        let b = builder.build().unwrap();
        let schema = bxsd_to_dfa_xsd(&b);
        // b nodes are unconstrained: arbitrary subtrees below them
        let doc = elem("a")
            .child(elem("b").child(elem("a")).child(elem("b")).text("t"))
            .build();
        assert!(bxsd_valid(&b, &doc));
        assert!(schema.is_valid(&doc), "{:?}", schema.validate(&doc));
    }

    #[test]
    fn empty_rule_set() {
        let mut builder = BxsdBuilder::new();
        builder.start("a");
        let b = builder.build().unwrap();
        let schema = bxsd_to_dfa_xsd(&b);
        let doc = elem("a").child(elem("a").text("anything")).build();
        assert!(schema.is_valid(&doc));
        let bad_root_doc = {
            let mut d = Document::new("zzz");
            d.add_text(d.root(), "x");
            d
        };
        assert!(!schema.is_valid(&bad_root_doc));
    }
}
