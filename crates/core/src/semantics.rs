//! Alternative semantics for pattern-based schemas (Section 3.2).
//!
//! Before BonXai settled on the priority semantics, the theory of
//! pattern-based schemas studied two alternatives [13, 16]:
//!
//! * **universal**: for each node and *each* rule whose ancestor pattern
//!   matches it, the children must match that rule's content model;
//! * **existential**: for each node there must be *at least one* rule
//!   whose ancestor pattern matches it and whose content model accepts
//!   the children.
//!
//! Neither is compatible with UPA — translating them to XSDs requires
//! intersections (universal) or unions (existential) of deterministic
//! expressions, under which DREs are not closed — which is exactly why
//! BonXai uses priorities. These validators exist so the difference can
//! be demonstrated empirically (experiment E8).

use relang::{CompiledDre, Dfa, Sym};
use xmltree::{Document, NodeId};

use crate::bxsd::Bxsd;

/// Which pattern-based semantics to validate under.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Semantics {
    /// BonXai's priority semantics (Definition 1).
    Priority,
    /// Every matching rule must be satisfied.
    Universal,
    /// Some matching rule must be satisfied (and one must match).
    Existential,
}

/// Validates `doc` against the rule set of `bxsd` under the chosen
/// semantics, returning whether it conforms.
///
/// (The priority case delegates to the main validator; the alternative
/// semantics only answer yes/no since they exist for comparison.)
pub fn conforms(bxsd: &Bxsd, doc: &Document, semantics: Semantics) -> bool {
    match semantics {
        Semantics::Priority => crate::validate::is_valid(bxsd, doc),
        Semantics::Universal | Semantics::Existential => {
            let root = doc.root();
            let root_sym = doc.name(root).and_then(|n| bxsd.ename.lookup(n));
            let Some(root_sym) = root_sym else {
                return false;
            };
            if !bxsd.start.contains(&root_sym) {
                return false;
            }
            let v = AltValidator::new(bxsd);
            let init: Vec<Option<usize>> = v
                .ancestor_dfas
                .iter()
                .map(|d| d.transition(d.initial(), root_sym))
                .collect();
            v.walk(doc, root, init, semantics)
        }
    }
}

struct AltValidator<'a> {
    bxsd: &'a Bxsd,
    ancestor_dfas: Vec<Dfa>,
    content_matchers: Vec<CompiledDre>,
}

impl<'a> AltValidator<'a> {
    fn new(bxsd: &'a Bxsd) -> Self {
        let n = bxsd.ename.len();
        AltValidator {
            bxsd,
            ancestor_dfas: bxsd
                .rules
                .iter()
                .map(|r| relang::ops::regex_to_dfa(&r.ancestor, n))
                .collect(),
            content_matchers: bxsd
                .rules
                .iter()
                .map(|r| CompiledDre::compile(&r.content.regex, n))
                .collect(),
        }
    }

    fn walk(
        &self,
        doc: &Document,
        node: NodeId,
        states: Vec<Option<usize>>,
        semantics: Semantics,
    ) -> bool {
        // Per-child symbols; a name outside EName yields None (no content
        // model over EName can accept such a child string).
        let child_syms: Vec<Option<Sym>> = doc
            .element_children(node)
            .map(|c| self.bxsd.ename.lookup(doc.name(c).expect("element")))
            .collect();
        let word: Option<Vec<Sym>> = child_syms.iter().copied().collect();
        let matching: Vec<usize> = states
            .iter()
            .enumerate()
            .filter(|(i, s)| s.is_some_and(|q| self.ancestor_dfas[*i].is_final(q)))
            .map(|(i, _)| i)
            .collect();

        let ok_here = match semantics {
            Semantics::Universal => matching.iter().all(|&i| {
                word.as_deref()
                    .is_some_and(|w| self.content_matchers[i].matches(w))
            }),
            Semantics::Existential => matching.iter().any(|&i| {
                word.as_deref()
                    .is_some_and(|w| self.content_matchers[i].matches(w))
            }),
            Semantics::Priority => unreachable!("handled by the main validator"),
        };
        if !ok_here {
            return false;
        }

        for (i, child) in doc.element_children(node).enumerate() {
            let next: Vec<Option<usize>> = match child_syms[i] {
                Some(sym) => states
                    .iter()
                    .zip(&self.ancestor_dfas)
                    .map(|(s, d)| s.and_then(|q| d.transition(q, sym)))
                    .collect(),
                None => vec![None; states.len()],
            };
            if !self.walk(doc, child, next, semantics) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bxsd::BxsdBuilder;
    use relang::Regex;
    use xmltree::builder::elem;
    use xsd::ContentModel;

    /// Two overlapping rules with *different* content models for the same
    /// nodes: //a section-like setup where semantics visibly diverge.
    /// Rule 0: //b → (c)   Rule 1: //a//b → (d)
    fn overlapping() -> Bxsd {
        let mut b = BxsdBuilder::new();
        b.start("a");
        let c = b.ename.intern("c");
        let d = b.ename.intern("d");
        let bb = b.ename.intern("b");
        b.suffix_rule(&["a"], ContentModel::new(Regex::star(Regex::sym(bb))));
        // leaf rules (lowest priority, disjoint from the others) so that
        // the existential semantics has a matching rule at every node
        b.suffix_rule(&["c"], ContentModel::empty());
        b.suffix_rule(&["d"], ContentModel::empty());
        b.suffix_rule(&["b"], ContentModel::new(Regex::sym(c)));
        b.suffix_rule(&["a", "b"], ContentModel::new(Regex::sym(d)));
        b.build().unwrap()
    }

    #[test]
    fn semantics_diverge_on_overlap() {
        let x = overlapping();
        // b directly under a: both //b and //a b match.
        let with_c = elem("a").child(elem("b").child(elem("c"))).build();
        let with_d = elem("a").child(elem("b").child(elem("d"))).build();

        // Priority: the later rule (//a b → d) is relevant.
        assert!(!conforms(&x, &with_c, Semantics::Priority));
        assert!(conforms(&x, &with_d, Semantics::Priority));

        // Existential: either suffices.
        assert!(conforms(&x, &with_c, Semantics::Existential));
        assert!(conforms(&x, &with_d, Semantics::Existential));

        // Universal: both must hold — impossible, since c ≠ d.
        assert!(!conforms(&x, &with_c, Semantics::Universal));
        assert!(!conforms(&x, &with_d, Semantics::Universal));
    }

    #[test]
    fn existential_requires_some_match() {
        let mut b = BxsdBuilder::new();
        b.start("a");
        let bb = b.ename.intern("b");
        b.suffix_rule(&["a"], ContentModel::new(Regex::opt(Regex::sym(bb))));
        let x = b.build().unwrap();
        // node b has no matching rule at all
        let doc = elem("a").child(elem("b")).build();
        assert!(!conforms(&x, &doc, Semantics::Existential));
        // universal and priority treat unmatched nodes as unconstrained
        assert!(conforms(&x, &doc, Semantics::Universal));
        assert!(conforms(&x, &doc, Semantics::Priority));
    }

    #[test]
    fn all_semantics_agree_on_disjoint_rules() {
        // Disjoint LHS (different last labels) → priorities irrelevant,
        // and a unique rule matches each node.
        let mut b = BxsdBuilder::new();
        b.start("r");
        let x_ = b.ename.intern("x");
        let y = b.ename.intern("y");
        b.suffix_rule(
            &["r"],
            ContentModel::new(Regex::concat(vec![Regex::sym(x_), Regex::sym(y)])),
        );
        b.suffix_rule(&["x"], ContentModel::empty());
        b.suffix_rule(&["y"], ContentModel::empty());
        let x = b.build().unwrap();
        let good = elem("r").child(elem("x")).child(elem("y")).build();
        let bad = elem("r").child(elem("y")).child(elem("x")).build();
        for sem in [
            Semantics::Priority,
            Semantics::Universal,
            Semantics::Existential,
        ] {
            assert!(conforms(&x, &good, sem), "{sem:?}");
            assert!(!conforms(&x, &bad, sem), "{sem:?}");
        }
    }

    #[test]
    fn wrong_root_rejected_everywhere() {
        let x = overlapping();
        let doc = elem("zzz").build();
        for sem in [
            Semantics::Priority,
            Semantics::Universal,
            Semantics::Existential,
        ] {
            assert!(!conforms(&x, &doc, sem));
        }
    }
}
