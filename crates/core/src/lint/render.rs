//! Renderers for [`LintReport`]: human-readable text and stable JSON.
//!
//! Both renderers are **byte-deterministic**: for a given schema the
//! output depends only on the report contents (which the checks produce
//! in canonical order), never on hash iteration order, timing, or
//! environment. The JSON renderer hand-writes its output precisely so
//! golden files can be diffed byte-for-byte in CI.

use crate::lint::{Diagnostic, LintReport, Severity};

/// Renders a report in the `rustc`-style text format:
///
/// ```text
/// warning[BX001] schema.bonxai:12:3 `a//b`: rule is dead: …
///   witness: a/b is claimed by rule 4 `b`
/// schema.bonxai: 1 warning
/// ```
///
/// Diagnostics without a known source span drop the `:line:col` part.
/// The final line is always a summary (`clean` when nothing was found).
pub fn render_text(report: &LintReport, file: &str) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let sev = d.severity().as_str();
        let code = d.code.as_str();
        if d.span.is_known() {
            out.push_str(&format!(
                "{sev}[{code}] {file}:{}:{} `{}`: {}\n",
                d.span.line, d.span.col, d.subject, d.message
            ));
        } else {
            out.push_str(&format!(
                "{sev}[{code}] {file} `{}`: {}\n",
                d.subject, d.message
            ));
        }
        if let Some(w) = &d.witness {
            out.push_str(&format!("  witness: {w}\n"));
        }
    }
    out.push_str(&format!("{file}: {}\n", summary(report)));
    out
}

/// Renders a report as pretty-printed JSON with a fixed key order:
///
/// ```json
/// {
///   "file": "schema.bonxai",
///   "summary": { "errors": 0, "warnings": 1, "notes": 0 },
///   "diagnostics": [
///     {
///       "code": "BX001",
///       "name": "dead-rule",
///       "severity": "warning",
///       "span": { "line": 12, "col": 3, "offset": 245, "len": 4 },
///       "subject": "a//b",
///       "message": "rule is dead: …",
///       "witness": "a/b is claimed by rule 4 `b`"
///     }
///   ]
/// }
/// ```
///
/// `span` is `null` when the diagnostic has no source position (loaded
/// XSDs, schema-level advisories), as is `witness` when the check
/// produces none. The output ends with a newline.
pub fn render_json(report: &LintReport, file: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"file\": {},\n", json_string(file)));
    out.push_str(&format!(
        "  \"summary\": {{ \"errors\": {}, \"warnings\": {}, \"notes\": {} }},\n",
        report.count(Severity::Error),
        report.count(Severity::Warning),
        report.count(Severity::Note)
    ));
    if report.diagnostics.is_empty() {
        out.push_str("  \"diagnostics\": []\n");
    } else {
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in report.diagnostics.iter().enumerate() {
            out.push_str(&diagnostic_json(d, "    "));
            out.push_str(if i + 1 < report.diagnostics.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n");
    }
    out.push_str("}\n");
    out
}

/// One diagnostic as a JSON object, `indent`-prefixed, no trailing newline.
fn diagnostic_json(d: &Diagnostic, indent: &str) -> String {
    let span = if d.span.is_known() {
        format!(
            "{{ \"line\": {}, \"col\": {}, \"offset\": {}, \"len\": {} }}",
            d.span.line, d.span.col, d.span.offset, d.span.len
        )
    } else {
        "null".to_string()
    };
    let witness = match &d.witness {
        Some(w) => json_string(w),
        None => "null".to_string(),
    };
    format!(
        "{indent}{{\n\
         {indent}  \"code\": {},\n\
         {indent}  \"name\": {},\n\
         {indent}  \"severity\": {},\n\
         {indent}  \"span\": {span},\n\
         {indent}  \"subject\": {},\n\
         {indent}  \"message\": {},\n\
         {indent}  \"witness\": {witness}\n\
         {indent}}}",
        json_string(d.code.as_str()),
        json_string(d.code.name()),
        json_string(d.severity().as_str()),
        json_string(&d.subject),
        json_string(&d.message),
    )
}

/// The one-line count summary: `clean`, or `2 errors, 1 warning`.
fn summary(report: &LintReport) -> String {
    let counts = [
        (report.count(Severity::Error), "error"),
        (report.count(Severity::Warning), "warning"),
        (report.count(Severity::Note), "note"),
    ];
    let parts: Vec<String> = counts
        .iter()
        .filter(|(n, _)| *n > 0)
        .map(|(n, label)| format!("{n} {label}{}", if *n == 1 { "" } else { "s" }))
        .collect();
    if parts.is_empty() {
        "clean".to_string()
    } else {
        parts.join(", ")
    }
}

/// JSON string literal with the escapes RFC 8259 requires.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::ast::Span;
    use crate::lint::{Code, Diagnostic};

    fn sample_report() -> LintReport {
        LintReport {
            diagnostics: vec![
                Diagnostic {
                    code: Code::UpaViolation,
                    span: Span {
                        line: 3,
                        col: 5,
                        offset: 40,
                        len: 7,
                    },
                    subject: "a//b".to_string(),
                    message: "content model violates UPA".to_string(),
                    witness: Some("x y".to_string()),
                },
                Diagnostic {
                    code: Code::FragmentAdvisory,
                    span: Span::default(),
                    subject: "fragment".to_string(),
                    message: "schema lies in the k-suffix fragment (k = 1)".to_string(),
                    witness: None,
                },
            ],
        }
    }

    #[test]
    fn text_includes_span_code_and_witness() {
        let text = render_text(&sample_report(), "s.bonxai");
        assert!(text.contains("error[BX003] s.bonxai:3:5 `a//b`:"));
        assert!(text.contains("  witness: x y\n"));
        assert!(text.contains("note[BX007] s.bonxai `fragment`:"));
        assert!(text.ends_with("s.bonxai: 1 error, 1 note\n"));
    }

    #[test]
    fn json_is_stable_and_escapes() {
        let a = render_json(&sample_report(), "dir/s \"q\".bonxai");
        let b = render_json(&sample_report(), "dir/s \"q\".bonxai");
        assert_eq!(a, b);
        assert!(a.contains("\"file\": \"dir/s \\\"q\\\".bonxai\""));
        assert!(a.contains("\"span\": { \"line\": 3, \"col\": 5, \"offset\": 40, \"len\": 7 }"));
        assert!(a.contains("\"span\": null"));
        assert!(a.contains("\"summary\": { \"errors\": 1, \"warnings\": 0, \"notes\": 1 }"));
    }

    #[test]
    fn empty_report_renders_clean() {
        let r = LintReport::default();
        assert_eq!(render_text(&r, "f"), "f: clean\n");
        assert!(render_json(&r, "f").contains("\"diagnostics\": []"));
    }
}
