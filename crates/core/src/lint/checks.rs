//! The individual lint checks, driven by [`lint_ast`] (BonXai) and
//! [`lint_xsd`] (loaded XSDs).
//!
//! Every check is a decision procedure on regular languages, so each
//! diagnostic is *proved*, not guessed: dead rules come with the shortest
//! shadowed path, UPA violations with the shortest ambiguous child
//! sequence, and the reachability analysis explores only ancestor paths
//! that some document can actually realize under the priority semantics.

use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

use relang::cache::AutomataCache;
use relang::ops::language::{difference_witness_dfa, regex_to_dfa};
use relang::ops::product::product2;
use relang::ops::subset::SubsetInterner;
use relang::ops::{minimize, RelevanceProduct};
use relang::regex::determinism::{check_deterministic_witness, NonDeterminism, UpaWitness};
use relang::regex::props::is_empty_language;
use relang::{Alphabet, Dfa, Regex, Sym};
use xsd::{ContentModel, Xsd};

use crate::bxsd::Bxsd;
use crate::lang::ast::{SchemaAst, Span};
use crate::lang::lower::lower_lenient;
use crate::lint::{Code, Diagnostic, LintOptions, LintReport};
use crate::translate::classify_bxsd;

/// The checks' view of the automata layer: an optional shared
/// [`AutomataCache`]. With a cache every `raw_dfa`/`min_dfa` result is
/// memoized (within this lint run and across the caller's other
/// compile stages); without one each request computes fresh — the
/// honest ablation path for `exp_compile --no-cache`.
struct Ctx<'a> {
    cache: Option<&'a mut AutomataCache>,
}

impl Ctx<'_> {
    fn raw_dfa(&mut self, r: &Regex, n_syms: usize) -> Arc<Dfa> {
        match self.cache.as_deref_mut() {
            Some(c) => c.raw_dfa(r, n_syms),
            None => Arc::new(regex_to_dfa(r, n_syms)),
        }
    }

    fn min_dfa(&mut self, r: &Regex, n_syms: usize) -> Arc<Dfa> {
        match self.cache.as_deref_mut() {
            Some(c) => c.min_dfa(r, n_syms),
            None => Arc::new(minimize(&regex_to_dfa(r, n_syms))),
        }
    }

    fn relevance_product(
        &mut self,
        n_syms: usize,
        ancestors: &[Regex],
        budget: usize,
    ) -> Option<Arc<RelevanceProduct>> {
        match self.cache.as_deref_mut() {
            Some(c) => c.relevance_product(n_syms, ancestors, budget),
            None => {
                let dfas: Vec<Dfa> = ancestors.iter().map(|r| regex_to_dfa(r, n_syms)).collect();
                RelevanceProduct::build(n_syms, &dfas, budget).map(Arc::new)
            }
        }
    }
}

/// Lints a parsed BonXai schema: lowers it leniently and runs every
/// check, attaching the source span of each offending rule.
pub fn lint_ast(ast: &SchemaAst, opts: &LintOptions) -> LintReport {
    lint_ast_with(ast, opts, None)
}

/// [`lint_ast`] with an optional [`AutomataCache`] shared with other
/// compile stages (and other schemas). The report is byte-identical
/// with and without a cache: every memoized construction is
/// deterministic and keyed by its full input.
pub fn lint_ast_with(
    ast: &SchemaAst,
    opts: &LintOptions,
    cache: Option<&mut AutomataCache>,
) -> LintReport {
    let mut report = LintReport::default();
    let lowered = lower_lenient(ast);
    let bxsd = &lowered.bxsd;
    let n = bxsd.ename.len();

    // BX005: structural problems collected by the lenient lowering.
    for issue in &lowered.issues {
        let rule = &ast.rules[issue.rule];
        let message = if issue.attribute_rule {
            format!("attribute rule {}", issue.message)
        } else {
            issue.message.clone()
        };
        report.diagnostics.push(Diagnostic {
            code: Code::UndefinedReference,
            span: rule.span,
            subject: rule.pattern.source.clone(),
            message,
            witness: None,
        });
    }

    // Per-rule provenance: BXSD rule index → source span / LHS text.
    let src = |i: usize| &ast.rules[lowered.rule_source[i]];

    // BX003: UPA with a shortest ambiguous child sequence.
    for (i, rule) in bxsd.rules.iter().enumerate() {
        if let Err(w) = check_deterministic_witness(&rule.content.regex) {
            report.diagnostics.push(upa_diagnostic(
                &w,
                &bxsd.ename,
                src(i).span,
                src(i).pattern.source.clone(),
            ));
        }
    }

    // BX004: content models that admit nothing.
    for (i, rule) in bxsd.rules.iter().enumerate() {
        if let Some(reason) = vacuous_reason(&rule.content) {
            report.diagnostics.push(Diagnostic {
                code: Code::VacuousContent,
                span: src(i).span,
                subject: src(i).pattern.source.clone(),
                message: format!("rule can never be satisfied: {reason}"),
                witness: None,
            });
        }
    }

    if opts.structural_only {
        return report.finish(opts);
    }

    let mut ctx = Ctx { cache };

    // BX002: reachability under the priority semantics (budgeted), then
    // BX001 (dead rules) for the rules that *are* reachable — a rule
    // gets one of the two diagnoses, with unreachability the stronger.
    let reach = reachable_rules(bxsd, opts.reach_budget, &mut ctx);
    let mut unreachable = vec![false; bxsd.rules.len()];
    match reach {
        Some(reached) => {
            for (i, rule) in bxsd.rules.iter().enumerate() {
                if reached[i] {
                    continue;
                }
                unreachable[i] = true;
                let message = if is_empty_language(&rule.ancestor) {
                    "rule is unreachable: its pattern matches no ancestor path at all".to_string()
                } else {
                    "rule is unreachable: no document can realize an ancestor path \
                     matching its pattern"
                        .to_string()
                };
                report.diagnostics.push(Diagnostic {
                    code: Code::UnreachableRule,
                    span: src(i).span,
                    subject: src(i).pattern.source.clone(),
                    message,
                    witness: None,
                });
            }
        }
        None => {
            // Budget blown: still report the trivial cases (empty
            // pattern language needs no reachability analysis).
            for (i, rule) in bxsd.rules.iter().enumerate() {
                if is_empty_language(&rule.ancestor) {
                    unreachable[i] = true;
                    report.diagnostics.push(Diagnostic {
                        code: Code::UnreachableRule,
                        span: src(i).span,
                        subject: src(i).pattern.source.clone(),
                        message: "rule is unreachable: its pattern matches no ancestor \
                                  path at all"
                            .to_string(),
                        witness: None,
                    });
                }
            }
            report.diagnostics.push(Diagnostic {
                code: Code::BudgetExceeded,
                span: Span::default(),
                subject: "reachability".to_string(),
                message: format!(
                    "reachability analysis exceeded its budget of {} states; \
                     the unreachable-rule check was skipped",
                    opts.reach_budget
                ),
                witness: None,
            });
        }
    }

    // BX001: dead rules (language-level shadowing by later rules). A
    // rule is dead iff L(ancestor_i) ⊆ L(ancestor_{i+1}) ∪ … — instead
    // of determinizing the (growing) alternation of later patterns per
    // rule, fold one minimal suffix-union DFA right to left: U_i is the
    // minimal DFA of the union of all patterns after rule i, built by
    // one binary product + minimization per rule.
    let n_rules = bxsd.rules.len();
    let suffix_unions: Vec<Dfa> = {
        // The minimal complete DFA of ∅: one non-accepting sink.
        let mut empty = Dfa::new(n, 1, 0);
        for a in 0..n {
            empty.set_transition(0, Sym(a as u32), Some(0));
        }
        let mut unions = vec![empty; n_rules];
        for i in (0..n_rules.saturating_sub(1)).rev() {
            let next_min = ctx.min_dfa(&bxsd.rules[i + 1].ancestor, n);
            unions[i] = minimize(&product2(&next_min, &unions[i + 1], |x, y| x || y));
        }
        unions
    };
    for (i, rule) in bxsd.rules.iter().enumerate() {
        if unreachable[i] || is_empty_language(&rule.ancestor) {
            continue;
        }
        let anc = ctx.min_dfa(&rule.ancestor, n);
        if difference_witness_dfa(&anc, &suffix_unions[i]).is_some() {
            continue;
        }
        let word = ctx
            .raw_dfa(&rule.ancestor, n)
            .shortest_accepted_word()
            .unwrap_or_default();
        let winner = bxsd.relevant_rule(&word);
        let witness = winner.map(|j| {
            format!(
                "{} is claimed by rule {} `{}`",
                render_path(&word, &bxsd.ename),
                j + 1,
                src(j).pattern.source
            )
        });
        report.diagnostics.push(Diagnostic {
            code: Code::DeadRule,
            span: src(i).span,
            subject: src(i).pattern.source.clone(),
            message: "rule is dead: every ancestor path it matches is also matched \
                      by a later rule, which takes priority"
                .to_string(),
            witness,
        });
    }

    // BX010: rules that are relevant at some realizable context but
    // admit no finite conforming subtree there — the whole-schema
    // satisfiability engine, reporting the shortest witness context.
    match crate::analysis::unsatisfiable_rule_contexts(
        bxsd,
        opts.reach_budget,
        ctx.cache.as_deref_mut(),
    ) {
        Ok(unsat) => {
            for u in unsat {
                if unreachable[u.rule] || vacuous_reason(&bxsd.rules[u.rule].content).is_some() {
                    continue; // already diagnosed as BX002 / BX004
                }
                report.diagnostics.push(Diagnostic {
                    code: Code::UnsatisfiableRule,
                    span: src(u.rule).span,
                    subject: src(u.rule).pattern.source.clone(),
                    message: "rule is unsatisfiable in context: no finite conforming \
                              subtree exists where it applies"
                        .to_string(),
                    witness: Some(format!("at /{}", u.path.join("/"))),
                });
            }
        }
        Err(err) => {
            report.diagnostics.push(Diagnostic {
                code: Code::BudgetExceeded,
                span: Span::default(),
                subject: "satisfiability".to_string(),
                message: format!("{err}; the unsatisfiable-rule check was skipped"),
                witness: None,
            });
        }
    }

    // BX006: element names that occur in content models (or as roots)
    // but are never the last step of any rule pattern — nodes with such
    // names are always unconstrained (no relevant rule).
    let mut used: BTreeSet<Sym> = bxsd.start.iter().copied().collect();
    let mut anything_open = false;
    for rule in &bxsd.rules {
        if rule.content.open {
            anything_open = true;
        }
        used.extend(rule.content.regex.symbols());
    }
    if anything_open {
        used.extend(bxsd.ename.symbols());
    }
    // A name is constrained iff some word of some L(ancestor) ends with
    // it. In a minimal DFA every state is reachable, so "some accepted
    // word ends with a" ⟺ "some state has an a-transition into a final
    // state" — one scan of each rule's minimal ancestor DFA replaces a
    // DFA product per (name, rule) pair.
    let mut ends_with_sym = vec![false; n];
    for rule in &bxsd.rules {
        let d = ctx.min_dfa(&rule.ancestor, n);
        for q in 0..d.n_states() {
            for (a, seen) in ends_with_sym.iter_mut().enumerate() {
                if !*seen
                    && d.transition(q, Sym(a as u32))
                        .is_some_and(|t| d.is_final(t))
                {
                    *seen = true;
                }
            }
        }
    }
    for &sym in &used {
        if !ends_with_sym[sym.index()] {
            report.diagnostics.push(Diagnostic {
                code: Code::UnconstrainedElement,
                span: Span::default(),
                subject: bxsd.ename.name(sym).to_string(),
                message: format!(
                    "no rule ever applies to element \"{}\": its nodes are \
                     unconstrained (any children, attributes, and text allowed)",
                    bxsd.ename.name(sym)
                ),
                witness: None,
            });
        }
    }

    // BX007: k-suffix fragment advisory (Theorems 9/12/13).
    let fragment = match classify_bxsd(bxsd) {
        Some((_, k)) => Diagnostic {
            code: Code::FragmentAdvisory,
            span: Span::default(),
            subject: "fragment".to_string(),
            message: format!(
                "schema lies in the k-suffix fragment (k = {k}): the linear-size \
                 DTD-style translation to XSD applies (Theorem 13)"
            ),
            witness: None,
        },
        None => Diagnostic {
            code: Code::FragmentAdvisory,
            span: Span::default(),
            subject: "fragment".to_string(),
            message: "schema is outside the k-suffix fragment: translation to XSD \
                      goes through an automaton construction and may grow \
                      exponentially (Theorem 9)"
                .to_string(),
            witness: None,
        },
    };
    report.diagnostics.push(fragment);

    // BX008: relevance-product blow-up probe (same budget as the
    // validator's default — with a shared cache, a later
    // `CompiledBxsd` build of this schema reuses the probe's product).
    let ancestors: Vec<Regex> = bxsd.rules.iter().map(|r| r.ancestor.clone()).collect();
    if ctx
        .relevance_product(n, &ancestors, opts.product_budget)
        .is_none()
    {
        report.diagnostics.push(Diagnostic {
            code: Code::ProductBlowup,
            span: Span::default(),
            subject: "relevance-product".to_string(),
            message: format!(
                "relevance product over the rule patterns exceeds {} states: \
                 validation falls back to per-node rule matching and the XSD \
                 translation may be very large",
                opts.product_budget
            ),
            witness: None,
        });
    }

    report.finish(opts)
}

/// Lints a loaded XSD: mirrors the UPA (BX003), vacuous-content (BX004),
/// and referential-integrity (BX005) checks on each complex type. The
/// schema is expected to come from
/// [`xsd::syntax::parse_xsd_unchecked`]; a fully checked [`Xsd`] lints
/// clean by construction.
pub fn lint_xsd(xsd: &Xsd, opts: &LintOptions) -> LintReport {
    let mut report = LintReport::default();
    let n = xsd.n_types();

    // BX005: duplicate type names survive only in unchecked schemas.
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for t in xsd.type_ids() {
        let name = xsd.type_name(t);
        if !seen.insert(name) {
            report.diagnostics.push(Diagnostic {
                code: Code::UndefinedReference,
                span: Span::default(),
                subject: name.to_string(),
                message: format!("duplicate type name {name:?}"),
                witness: None,
            });
        }
    }

    for t in xsd.type_ids() {
        let name = xsd.type_name(t).to_string();
        let content = xsd.content(t);

        // BX003: UPA per content model, with witness.
        if let Err(w) = check_deterministic_witness(&content.regex) {
            report.diagnostics.push(upa_diagnostic(
                &w,
                &xsd.ename,
                Span::default(),
                name.clone(),
            ));
        }

        // BX004: vacuous content models.
        if let Some(reason) = vacuous_reason(content) {
            report.diagnostics.push(Diagnostic {
                code: Code::VacuousContent,
                span: Span::default(),
                subject: name.clone(),
                message: format!("type can never be satisfied: {reason}"),
                witness: None,
            });
        }

        // BX005: every child element must have a typing (EDC gives
        // uniqueness by construction; existence can still fail).
        let syms: BTreeSet<Sym> = content.regex.symbols().into_iter().collect();
        for sym in syms {
            match xsd.child_type(t, sym) {
                None => report.diagnostics.push(Diagnostic {
                    code: Code::UndefinedReference,
                    span: Span::default(),
                    subject: name.clone(),
                    message: format!(
                        "type {name:?} gives no type to its child element \"{}\"",
                        &xsd.ename.name(sym)
                    ),
                    witness: None,
                }),
                Some(id) if id.index() >= n => report.diagnostics.push(Diagnostic {
                    code: Code::UndefinedReference,
                    span: Span::default(),
                    subject: name.clone(),
                    message: format!(
                        "type {name:?} types its child element \"{}\" with a \
                         dangling type id",
                        &xsd.ename.name(sym)
                    ),
                    witness: None,
                }),
                Some(_) => {}
            }
        }
    }

    for (sym, t) in xsd.start_elements() {
        if t.index() >= n {
            report.diagnostics.push(Diagnostic {
                code: Code::UndefinedReference,
                span: Span::default(),
                subject: xsd.ename.name(*sym).to_string(),
                message: format!(
                    "root element \"{}\" references a dangling type id",
                    &xsd.ename.name(*sym)
                ),
                witness: None,
            });
        }
    }

    // BX007: k-suffix fragment advisory, mirroring the BonXai arm. The
    // classifier needs a well-formed schema (its automaton construction
    // assumes UPA and resolved references), so skip it when any
    // error-level finding was already reported.
    let structurally_sound = !report
        .diagnostics
        .iter()
        .any(|d| d.severity() == crate::lint::Severity::Error);
    if !opts.structural_only && structurally_sound {
        let advisory = match xsd_fragment(xsd) {
            Some(k) => format!(
                "schema lies in the k-suffix fragment (k = {k}): the polynomial \
                 XSD → BonXai translation applies (Theorem 12)"
            ),
            None => format!(
                "schema is outside the k-suffix fragment (k ≤ {MAX_FRAGMENT_K}): \
                 the BonXai translation goes through the general algorithm and \
                 may produce large ancestor patterns (Theorem 8)"
            ),
        };
        report.diagnostics.push(Diagnostic {
            code: Code::FragmentAdvisory,
            span: Span::default(),
            subject: "fragment".to_string(),
            message: advisory,
            witness: None,
        });
    }

    report.finish(opts)
}

/// The largest k the fragment classifier tries before giving up.
pub const MAX_FRAGMENT_K: usize = 5;

/// State budget for the k-suffix decision procedure on XSDs.
const FRAGMENT_BUDGET: usize = 2_000_000;

/// The minimal k for which a loaded XSD lies in the k-suffix fragment
/// (checked up to [`MAX_FRAGMENT_K`]), or `None` when it does not.
/// Shared by the BX007 advisory and `bonxai analyze`.
pub fn xsd_fragment(xsd: &Xsd) -> Option<usize> {
    xsd::minimal_k(
        &crate::translate::xsd_to_dfa_xsd(xsd),
        MAX_FRAGMENT_K,
        FRAGMENT_BUDGET,
    )
}

/// Builds the BX003 diagnostic from a UPA witness, rendering positions
/// and words with real element names.
fn upa_diagnostic(w: &UpaWitness, names: &Alphabet, span: Span, subject: String) -> Diagnostic {
    let (message, witness) = match (&w.violation, w.sym) {
        (NonDeterminism::AmbiguousFirst { .. }, Some(sym)) => (
            format!(
                "content model violates UPA: at the start of the content, element \
                 \"{}\" matches two competing occurrences",
                names.name(sym)
            ),
            Some(render_children(&w.word(), names)),
        ),
        (NonDeterminism::AmbiguousFollow { .. }, Some(sym)) => (
            format!(
                "content model violates UPA: after reading \"{}\", element \"{}\" \
                 matches two competing occurrences",
                render_children(&w.prefix, names),
                names.name(sym)
            ),
            Some(render_children(&w.word(), names)),
        ),
        (NonDeterminism::DuplicateAllOperand { sym }, _) => (
            format!(
                "content model violates UPA: interleaving declares element \"{}\" twice",
                names.name(*sym)
            ),
            None,
        ),
        (violation, _) => (format!("content model violates UPA: {violation}"), None),
    };
    Diagnostic {
        code: Code::UpaViolation,
        span,
        subject,
        message,
        witness,
    }
}

/// Why a content model admits no node at all, if it doesn't.
fn vacuous_reason(content: &ContentModel) -> Option<String> {
    if content.open {
        return None;
    }
    if let Some(st) = content.simple_content {
        let f = &content.simple_facets;
        if !f.enumeration.is_empty()
            && !f
                .enumeration
                .iter()
                .any(|v| st.validates(v) && f.validates(st, v))
        {
            return Some(format!(
                "no enumeration value is a valid {st:?}, so no text content is accepted"
            ));
        }
        return None;
    }
    if is_empty_language(&content.regex) {
        return Some("the content model matches no child sequence, not even the empty one".into());
    }
    None
}

/// Which rules are matched by at least one *realizable* ancestor path:
/// a breadth-first search over tuples of per-rule ancestor-DFA states,
/// extending each path only by element names the relevant rule's content
/// model actually allows (all names when a node is unconstrained or its
/// content is open). Returns `None` when more than `budget` tuples were
/// generated.
fn reachable_rules(bxsd: &Bxsd, budget: usize, ctx: &mut Ctx) -> Option<Vec<bool>> {
    let n = bxsd.ename.len();
    let n_rules = bxsd.rules.len();
    let all_syms: Vec<Sym> = bxsd.ename.symbols().collect();

    // Completed + minimized ancestor DFAs keep the tuple space small and
    // make every transition total.
    let dfas: Vec<Arc<Dfa>> = bxsd
        .rules
        .iter()
        .map(|r| ctx.min_dfa(&r.ancestor, n))
        .collect();

    // Element names each rule's content allows as children.
    let child_syms: Vec<Vec<Sym>> = bxsd
        .rules
        .iter()
        .map(|r| {
            if r.content.open {
                all_syms.clone()
            } else if r.content.simple_content.is_some() {
                Vec::new()
            } else {
                let set: BTreeSet<Sym> = r.content.regex.symbols().into_iter().collect();
                set.into_iter().collect()
            }
        })
        .collect();

    // The tuple space lives in an interner (arena slices + Fx index);
    // the visited count is the interner's length.
    let mut interner = SubsetInterner::with_capacity(64);
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut reached = vec![false; n_rules];
    let mut cur: Vec<u32> = Vec::with_capacity(n_rules);
    let mut succ: Vec<u32> = Vec::with_capacity(n_rules);
    let root: Vec<u32> = dfas.iter().map(|d| d.initial() as u32).collect();
    let step = |from: &[u32], sym: Sym, into: &mut Vec<u32>, dfas: &[Arc<Dfa>]| {
        into.clear();
        for (&q, d) in from.iter().zip(dfas) {
            let t = d
                .transition(q as usize, sym)
                .expect("completed DFA is total");
            into.push(t as u32);
        }
    };
    for &s in &bxsd.start {
        step(&root, s, &mut succ, &dfas);
        let before = interner.len();
        let id = interner.intern(&succ);
        if id as usize == before {
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        if interner.len() > budget {
            return None;
        }
        cur.clear();
        cur.extend_from_slice(interner.get(id as usize));
        // Largest matching rule index = the relevant rule (Definition 1).
        let mut relevant = None;
        for i in (0..n_rules).rev() {
            if dfas[i].is_final(cur[i] as usize) {
                reached[i] = true;
                relevant.get_or_insert(i);
            }
        }
        let next_syms = match relevant {
            Some(i) => &child_syms[i],
            None => &all_syms, // unconstrained node: any children
        };
        for &s in next_syms {
            step(&cur, s, &mut succ, &dfas);
            let before = interner.len();
            let id = interner.intern(&succ);
            if id as usize == before {
                queue.push_back(id);
            }
        }
    }
    Some(reached)
}

/// Renders an ancestor path with element names, `/`-separated.
fn render_path(word: &[Sym], names: &Alphabet) -> String {
    if word.is_empty() {
        return "ε".to_string();
    }
    word.iter()
        .map(|&s| names.name(s))
        .collect::<Vec<_>>()
        .join("/")
}

/// Renders a child sequence with element names, space-separated.
fn render_children(word: &[Sym], names: &Alphabet) -> String {
    if word.is_empty() {
        return "ε".to_string();
    }
    word.iter()
        .map(|&s| names.name(s))
        .collect::<Vec<_>>()
        .join(" ")
}
