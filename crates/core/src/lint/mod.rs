//! Semantic lint: static analysis of BonXai and XSD schemas.
//!
//! A schema can be perfectly well-formed and still be *wrong*: a rule can
//! be shadowed by a later one (the priority semantics of Definition 1
//! make rule order load-bearing), a pattern can be unreachable from any
//! realizable document, a content model can admit no value at all, or a
//! schema can sit just outside the k-suffix fragment and blow up under
//! XSD translation (Theorem 9). None of these are parse errors — they
//! are language-level properties, and the [`relang`] decision procedures
//! (emptiness, inclusion with witnesses, one-unambiguity) decide them
//! exactly.
//!
//! This module packages those procedures as a diagnostic pass:
//!
//! | code  | name                  | severity | meaning |
//! |-------|-----------------------|----------|---------|
//! | BX001 | dead-rule             | warning  | every matching ancestor path is claimed by a later rule |
//! | BX002 | unreachable-rule      | warning  | no realizable ancestor path matches the rule |
//! | BX003 | upa-violation         | error    | content model is not one-unambiguous (with witness word) |
//! | BX004 | vacuous-content       | warning  | content model admits no child sequence / no text value |
//! | BX005 | undefined-reference   | error    | unknown group, cyclic group, malformed attribute rule, missing child type |
//! | BX006 | unconstrained-element | warning  | an element name is used but no rule ever applies to it |
//! | BX007 | fragment-advisory     | note     | k-suffix fragment membership and translation cost outlook |
//! | BX008 | product-blowup        | warning  | relevance product exceeds its state budget |
//! | BX009 | analysis-budget       | note     | a lint analysis hit its budget and was skipped |
//! | BX010 | unsatisfiable-rule    | warning  | rule applies at a realizable context but no finite conforming subtree exists there |
//!
//! Diagnostics carry the source [`Span`] of the offending rule when the
//! schema came from BonXai surface text, and witness words (ancestor
//! paths, ambiguous child sequences) rendered with real element names.
//! Entry points: [`lint_source`] / [`lint_ast`] for BonXai,
//! [`lint_xsd`] for loaded XSDs; [`render::render_text`] and
//! [`render::render_json`] produce the CLI output formats.

pub mod checks;
pub mod render;

pub use checks::{lint_ast, lint_ast_with, lint_xsd, xsd_fragment, MAX_FRAGMENT_K};
pub use render::{render_json, render_text};

use crate::lang::ast::Span;
use crate::lang::lexer::LangError;
use crate::lang::parser::parse_schema;

/// How bad a diagnostic is. Ordered: `Note < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational (hidden unless requested).
    Note,
    /// Suspicious but not fatal.
    Warning,
    /// The schema is broken.
    Error,
}

impl Severity {
    /// Lower-case label used by both renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::str::FromStr for Severity {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "note" => Ok(Severity::Note),
            "warning" | "warn" => Ok(Severity::Warning),
            "error" => Ok(Severity::Error),
            other => Err(format!("unknown severity {other:?} (note|warning|error)")),
        }
    }
}

/// Stable diagnostic codes. The numbering is part of the tool's public
/// interface: scripts match on `BX001`…`BX010`, never on message text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// BX001: rule shadowed by later rules.
    DeadRule,
    /// BX002: rule matches no realizable ancestor path.
    UnreachableRule,
    /// BX003: content model violates UPA (one-unambiguity).
    UpaViolation,
    /// BX004: content model admits nothing.
    VacuousContent,
    /// BX005: unknown / cyclic / malformed reference.
    UndefinedReference,
    /// BX006: element name used but never constrained by any rule.
    UnconstrainedElement,
    /// BX007: k-suffix fragment membership advisory.
    FragmentAdvisory,
    /// BX008: relevance product exceeds its budget.
    ProductBlowup,
    /// BX009: an analysis hit its budget and was skipped.
    BudgetExceeded,
    /// BX010: rule is relevant at a realizable context but admits no
    /// finite conforming subtree there.
    UnsatisfiableRule,
}

impl Code {
    /// The stable `BXnnn` code.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::DeadRule => "BX001",
            Code::UnreachableRule => "BX002",
            Code::UpaViolation => "BX003",
            Code::VacuousContent => "BX004",
            Code::UndefinedReference => "BX005",
            Code::UnconstrainedElement => "BX006",
            Code::FragmentAdvisory => "BX007",
            Code::ProductBlowup => "BX008",
            Code::BudgetExceeded => "BX009",
            Code::UnsatisfiableRule => "BX010",
        }
    }

    /// The human-readable check name.
    pub fn name(self) -> &'static str {
        match self {
            Code::DeadRule => "dead-rule",
            Code::UnreachableRule => "unreachable-rule",
            Code::UpaViolation => "upa-violation",
            Code::VacuousContent => "vacuous-content",
            Code::UndefinedReference => "undefined-reference",
            Code::UnconstrainedElement => "unconstrained-element",
            Code::FragmentAdvisory => "fragment-advisory",
            Code::ProductBlowup => "product-blowup",
            Code::BudgetExceeded => "analysis-budget",
            Code::UnsatisfiableRule => "unsatisfiable-rule",
        }
    }

    /// The fixed severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::UpaViolation | Code::UndefinedReference => Severity::Error,
            Code::DeadRule
            | Code::UnreachableRule
            | Code::VacuousContent
            | Code::UnconstrainedElement
            | Code::ProductBlowup
            | Code::UnsatisfiableRule => Severity::Warning,
            Code::FragmentAdvisory | Code::BudgetExceeded => Severity::Note,
        }
    }
}

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Source span of the offending construct ([`Span::default`] when
    /// the schema has no surface source, e.g. loaded XSDs).
    pub span: Span,
    /// What the diagnostic is about: the rule's LHS source text, an XSD
    /// type name, or an element name.
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
    /// Witness word (ancestor path or child sequence), when the check
    /// produces one.
    pub witness: Option<String>,
}

impl Diagnostic {
    /// The severity implied by the code.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

/// Tuning knobs for the lint pass.
#[derive(Clone, Debug)]
pub struct LintOptions {
    /// Include `note`-level diagnostics (advisories) in the report.
    pub include_notes: bool,
    /// Run only the cheap per-rule checks (BX003 UPA, BX004 vacuous
    /// content, BX005 undefined references) and skip every whole-schema
    /// language analysis (no automata products). This is what
    /// `bonxai check` uses.
    pub structural_only: bool,
    /// State budget for the reachability analysis (tuples of per-rule
    /// ancestor-DFA states). Exceeding it yields a BX009 note and skips
    /// the unreachable-rule check.
    pub reach_budget: usize,
    /// State budget for the relevance-product probe (BX008); mirrors
    /// [`crate::validate::DEFAULT_PRODUCT_BUDGET`].
    pub product_budget: usize,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            include_notes: false,
            structural_only: false,
            reach_budget: 1 << 16,
            product_budget: crate::validate::DEFAULT_PRODUCT_BUDGET,
        }
    }
}

/// The outcome of linting one schema.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All findings, in source order (then by code).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// The worst severity present, if any finding survived filtering.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(Diagnostic::severity).max()
    }

    /// Number of findings at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == sev)
            .count()
    }

    /// Sorts findings into the canonical order (source position, then
    /// code, then subject) and applies the note filter. Called by the
    /// check drivers before returning.
    fn finish(mut self, opts: &LintOptions) -> LintReport {
        if !opts.include_notes {
            self.diagnostics.retain(|d| d.severity() > Severity::Note);
        }
        self.diagnostics
            .sort_by_key(|d| (d.span.offset, d.span.line, d.code, d.subject.clone()));
        self
    }
}

/// Lints BonXai source text. Parse errors are hard errors (there is no
/// schema to analyze); everything past the parser becomes diagnostics.
pub fn lint_source(source: &str, opts: &LintOptions) -> Result<LintReport, LangError> {
    let ast = parse_schema(source)?;
    Ok(lint_ast(&ast, opts))
}

/// [`lint_source`] with a caller-owned [`AutomataCache`], so the
/// semantic checks share per-rule DFAs (and a corpus driver can reuse
/// the cache across schemas that repeat ancestor patterns).
pub fn lint_source_with(
    source: &str,
    opts: &LintOptions,
    cache: Option<&mut relang::AutomataCache>,
) -> Result<LintReport, LangError> {
    let ast = parse_schema(source)?;
    Ok(lint_ast_with(&ast, opts, cache))
}
