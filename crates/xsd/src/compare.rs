//! Deciding equivalence of schemas (as conformance sets).
//!
//! The BonXai tool of the paper's companion demo (reference \[19\]) lets
//! users "inspect, analyze and provide a deeper understanding" of
//! schemas; the core analysis is: do two schemas accept the same
//! documents, and if not, where do they diverge?
//!
//! Two DFA-based XSDs are compared by exploring pairs of states reachable
//! via *realizable* ancestor paths common to both. At each pair the
//! content languages must be equal (decided via canonical minimal-DFA
//! keys / product witnesses) and the carried metadata (attributes,
//! mixedness, simple content) must agree. If the languages at every
//! reachable pair agree, the schemas accept the same documents —
//! provided every reachable state is *productive* (admits a finite
//! conforming subtree), which holds for every schema this library's
//! translations produce from satisfiable inputs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use relang::ops::language::check_equivalent_dfa;
use relang::ops::regex_to_dfa;
use relang::{Dfa, Sym};

use crate::content::ContentModel;
use crate::dfa_xsd::DfaXsd;

/// Why two schemas differ.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DivergenceReason {
    /// The allowed root element names differ.
    Roots {
        /// Roots only in the first schema.
        only_left: Vec<String>,
        /// Roots only in the second schema.
        only_right: Vec<String>,
    },
    /// The content languages differ; the witness child string is accepted
    /// by exactly one side.
    ContentLanguage {
        /// A child string in the symmetric difference.
        witness: Vec<String>,
    },
    /// The attribute declarations differ.
    Attributes,
    /// One side allows text here (mixed / simple content) and the other
    /// does not, or simple content types differ.
    Text,
}

/// A divergence between two schemas: where, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// An ancestor path (element names from the root) leading to the
    /// diverging context.
    pub path: Vec<String>,
    /// What differs there.
    pub reason: DivergenceReason,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at /{}: ", self.path.join("/"))?;
        match &self.reason {
            DivergenceReason::Roots {
                only_left,
                only_right,
            } => write!(
                f,
                "root sets differ (only left: {only_left:?}, only right: {only_right:?})"
            ),
            DivergenceReason::ContentLanguage { witness } => {
                write!(f, "content models differ on child string {witness:?}")
            }
            DivergenceReason::Attributes => write!(f, "attribute declarations differ"),
            DivergenceReason::Text => write!(f, "text/mixed/simple-content treatment differs"),
        }
    }
}

/// Checks whether two DFA-based XSDs accept the same documents; on
/// divergence, reports a witness context.
///
/// The two schemas may use different alphabets; names are matched by
/// string. A name known to only one schema is treated as a distinct
/// symbol the other schema's content models never accept.
pub fn check_schemas_equivalent(left: &DfaXsd, right: &DfaXsd) -> Result<(), Divergence> {
    // Shared name universe.
    let mut names: BTreeSet<&str> = left.ename.entries().map(|(_, n)| n).collect();
    names.extend(right.ename.entries().map(|(_, n)| n));
    let names: Vec<&str> = names.into_iter().collect();
    let index: BTreeMap<&str, usize> = names.iter().enumerate().map(|(i, &n)| (n, i)).collect();

    // Roots must coincide.
    let roots_of = |s: &DfaXsd| -> BTreeSet<String> {
        s.roots
            .iter()
            .map(|&r| s.ename.name(r).to_owned())
            .collect()
    };
    let (lr, rr) = (roots_of(left), roots_of(right));
    if lr != rr {
        return Err(Divergence {
            path: Vec::new(),
            reason: DivergenceReason::Roots {
                only_left: lr.difference(&rr).cloned().collect(),
                only_right: rr.difference(&lr).cloned().collect(),
            },
        });
    }

    // Remap a content-model regex into the shared universe.
    let remap = |schema: &DfaXsd, cm: &ContentModel| -> relang::Regex {
        cm.regex
            .map_symbols(&mut |s| Sym(index[schema.ename.name(s)] as u32))
    };
    // Cache of per-state shared-universe content DFAs.
    let mut dfas_l: Vec<Option<Dfa>> = vec![None; left.dfa.n_states()];
    let mut dfas_r: Vec<Option<Dfa>> = vec![None; right.dfa.n_states()];

    // BFS over state pairs reachable by common realizable paths.
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut queue: VecDeque<(usize, usize, Vec<String>)> = VecDeque::new();
    for root in &lr {
        let ql = left
            .dfa
            .transition(left.dfa.initial(), left.ename.lookup(root).expect("root"))
            .expect("roots are wired");
        let qr = right
            .dfa
            .transition(right.dfa.initial(), right.ename.lookup(root).expect("root"))
            .expect("roots are wired");
        if seen.insert((ql, qr)) {
            queue.push_back((ql, qr, vec![root.clone()]));
        }
    }

    while let Some((ql, qr, path)) = queue.pop_front() {
        let ml = left.model(ql);
        let mr = right.model(qr);

        // Metadata: text and attributes.
        let text_l = (
            ml.mixed || ml.open,
            ml.simple_content.map(|t| t.value_class()),
            ml.simple_facets.clone(),
        );
        let text_r = (
            mr.mixed || mr.open,
            mr.simple_content.map(|t| t.value_class()),
            mr.simple_facets.clone(),
        );
        if text_l != text_r {
            return Err(Divergence {
                path,
                reason: DivergenceReason::Text,
            });
        }
        let attrs_l: BTreeMap<_, _> = if ml.open {
            BTreeMap::new()
        } else {
            ml.attributes
                .iter()
                .map(|a| {
                    (
                        a.name.clone(),
                        (a.required, a.simple_type.value_class(), a.facets.clone()),
                    )
                })
                .collect()
        };
        let attrs_r: BTreeMap<_, _> = if mr.open {
            BTreeMap::new()
        } else {
            mr.attributes
                .iter()
                .map(|a| {
                    (
                        a.name.clone(),
                        (a.required, a.simple_type.value_class(), a.facets.clone()),
                    )
                })
                .collect()
        };
        if ml.open != mr.open || attrs_l != attrs_r {
            return Err(Divergence {
                path,
                reason: DivergenceReason::Attributes,
            });
        }

        // Content languages over the shared universe.
        if dfas_l[ql].is_none() {
            dfas_l[ql] = Some(regex_to_dfa(&remap(left, ml), names.len()));
        }
        if dfas_r[qr].is_none() {
            dfas_r[qr] = Some(regex_to_dfa(&remap(right, mr), names.len()));
        }
        let dl = dfas_l[ql].as_ref().expect("just set");
        let dr = dfas_r[qr].as_ref().expect("just set");
        if let Err(witness) = check_equivalent_dfa(dl, dr) {
            return Err(Divergence {
                path,
                reason: DivergenceReason::ContentLanguage {
                    witness: witness
                        .iter()
                        .map(|&s| names[s.index()].to_owned())
                        .collect(),
                },
            });
        }

        // Continue along every symbol the (equal) content language uses.
        for (i, &name) in names.iter().enumerate() {
            let shared = Sym(i as u32);
            // symbol useful = some accepted word passes through it:
            // approximate by "occurs in the regex and is live in the DFA"
            if !symbol_is_useful(dl, shared) {
                continue;
            }
            let tl = left
                .ename
                .lookup(name)
                .and_then(|s| left.dfa.transition(ql, s));
            let tr = right
                .ename
                .lookup(name)
                .and_then(|s| right.dfa.transition(qr, s));
            match (tl, tr) {
                (Some(tl), Some(tr)) => {
                    if seen.insert((tl, tr)) {
                        let mut p = path.clone();
                        p.push(name.to_owned());
                        queue.push_back((tl, tr, p));
                    }
                }
                // A useful symbol must be wired on both sides (Definition
                // 3's invariant); if one side lacks the name entirely the
                // content languages could not have been equal.
                _ => unreachable!("useful symbols are wired on both sides"),
            }
        }
    }
    Ok(())
}

/// Returns a copy of `schema` with all attribute and simple-content
/// datatypes erased (everything becomes `xs:string`, facets cleared).
///
/// Comparing erased schemas decides *structural* equivalence — the notion
/// the paper uses when calling Figure 4 "equivalent to the DTD of
/// Figure 2" even though Figure 4 types `@size` as `xs:integer` and the
/// DTD's CDATA accepts any string.
pub fn erase_datatypes(schema: &DfaXsd) -> DfaXsd {
    let mut out = schema.clone();
    for m in out.lambda.iter_mut().flatten() {
        for a in &mut m.attributes {
            a.simple_type = crate::simple_types::SimpleType::String;
            a.facets = crate::simple_types::Facets::default();
        }
        if m.simple_content.is_some() {
            m.simple_content = Some(crate::simple_types::SimpleType::String);
            m.simple_facets = crate::simple_types::Facets::default();
        }
    }
    out
}

/// Whether some accepted word of `dfa` contains `sym` (the symbol lies on
/// a path from the initial state through itself to an accepting state).
fn symbol_is_useful(dfa: &Dfa, sym: Sym) -> bool {
    let reachable = dfa.reachable();
    let reach_set: BTreeSet<usize> = reachable.iter().copied().collect();
    for &q in &reachable {
        if let Some(t) = dfa.transition(q, sym) {
            if reach_set.contains(&q) && coreaches_final(dfa, t) {
                return true;
            }
        }
    }
    false
}

fn coreaches_final(dfa: &Dfa, from: usize) -> bool {
    let mut seen = BTreeSet::new();
    let mut stack = vec![from];
    seen.insert(from);
    while let Some(q) = stack.pop() {
        if dfa.is_final(q) {
            return true;
        }
        for a in 0..dfa.n_syms() {
            if let Some(t) = dfa.transition(q, Sym(a as u32)) {
                if seen.insert(t) {
                    stack.push(t);
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::ContentModel;
    use crate::dfa_xsd::DfaXsdBuilder;
    use relang::Regex;

    fn simple_schema(star: bool) -> DfaXsd {
        let mut b = DfaXsdBuilder::new();
        let q_doc = b.add_state();
        let q_item = b.add_state();
        b.root("doc");
        b.transition(0, "doc", q_doc);
        b.transition(q_doc, "item", q_item);
        let item = b.ename.lookup("item").unwrap();
        let model = if star {
            Regex::star(Regex::sym(item))
        } else {
            Regex::opt(Regex::sym(item))
        };
        b.lambda(q_doc, ContentModel::new(model));
        b.lambda(q_item, ContentModel::empty());
        b.build().unwrap()
    }

    #[test]
    fn identical_schemas_are_equivalent() {
        assert_eq!(
            check_schemas_equivalent(&simple_schema(true), &simple_schema(true)),
            Ok(())
        );
    }

    #[test]
    fn content_divergence_reports_witness() {
        let e = check_schemas_equivalent(&simple_schema(true), &simple_schema(false)).unwrap_err();
        assert_eq!(e.path, vec!["doc"]);
        match e.reason {
            DivergenceReason::ContentLanguage { witness } => {
                assert_eq!(witness, vec!["item", "item"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn root_divergence() {
        let mut b = DfaXsdBuilder::new();
        let q = b.add_state();
        b.root("other");
        b.transition(0, "other", q);
        b.lambda(q, ContentModel::empty());
        let other = b.build().unwrap();
        let e = check_schemas_equivalent(&simple_schema(true), &other).unwrap_err();
        assert!(matches!(e.reason, DivergenceReason::Roots { .. }));
    }

    #[test]
    fn attribute_divergence() {
        let mut with_attr = simple_schema(true);
        // add a required attribute to the item state (state 2)
        let m = with_attr.lambda[2].as_mut().unwrap();
        *m = m
            .clone()
            .with_attributes([crate::content::AttributeUse::required("id")]);
        let e = check_schemas_equivalent(&with_attr, &simple_schema(true)).unwrap_err();
        assert_eq!(e.path, vec!["doc", "item"]);
        assert_eq!(e.reason, DivergenceReason::Attributes);
    }

    #[test]
    fn different_expressions_same_language_are_equivalent() {
        // item* vs (item item*)? — equal languages, different DREs
        let a = simple_schema(true);
        let mut b = DfaXsdBuilder::new();
        let q_doc = b.add_state();
        let q_item = b.add_state();
        b.root("doc");
        b.transition(0, "doc", q_doc);
        b.transition(q_doc, "item", q_item);
        let item = b.ename.lookup("item").unwrap();
        b.lambda(
            q_doc,
            ContentModel::new(Regex::opt(Regex::concat(vec![
                Regex::sym(item),
                Regex::star(Regex::sym(item)),
            ]))),
        );
        b.lambda(q_item, ContentModel::empty());
        let b = b.build().unwrap();
        assert_eq!(check_schemas_equivalent(&a, &b), Ok(()));
    }
}
