//! Validation violations shared by the XSD validators (and reused, with
//! rule information added, by the BonXai validator in `bonxai-core`).

use xmltree::NodeId;

/// A schema violation at a document node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The offending node.
    pub node: NodeId,
    /// What went wrong.
    pub kind: ViolationKind,
}

/// Kinds of schema violations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// The root element's name is not among the allowed start elements.
    RootNotAllowed(String),
    /// The child string fails the content model at the given child index
    /// (index == number of children means content is incomplete).
    ContentModel {
        /// Name of the element whose content failed.
        element: String,
        /// Index of the first offending element child.
        at: usize,
    },
    /// Significant text under a non-mixed content model.
    UnexpectedText(String),
    /// A required attribute is missing.
    MissingAttribute(String),
    /// An attribute not declared by the governing content model.
    UndeclaredAttribute(String),
    /// An attribute value fails its simple type.
    InvalidAttributeValue {
        /// Attribute name.
        attribute: String,
        /// Offending value.
        value: String,
        /// Expected simple type (canonical `xs:` name).
        expected: String,
    },
    /// Element text fails its simple content type.
    InvalidTextValue {
        /// Element name.
        element: String,
        /// Offending text.
        value: String,
        /// Expected simple type (canonical `xs:` name).
        expected: String,
    },
    /// No rule/type governs this node (BonXai: no rule matches the
    /// ancestor string; DFA-based XSD: undefined transition).
    NoGoverningDefinition(String),
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViolationKind::RootNotAllowed(n) => {
                write!(f, "root element <{n}> is not a declared start element")
            }
            ViolationKind::ContentModel { element, at } => {
                write!(
                    f,
                    "content of <{element}> fails its content model at child {at}"
                )
            }
            ViolationKind::UnexpectedText(n) => {
                write!(f, "<{n}> contains text but its content model is not mixed")
            }
            ViolationKind::MissingAttribute(a) => {
                write!(f, "required attribute {a:?} is missing")
            }
            ViolationKind::UndeclaredAttribute(a) => {
                write!(f, "attribute {a:?} is not declared")
            }
            ViolationKind::InvalidAttributeValue {
                attribute,
                value,
                expected,
            } => write!(
                f,
                "value {value:?} of attribute {attribute:?} is not a valid {expected}"
            ),
            ViolationKind::InvalidTextValue {
                element,
                value,
                expected,
            } => write!(f, "text {value:?} of <{element}> is not a valid {expected}"),
            ViolationKind::NoGoverningDefinition(n) => {
                write!(f, "no declaration governs element <{n}>")
            }
        }
    }
}

/// Checks an element's text against a content model's mixedness / simple
/// content declaration, appending violations.
/// (Shared with `bonxai-core`.)
pub fn check_text(
    doc: &xmltree::Document,
    node: NodeId,
    model: &crate::content::ContentModel,
    out: &mut Vec<Violation>,
) {
    let name = doc.name(node).expect("element");
    match model.simple_content {
        Some(_) => {
            let text: String = doc
                .children(node)
                .iter()
                .filter_map(|&c| doc.text(c))
                .collect();
            check_simple_text(node, name, model, &text, out);
        }
        None => {
            if !model.mixed && !model.open && doc.has_significant_text(node) {
                out.push(Violation {
                    node,
                    kind: ViolationKind::UnexpectedText(name.to_owned()),
                });
            }
        }
    }
}

/// The document-free core of [`check_text`] for a simple-content model:
/// validates the element's concatenated text (untrimmed, as the value
/// reported; trimmed for type checking). Used by the streaming validator,
/// which accumulates text per open element instead of walking a tree.
pub fn check_simple_text(
    node: NodeId,
    name: &str,
    model: &crate::content::ContentModel,
    text: &str,
    out: &mut Vec<Violation>,
) {
    let Some(st) = model.simple_content else {
        return;
    };
    let value = text.trim();
    if !st.validates(value) || !model.simple_facets.validates(st, value) {
        let expected = if model.simple_facets.is_empty() {
            st.qname().to_owned()
        } else {
            format!("{} {}", st.qname(), model.simple_facets.display())
        };
        out.push(Violation {
            node,
            kind: ViolationKind::InvalidTextValue {
                element: name.to_owned(),
                value: text.to_owned(),
                expected,
            },
        });
    }
}

/// Checks an element's attributes against a content model's declarations,
/// appending violations. Namespace declarations (`xmlns…`) are exempt.
/// (Shared with `bonxai-core`.)
pub fn check_attributes(
    doc: &xmltree::Document,
    node: NodeId,
    model: &crate::content::ContentModel,
    out: &mut Vec<Violation>,
) {
    check_attribute_list(node, doc.attributes(node), model, out);
}

/// The document-free core of [`check_attributes`], over an attribute
/// slice directly.
pub fn check_attribute_list(
    node: NodeId,
    attrs: &[xmltree::Attribute],
    model: &crate::content::ContentModel,
    out: &mut Vec<Violation>,
) {
    check_attribute_pairs(
        node,
        attrs.iter().map(|a| (a.name.as_str(), a.value.as_str())),
        model,
        out,
    );
}

/// [`check_attribute_list`] over borrowed `(name, value)` pairs, so the
/// streaming validator can check a start tag's attributes straight off
/// the reader's zero-copy token — nothing is materialized unless a
/// violation is actually reported.
pub fn check_attribute_pairs<'a, I>(
    node: NodeId,
    attrs: I,
    model: &crate::content::ContentModel,
    out: &mut Vec<Violation>,
) where
    I: Iterator<Item = (&'a str, &'a str)> + Clone,
{
    if model.open {
        return;
    }
    // One pass over the written attributes, tracking which declarations
    // were seen so the required check below needs no second scan of the
    // attribute list (this runs for every element on the validation hot
    // path). Falls back to the scan for >64 declarations.
    let mut seen: u64 = 0;
    for (name, value) in attrs.clone() {
        if name.starts_with("xmlns") {
            continue;
        }
        match model.attributes.iter().position(|a| a.name == name) {
            None => out.push(Violation {
                node,
                kind: ViolationKind::UndeclaredAttribute(name.to_owned()),
            }),
            Some(i) => {
                if i < 64 {
                    seen |= 1 << i;
                }
                let decl = &model.attributes[i];
                if !decl.validates(value) {
                    out.push(Violation {
                        node,
                        kind: ViolationKind::InvalidAttributeValue {
                            attribute: name.to_owned(),
                            value: value.to_owned(),
                            expected: decl.type_display(),
                        },
                    });
                }
            }
        }
    }
    for (i, decl) in model.attributes.iter().enumerate() {
        if !decl.required {
            continue;
        }
        let present = if i < 64 {
            seen & (1 << i) != 0
        } else {
            attrs.clone().any(|(name, _)| name == decl.name)
        };
        if !present {
            out.push(Violation {
                node,
                kind: ViolationKind::MissingAttribute(decl.name.clone()),
            });
        }
    }
}
