//! k-suffix analysis of DFA-based XSDs — Definition 10 of the paper.
//!
//! > A DFA-based XSD (A, S, λ) with A = (Q, EName, δ, q0) is k-suffix based
//! > if A(w1 a1 ⋯ ak) = A(w2 a1 ⋯ ak) for all strings w1, w2 over EName
//! > and symbols a1, …, ak ∈ EName.
//!
//! In other words: the state reached (and hence the content model applied)
//! depends only on the last k labels of the ancestor path. The study cited
//! in Section 4.4 found that over 98% of real-world XSDs are 3-suffix,
//! which is why the k-suffix fast paths (Theorems 12/13, implemented in
//! `bonxai-core`) cover practice.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use relang::Sym;

use crate::dfa_xsd::DfaXsd;

/// Outcome of a bounded k-suffix test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KSuffixOutcome {
    /// The schema is k-suffix for the tested k.
    Yes,
    /// The schema is not k-suffix for the tested k.
    No,
    /// The exploration exceeded the state budget (undecided).
    BudgetExceeded,
}

/// Tests whether `schema` is k-suffix (Definition 10), exploring at most
/// `budget` (state, suffix) pairs.
///
/// The quantification is over *realizable* ancestor strings: from the
/// initial state only root names are followed, and from a state `q` only
/// names occurring in λ(q). Strings outside this set cannot be ancestor
/// paths of conforming documents (the parent's content model already
/// rejects them), so they are irrelevant for schema behavior — the same
/// pruning Algorithm 3 applies to its product automaton.
pub fn is_k_suffix(schema: &DfaXsd, k: usize, budget: usize) -> KSuffixOutcome {
    let dfa = &schema.dfa;
    let q0 = dfa.initial();

    // Names that may continue a path from each state.
    let allowed: Vec<BTreeSet<Sym>> = (0..dfa.n_states())
        .map(|q| {
            if q == q0 {
                schema.roots.iter().copied().collect()
            } else {
                schema.model(q).regex.symbols().into_iter().collect()
            }
        })
        .collect();

    // Explore pairs (state, suffix of last ≤ k labels) over realizable
    // strings; group states by full-length (= k) suffixes.
    let mut seen: BTreeSet<(usize, Vec<Sym>)> = BTreeSet::new();
    let mut by_suffix: BTreeMap<Vec<Sym>, usize> = BTreeMap::new();
    let start = (q0, Vec::new());
    seen.insert(start.clone());
    let mut queue = VecDeque::from([start]);

    while let Some((q, suffix)) = queue.pop_front() {
        if seen.len() > budget {
            return KSuffixOutcome::BudgetExceeded;
        }
        if suffix.len() == k {
            match by_suffix.get(&suffix) {
                Some(&prev) if prev != q => return KSuffixOutcome::No,
                _ => {
                    by_suffix.insert(suffix.clone(), q);
                }
            }
        }
        for &a in &allowed[q] {
            let Some(t) = dfa.transition(q, a) else {
                continue; // root name may be unwired only transiently
            };
            let mut next_suffix = suffix.clone();
            next_suffix.push(a);
            if next_suffix.len() > k {
                next_suffix.remove(0);
            }
            let pair = (t, next_suffix);
            if seen.insert(pair.clone()) {
                queue.push_back(pair);
            }
        }
    }
    KSuffixOutcome::Yes
}

/// The minimal `k ≤ max_k` for which the schema is k-suffix, if any.
pub fn minimal_k(schema: &DfaXsd, max_k: usize, budget: usize) -> Option<usize> {
    (0..=max_k).find(|&k| is_k_suffix(schema, k, budget) == KSuffixOutcome::Yes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::ContentModel;
    use crate::dfa_xsd::DfaXsdBuilder;
    use relang::Regex;

    /// The running example: sections below template vs. content differ, so
    /// the content model depends on more than the last label — but the
    /// last *two* labels suffice.
    fn example() -> DfaXsd {
        let mut b = DfaXsdBuilder::new();
        let q_doc = b.add_state();
        let q_template = b.add_state();
        let q_content = b.add_state();
        let q_tsec = b.add_state();
        let q_sec = b.add_state();
        b.root("document");
        b.transition(0, "document", q_doc);
        b.transition(q_doc, "template", q_template);
        b.transition(q_doc, "content", q_content);
        b.transition(q_template, "section", q_tsec);
        b.transition(q_tsec, "section", q_tsec);
        b.transition(q_content, "section", q_sec);
        b.transition(q_sec, "section", q_sec);
        let section = b.ename.lookup("section").unwrap();
        let template = b.ename.lookup("template").unwrap();
        let content = b.ename.lookup("content").unwrap();
        b.lambda(
            q_doc,
            ContentModel::new(Regex::concat(vec![
                Regex::sym(template),
                Regex::sym(content),
            ])),
        );
        b.lambda(
            q_template,
            ContentModel::new(Regex::opt(Regex::sym(section))),
        );
        b.lambda(
            q_content,
            ContentModel::new(Regex::star(Regex::sym(section))),
        );
        b.lambda(q_tsec, ContentModel::new(Regex::opt(Regex::sym(section))));
        b.lambda(
            q_sec,
            ContentModel::new(Regex::star(Regex::sym(section))).with_mixed(true),
        );
        b.build().unwrap()
    }

    #[test]
    fn example_is_not_1_suffix() {
        let x = example();
        // A section's state depends on whether template or content is
        // above it, so the last 1 label does not determine the state…
        assert_eq!(is_k_suffix(&x, 1, 100_000), KSuffixOutcome::No);
    }

    #[test]
    fn example_is_not_2_suffix_but_not_3_either() {
        // …and since sections nest (section section … at any depth), no
        // finite suffix of section-labels reveals template vs content:
        // the example is NOT k-suffix for any k (q_tsec and q_sec are
        // reachable with the same suffix section^k).
        let x = example();
        assert_eq!(is_k_suffix(&x, 2, 100_000), KSuffixOutcome::No);
        assert_eq!(is_k_suffix(&x, 3, 100_000), KSuffixOutcome::No);
    }

    /// A 1-suffix schema: each label has a fixed content model.
    fn dtd_like() -> DfaXsd {
        let mut b = DfaXsdBuilder::new();
        let q_doc = b.add_state();
        let q_leaf = b.add_state();
        b.root("doc");
        b.transition(0, "doc", q_doc);
        b.transition(q_doc, "leaf", q_leaf);
        b.transition(q_doc, "doc", q_doc);
        b.transition(q_leaf, "leaf", q_leaf);
        // leaf under leaf loops; doc under leaf: also q_doc (label-determined)
        b.transition(q_leaf, "doc", q_doc);
        let leaf = b.ename.lookup("leaf").unwrap();
        let docs = b.ename.lookup("doc").unwrap();
        b.lambda(
            q_doc,
            ContentModel::new(Regex::star(Regex::alt(vec![
                Regex::sym(leaf),
                Regex::sym(docs),
            ]))),
        );
        b.lambda(q_leaf, ContentModel::new(Regex::star(Regex::sym(leaf))));
        b.build().unwrap()
    }

    #[test]
    fn dtd_like_schema_is_1_suffix() {
        let x = dtd_like();
        assert_eq!(is_k_suffix(&x, 1, 100_000), KSuffixOutcome::Yes);
        assert_eq!(minimal_k(&x, 3, 100_000), Some(1));
        // and also 2-suffix (k-suffix is monotone in k)
        assert_eq!(is_k_suffix(&x, 2, 100_000), KSuffixOutcome::Yes);
    }

    #[test]
    fn zero_suffix_means_single_state() {
        // 0-suffix: every ancestor string leads to the same state — only
        // possible when the completed automaton collapses; dtd_like has
        // distinct states, so it is not 0-suffix.
        let x = dtd_like();
        assert_eq!(is_k_suffix(&x, 0, 100_000), KSuffixOutcome::No);
    }

    #[test]
    fn budget_is_respected() {
        let x = example();
        assert_eq!(is_k_suffix(&x, 3, 2), KSuffixOutcome::BudgetExceeded);
    }

    /// 2-suffix: parent+label determine the state.
    #[test]
    fn two_suffix_schema_detected() {
        let mut b = DfaXsdBuilder::new();
        let q_r = b.add_state();
        let q_ra = b.add_state(); // a under r
        let q_aa = b.add_state(); // a under a
        b.root("r");
        b.transition(0, "r", q_r);
        b.transition(q_r, "a", q_ra);
        b.transition(q_ra, "a", q_aa);
        b.transition(q_aa, "a", q_aa);
        // also wire r-labeled children so the suffix "r a" is unique
        let a = b.ename.lookup("a").unwrap();
        b.lambda(q_r, ContentModel::new(Regex::opt(Regex::sym(a))));
        b.lambda(q_ra, ContentModel::new(Regex::opt(Regex::sym(a))));
        b.lambda(q_aa, ContentModel::empty());
        let x = b.build().unwrap();
        // q_ra vs q_aa differ and both end in "a", so not 1-suffix…
        assert_eq!(is_k_suffix(&x, 1, 100_000), KSuffixOutcome::No);
        // …but "r a" vs "a a" distinguishes them: 2-suffix.
        assert_eq!(minimal_k(&x, 4, 100_000), Some(2));
    }
}
