//! A small registry of XML Schema simple types with value validation.
//!
//! The paper treats datatypes as "unavoidable cosmetics" outside the formal
//! model (Section 4), and notes that BonXai does not define simple types
//! natively (Section 5) — it refers to the `xs:` built-ins. This registry
//! covers the built-ins that the paper's examples and realistic schemas
//! use; unknown `xs:` names fall back to `AnySimpleType`.

use std::fmt;

/// A built-in XML Schema simple type.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SimpleType {
    /// `xs:string` — any string.
    String,
    /// `xs:boolean` — `true`, `false`, `1`, `0`.
    Boolean,
    /// `xs:integer` — optionally signed decimal integer.
    Integer,
    /// `xs:nonNegativeInteger`.
    NonNegativeInteger,
    /// `xs:positiveInteger`.
    PositiveInteger,
    /// `xs:decimal` — decimal number.
    Decimal,
    /// `xs:double` — floating point (also covers `xs:float`).
    Double,
    /// `xs:date` — `YYYY-MM-DD`.
    Date,
    /// `xs:time` — `hh:mm:ss(.fff)?`.
    Time,
    /// `xs:dateTime` — `YYYY-MM-DDThh:mm:ss`.
    DateTime,
    /// `xs:anyURI` — any string (URI syntax not enforced).
    AnyUri,
    /// `xs:ID` — an XML name, unique per document.
    Id,
    /// `xs:IDREF` — an XML name referencing an ID.
    IdRef,
    /// `xs:NMTOKEN` — a name token.
    NmToken,
    /// `xs:token`/`xs:normalizedString` — whitespace-normalized string.
    Token,
    /// `xs:anySimpleType` — anything (also the fallback for unknown names).
    AnySimpleType,
}

impl SimpleType {
    /// Resolves a QName like `xs:string` (any prefix) or a bare local name.
    pub fn from_qname(qname: &str) -> SimpleType {
        let local = qname.rsplit_once(':').map_or(qname, |(_, l)| l);
        match local {
            "string" => SimpleType::String,
            "boolean" => SimpleType::Boolean,
            "integer" | "int" | "long" | "short" | "byte" => SimpleType::Integer,
            "nonNegativeInteger" | "unsignedInt" | "unsignedLong" | "unsignedShort"
            | "unsignedByte" => SimpleType::NonNegativeInteger,
            "positiveInteger" => SimpleType::PositiveInteger,
            "decimal" => SimpleType::Decimal,
            "double" | "float" => SimpleType::Double,
            "date" => SimpleType::Date,
            "time" => SimpleType::Time,
            "dateTime" => SimpleType::DateTime,
            "anyURI" => SimpleType::AnyUri,
            "ID" => SimpleType::Id,
            "IDREF" => SimpleType::IdRef,
            "NMTOKEN" => SimpleType::NmToken,
            "token" | "normalizedString" => SimpleType::Token,
            _ => SimpleType::AnySimpleType,
        }
    }

    /// The canonical `xs:`-prefixed name.
    pub fn qname(&self) -> &'static str {
        match self {
            SimpleType::String => "xs:string",
            SimpleType::Boolean => "xs:boolean",
            SimpleType::Integer => "xs:integer",
            SimpleType::NonNegativeInteger => "xs:nonNegativeInteger",
            SimpleType::PositiveInteger => "xs:positiveInteger",
            SimpleType::Decimal => "xs:decimal",
            SimpleType::Double => "xs:double",
            SimpleType::Date => "xs:date",
            SimpleType::Time => "xs:time",
            SimpleType::DateTime => "xs:dateTime",
            SimpleType::AnyUri => "xs:anyURI",
            SimpleType::Id => "xs:ID",
            SimpleType::IdRef => "xs:IDREF",
            SimpleType::NmToken => "xs:NMTOKEN",
            SimpleType::Token => "xs:token",
            SimpleType::AnySimpleType => "xs:anySimpleType",
        }
    }

    /// The *value-semantics class* of the type: types in the same class
    /// accept exactly the same lexical values, so schema comparison
    /// treats them as interchangeable (`xs:string`, `xs:anyURI`,
    /// `xs:token`, and `xs:anySimpleType` all accept every string).
    pub fn value_class(&self) -> u8 {
        match self {
            SimpleType::String
            | SimpleType::AnyUri
            | SimpleType::Token
            | SimpleType::AnySimpleType => 0,
            SimpleType::Boolean => 1,
            SimpleType::Integer => 2,
            SimpleType::NonNegativeInteger => 3,
            SimpleType::PositiveInteger => 4,
            SimpleType::Decimal => 5,
            SimpleType::Double => 6,
            SimpleType::Date => 7,
            SimpleType::Time => 8,
            SimpleType::DateTime => 9,
            // ID/IDREF/NMTOKEN accept the same token syntax
            SimpleType::Id | SimpleType::IdRef | SimpleType::NmToken => 10,
        }
    }

    /// Whether `value` is a valid lexical form of this type.
    pub fn validates(&self, value: &str) -> bool {
        match self {
            SimpleType::String | SimpleType::AnyUri | SimpleType::AnySimpleType => true,
            SimpleType::Token => true, // any string normalizes
            // All remaining built-ins have whiteSpace=collapse: leading
            // and trailing whitespace never affects validity.
            SimpleType::Boolean => matches!(value.trim(), "true" | "false" | "1" | "0"),
            SimpleType::Integer => parse_integer(value).is_some(),
            SimpleType::NonNegativeInteger => parse_integer(value).is_some_and(|v| v >= 0),
            SimpleType::PositiveInteger => parse_integer(value).is_some_and(|v| v > 0),
            SimpleType::Decimal => is_decimal(value),
            SimpleType::Double => is_double(value),
            SimpleType::Date => is_date(value.trim()),
            SimpleType::Time => is_time(value.trim()),
            SimpleType::DateTime => value
                .trim()
                .split_once('T')
                .is_some_and(|(d, t)| is_date(d) && is_time(t)),
            SimpleType::Id | SimpleType::IdRef | SimpleType::NmToken => is_nmtoken(value),
        }
    }
}

impl fmt::Display for SimpleType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.qname())
    }
}

/// Restriction facets on a simple type (`<xs:restriction>`).
///
/// The paper's Section 5 names native simple types as "one of the most
/// desirable extensions of the current language" — this implements the
/// extension: BonXai writes `{ type xs:integer { min "0", max "100" } }`
/// and the XSD side round-trips it as an `xs:restriction`.
///
/// Bounds are stored lexically; for numeric bases they compare by value,
/// otherwise lexicographically (the common string-enumeration case uses
/// `enumeration` anyway). The `xs:pattern` facet is not supported.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Facets {
    /// `xs:minInclusive`.
    pub min_inclusive: Option<String>,
    /// `xs:maxInclusive`.
    pub max_inclusive: Option<String>,
    /// `xs:minLength`.
    pub min_length: Option<u32>,
    /// `xs:maxLength`.
    pub max_length: Option<u32>,
    /// `xs:enumeration` values (empty = unconstrained).
    pub enumeration: Vec<String>,
}

impl Facets {
    /// Whether no facet is set.
    pub fn is_empty(&self) -> bool {
        *self == Facets::default()
    }

    /// Whether `value` (already valid for `base`) satisfies the facets.
    pub fn validates(&self, base: SimpleType, value: &str) -> bool {
        if self.is_empty() {
            // No facets (the overwhelmingly common case on the validation
            // hot path): skip the length count below.
            return true;
        }
        if !self.enumeration.is_empty() && !self.enumeration.iter().any(|e| e == value) {
            return false;
        }
        let len = value.chars().count() as u32;
        if self.min_length.is_some_and(|m| len < m) {
            return false;
        }
        if self.max_length.is_some_and(|m| len > m) {
            return false;
        }
        // Incomparable pairs (unparseable bound or value, NaN) fail
        // closed: a bound that cannot be compared admits nothing.
        // [`Facets::check`] rejects such bounds at schema-parse time.
        if let Some(min) = &self.min_inclusive {
            match compare_values(base, min, value) {
                Some(std::cmp::Ordering::Greater) | None => return false,
                _ => {}
            }
        }
        if let Some(max) = &self.max_inclusive {
            match compare_values(base, max, value) {
                Some(std::cmp::Ordering::Less) | None => return false,
                _ => {}
            }
        }
        true
    }

    /// Checks the facet bounds *themselves* against the base type, so a
    /// bad bound is a schema error at parse time rather than a facet
    /// that silently rejects every value at validation time. Returns a
    /// human-readable reason on failure.
    pub fn check(&self, base: SimpleType) -> Result<(), String> {
        for (facet, bound) in [("min", &self.min_inclusive), ("max", &self.max_inclusive)] {
            if let Some(b) = bound {
                if !base.validates(b.trim()) {
                    return Err(format!(
                        "{facet} bound {b:?} is not a valid {}",
                        base.qname()
                    ));
                }
                if base == SimpleType::Double && b.trim() == "NaN" {
                    return Err(format!("{facet} bound NaN is incomparable"));
                }
            }
        }
        if let (Some(min), Some(max)) = (&self.min_inclusive, &self.max_inclusive) {
            if compare_values(base, min, max) == Some(std::cmp::Ordering::Greater) {
                return Err(format!("min bound {min:?} exceeds max bound {max:?}"));
            }
        }
        if let (Some(lo), Some(hi)) = (self.min_length, self.max_length) {
            if lo > hi {
                return Err(format!("minLength {lo} exceeds maxLength {hi}"));
            }
        }
        Ok(())
    }

    /// Renders the facets in BonXai syntax (`{ min "0", enum "a" }`).
    pub fn display(&self) -> String {
        let mut parts = Vec::new();
        if let Some(v) = &self.min_inclusive {
            parts.push(format!("min {v:?}"));
        }
        if let Some(v) = &self.max_inclusive {
            parts.push(format!("max {v:?}"));
        }
        if let Some(v) = self.min_length {
            parts.push(format!("minLength \"{v}\""));
        }
        if let Some(v) = self.max_length {
            parts.push(format!("maxLength \"{v}\""));
        }
        for e in &self.enumeration {
            parts.push(format!("enum {e:?}"));
        }
        format!("{{ {} }}", parts.join(", "))
    }
}

/// Whether `value` lies in the value space of `base` restricted by
/// `facets` — the exact predicate the validator applies to simple
/// content and attribute values.
pub fn admits(base: SimpleType, facets: &Facets, value: &str) -> bool {
    base.validates(value) && facets.validates(base, value)
}

/// The **canonical value** of a restricted simple type: a deterministic
/// lexical form in the value space of `base` + `facets`, or `None` when
/// the candidate probes find none (e.g. an enumeration whose members are
/// all invalid for the base type). Used by the schema-diff engine to
/// materialize witness documents — required attributes and simple
/// content need *some* concrete value, and it must be the same one on
/// every run.
///
/// The value is chosen from a fixed candidate list (enumeration members
/// first, then the facet bounds, then per-type defaults), so the result
/// depends only on the inputs.
pub fn canonical_value(base: SimpleType, facets: &Facets) -> Option<String> {
    candidate_values(base, facets)
        .into_iter()
        .find(|v| admits(base, facets, v))
}

/// A value in the space of `a` but **not** in the space of `b`, if the
/// candidate probes find one. `None` means no difference was found — for
/// structurally equal specs that is exact; otherwise it is a
/// probe-based under-approximation (the probe set covers enumeration
/// membership, numeric and lexicographic bounds incl. off-by-one
/// boundary values, length facets, and cross-type lexical differences).
pub fn value_space_witness(a: (SimpleType, &Facets), b: (SimpleType, &Facets)) -> Option<String> {
    // Types in one value class accept the same lexical forms, so equal
    // facets mean provably identical value spaces.
    if a.0.value_class() == b.0.value_class() && a.1 == b.1 {
        return None;
    }
    let mut candidates = candidate_values(a.0, a.1);
    candidates.extend(boundary_probes(b.0, b.1));
    candidates
        .into_iter()
        .find(|v| admits(a.0, a.1, v) && !admits(b.0, b.1, v))
}

/// Deterministic candidate values for the space of `base` + `facets`:
/// enumeration members, facet bounds, then fixed per-type probes (not
/// yet filtered for validity).
fn candidate_values(base: SimpleType, facets: &Facets) -> Vec<String> {
    let mut out: Vec<String> = facets.enumeration.clone();
    out.extend(facets.min_inclusive.iter().cloned());
    out.extend(facets.max_inclusive.iter().cloned());
    let min_len = facets.min_length.unwrap_or(0).max(1) as usize;
    match base.value_class() {
        0 => {
            // string-like: respect minLength; include probes that other
            // value classes reject (spaces, non-numeric, empty).
            out.push("x".repeat(min_len));
            out.push("x".to_string());
            out.push("two words".to_string());
            out.push(String::new());
        }
        1 => out.extend(["true", "false", "1", "0"].map(str::to_string)),
        2 => out.extend(["0", "1", "-1", &"1".repeat(min_len)].map(str::to_string)),
        3 => out.extend(["0", "1", &"1".repeat(min_len)].map(str::to_string)),
        4 => out.extend(["1", &"1".repeat(min_len)].map(str::to_string)),
        5 => out.extend(["0", "1", "0.5", "-1", "-0.5"].map(str::to_string)),
        6 => out.extend(["0", "1", "0.5", "-1", "1e5", "INF"].map(str::to_string)),
        7 => out.extend(["2024-01-01", "0001-01-01", "9999-12-31"].map(str::to_string)),
        8 => out.extend(["12:00:00", "00:00:00", "23:59:59"].map(str::to_string)),
        9 => out.extend(
            [
                "2024-01-01T12:00:00",
                "0001-01-01T00:00:00",
                "9999-12-31T23:59:59",
            ]
            .map(str::to_string),
        ),
        _ => {
            // NMTOKEN-like: name characters only.
            out.push("x".repeat(min_len));
            out.push("x".to_string());
            out.push("tok-1".to_string());
        }
    }
    out
}

/// Probes derived from `b`'s facets that step just *outside* its
/// restrictions (but may still be valid for another spec): one past each
/// inclusive bound, one short of / past each length bound, and a
/// suffix-mutated enumeration member.
fn boundary_probes(base: SimpleType, facets: &Facets) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(min) = &facets.min_inclusive {
        match base.value_class() {
            2..=4 => {
                if let Some(v) = parse_integer(min) {
                    out.push((v - 1).to_string());
                }
            }
            5 | 6 => {
                if let Some(v) = parse_double(min) {
                    if v.is_finite() {
                        out.push(format!("{}", v - 1.0));
                    }
                }
            }
            _ => {
                // Lexicographically smaller: a proper prefix, and the
                // empty string as the global minimum.
                let mut chars = min.chars();
                chars.next_back();
                out.push(chars.as_str().to_string());
                out.push(String::new());
            }
        }
    }
    if let Some(max) = &facets.max_inclusive {
        match base.value_class() {
            2..=4 => {
                if let Some(v) = parse_integer(max) {
                    out.push((v + 1).to_string());
                }
            }
            5 | 6 => {
                if let Some(v) = parse_double(max) {
                    if v.is_finite() {
                        out.push(format!("{}", v + 1.0));
                    }
                }
            }
            _ => out.push(format!("{max}z")),
        }
    }
    if let Some(lo) = facets.min_length {
        if lo > 0 {
            out.push("x".repeat(lo as usize - 1));
            if matches!(base.value_class(), 2..=4) && lo > 1 {
                out.push("1".repeat(lo as usize - 1));
            }
        }
    }
    if let Some(hi) = facets.max_length {
        out.push("x".repeat(hi as usize + 1));
        if matches!(base.value_class(), 2..=4) {
            out.push("1".repeat(hi as usize + 1));
        }
    }
    if !facets.enumeration.is_empty() {
        // A value outside the enumeration: mutate members until one is
        // no member (append a digit for numeric bases, a letter else).
        for e in &facets.enumeration {
            let probe = if matches!(base.value_class(), 2..=6) {
                format!("{e}1")
            } else {
                format!("{e}z")
            };
            if !facets.enumeration.contains(&probe) {
                out.push(probe);
                break;
            }
        }
    }
    out
}

/// Value comparison of two lexical forms under `base`'s value space:
/// exact `i128` for the integer types, exact normalized comparison for
/// `xs:decimal` (no float round-trip — `0.10` equals `0.1000`, and
/// values beyond 2^53 keep their order), IEEE semantics for `xs:double`
/// (`INF`/`-INF` compare as infinities). `None` means incomparable:
/// a side fails to parse, or a NaN is involved.
fn compare_values(base: SimpleType, a: &str, b: &str) -> Option<std::cmp::Ordering> {
    match base {
        SimpleType::Integer | SimpleType::NonNegativeInteger | SimpleType::PositiveInteger => {
            Some(parse_integer(a)?.cmp(&parse_integer(b)?))
        }
        SimpleType::Decimal => decimal_cmp(a.trim(), b.trim()),
        SimpleType::Double => parse_double(a)?.partial_cmp(&parse_double(b)?),
        _ => Some(a.cmp(b)),
    }
}

fn parse_double(v: &str) -> Option<f64> {
    match v.trim() {
        "INF" => Some(f64::INFINITY),
        "-INF" => Some(f64::NEG_INFINITY),
        t => t.parse().ok(),
    }
}

/// Splits a decimal lexical form into (negative, integer digits, fraction
/// digits) with leading/trailing zeros stripped, so equal values get
/// equal parts.
fn split_decimal(v: &str) -> Option<(bool, &str, &str)> {
    if !is_decimal(v) {
        return None;
    }
    let (neg, rest) = match v.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, v.strip_prefix('+').unwrap_or(v)),
    };
    let (int, frac) = rest.split_once('.').unwrap_or((rest, ""));
    Some((neg, int.trim_start_matches('0'), frac.trim_end_matches('0')))
}

/// Exact comparison of two decimal lexical forms. With normalized parts,
/// magnitude order is: more integer digits wins, then the integer digits
/// lexicographically, then the fraction digits lexicographically (which
/// is correct for digit strings after the point: "25" < "3").
fn decimal_cmp(a: &str, b: &str) -> Option<std::cmp::Ordering> {
    use std::cmp::Ordering;
    let (na, ia, fa) = split_decimal(a)?;
    let (nb, ib, fb) = split_decimal(b)?;
    // Zeros compare equal regardless of written sign ("-0.0" == "0").
    let na = na && !(ia.is_empty() && fa.is_empty());
    let nb = nb && !(ib.is_empty() && fb.is_empty());
    if na != nb {
        return Some(if na {
            Ordering::Less
        } else {
            Ordering::Greater
        });
    }
    let magnitude = ia
        .len()
        .cmp(&ib.len())
        .then_with(|| ia.cmp(ib))
        .then_with(|| fa.cmp(fb));
    Some(if na { magnitude.reverse() } else { magnitude })
}

fn parse_integer(v: &str) -> Option<i128> {
    let v = v.trim();
    if v.is_empty() {
        return None;
    }
    v.parse::<i128>().ok()
}

/// The `xs:double` lexical space: a decimal mantissa with optional
/// exponent, or exactly `INF` / `-INF` / `NaN`. Deliberately narrower
/// than `str::parse::<f64>`, which also accepts Rust spellings like
/// `inf`, `Infinity`, `nan`, and `+NaN` that XSD excludes.
fn is_double(v: &str) -> bool {
    let v = v.trim();
    matches!(v, "INF" | "-INF" | "NaN")
        || (v
            .bytes()
            .all(|b| matches!(b, b'0'..=b'9' | b'+' | b'-' | b'.' | b'e' | b'E'))
            && v.parse::<f64>().is_ok())
}

fn is_decimal(v: &str) -> bool {
    let v = v.trim();
    let v = v.strip_prefix(['+', '-']).unwrap_or(v);
    if v.is_empty() || v == "." {
        return false;
    }
    let mut dots = 0;
    v.chars().all(|c| {
        if c == '.' {
            dots += 1;
            dots <= 1
        } else {
            c.is_ascii_digit()
        }
    })
}

fn is_date(v: &str) -> bool {
    let parts: Vec<&str> = v.splitn(3, '-').collect();
    // (Negative years would start with '-', out of scope.)
    parts.len() == 3
        && parts[0].len() == 4
        && parts.iter().all(|p| p.chars().all(|c| c.is_ascii_digit()))
        && parts[1].parse::<u32>().is_ok_and(|m| (1..=12).contains(&m))
        && parts[2].parse::<u32>().is_ok_and(|d| (1..=31).contains(&d))
}

fn is_time(v: &str) -> bool {
    let (hms, frac) = v.split_once('.').map_or((v, None), |(a, b)| (a, Some(b)));
    if let Some(f) = frac {
        if f.is_empty() || !f.chars().all(|c| c.is_ascii_digit()) {
            return false;
        }
    }
    let parts: Vec<&str> = hms.split(':').collect();
    parts.len() == 3
        && parts[0].parse::<u32>().is_ok_and(|h| h <= 23)
        && parts[1].parse::<u32>().is_ok_and(|m| m <= 59)
        && parts[2].parse::<u32>().is_ok_and(|s| s <= 60)
}

fn is_nmtoken(v: &str) -> bool {
    !v.is_empty()
        && v.chars()
            .all(|c| c.is_alphanumeric() || matches!(c, '.' | '-' | '_' | ':'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qname_resolution_roundtrip() {
        for t in [
            SimpleType::String,
            SimpleType::Integer,
            SimpleType::Date,
            SimpleType::Boolean,
            SimpleType::Decimal,
        ] {
            assert_eq!(SimpleType::from_qname(t.qname()), t);
        }
        assert_eq!(SimpleType::from_qname("xsd:string"), SimpleType::String);
        assert_eq!(SimpleType::from_qname("string"), SimpleType::String);
        assert_eq!(
            SimpleType::from_qname("xs:gYearMonth"),
            SimpleType::AnySimpleType
        );
    }

    #[test]
    fn integer_validation() {
        assert!(SimpleType::Integer.validates("42"));
        assert!(SimpleType::Integer.validates("-7"));
        assert!(!SimpleType::Integer.validates("4.2"));
        assert!(!SimpleType::Integer.validates("abc"));
        assert!(!SimpleType::Integer.validates(""));
        assert!(SimpleType::NonNegativeInteger.validates("0"));
        assert!(!SimpleType::NonNegativeInteger.validates("-1"));
        assert!(!SimpleType::PositiveInteger.validates("0"));
    }

    #[test]
    fn boolean_validation() {
        for v in ["true", "false", "1", "0"] {
            assert!(SimpleType::Boolean.validates(v));
        }
        assert!(!SimpleType::Boolean.validates("TRUE"));
        assert!(!SimpleType::Boolean.validates("yes"));
    }

    #[test]
    fn decimal_validation() {
        assert!(SimpleType::Decimal.validates("3.14"));
        assert!(SimpleType::Decimal.validates("-0.5"));
        assert!(SimpleType::Decimal.validates("42"));
        assert!(!SimpleType::Decimal.validates("3.1.4"));
        assert!(!SimpleType::Decimal.validates("."));
        assert!(!SimpleType::Decimal.validates("1e5"));
    }

    #[test]
    fn date_time_validation() {
        assert!(SimpleType::Date.validates("2015-05-31"));
        assert!(!SimpleType::Date.validates("2015-13-01"));
        assert!(!SimpleType::Date.validates("15-05-31"));
        assert!(SimpleType::Time.validates("09:30:00"));
        assert!(SimpleType::Time.validates("09:30:00.125"));
        assert!(!SimpleType::Time.validates("24:00:61"));
        assert!(SimpleType::DateTime.validates("2015-05-31T09:30:00"));
        assert!(!SimpleType::DateTime.validates("2015-05-31 09:30:00"));
    }

    #[test]
    fn nmtoken_validation() {
        assert!(SimpleType::NmToken.validates("some-token_1"));
        assert!(!SimpleType::NmToken.validates("two words"));
        assert!(!SimpleType::NmToken.validates(""));
    }

    #[test]
    fn string_accepts_anything() {
        assert!(SimpleType::String.validates(""));
        assert!(SimpleType::String.validates("anything at all & more"));
    }
}

#[cfg(test)]
mod facet_tests {
    use super::*;

    #[test]
    fn numeric_bounds() {
        let f = Facets {
            min_inclusive: Some("0".into()),
            max_inclusive: Some("100".into()),
            ..Facets::default()
        };
        assert!(f.validates(SimpleType::Integer, "0"));
        assert!(f.validates(SimpleType::Integer, "100"));
        assert!(f.validates(SimpleType::Integer, "42"));
        assert!(!f.validates(SimpleType::Integer, "-1"));
        assert!(!f.validates(SimpleType::Integer, "101"));
        // numeric, not lexicographic: "9" < "10"
        assert!(f.validates(SimpleType::Integer, "9"));
    }

    #[test]
    fn string_bounds_are_lexicographic() {
        let f = Facets {
            min_inclusive: Some("b".into()),
            max_inclusive: Some("d".into()),
            ..Facets::default()
        };
        assert!(f.validates(SimpleType::String, "c"));
        assert!(!f.validates(SimpleType::String, "a"));
        assert!(!f.validates(SimpleType::String, "e"));
    }

    #[test]
    fn lengths_and_enumeration() {
        let f = Facets {
            min_length: Some(2),
            max_length: Some(4),
            ..Facets::default()
        };
        assert!(!f.validates(SimpleType::String, "x"));
        assert!(f.validates(SimpleType::String, "xy"));
        assert!(!f.validates(SimpleType::String, "xyzzy"));

        let e = Facets {
            enumeration: vec!["alpha".into(), "beta".into()],
            ..Facets::default()
        };
        assert!(e.validates(SimpleType::String, "alpha"));
        assert!(!e.validates(SimpleType::String, "gamma"));
    }

    #[test]
    fn integer_bounds_compare_exactly_beyond_f64_precision() {
        // Regression: bounds used to round-trip through f64, where
        // 2^53 and 2^53 + 1 compare equal — a value below an exclusive
        // region slipped through.
        let f = Facets {
            min_inclusive: Some("9007199254740993".into()), // 2^53 + 1
            ..Facets::default()
        };
        assert!(!f.validates(SimpleType::Integer, "9007199254740992"));
        assert!(f.validates(SimpleType::Integer, "9007199254740993"));
        assert!(f.validates(SimpleType::Integer, "9007199254740994"));
    }

    #[test]
    fn decimal_bounds_compare_normalized_not_as_floats() {
        let f = Facets {
            min_inclusive: Some("0.1000".into()),
            max_inclusive: Some("10000000000000000.02".into()),
            ..Facets::default()
        };
        // trailing zeros are cosmetic
        assert!(f.validates(SimpleType::Decimal, "0.1"));
        assert!(!f.validates(SimpleType::Decimal, "0.09999999999999999999"));
        // f64 cannot tell these two apart; exact comparison must
        assert!(!f.validates(SimpleType::Decimal, "10000000000000000.03"));
        assert!(f.validates(SimpleType::Decimal, "10000000000000000.01"));
        // sign handling, including negative zero
        assert!(!f.validates(SimpleType::Decimal, "-0.2"));
        let neg = Facets {
            min_inclusive: Some("-3.5".into()),
            max_inclusive: Some("-0.0".into()),
            ..Facets::default()
        };
        assert!(neg.validates(SimpleType::Decimal, "-2.75"));
        assert!(neg.validates(SimpleType::Decimal, "0"));
        assert!(!neg.validates(SimpleType::Decimal, "0.001"));
        assert!(!neg.validates(SimpleType::Decimal, "-3.51"));
    }

    #[test]
    fn double_bounds_understand_xsd_infinities() {
        // Regression: "INF" failed the f64 parse and became NaN, so an
        // INF bound rejected (min) or admitted (max) arbitrarily.
        let f = Facets {
            min_inclusive: Some("-INF".into()),
            max_inclusive: Some("INF".into()),
            ..Facets::default()
        };
        assert!(f.validates(SimpleType::Double, "1e300"));
        assert!(f.validates(SimpleType::Double, "-INF"));
        assert!(f.validates(SimpleType::Double, "INF"));
        // NaN is incomparable: it fails any bound (closed), and a NaN
        // bound is a schema error.
        assert!(!f.validates(SimpleType::Double, "NaN"));
        let nan_bound = Facets {
            max_inclusive: Some("NaN".into()),
            ..Facets::default()
        };
        assert!(nan_bound.check(SimpleType::Double).is_err());
    }

    #[test]
    fn unparseable_bounds_fail_closed_and_fail_check() {
        // Regression: an unparseable bound compared as "greater than
        // everything", so `max "oops"` silently admitted every value.
        let f = Facets {
            max_inclusive: Some("oops".into()),
            ..Facets::default()
        };
        assert!(!f.validates(SimpleType::Integer, "1"));
        assert!(f.check(SimpleType::Integer).is_err());
        assert!(f.check(SimpleType::String).is_ok()); // fine lexicographically

        let inverted = Facets {
            min_inclusive: Some("10".into()),
            max_inclusive: Some("9".into()),
            ..Facets::default()
        };
        assert!(inverted.check(SimpleType::Integer).is_err());
        assert!(inverted.check(SimpleType::String).is_ok()); // "10" < "9"

        let lengths = Facets {
            min_length: Some(5),
            max_length: Some(2),
            ..Facets::default()
        };
        assert!(lengths.check(SimpleType::String).is_err());
        assert!(Facets::default().check(SimpleType::Integer).is_ok());
    }

    #[test]
    fn empty_facets_accept_everything() {
        let f = Facets::default();
        assert!(f.is_empty());
        assert!(f.validates(SimpleType::String, "anything"));
        assert!(f.validates(SimpleType::Integer, "-999"));
    }

    #[test]
    fn display_roundtrips_visually() {
        let f = Facets {
            min_inclusive: Some("0".into()),
            enumeration: vec!["a".into()],
            ..Facets::default()
        };
        let s = f.display();
        assert!(s.contains("min \"0\""));
        assert!(s.contains("enum \"a\""));
    }

    #[test]
    fn canonical_values_are_valid_and_deterministic() {
        let none = Facets::default();
        for t in [
            SimpleType::String,
            SimpleType::Boolean,
            SimpleType::Integer,
            SimpleType::NonNegativeInteger,
            SimpleType::PositiveInteger,
            SimpleType::Decimal,
            SimpleType::Double,
            SimpleType::Date,
            SimpleType::Time,
            SimpleType::DateTime,
            SimpleType::NmToken,
            SimpleType::Token,
        ] {
            let v = canonical_value(t, &none).expect("unrestricted type has a value");
            assert!(admits(t, &none, &v), "{t:?}: {v:?}");
            assert_eq!(canonical_value(t, &none), Some(v));
        }
        // Enumeration members win when valid.
        let f = Facets {
            enumeration: vec!["red".into(), "blue".into()],
            ..Facets::default()
        };
        assert_eq!(canonical_value(SimpleType::String, &f), Some("red".into()));
        // Facet bounds are honored.
        let f = Facets {
            min_inclusive: Some("17".into()),
            ..Facets::default()
        };
        let v = canonical_value(SimpleType::Integer, &f).unwrap();
        assert!(admits(SimpleType::Integer, &f, &v));
        // Contradictory restrictions yield no value.
        let f = Facets {
            enumeration: vec!["abc".into()],
            ..Facets::default()
        };
        assert_eq!(canonical_value(SimpleType::Integer, &f), None);
        let f = Facets {
            min_length: Some(5),
            max_length: Some(2),
            ..Facets::default()
        };
        assert_eq!(canonical_value(SimpleType::String, &f), None);
    }

    #[test]
    fn value_space_witnesses_split_differing_specs() {
        let none = Facets::default();
        // Identical specs (and same value class) → provably no witness.
        assert_eq!(
            value_space_witness((SimpleType::String, &none), (SimpleType::Token, &none)),
            None
        );
        // String \ Integer: a non-numeric probe.
        let w = value_space_witness((SimpleType::String, &none), (SimpleType::Integer, &none))
            .expect("strings exceed integers");
        assert!(admits(SimpleType::String, &none, &w));
        assert!(!admits(SimpleType::Integer, &none, &w));
        // Integer ⊆ Decimal lexically — no witness in that direction…
        assert_eq!(
            value_space_witness((SimpleType::Integer, &none), (SimpleType::Decimal, &none)),
            None
        );
        // …but Decimal \ Integer has one.
        assert!(
            value_space_witness((SimpleType::Decimal, &none), (SimpleType::Integer, &none))
                .is_some()
        );
        // Bound tightening: max 10 vs max 5 → a value in (5, 10].
        let wide = Facets {
            max_inclusive: Some("10".into()),
            ..Facets::default()
        };
        let narrow = Facets {
            max_inclusive: Some("5".into()),
            ..Facets::default()
        };
        let w = value_space_witness((SimpleType::Integer, &wide), (SimpleType::Integer, &narrow))
            .expect("loosened bound admits more");
        assert!(admits(SimpleType::Integer, &wide, &w));
        assert!(!admits(SimpleType::Integer, &narrow, &w));
        assert_eq!(
            value_space_witness((SimpleType::Integer, &narrow), (SimpleType::Integer, &wide)),
            None
        );
        // Enumeration widening.
        let two = Facets {
            enumeration: vec!["a".into(), "b".into()],
            ..Facets::default()
        };
        let one = Facets {
            enumeration: vec!["a".into()],
            ..Facets::default()
        };
        assert_eq!(
            value_space_witness((SimpleType::String, &two), (SimpleType::String, &one)),
            Some("b".into())
        );
        // Enumeration-escape probe: unrestricted vs enumerated.
        let w = value_space_witness((SimpleType::String, &none), (SimpleType::String, &one))
            .expect("enumeration restricts");
        assert!(!admits(SimpleType::String, &one, &w));
        // Length facets.
        let short = Facets {
            max_length: Some(3),
            ..Facets::default()
        };
        let w = value_space_witness((SimpleType::String, &none), (SimpleType::String, &short))
            .expect("length restricts");
        assert!(w.chars().count() > 3);
    }
}
