//! A small registry of XML Schema simple types with value validation.
//!
//! The paper treats datatypes as "unavoidable cosmetics" outside the formal
//! model (Section 4), and notes that BonXai does not define simple types
//! natively (Section 5) — it refers to the `xs:` built-ins. This registry
//! covers the built-ins that the paper's examples and realistic schemas
//! use; unknown `xs:` names fall back to `AnySimpleType`.

use std::fmt;

/// A built-in XML Schema simple type.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SimpleType {
    /// `xs:string` — any string.
    String,
    /// `xs:boolean` — `true`, `false`, `1`, `0`.
    Boolean,
    /// `xs:integer` — optionally signed decimal integer.
    Integer,
    /// `xs:nonNegativeInteger`.
    NonNegativeInteger,
    /// `xs:positiveInteger`.
    PositiveInteger,
    /// `xs:decimal` — decimal number.
    Decimal,
    /// `xs:double` — floating point (also covers `xs:float`).
    Double,
    /// `xs:date` — `YYYY-MM-DD`.
    Date,
    /// `xs:time` — `hh:mm:ss(.fff)?`.
    Time,
    /// `xs:dateTime` — `YYYY-MM-DDThh:mm:ss`.
    DateTime,
    /// `xs:anyURI` — any string (URI syntax not enforced).
    AnyUri,
    /// `xs:ID` — an XML name, unique per document.
    Id,
    /// `xs:IDREF` — an XML name referencing an ID.
    IdRef,
    /// `xs:NMTOKEN` — a name token.
    NmToken,
    /// `xs:token`/`xs:normalizedString` — whitespace-normalized string.
    Token,
    /// `xs:anySimpleType` — anything (also the fallback for unknown names).
    AnySimpleType,
}

impl SimpleType {
    /// Resolves a QName like `xs:string` (any prefix) or a bare local name.
    pub fn from_qname(qname: &str) -> SimpleType {
        let local = qname.rsplit_once(':').map_or(qname, |(_, l)| l);
        match local {
            "string" => SimpleType::String,
            "boolean" => SimpleType::Boolean,
            "integer" | "int" | "long" | "short" | "byte" => SimpleType::Integer,
            "nonNegativeInteger" | "unsignedInt" | "unsignedLong" | "unsignedShort"
            | "unsignedByte" => SimpleType::NonNegativeInteger,
            "positiveInteger" => SimpleType::PositiveInteger,
            "decimal" => SimpleType::Decimal,
            "double" | "float" => SimpleType::Double,
            "date" => SimpleType::Date,
            "time" => SimpleType::Time,
            "dateTime" => SimpleType::DateTime,
            "anyURI" => SimpleType::AnyUri,
            "ID" => SimpleType::Id,
            "IDREF" => SimpleType::IdRef,
            "NMTOKEN" => SimpleType::NmToken,
            "token" | "normalizedString" => SimpleType::Token,
            _ => SimpleType::AnySimpleType,
        }
    }

    /// The canonical `xs:`-prefixed name.
    pub fn qname(&self) -> &'static str {
        match self {
            SimpleType::String => "xs:string",
            SimpleType::Boolean => "xs:boolean",
            SimpleType::Integer => "xs:integer",
            SimpleType::NonNegativeInteger => "xs:nonNegativeInteger",
            SimpleType::PositiveInteger => "xs:positiveInteger",
            SimpleType::Decimal => "xs:decimal",
            SimpleType::Double => "xs:double",
            SimpleType::Date => "xs:date",
            SimpleType::Time => "xs:time",
            SimpleType::DateTime => "xs:dateTime",
            SimpleType::AnyUri => "xs:anyURI",
            SimpleType::Id => "xs:ID",
            SimpleType::IdRef => "xs:IDREF",
            SimpleType::NmToken => "xs:NMTOKEN",
            SimpleType::Token => "xs:token",
            SimpleType::AnySimpleType => "xs:anySimpleType",
        }
    }

    /// The *value-semantics class* of the type: types in the same class
    /// accept exactly the same lexical values, so schema comparison
    /// treats them as interchangeable (`xs:string`, `xs:anyURI`,
    /// `xs:token`, and `xs:anySimpleType` all accept every string).
    pub fn value_class(&self) -> u8 {
        match self {
            SimpleType::String
            | SimpleType::AnyUri
            | SimpleType::Token
            | SimpleType::AnySimpleType => 0,
            SimpleType::Boolean => 1,
            SimpleType::Integer => 2,
            SimpleType::NonNegativeInteger => 3,
            SimpleType::PositiveInteger => 4,
            SimpleType::Decimal => 5,
            SimpleType::Double => 6,
            SimpleType::Date => 7,
            SimpleType::Time => 8,
            SimpleType::DateTime => 9,
            // ID/IDREF/NMTOKEN accept the same token syntax
            SimpleType::Id | SimpleType::IdRef | SimpleType::NmToken => 10,
        }
    }

    /// Whether `value` is a valid lexical form of this type.
    pub fn validates(&self, value: &str) -> bool {
        match self {
            SimpleType::String | SimpleType::AnyUri | SimpleType::AnySimpleType => true,
            SimpleType::Token => true, // any string normalizes
            SimpleType::Boolean => matches!(value, "true" | "false" | "1" | "0"),
            SimpleType::Integer => parse_integer(value).is_some(),
            SimpleType::NonNegativeInteger => parse_integer(value).is_some_and(|v| v >= 0),
            SimpleType::PositiveInteger => parse_integer(value).is_some_and(|v| v > 0),
            SimpleType::Decimal => is_decimal(value),
            SimpleType::Double => {
                value.parse::<f64>().is_ok() || matches!(value, "INF" | "-INF" | "NaN")
            }
            SimpleType::Date => is_date(value),
            SimpleType::Time => is_time(value),
            SimpleType::DateTime => {
                value.split_once('T').is_some_and(|(d, t)| is_date(d) && is_time(t))
            }
            SimpleType::Id | SimpleType::IdRef | SimpleType::NmToken => is_nmtoken(value),
        }
    }
}

impl fmt::Display for SimpleType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.qname())
    }
}

/// Restriction facets on a simple type (`<xs:restriction>`).
///
/// The paper's Section 5 names native simple types as "one of the most
/// desirable extensions of the current language" — this implements the
/// extension: BonXai writes `{ type xs:integer { min "0", max "100" } }`
/// and the XSD side round-trips it as an `xs:restriction`.
///
/// Bounds are stored lexically; for numeric bases they compare by value,
/// otherwise lexicographically (the common string-enumeration case uses
/// `enumeration` anyway). The `xs:pattern` facet is not supported.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Facets {
    /// `xs:minInclusive`.
    pub min_inclusive: Option<String>,
    /// `xs:maxInclusive`.
    pub max_inclusive: Option<String>,
    /// `xs:minLength`.
    pub min_length: Option<u32>,
    /// `xs:maxLength`.
    pub max_length: Option<u32>,
    /// `xs:enumeration` values (empty = unconstrained).
    pub enumeration: Vec<String>,
}

impl Facets {
    /// Whether no facet is set.
    pub fn is_empty(&self) -> bool {
        *self == Facets::default()
    }

    /// Whether `value` (already valid for `base`) satisfies the facets.
    pub fn validates(&self, base: SimpleType, value: &str) -> bool {
        if self.is_empty() {
            // No facets (the overwhelmingly common case on the validation
            // hot path): skip the length count below.
            return true;
        }
        if !self.enumeration.is_empty() && !self.enumeration.iter().any(|e| e == value) {
            return false;
        }
        let len = value.chars().count() as u32;
        if self.min_length.is_some_and(|m| len < m) {
            return false;
        }
        if self.max_length.is_some_and(|m| len > m) {
            return false;
        }
        let cmp = |bound: &str, v: &str| -> std::cmp::Ordering {
            match base {
                SimpleType::Integer
                | SimpleType::NonNegativeInteger
                | SimpleType::PositiveInteger
                | SimpleType::Decimal
                | SimpleType::Double => {
                    let b: f64 = bound.trim().parse().unwrap_or(f64::NAN);
                    let x: f64 = v.trim().parse().unwrap_or(f64::NAN);
                    b.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Greater)
                }
                _ => bound.cmp(v),
            }
        };
        if let Some(min) = &self.min_inclusive {
            if cmp(min, value) == std::cmp::Ordering::Greater {
                return false;
            }
        }
        if let Some(max) = &self.max_inclusive {
            if cmp(max, value) == std::cmp::Ordering::Less {
                return false;
            }
        }
        true
    }

    /// Renders the facets in BonXai syntax (`{ min "0", enum "a" }`).
    pub fn display(&self) -> String {
        let mut parts = Vec::new();
        if let Some(v) = &self.min_inclusive {
            parts.push(format!("min {v:?}"));
        }
        if let Some(v) = &self.max_inclusive {
            parts.push(format!("max {v:?}"));
        }
        if let Some(v) = self.min_length {
            parts.push(format!("minLength \"{v}\""));
        }
        if let Some(v) = self.max_length {
            parts.push(format!("maxLength \"{v}\""));
        }
        for e in &self.enumeration {
            parts.push(format!("enum {e:?}"));
        }
        format!("{{ {} }}", parts.join(", "))
    }
}

fn parse_integer(v: &str) -> Option<i128> {
    let v = v.trim();
    if v.is_empty() {
        return None;
    }
    v.parse::<i128>().ok()
}

fn is_decimal(v: &str) -> bool {
    let v = v.trim();
    let v = v.strip_prefix(['+', '-']).unwrap_or(v);
    if v.is_empty() || v == "." {
        return false;
    }
    let mut dots = 0;
    v.chars().all(|c| {
        if c == '.' {
            dots += 1;
            dots <= 1
        } else {
            c.is_ascii_digit()
        }
    })
}

fn is_date(v: &str) -> bool {
    let parts: Vec<&str> = v.splitn(3, '-').collect();
    // (Negative years would start with '-', out of scope.)
    parts.len() == 3
        && parts[0].len() == 4
        && parts.iter().all(|p| p.chars().all(|c| c.is_ascii_digit()))
        && parts[1].parse::<u32>().is_ok_and(|m| (1..=12).contains(&m))
        && parts[2].parse::<u32>().is_ok_and(|d| (1..=31).contains(&d))
}

fn is_time(v: &str) -> bool {
    let (hms, frac) = v.split_once('.').map_or((v, None), |(a, b)| (a, Some(b)));
    if let Some(f) = frac {
        if f.is_empty() || !f.chars().all(|c| c.is_ascii_digit()) {
            return false;
        }
    }
    let parts: Vec<&str> = hms.split(':').collect();
    parts.len() == 3
        && parts[0].parse::<u32>().is_ok_and(|h| h <= 23)
        && parts[1].parse::<u32>().is_ok_and(|m| m <= 59)
        && parts[2].parse::<u32>().is_ok_and(|s| s <= 60)
}

fn is_nmtoken(v: &str) -> bool {
    !v.is_empty()
        && v.chars()
            .all(|c| c.is_alphanumeric() || matches!(c, '.' | '-' | '_' | ':'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qname_resolution_roundtrip() {
        for t in [
            SimpleType::String,
            SimpleType::Integer,
            SimpleType::Date,
            SimpleType::Boolean,
            SimpleType::Decimal,
        ] {
            assert_eq!(SimpleType::from_qname(t.qname()), t);
        }
        assert_eq!(SimpleType::from_qname("xsd:string"), SimpleType::String);
        assert_eq!(SimpleType::from_qname("string"), SimpleType::String);
        assert_eq!(
            SimpleType::from_qname("xs:gYearMonth"),
            SimpleType::AnySimpleType
        );
    }

    #[test]
    fn integer_validation() {
        assert!(SimpleType::Integer.validates("42"));
        assert!(SimpleType::Integer.validates("-7"));
        assert!(!SimpleType::Integer.validates("4.2"));
        assert!(!SimpleType::Integer.validates("abc"));
        assert!(!SimpleType::Integer.validates(""));
        assert!(SimpleType::NonNegativeInteger.validates("0"));
        assert!(!SimpleType::NonNegativeInteger.validates("-1"));
        assert!(!SimpleType::PositiveInteger.validates("0"));
    }

    #[test]
    fn boolean_validation() {
        for v in ["true", "false", "1", "0"] {
            assert!(SimpleType::Boolean.validates(v));
        }
        assert!(!SimpleType::Boolean.validates("TRUE"));
        assert!(!SimpleType::Boolean.validates("yes"));
    }

    #[test]
    fn decimal_validation() {
        assert!(SimpleType::Decimal.validates("3.14"));
        assert!(SimpleType::Decimal.validates("-0.5"));
        assert!(SimpleType::Decimal.validates("42"));
        assert!(!SimpleType::Decimal.validates("3.1.4"));
        assert!(!SimpleType::Decimal.validates("."));
        assert!(!SimpleType::Decimal.validates("1e5"));
    }

    #[test]
    fn date_time_validation() {
        assert!(SimpleType::Date.validates("2015-05-31"));
        assert!(!SimpleType::Date.validates("2015-13-01"));
        assert!(!SimpleType::Date.validates("15-05-31"));
        assert!(SimpleType::Time.validates("09:30:00"));
        assert!(SimpleType::Time.validates("09:30:00.125"));
        assert!(!SimpleType::Time.validates("24:00:61"));
        assert!(SimpleType::DateTime.validates("2015-05-31T09:30:00"));
        assert!(!SimpleType::DateTime.validates("2015-05-31 09:30:00"));
    }

    #[test]
    fn nmtoken_validation() {
        assert!(SimpleType::NmToken.validates("some-token_1"));
        assert!(!SimpleType::NmToken.validates("two words"));
        assert!(!SimpleType::NmToken.validates(""));
    }

    #[test]
    fn string_accepts_anything() {
        assert!(SimpleType::String.validates(""));
        assert!(SimpleType::String.validates("anything at all & more"));
    }
}

#[cfg(test)]
mod facet_tests {
    use super::*;

    #[test]
    fn numeric_bounds() {
        let f = Facets {
            min_inclusive: Some("0".into()),
            max_inclusive: Some("100".into()),
            ..Facets::default()
        };
        assert!(f.validates(SimpleType::Integer, "0"));
        assert!(f.validates(SimpleType::Integer, "100"));
        assert!(f.validates(SimpleType::Integer, "42"));
        assert!(!f.validates(SimpleType::Integer, "-1"));
        assert!(!f.validates(SimpleType::Integer, "101"));
        // numeric, not lexicographic: "9" < "10"
        assert!(f.validates(SimpleType::Integer, "9"));
    }

    #[test]
    fn string_bounds_are_lexicographic() {
        let f = Facets {
            min_inclusive: Some("b".into()),
            max_inclusive: Some("d".into()),
            ..Facets::default()
        };
        assert!(f.validates(SimpleType::String, "c"));
        assert!(!f.validates(SimpleType::String, "a"));
        assert!(!f.validates(SimpleType::String, "e"));
    }

    #[test]
    fn lengths_and_enumeration() {
        let f = Facets {
            min_length: Some(2),
            max_length: Some(4),
            ..Facets::default()
        };
        assert!(!f.validates(SimpleType::String, "x"));
        assert!(f.validates(SimpleType::String, "xy"));
        assert!(!f.validates(SimpleType::String, "xyzzy"));

        let e = Facets {
            enumeration: vec!["alpha".into(), "beta".into()],
            ..Facets::default()
        };
        assert!(e.validates(SimpleType::String, "alpha"));
        assert!(!e.validates(SimpleType::String, "gamma"));
    }

    #[test]
    fn empty_facets_accept_everything() {
        let f = Facets::default();
        assert!(f.is_empty());
        assert!(f.validates(SimpleType::String, "anything"));
        assert!(f.validates(SimpleType::Integer, "-999"));
    }

    #[test]
    fn display_roundtrips_visually() {
        let f = Facets {
            min_inclusive: Some("0".into()),
            enumeration: vec!["a".into()],
            ..Facets::default()
        };
        let s = f.display();
        assert!(s.contains("min \"0\""));
        assert!(s.contains("enum \"a\""));
    }
}
