//! XSD type minimization — the adaptation of Martens & Niehren \[22\]
//! sketched after Algorithm 4 in the paper.
//!
//! Produces an equivalent XSD whose set of `Types` is minimal, **without
//! restructuring any content model** — as the paper notes, deterministic
//! regular expressions cannot be efficiently minimized, so the expressions
//! themselves are kept verbatim; only equivalent *types* are merged.
//!
//! Two types are equivalent when their content languages over *typed*
//! element names coincide (with types compared up to the equivalence being
//! computed) and their carried metadata (mixedness, attributes) agrees.
//! This is a greatest-fixpoint partition refinement; language comparison
//! uses canonical minimal-DFA keys ([`relang::ops::canonical`]), making
//! each round near-linear.

use std::collections::BTreeMap;

use relang::ops::canonical::{language_key, LanguageKey};
use relang::ops::regex_to_dfa;
use relang::{Regex, Sym};

use crate::content::AttributeUse;
use crate::model::{TypeDef, TypeId, Xsd};

/// Minimizes the number of types of `xsd`, returning an equivalent XSD.
///
/// The i-th surviving type keeps the name of its lowest-numbered member
/// (stable and deterministic).
pub fn minimize_types(xsd: &Xsd) -> Xsd {
    let n = xsd.n_types();
    if n == 0 {
        return xsd.clone();
    }

    // block[t] = current equivalence class of type t. Start coarse.
    let mut block: Vec<usize> = vec![0; n];
    loop {
        let mut keys: Vec<(MetaKey, LanguageKey)> = Vec::with_capacity(n);
        for t in xsd.type_ids() {
            keys.push(type_key(xsd, t, &block));
        }
        let mut next_of_key: BTreeMap<(MetaKey, LanguageKey), usize> = BTreeMap::new();
        let mut next: Vec<usize> = Vec::with_capacity(n);
        for key in keys {
            let id = next_of_key.len();
            let b = *next_of_key.entry(key).or_insert(id);
            next.push(b);
        }
        if next == block {
            break;
        }
        block = next;
    }

    rebuild(xsd, &block)
}

/// Metadata part of a type's signature: mixedness, openness, simple
/// content, and attributes.
type MetaKey = (
    bool,
    bool,
    Option<crate::simple_types::SimpleType>,
    crate::simple_types::Facets,
    Vec<AttributeUse>,
);

/// Signature of a type under the current partition: metadata + canonical
/// key of its content language over (name, block)-pairs.
fn type_key(xsd: &Xsd, t: TypeId, block: &[usize]) -> (MetaKey, LanguageKey) {
    let def = xsd.type_def(t);
    let meta = (
        def.content.mixed,
        def.content.open,
        def.content.simple_content,
        def.content.simple_facets.clone(),
        def.content.attributes.clone(),
    );

    // Map each occurring (sym, block-of-child-type) to a dense local
    // symbol. Sorted so the mapping is deterministic.
    let mut typed_syms: Vec<(Sym, usize)> = def
        .content
        .regex
        .symbols()
        .into_iter()
        .map(|s| {
            let ct = def.child_type[&s];
            (s, block[ct.index()])
        })
        .collect();
    typed_syms.sort_unstable();
    let index: BTreeMap<Sym, usize> = typed_syms
        .iter()
        .enumerate()
        .map(|(i, &(s, _))| (s, i))
        .collect();
    let relabeled: Regex = def
        .content
        .regex
        .map_symbols(&mut |s| Sym(index[&s] as u32));
    let dfa = regex_to_dfa(&relabeled, typed_syms.len().max(1));
    let mut lang = language_key(&dfa);
    // Prepend the typed-symbol list to the key so that languages over
    // different (sym, block) sets never collide.
    lang = extend_key(lang, &typed_syms);
    (meta, lang)
}

fn extend_key(key: LanguageKey, typed_syms: &[(Sym, usize)]) -> LanguageKey {
    // LanguageKey is opaque; wrap by hashing the symbol list into a new
    // composite key via a debug-stable encoding.
    let mut parts: Vec<u64> = Vec::with_capacity(typed_syms.len() * 2 + 1);
    parts.push(typed_syms.len() as u64);
    for &(s, b) in typed_syms {
        parts.push(u64::from(s.0));
        parts.push(b as u64);
    }
    LanguageKey::compose(parts, key)
}

/// Quotient of `xsd` by the partition `block`.
fn rebuild(xsd: &Xsd, block: &[usize]) -> Xsd {
    let n_blocks = block.iter().copied().max().unwrap_or(0) + 1;
    // Representative = lowest type id in each block.
    let mut repr: Vec<Option<TypeId>> = vec![None; n_blocks];
    for t in xsd.type_ids() {
        let b = block[t.index()];
        if repr[b].is_none() {
            repr[b] = Some(t);
        }
    }
    let mut types: Vec<(String, TypeDef)> = Vec::with_capacity(n_blocks);
    for r in repr.iter().take(n_blocks) {
        let r = r.expect("every block has a member");
        let def = xsd.type_def(r);
        let child_type = def
            .child_type
            .iter()
            .map(|(&s, &ct)| (s, TypeId(block[ct.index()] as u32)))
            .collect();
        types.push((
            xsd.type_name(r).to_owned(),
            TypeDef {
                content: def.content.clone(),
                child_type,
            },
        ));
    }
    let t0 = xsd
        .start_elements()
        .iter()
        .map(|(&s, &t)| (s, TypeId(block[t.index()] as u32)))
        .collect();
    Xsd::new(xsd.ename.clone(), types, t0).expect("quotient of a valid XSD is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::ContentModel;
    use crate::model::XsdBuilder;
    use crate::validate::is_valid;
    use xmltree::builder::elem;

    /// Two structurally duplicated section types that are semantically
    /// identical — minimization must merge them.
    fn redundant_xsd() -> Xsd {
        let mut b = XsdBuilder::new();
        let doc = b.ename.intern("doc");
        let a = b.ename.intern("a");
        let bsym = b.ename.intern("b");
        let t_doc = b.declare_type("Tdoc");
        let t_a1 = b.declare_type("Ta1");
        let t_a2 = b.declare_type("Ta2");
        let t_b = b.declare_type("Tb");
        b.define(
            t_doc,
            TypeDef {
                content: ContentModel::new(Regex::concat(vec![Regex::sym(a), Regex::sym(bsym)])),
                child_type: [(a, t_a1), (bsym, t_b)].into(),
            },
        );
        // Ta1 and Ta2 describe the same language with different expressions
        // and reference each other symmetrically.
        b.define(
            t_a1,
            TypeDef {
                content: ContentModel::new(Regex::star(Regex::sym(a))),
                child_type: [(a, t_a2)].into(),
            },
        );
        b.define(
            t_a2,
            TypeDef {
                // a* written as (a a*)? — same language, different DRE
                content: ContentModel::new(Regex::opt(Regex::concat(vec![
                    Regex::sym(a),
                    Regex::star(Regex::sym(a)),
                ]))),
                child_type: [(a, t_a1)].into(),
            },
        );
        b.define(
            t_b,
            TypeDef {
                content: ContentModel::empty(),
                child_type: [].into(),
            },
        );
        b.add_start(doc, t_doc);
        b.build().unwrap()
    }

    #[test]
    fn merges_equivalent_types() {
        let x = redundant_xsd();
        assert_eq!(x.n_types(), 4);
        let m = minimize_types(&x);
        assert_eq!(m.n_types(), 3); // Ta1 and Ta2 merged
    }

    #[test]
    fn preserves_document_language() {
        let x = redundant_xsd();
        let m = minimize_types(&x);
        let docs = [
            elem("doc").child(elem("a")).child(elem("b")).build(),
            elem("doc")
                .child(elem("a").child(elem("a")).child(elem("a")))
                .child(elem("b"))
                .build(),
            elem("doc").child(elem("b")).child(elem("a")).build(), // invalid
            elem("doc").child(elem("a")).build(),                  // invalid
        ];
        for d in &docs {
            assert_eq!(is_valid(&x, d), is_valid(&m, d));
        }
    }

    #[test]
    fn does_not_merge_types_with_different_metadata() {
        let mut b = XsdBuilder::new();
        let doc = b.ename.intern("doc");
        let a = b.ename.intern("a");
        let t_doc = b.declare_type("Tdoc");
        let t_m = b.declare_type("Tmixed");
        let t_p = b.declare_type("Tplain");
        b.define(
            t_doc,
            TypeDef {
                content: ContentModel::new(Regex::concat(vec![Regex::sym(a), Regex::sym(a)])),
                // EDC forces one type per name in one content model, so use
                // Tmixed here and reach Tplain beneath it.
                child_type: [(a, t_m)].into(),
            },
        );
        b.define(
            t_m,
            TypeDef {
                content: ContentModel::new(Regex::opt(Regex::sym(a))).with_mixed(true),
                child_type: [(a, t_p)].into(),
            },
        );
        b.define(
            t_p,
            TypeDef {
                content: ContentModel::new(Regex::opt(Regex::sym(a))),
                child_type: [(a, t_p)].into(),
            },
        );
        b.add_start(doc, t_doc);
        let x = b.build().unwrap();
        let m = minimize_types(&x);
        assert_eq!(m.n_types(), 3); // mixed ≠ plain despite equal regex shape
    }

    #[test]
    fn already_minimal_is_untouched() {
        let x = redundant_xsd();
        let m = minimize_types(&x);
        let m2 = minimize_types(&m);
        assert_eq!(m.n_types(), m2.n_types());
    }
}
