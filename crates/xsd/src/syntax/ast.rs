//! Surface AST for the XSD XML syntax (the subset of `xs:` constructs the
//! paper exercises: global elements, named and anonymous complex types,
//! sequence/choice/all particles with occurrence bounds, groups, attributes
//! and attribute groups, mixed content, and simple types).

use relang::UpperBound;

use crate::content::AttributeUse;
use crate::simple_types::{Facets, SimpleType};

/// A whole `<xs:schema>` document.
#[derive(Clone, Debug, Default)]
pub struct SchemaDoc {
    /// `targetNamespace`, if declared.
    pub target_namespace: Option<String>,
    /// Global element declarations (the candidates for T0).
    pub roots: Vec<ElementDecl>,
    /// Named complex types, in document order.
    pub named_types: Vec<(String, ComplexType)>,
    /// Named model groups (`<xs:group name=…>`).
    pub groups: Vec<(String, Particle)>,
    /// Named attribute groups.
    pub attribute_groups: Vec<(String, Vec<AttributeUse>)>,
    /// Named simple types (`<xs:simpleType name=…>` restrictions).
    pub simple_types: Vec<(String, (SimpleType, Facets))>,
}

/// An element declaration: a name plus how its type is given.
#[derive(Clone, Debug, PartialEq)]
pub struct ElementDecl {
    /// Element name.
    pub name: String,
    /// The element's type.
    pub type_ref: TypeRef,
}

/// How an element's type is specified.
#[derive(Clone, Debug, PartialEq)]
pub enum TypeRef {
    /// `type="TName"` referencing a named complex type.
    Named(String),
    /// An inline anonymous `<xs:complexType>`.
    Inline(Box<ComplexType>),
    /// `type="xs:…"` or a named simple type: simple content.
    Simple(SimpleType, Facets),
    /// No type given: empty content (`xs:anyType` restricted to empty).
    Empty,
}

/// A complex type: optional particle, attributes, mixedness.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ComplexType {
    /// The content particle (None = empty content).
    pub particle: Option<Particle>,
    /// `mixed="true"`.
    pub mixed: bool,
    /// Directly declared attributes.
    pub attributes: Vec<AttributeUse>,
    /// Referenced attribute groups.
    pub attr_group_refs: Vec<String>,
    /// Simple content base type (`<xs:simpleContent><xs:extension base=…>`).
    pub simple_base: Option<(SimpleType, Facets)>,
}

/// Occurrence bounds (`minOccurs` / `maxOccurs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Occurs {
    /// `minOccurs` (default 1).
    pub min: u32,
    /// `maxOccurs` (default 1; `unbounded` = `Unbounded`).
    pub max: UpperBound,
}

impl Occurs {
    /// The default bounds `[1, 1]`.
    pub const ONCE: Occurs = Occurs {
        min: 1,
        max: UpperBound::Finite(1),
    };

    /// Whether these are the default bounds.
    pub fn is_once(&self) -> bool {
        *self == Self::ONCE
    }
}

/// A content particle.
#[derive(Clone, Debug, PartialEq)]
pub enum Particle {
    /// A (possibly repeated) element declaration.
    Element {
        /// The declared element.
        decl: ElementDecl,
        /// Occurrence bounds.
        occurs: Occurs,
    },
    /// `<xs:sequence>`.
    Sequence {
        /// Item particles in order.
        items: Vec<Particle>,
        /// Occurrence bounds.
        occurs: Occurs,
    },
    /// `<xs:choice>`.
    Choice {
        /// Alternative particles.
        items: Vec<Particle>,
        /// Occurrence bounds.
        occurs: Occurs,
    },
    /// `<xs:all>` — restricted interleaving.
    All {
        /// Item particles (element declarations).
        items: Vec<Particle>,
    },
    /// `<xs:group ref=…>`.
    GroupRef {
        /// Referenced group name.
        name: String,
        /// Occurrence bounds.
        occurs: Occurs,
    },
}
