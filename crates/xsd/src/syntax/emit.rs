//! Emitting the formal core model back to XSD XML syntax.
//!
//! The emitter builds an [`xmltree::Document`] and pretty-prints it, so the
//! output is well-formed by construction. Counting operators become
//! `minOccurs`/`maxOccurs`, interleavings become `xs:all`, and pure
//! simple-content types are inlined as `type="xs:…"` at their use sites.

use relang::{Regex, UpperBound};
use xmltree::{Document, NodeId};

use crate::content::ContentModel;
use crate::model::{TypeId, Xsd};
use crate::syntax::parse::SyntaxError;

/// Serializes `xsd` as an `<xs:schema>` document.
///
/// Fails only for content models whose language is empty (`∅`), which XSD
/// syntax cannot express (and which no translation in this library
/// produces).
pub fn emit_xsd(xsd: &Xsd, target_namespace: Option<&str>) -> Result<String, SyntaxError> {
    let mut doc = Document::new("xs:schema");
    let root = doc.root();
    doc.set_attribute(root, "xmlns:xs", "http://www.w3.org/2001/XMLSchema");
    doc.set_attribute(root, "elementFormDefault", "qualified");
    if let Some(tns) = target_namespace {
        doc.set_attribute(root, "targetNamespace", tns);
        doc.set_attribute(root, "xmlns", tns);
    }

    // Global elements.
    for (&sym, &t) in xsd.start_elements() {
        let e = doc.add_element(root, "xs:element");
        doc.set_attribute(e, "name", xsd.ename.name(sym));
        doc.set_attribute(e, "type", &type_ref_string(xsd, t));
    }

    // Named complex types (pure simple types are referenced inline).
    for t in xsd.type_ids() {
        if is_pure_simple(xsd.content(t)) {
            continue;
        }
        let ct = doc.add_element(root, "xs:complexType");
        doc.set_attribute(ct, "name", xsd.type_name(t));
        emit_complex_body(xsd, &mut doc, ct, t)?;
    }

    Ok(xmltree::to_string_pretty(&doc))
}

/// Whether a type can be referenced as a bare `xs:` simple type.
fn is_pure_simple(cm: &ContentModel) -> bool {
    cm.simple_content.is_some() && cm.attributes.is_empty() && cm.simple_facets.is_empty()
}

fn type_ref_string(xsd: &Xsd, t: TypeId) -> String {
    let cm = xsd.content(t);
    if is_pure_simple(cm) {
        cm.simple_content
            .expect("checked by is_pure_simple")
            .qname()
            .to_owned()
    } else {
        xsd.type_name(t).to_owned()
    }
}

fn emit_complex_body(
    xsd: &Xsd,
    doc: &mut Document,
    ct_node: NodeId,
    t: TypeId,
) -> Result<(), SyntaxError> {
    let cm = xsd.content(t);
    if let Some(st) = cm.simple_content {
        // <xs:simpleContent> with an extension (no facets) or a
        // restriction carrying the facets.
        let sc = doc.add_element(ct_node, "xs:simpleContent");
        let inner = if cm.simple_facets.is_empty() {
            doc.add_element(sc, "xs:extension")
        } else {
            let r = doc.add_element(sc, "xs:restriction");
            emit_facets(doc, r, &cm.simple_facets);
            r
        };
        doc.set_attribute(inner, "base", st.qname());
        emit_attributes(doc, inner, cm);
        return Ok(());
    }
    if cm.mixed {
        doc.set_attribute(ct_node, "mixed", "true");
    }
    if cm.regex != Regex::Epsilon {
        emit_model_group(xsd, doc, ct_node, t, &cm.regex)?;
    }
    emit_attributes(doc, ct_node, cm);
    Ok(())
}

fn emit_attributes(doc: &mut Document, parent: NodeId, cm: &ContentModel) {
    for a in &cm.attributes {
        let node = doc.add_element(parent, "xs:attribute");
        doc.set_attribute(node, "name", &a.name);
        if a.required {
            doc.set_attribute(node, "use", "required");
        }
        if a.facets.is_empty() {
            doc.set_attribute(node, "type", a.simple_type.qname());
        } else {
            // inline <xs:simpleType><xs:restriction> with the facets
            let st = doc.add_element(node, "xs:simpleType");
            let r = doc.add_element(st, "xs:restriction");
            doc.set_attribute(r, "base", a.simple_type.qname());
            emit_facets(doc, r, &a.facets);
        }
    }
}

fn emit_facets(doc: &mut Document, parent: NodeId, facets: &xsd_facets::Facets) {
    let mut add = |name: &str, value: &str| {
        let f = doc.add_element(parent, name);
        doc.set_attribute(f, "value", value);
    };
    if let Some(v) = &facets.min_inclusive {
        add("xs:minInclusive", v);
    }
    if let Some(v) = &facets.max_inclusive {
        add("xs:maxInclusive", v);
    }
    if let Some(v) = facets.min_length {
        add("xs:minLength", &v.to_string());
    }
    if let Some(v) = facets.max_length {
        add("xs:maxLength", &v.to_string());
    }
    for e in &facets.enumeration {
        add("xs:enumeration", e);
    }
}

use crate::simple_types as xsd_facets;

/// Emits `regex` as a model group child of `parent` (wrapping a lone
/// element in a sequence, since complexType children must be groups).
fn emit_model_group(
    xsd: &Xsd,
    doc: &mut Document,
    parent: NodeId,
    t: TypeId,
    regex: &Regex,
) -> Result<(), SyntaxError> {
    match regex {
        Regex::Concat(_) | Regex::Alt(_) | Regex::Interleave(_) => {
            emit_particle(xsd, doc, parent, t, regex, Bounds::ONCE)
        }
        _ => {
            let seq = doc.add_element(parent, "xs:sequence");
            emit_particle(xsd, doc, seq, t, regex, Bounds::ONCE)
        }
    }
}

/// Occurrence bounds accumulated while unwrapping repetition operators.
#[derive(Clone, Copy)]
struct Bounds {
    min: u32,
    max: UpperBound,
}

impl Bounds {
    const ONCE: Bounds = Bounds {
        min: 1,
        max: UpperBound::Finite(1),
    };

    fn is_once(&self) -> bool {
        self.min == 1 && self.max == UpperBound::Finite(1)
    }

    fn write(&self, doc: &mut Document, node: NodeId) {
        if self.min != 1 {
            doc.set_attribute(node, "minOccurs", &self.min.to_string());
        }
        match self.max {
            UpperBound::Finite(1) => {}
            UpperBound::Finite(m) => doc.set_attribute(node, "maxOccurs", &m.to_string()),
            UpperBound::Unbounded => doc.set_attribute(node, "maxOccurs", "unbounded"),
        }
    }
}

fn emit_particle(
    xsd: &Xsd,
    doc: &mut Document,
    parent: NodeId,
    t: TypeId,
    regex: &Regex,
    bounds: Bounds,
) -> Result<(), SyntaxError> {
    match regex {
        Regex::Empty => Err(SyntaxError::new(format!(
            "content model of type {} has empty language; not expressible in XSD",
            xsd.type_name(t)
        ))),
        Regex::Epsilon => {
            // ε under repetition is still ε: an empty sequence.
            let node = doc.add_element(parent, "xs:sequence");
            let _ = node;
            Ok(())
        }
        Regex::Sym(s) => {
            let node = doc.add_element(parent, "xs:element");
            doc.set_attribute(node, "name", xsd.ename.name(*s));
            let child = xsd
                .child_type(t, *s)
                .expect("valid XSD has complete child typing");
            doc.set_attribute(node, "type", &type_ref_string(xsd, child));
            bounds.write(doc, node);
            Ok(())
        }
        Regex::Concat(parts) => {
            let node = doc.add_element(parent, "xs:sequence");
            bounds.write(doc, node);
            for p in parts {
                emit_particle(xsd, doc, node, t, p, Bounds::ONCE)?;
            }
            Ok(())
        }
        Regex::Alt(parts) => {
            let node = doc.add_element(parent, "xs:choice");
            bounds.write(doc, node);
            for p in parts {
                emit_particle(xsd, doc, node, t, p, Bounds::ONCE)?;
            }
            Ok(())
        }
        Regex::Interleave(parts) => {
            if !bounds.is_once() {
                return Err(SyntaxError::new(
                    "xs:all cannot carry occurrence bounds".to_owned(),
                ));
            }
            let node = doc.add_element(parent, "xs:all");
            for p in parts {
                emit_particle(xsd, doc, node, t, p, Bounds::ONCE)?;
            }
            Ok(())
        }
        Regex::Star(inner) => {
            emit_repeated(xsd, doc, parent, t, inner, bounds, 0, UpperBound::Unbounded)
        }
        Regex::Plus(inner) => {
            emit_repeated(xsd, doc, parent, t, inner, bounds, 1, UpperBound::Unbounded)
        }
        Regex::Opt(inner) => {
            emit_repeated(xsd, doc, parent, t, inner, bounds, 0, UpperBound::Finite(1))
        }
        Regex::Repeat(inner, lo, hi) => emit_repeated(xsd, doc, parent, t, inner, bounds, *lo, *hi),
    }
}

/// Emits `inner{lo,hi}`. If the outer context already carries non-default
/// bounds (e.g. `(a?)* ` after constructor normalization cannot occur, but
/// `(a{2,3})*` can), the repetition is wrapped in a sequence so that both
/// bounds survive.
#[allow(clippy::too_many_arguments)]
fn emit_repeated(
    xsd: &Xsd,
    doc: &mut Document,
    parent: NodeId,
    t: TypeId,
    inner: &Regex,
    outer: Bounds,
    lo: u32,
    hi: UpperBound,
) -> Result<(), SyntaxError> {
    let bounds = Bounds { min: lo, max: hi };
    if outer.is_once() {
        match inner {
            Regex::Sym(_) | Regex::Concat(_) | Regex::Alt(_) => {
                emit_particle(xsd, doc, parent, t, inner, bounds)
            }
            _ => {
                // nested repetition: wrap in a sequence carrying the bounds
                let seq = doc.add_element(parent, "xs:sequence");
                bounds.write(doc, seq);
                emit_particle(xsd, doc, seq, t, inner, Bounds::ONCE)
            }
        }
    } else {
        let seq = doc.add_element(parent, "xs:sequence");
        outer.write(doc, seq);
        emit_particle(xsd, doc, seq, t, inner, bounds)
    }
}
