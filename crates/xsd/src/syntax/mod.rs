//! XSD XML syntax: reading `<xs:schema>` documents into the formal core
//! model and writing the core model back out.
//!
//! ```
//! let source = r#"
//!   <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
//!     <xs:element name="doc" type="Tdoc"/>
//!     <xs:complexType name="Tdoc">
//!       <xs:sequence>
//!         <xs:element name="title" type="xs:string"/>
//!         <xs:element name="section" type="Tsec" minOccurs="0" maxOccurs="unbounded"/>
//!       </xs:sequence>
//!     </xs:complexType>
//!     <xs:complexType name="Tsec" mixed="true">
//!       <xs:attribute name="title" type="xs:string" use="required"/>
//!     </xs:complexType>
//!   </xs:schema>"#;
//! let xsd = xsd::syntax::parse_xsd(source).unwrap();
//! assert_eq!(xsd.root_names().len(), 1);
//! let emitted = xsd::syntax::emit_xsd(&xsd, None).unwrap();
//! let back = xsd::syntax::parse_xsd(&emitted).unwrap();
//! assert_eq!(back.n_types(), xsd.n_types());
//! ```

pub mod ast;
pub mod emit;
pub mod lower;
pub mod parse;

pub use ast::{ComplexType, ElementDecl, Occurs, Particle, SchemaDoc, TypeRef};
pub use emit::emit_xsd;
pub use parse::{read_schema_doc, SyntaxError};

use crate::model::Xsd;

/// Parses XSD XML text into the formal core model.
pub fn parse_xsd(source: &str) -> Result<Xsd, SyntaxError> {
    let doc = xmltree::parse_document(source)
        .map_err(|e| SyntaxError::new(format!("not well-formed XML: {e}")))?;
    parse_xsd_doc(&doc)
}

/// Parses an already-parsed `<xs:schema>` document into the core model.
pub fn parse_xsd_doc(doc: &xmltree::Document) -> Result<Xsd, SyntaxError> {
    let surface = read_schema_doc(doc)?;
    lower::lower(&surface)
}

/// Parses XSD XML text without the final core checks (UPA, child-typing
/// completeness); see [`crate::model::Xsd::new_unchecked`]. Well-formedness
/// and structural errors are still hard errors.
pub fn parse_xsd_unchecked(source: &str) -> Result<Xsd, SyntaxError> {
    let doc = xmltree::parse_document(source)
        .map_err(|e| SyntaxError::new(format!("not well-formed XML: {e}")))?;
    let surface = read_schema_doc(&doc)?;
    lower::lower_unchecked(&surface)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::is_valid;
    use xmltree::builder::elem;

    const MARKUP_XSD: &str = r#"
      <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"
                 targetNamespace="http://mydomain.org/namespace">
        <xs:element name="document" type="Tdocument"/>
        <xs:complexType name="Tdocument">
          <xs:sequence>
            <xs:element name="template" type="Ttemplate"/>
            <xs:element name="content" type="Tcontent"/>
          </xs:sequence>
        </xs:complexType>
        <xs:complexType name="Ttemplate">
          <xs:sequence>
            <xs:element name="section" minOccurs="0" type="TtemplateSection"/>
          </xs:sequence>
        </xs:complexType>
        <xs:complexType name="Tcontent">
          <xs:sequence>
            <xs:element name="section" minOccurs="0" maxOccurs="unbounded" type="Tsection"/>
          </xs:sequence>
        </xs:complexType>
        <xs:complexType name="TtemplateSection">
          <xs:sequence>
            <xs:element name="section" type="TtemplateSection" minOccurs="0"/>
          </xs:sequence>
        </xs:complexType>
        <xs:complexType name="Tsection" mixed="true">
          <xs:choice minOccurs="0" maxOccurs="unbounded">
            <xs:element name="section" type="Tsection"/>
            <xs:element name="bold" type="xs:string"/>
          </xs:choice>
          <xs:attribute name="title" type="xs:string" use="required"/>
        </xs:complexType>
      </xs:schema>"#;

    #[test]
    fn parses_figure3_style_schema() {
        let x = parse_xsd(MARKUP_XSD).unwrap();
        assert_eq!(x.root_names().len(), 1);
        // named types + the shared xs:string simple type
        assert_eq!(x.n_types(), 6);
        let t_sec = x.type_by_name("Tsection").unwrap();
        assert!(x.content(t_sec).mixed);
        assert_eq!(x.content(t_sec).attributes[0].name, "title");
    }

    #[test]
    fn parsed_schema_validates_documents() {
        let x = parse_xsd(MARKUP_XSD).unwrap();
        let good = elem("document")
            .child(elem("template").child(elem("section")))
            .child(
                elem("content")
                    .child(elem("section").attr("title", "Intro").text("hi "))
                    .child(elem("section").attr("title", "More")),
            )
            .build();
        assert!(is_valid(&x, &good));
        // template section with a title → undeclared attribute
        let bad = elem("document")
            .child(elem("template").child(elem("section").attr("title", "nope")))
            .child(elem("content"))
            .build();
        assert!(!is_valid(&x, &bad));
    }

    #[test]
    fn roundtrip_through_emission() {
        let x = parse_xsd(MARKUP_XSD).unwrap();
        let emitted = emit_xsd(&x, Some("http://mydomain.org/namespace")).unwrap();
        let back = parse_xsd(&emitted).unwrap();
        assert_eq!(back.n_types(), x.n_types());
        // language agreement on sample documents
        let docs = [
            elem("document")
                .child(elem("template"))
                .child(elem("content").child(elem("section").attr("title", "t")))
                .build(),
            elem("document").child(elem("content")).build(), // invalid
        ];
        for d in &docs {
            assert_eq!(is_valid(&x, d), is_valid(&back, d));
        }
    }

    #[test]
    fn inline_anonymous_types() {
        let src = r#"
          <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
            <xs:element name="doc">
              <xs:complexType>
                <xs:sequence>
                  <xs:element name="leaf" type="xs:integer"/>
                </xs:sequence>
              </xs:complexType>
            </xs:element>
          </xs:schema>"#;
        let x = parse_xsd(src).unwrap();
        assert_eq!(x.root_names().len(), 1);
        let good = elem("doc").child(elem("leaf").text("42")).build();
        assert!(is_valid(&x, &good));
        let bad = elem("doc").child(elem("leaf").text("forty-two")).build();
        assert!(!is_valid(&x, &bad));
    }

    #[test]
    fn groups_and_attribute_groups_expand() {
        let src = r#"
          <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
            <xs:element name="doc" type="Tdoc"/>
            <xs:group name="markup">
              <xs:choice>
                <xs:element name="bold" type="xs:string"/>
                <xs:element name="italic" type="xs:string"/>
              </xs:choice>
            </xs:group>
            <xs:attributeGroup name="fontattr">
              <xs:attribute name="name" type="xs:string"/>
              <xs:attribute name="size" type="xs:integer"/>
            </xs:attributeGroup>
            <xs:complexType name="Tdoc" mixed="true">
              <xs:sequence>
                <xs:group ref="markup" minOccurs="0" maxOccurs="unbounded"/>
              </xs:sequence>
              <xs:attributeGroup ref="fontattr"/>
            </xs:complexType>
          </xs:schema>"#;
        let x = parse_xsd(src).unwrap();
        let t = x.type_by_name("Tdoc").unwrap();
        assert_eq!(x.content(t).attributes.len(), 2);
        let good = elem("doc")
            .attr("size", "12")
            .child(elem("bold").text("b"))
            .child(elem("italic").text("i"))
            .build();
        assert!(is_valid(&x, &good));
    }

    #[test]
    fn xs_all_parses_and_validates() {
        let src = r#"
          <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
            <xs:element name="doc" type="T"/>
            <xs:complexType name="T">
              <xs:all>
                <xs:element name="a" type="xs:string"/>
                <xs:element name="b" type="xs:string" minOccurs="0"/>
              </xs:all>
            </xs:complexType>
          </xs:schema>"#;
        let x = parse_xsd(src).unwrap();
        for (children, ok) in [
            (vec!["a"], true),
            (vec!["a", "b"], true),
            (vec!["b", "a"], true),
            (vec!["b"], false),
            (vec!["a", "b", "b"], false),
        ] {
            let mut b = elem("doc");
            for c in &children {
                b = b.child(elem(c).text("x"));
            }
            let d = b.build();
            assert_eq!(is_valid(&x, &d), ok, "{children:?}");
        }
    }

    #[test]
    fn edc_violation_detected() {
        let src = r#"
          <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
            <xs:element name="doc" type="T"/>
            <xs:complexType name="T">
              <xs:sequence>
                <xs:element name="a" type="xs:string"/>
                <xs:element name="a" type="xs:integer"/>
              </xs:sequence>
            </xs:complexType>
          </xs:schema>"#;
        let err = parse_xsd(src).unwrap_err();
        assert!(err.message.contains("EDC"), "{err}");
    }

    #[test]
    fn upa_violation_detected() {
        let src = r#"
          <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
            <xs:element name="doc" type="T"/>
            <xs:complexType name="T">
              <xs:sequence>
                <xs:choice minOccurs="0" maxOccurs="unbounded">
                  <xs:element name="a" type="xs:string"/>
                  <xs:element name="b" type="xs:string"/>
                </xs:choice>
                <xs:element name="a" type="xs:string"/>
              </xs:sequence>
            </xs:complexType>
          </xs:schema>"#;
        let err = parse_xsd(src).unwrap_err();
        assert!(err.message.contains("UPA"), "{err}");
    }

    #[test]
    fn cyclic_groups_rejected() {
        let src = r#"
          <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
            <xs:element name="doc" type="T"/>
            <xs:group name="g">
              <xs:sequence><xs:group ref="g"/></xs:sequence>
            </xs:group>
            <xs:complexType name="T">
              <xs:sequence><xs:group ref="g"/></xs:sequence>
            </xs:complexType>
          </xs:schema>"#;
        let err = parse_xsd(src).unwrap_err();
        assert!(err.message.contains("cyclic"), "{err}");
    }

    #[test]
    fn unknown_type_reference_rejected() {
        let src = r#"
          <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
            <xs:element name="doc" type="Missing"/>
          </xs:schema>"#;
        assert!(parse_xsd(src).is_err());
    }

    #[test]
    fn invalid_facet_bounds_rejected_at_parse() {
        // Regression: an unparseable numeric bound used to survive
        // schema parsing and then compare as NaN at validation time.
        let src = r#"
          <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
            <xs:element name="n">
              <xs:simpleType>
                <xs:restriction base="xs:integer">
                  <xs:maxInclusive value="ten"/>
                </xs:restriction>
              </xs:simpleType>
            </xs:element>
          </xs:schema>"#;
        let err = parse_xsd(src).unwrap_err();
        assert!(err.message.contains("invalid restriction"), "{err}");
        let inverted = r#"
          <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
            <xs:element name="n">
              <xs:simpleType>
                <xs:restriction base="xs:decimal">
                  <xs:minInclusive value="2.50"/>
                  <xs:maxInclusive value="2.5"/>
                </xs:restriction>
              </xs:simpleType>
            </xs:element>
          </xs:schema>"#;
        // equal after decimal normalization: not inverted, parses fine
        assert!(parse_xsd(inverted).is_ok());
        let truly_inverted = inverted.replace("2.50", "2.51");
        assert!(parse_xsd(&truly_inverted).is_err());
    }

    #[test]
    fn simple_content_with_attributes() {
        let src = r#"
          <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
            <xs:element name="price" type="Tprice"/>
            <xs:complexType name="Tprice">
              <xs:simpleContent>
                <xs:extension base="xs:decimal">
                  <xs:attribute name="currency" type="xs:string" use="required"/>
                </xs:extension>
              </xs:simpleContent>
            </xs:complexType>
          </xs:schema>"#;
        let x = parse_xsd(src).unwrap();
        let good = elem("price").attr("currency", "EUR").text("12.50").build();
        assert!(is_valid(&x, &good));
        let bad = elem("price").attr("currency", "EUR").text("cheap").build();
        assert!(!is_valid(&x, &bad));
        // emission keeps simpleContent
        let emitted = emit_xsd(&x, None).unwrap();
        assert!(emitted.contains("simpleContent"));
        let back = parse_xsd(&emitted).unwrap();
        assert!(is_valid(&back, &good));
        assert!(!is_valid(&back, &bad));
    }
}
