//! Reading XSD XML syntax into the surface AST.

use relang::UpperBound;
use xmltree::{Document, NodeId};

use crate::content::AttributeUse;
use crate::simple_types::{Facets, SimpleType};
use crate::syntax::ast::{ComplexType, ElementDecl, Occurs, Particle, SchemaDoc, TypeRef};

/// An error while reading XSD syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyntaxError {
    /// Description of the problem.
    pub message: String,
}

impl SyntaxError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        SyntaxError {
            message: msg.into(),
        }
    }
}

impl std::fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XSD syntax error: {}", self.message)
    }
}

impl std::error::Error for SyntaxError {}

/// Parses an `<xs:schema>` document into the surface AST.
pub fn read_schema_doc(doc: &Document) -> Result<SchemaDoc, SyntaxError> {
    let root = doc.root();
    if doc.local_name(root) != Some("schema") {
        return Err(SyntaxError::new(format!(
            "expected <schema> root, found <{}>",
            doc.name(root).unwrap_or("?")
        )));
    }
    let mut out = SchemaDoc {
        target_namespace: doc.attribute(root, "targetNamespace").map(str::to_owned),
        ..SchemaDoc::default()
    };
    for child in doc.element_children(root) {
        match doc.local_name(child) {
            Some("element") => out.roots.push(read_element(doc, child)?),
            Some("complexType") => {
                let name = required_attr(doc, child, "name")?;
                out.named_types.push((name, read_complex_type(doc, child)?));
            }
            Some("group") => {
                let name = required_attr(doc, child, "name")?;
                let inner = doc
                    .element_children(child)
                    .find(|&c| matches!(doc.local_name(c), Some("sequence" | "choice" | "all")))
                    .ok_or_else(|| SyntaxError::new(format!("group {name} has no model group")))?;
                out.groups.push((name, read_particle(doc, inner)?));
            }
            Some("simpleType") => {
                let name = required_attr(doc, child, "name")?;
                out.simple_types.push((name, read_simple_type(doc, child)?));
            }
            Some("attributeGroup") => {
                let name = required_attr(doc, child, "name")?;
                let mut attrs = Vec::new();
                for a in doc.element_children(child) {
                    if doc.local_name(a) == Some("attribute") {
                        attrs.push(read_attribute(doc, a)?);
                    }
                }
                out.attribute_groups.push((name, attrs));
            }
            Some("annotation") | Some("import") | Some("include") => {}
            Some(other) => {
                return Err(SyntaxError::new(format!(
                    "unsupported top-level construct <{other}>"
                )))
            }
            None => {}
        }
    }
    Ok(out)
}

fn required_attr(doc: &Document, node: NodeId, name: &str) -> Result<String, SyntaxError> {
    doc.attribute(node, name).map(str::to_owned).ok_or_else(|| {
        SyntaxError::new(format!(
            "<{}> is missing required attribute {name:?}",
            doc.name(node).unwrap_or("?")
        ))
    })
}

fn read_element(doc: &Document, node: NodeId) -> Result<ElementDecl, SyntaxError> {
    let name = required_attr(doc, node, "name")?;
    let inline = doc
        .element_children(node)
        .find(|&c| doc.local_name(c) == Some("complexType"));
    let inline_simple = doc
        .element_children(node)
        .find(|&c| doc.local_name(c) == Some("simpleType"));
    let type_ref = match (doc.attribute(node, "type"), inline, inline_simple) {
        (Some(_), Some(_), _) | (Some(_), _, Some(_)) | (None, Some(_), Some(_)) => {
            return Err(SyntaxError::new(format!(
                "element {name} has more than one type specification"
            )))
        }
        (Some(t), None, None) => {
            if is_xs_qname(t) {
                TypeRef::Simple(SimpleType::from_qname(t), Facets::default())
            } else {
                TypeRef::Named(strip_prefix(t).to_owned())
            }
        }
        (None, Some(ct), None) => TypeRef::Inline(Box::new(read_complex_type(doc, ct)?)),
        (None, None, Some(st)) => {
            let (base, facets) = read_simple_type(doc, st)?;
            TypeRef::Simple(base, facets)
        }
        (None, None, None) => TypeRef::Empty,
    };
    Ok(ElementDecl { name, type_ref })
}

fn read_complex_type(doc: &Document, node: NodeId) -> Result<ComplexType, SyntaxError> {
    let mut ct = ComplexType {
        mixed: doc.attribute(node, "mixed") == Some("true"),
        ..ComplexType::default()
    };
    for child in doc.element_children(node) {
        match doc.local_name(child) {
            Some("sequence") | Some("choice") | Some("all") => {
                if ct.particle.is_some() {
                    return Err(SyntaxError::new("complexType has multiple model groups"));
                }
                ct.particle = Some(read_particle(doc, child)?);
            }
            Some("group") => {
                if ct.particle.is_some() {
                    return Err(SyntaxError::new("complexType has multiple model groups"));
                }
                let name = required_attr(doc, child, "ref")?;
                ct.particle = Some(Particle::GroupRef {
                    name: strip_prefix(&name).to_owned(),
                    occurs: read_occurs(doc, child)?,
                });
            }
            Some("attribute") => ct.attributes.push(read_attribute(doc, child)?),
            Some("attributeGroup") => {
                let name = required_attr(doc, child, "ref")?;
                ct.attr_group_refs.push(strip_prefix(&name).to_owned());
            }
            Some("simpleContent") => {
                // <xs:simpleContent><xs:extension base="xs:…"> attrs …, or
                // <xs:restriction base="xs:…"> facets + attrs (the form the
                // emitter uses when facets are present).
                let ext = doc
                    .element_children(child)
                    .find(|&c| matches!(doc.local_name(c), Some("extension" | "restriction")))
                    .ok_or_else(|| SyntaxError::new("simpleContent without extension"))?;
                let base = required_attr(doc, ext, "base")?;
                if !is_xs_qname(&base) {
                    return Err(SyntaxError::new(format!(
                        "simpleContent base {base:?} must be an xs: built-in"
                    )));
                }
                ct.mixed = false;
                ct.particle = None;
                let mut facets = Facets::default();
                for a in doc.element_children(ext) {
                    match doc.local_name(a) {
                        Some("attribute") => ct.attributes.push(read_attribute(doc, a)?),
                        Some("attributeGroup") => {
                            let name = required_attr(doc, a, "ref")?;
                            ct.attr_group_refs.push(strip_prefix(&name).to_owned());
                        }
                        Some("minInclusive") => {
                            facets.min_inclusive = Some(required_attr(doc, a, "value")?)
                        }
                        Some("maxInclusive") => {
                            facets.max_inclusive = Some(required_attr(doc, a, "value")?)
                        }
                        Some("minLength") => {
                            let v = required_attr(doc, a, "value")?;
                            facets.min_length =
                                Some(v.parse().map_err(|_| {
                                    SyntaxError::new(format!("bad minLength {v:?}"))
                                })?);
                        }
                        Some("maxLength") => {
                            let v = required_attr(doc, a, "value")?;
                            facets.max_length =
                                Some(v.parse().map_err(|_| {
                                    SyntaxError::new(format!("bad maxLength {v:?}"))
                                })?);
                        }
                        Some("enumeration") => {
                            facets.enumeration.push(required_attr(doc, a, "value")?)
                        }
                        Some("annotation") => {}
                        // Mirror read_simple_type: an unrecognized facet
                        // (xs:pattern, xs:whiteSpace, xs:fractionDigits, …)
                        // must fail loudly. Silently dropping it would
                        // accept the schema while enforcing strictly less
                        // than it declares.
                        Some(other) => {
                            return Err(SyntaxError::new(format!(
                                "unsupported facet xs:{other} in simpleContent"
                            )))
                        }
                        None => {}
                    }
                }
                let base = SimpleType::from_qname(&base);
                facets.check(base).map_err(|e| {
                    SyntaxError::new(format!("invalid restriction of {}: {e}", base.qname()))
                })?;
                ct.simple_base = Some((base, facets));
            }
            Some("annotation") => {}
            Some(other) => {
                return Err(SyntaxError::new(format!(
                    "unsupported construct <{other}> in complexType"
                )))
            }
            None => {}
        }
    }
    Ok(ct)
}

fn read_particle(doc: &Document, node: NodeId) -> Result<Particle, SyntaxError> {
    let occurs = read_occurs(doc, node)?;
    match doc.local_name(node) {
        Some("element") => Ok(Particle::Element {
            decl: read_element(doc, node)?,
            occurs,
        }),
        Some("sequence") | Some("choice") => {
            let mut items = Vec::new();
            for child in doc.element_children(node) {
                match doc.local_name(child) {
                    Some("annotation") => {}
                    Some("group") => {
                        let name = required_attr(doc, child, "ref")?;
                        items.push(Particle::GroupRef {
                            name: strip_prefix(&name).to_owned(),
                            occurs: read_occurs(doc, child)?,
                        });
                    }
                    _ => items.push(read_particle(doc, child)?),
                }
            }
            if doc.local_name(node) == Some("sequence") {
                Ok(Particle::Sequence { items, occurs })
            } else {
                Ok(Particle::Choice { items, occurs })
            }
        }
        Some("all") => {
            if !occurs.is_once() {
                return Err(SyntaxError::new("xs:all cannot carry occurrence bounds"));
            }
            let mut items = Vec::new();
            for child in doc.element_children(node) {
                if doc.local_name(child) == Some("annotation") {
                    continue;
                }
                if doc.local_name(child) != Some("element") {
                    return Err(SyntaxError::new(
                        "xs:all may only contain element declarations",
                    ));
                }
                items.push(read_particle(doc, child)?);
            }
            Ok(Particle::All { items })
        }
        Some(other) => Err(SyntaxError::new(format!("unsupported particle <{other}>"))),
        None => Err(SyntaxError::new("text where a particle was expected")),
    }
}

fn read_occurs(doc: &Document, node: NodeId) -> Result<Occurs, SyntaxError> {
    let min = match doc.attribute(node, "minOccurs") {
        None => 1,
        Some(v) => v
            .parse()
            .map_err(|_| SyntaxError::new(format!("bad minOccurs {v:?}")))?,
    };
    let max = match doc.attribute(node, "maxOccurs") {
        None => UpperBound::Finite(1),
        Some("unbounded") => UpperBound::Unbounded,
        Some(v) => UpperBound::Finite(
            v.parse()
                .map_err(|_| SyntaxError::new(format!("bad maxOccurs {v:?}")))?,
        ),
    };
    if let UpperBound::Finite(m) = max {
        if m < min {
            return Err(SyntaxError::new(format!(
                "maxOccurs {m} below minOccurs {min}"
            )));
        }
    }
    Ok(Occurs { min, max })
}

fn read_attribute(doc: &Document, node: NodeId) -> Result<AttributeUse, SyntaxError> {
    let name = required_attr(doc, node, "name")?;
    let required = doc.attribute(node, "use") == Some("required");
    // Either a type attribute or an inline <xs:simpleType> restriction.
    let inline = doc
        .element_children(node)
        .find(|&c| doc.local_name(c) == Some("simpleType"));
    let (simple_type, facets) = match (doc.attribute(node, "type"), inline) {
        (Some(_), Some(_)) => {
            return Err(SyntaxError::new(format!(
                "attribute {name} has both a type attribute and an inline simple type"
            )))
        }
        (Some(t), None) => (SimpleType::from_qname(t), Facets::default()),
        (None, Some(st)) => read_simple_type(doc, st)?,
        (None, None) => (SimpleType::AnySimpleType, Facets::default()),
    };
    Ok(AttributeUse {
        name,
        required,
        simple_type,
        facets,
    })
}

/// Reads `<xs:simpleType><xs:restriction base=…> facet… </…></…>`.
pub(crate) fn read_simple_type(
    doc: &Document,
    node: NodeId,
) -> Result<(SimpleType, Facets), SyntaxError> {
    let restriction = doc
        .element_children(node)
        .find(|&c| doc.local_name(c) == Some("restriction"))
        .ok_or_else(|| SyntaxError::new("simpleType without restriction"))?;
    let base = required_attr(doc, restriction, "base")?;
    let base = SimpleType::from_qname(&base);
    let mut facets = Facets::default();
    for f in doc.element_children(restriction) {
        let value = required_attr(doc, f, "value")?;
        match doc.local_name(f) {
            Some("minInclusive") => facets.min_inclusive = Some(value),
            Some("maxInclusive") => facets.max_inclusive = Some(value),
            Some("minLength") => {
                facets.min_length = Some(
                    value
                        .parse()
                        .map_err(|_| SyntaxError::new(format!("bad minLength {value:?}")))?,
                )
            }
            Some("maxLength") => {
                facets.max_length = Some(
                    value
                        .parse()
                        .map_err(|_| SyntaxError::new(format!("bad maxLength {value:?}")))?,
                )
            }
            Some("enumeration") => facets.enumeration.push(value),
            Some(other) => return Err(SyntaxError::new(format!("unsupported facet xs:{other}"))),
            None => {}
        }
    }
    facets
        .check(base)
        .map_err(|e| SyntaxError::new(format!("invalid restriction of {}: {e}", base.qname())))?;
    Ok((base, facets))
}

/// Whether a QName refers to the XML Schema namespace's built-in types
/// (recognized by the conventional `xs:`/`xsd:` prefixes).
fn is_xs_qname(qname: &str) -> bool {
    qname
        .split_once(':')
        .is_some_and(|(p, _)| p == "xs" || p == "xsd")
}

fn strip_prefix(qname: &str) -> &str {
    qname.rsplit_once(':').map_or(qname, |(_, l)| l)
}
