//! Lowering the surface AST to the formal core model (Definition 2).
//!
//! Groups and attribute groups are expanded, anonymous types get
//! synthesized names, occurrence bounds become counting operators, and the
//! EDC constraint is checked structurally while building each type's
//! child-type map.

use std::collections::BTreeMap;

use relang::{Regex, Sym};

use crate::content::{AttributeUse, ContentModel};
use crate::model::{TypeDef, TypeId, Xsd, XsdBuilder};
use crate::simple_types::{Facets, SimpleType};
use crate::syntax::ast::{ComplexType, Occurs, Particle, SchemaDoc, TypeRef};
use crate::syntax::parse::SyntaxError;

/// Lowers a surface schema into the formal core model.
pub fn lower(schema: &SchemaDoc) -> Result<Xsd, SyntaxError> {
    lower_impl(schema, true)
}

/// Lowers a surface schema without the final core checks (UPA, child
/// typing completeness). Structural errors — unknown types, cyclic
/// groups, EDC violations, bad facets — are still hard errors. Used by
/// analysis tooling that reports UPA violations itself.
pub fn lower_unchecked(schema: &SchemaDoc) -> Result<Xsd, SyntaxError> {
    lower_impl(schema, false)
}

/// Upper bound on the element names `p` can intern — sizes the alphabet
/// hash table once instead of growing it rehash by rehash.
fn count_particle_names(p: &Particle) -> usize {
    match p {
        Particle::Element { decl, .. } => {
            1 + match &decl.type_ref {
                TypeRef::Inline(ct) => ct.particle.as_ref().map_or(0, count_particle_names),
                _ => 0,
            }
        }
        Particle::Sequence { items, .. } | Particle::Choice { items, .. } => {
            items.iter().map(count_particle_names).sum()
        }
        Particle::All { items } => items.iter().map(count_particle_names).sum(),
        // Group bodies are counted at their declaration site.
        Particle::GroupRef { .. } => 0,
    }
}

fn lower_impl(schema: &SchemaDoc, checked: bool) -> Result<Xsd, SyntaxError> {
    let mut lw = Lowerer {
        builder: XsdBuilder::new(),
        named: BTreeMap::new(),
        schema,
        simple_cache: BTreeMap::new(),
        empty_cache: None,
        synth_counter: 0,
    };
    let names: usize = schema.roots.len()
        + schema
            .named_types
            .iter()
            .filter_map(|(_, ct)| ct.particle.as_ref())
            .map(count_particle_names)
            .sum::<usize>()
        + schema
            .groups
            .iter()
            .map(|(_, p)| count_particle_names(p))
            .sum::<usize>();
    lw.builder.ename.reserve(names);
    let mut ids = Vec::with_capacity(schema.named_types.len());
    for (name, _) in &schema.named_types {
        if lw.named.contains_key(name.as_str()) {
            if checked {
                return Err(SyntaxError::new(format!("duplicate type name {name}")));
            }
            // Unchecked mode keeps the duplicate as its own entry so
            // analysis tooling can report it; references resolve to the
            // first declaration.
            ids.push(lw.builder.declare_type(name));
            continue;
        }
        let id = lw.builder.declare_type(name);
        lw.named.insert(name.clone(), id);
        ids.push(id);
    }
    for ((name, ct), &id) in schema.named_types.iter().zip(&ids) {
        let def = lw.lower_complex(ct, name)?;
        lw.builder.define(id, def);
    }
    for decl in &schema.roots {
        let t = lw.resolve(&decl.type_ref, &decl.name)?;
        let sym = lw.builder.ename.intern(&decl.name);
        lw.builder.add_start(sym, t);
    }
    if checked {
        lw.builder
            .build()
            .map_err(|e| SyntaxError::new(format!("schema is not a valid core XSD: {e}")))
    } else {
        Ok(lw.builder.build_unchecked())
    }
}

struct Lowerer<'a> {
    builder: XsdBuilder,
    named: BTreeMap<String, TypeId>,
    schema: &'a SchemaDoc,
    simple_cache: BTreeMap<(SimpleType, Facets), TypeId>,
    empty_cache: Option<TypeId>,
    synth_counter: u32,
}

impl<'a> Lowerer<'a> {
    fn resolve(&mut self, type_ref: &TypeRef, elem_name: &str) -> Result<TypeId, SyntaxError> {
        match type_ref {
            TypeRef::Named(n) => {
                if let Some(&id) = self.named.get(n.as_str()) {
                    return Ok(id);
                }
                // Fall back to named simple types.
                if let Some((_, (base, facets))) =
                    self.schema.simple_types.iter().find(|(name, _)| name == n)
                {
                    return self.resolve(&TypeRef::Simple(*base, facets.clone()), elem_name);
                }
                Err(SyntaxError::new(format!(
                    "element {elem_name} references unknown type {n}"
                )))
            }
            TypeRef::Inline(ct) => {
                self.synth_counter += 1;
                let name = format!("T_{elem_name}_anon{}", self.synth_counter);
                let id = self.builder.declare_type(&name);
                let def = self.lower_complex(ct, &name)?;
                self.builder.define(id, def);
                Ok(id)
            }
            TypeRef::Simple(st, facets) => {
                let key = (*st, facets.clone());
                if let Some(&id) = self.simple_cache.get(&key) {
                    return Ok(id);
                }
                let name = if facets.is_empty() {
                    format!("T_{}", st.qname().replace(':', "_"))
                } else {
                    self.synth_counter += 1;
                    format!("T_{}_r{}", st.qname().replace(':', "_"), self.synth_counter)
                };
                let id = self.builder.declare_type(&name);
                self.builder.define(
                    id,
                    TypeDef {
                        content: ContentModel::simple(*st).with_simple_facets(facets.clone()),
                        child_type: BTreeMap::new(),
                    },
                );
                self.simple_cache.insert(key, id);
                Ok(id)
            }
            TypeRef::Empty => {
                if let Some(id) = self.empty_cache {
                    return Ok(id);
                }
                let id = self.builder.declare_type("T_empty");
                self.builder.define(
                    id,
                    TypeDef {
                        content: ContentModel::empty(),
                        child_type: BTreeMap::new(),
                    },
                );
                self.empty_cache = Some(id);
                Ok(id)
            }
        }
    }

    fn lower_complex(&mut self, ct: &ComplexType, type_name: &str) -> Result<TypeDef, SyntaxError> {
        let attributes = self.expand_attributes(ct)?;
        if let Some((st, facets)) = &ct.simple_base {
            return Ok(TypeDef {
                content: ContentModel::simple(*st)
                    .with_simple_facets(facets.clone())
                    .with_attributes(attributes),
                child_type: BTreeMap::new(),
            });
        }
        let mut bindings: BTreeMap<Sym, TypeId> = BTreeMap::new();
        let regex = match &ct.particle {
            None => Regex::Epsilon,
            Some(p) => {
                let mut stack = Vec::new();
                self.lower_particle(p, type_name, &mut bindings, &mut stack)?
            }
        };
        Ok(TypeDef {
            content: ContentModel::new(regex)
                .with_mixed(ct.mixed)
                .with_attributes(attributes),
            child_type: bindings,
        })
    }

    fn expand_attributes(&self, ct: &ComplexType) -> Result<Vec<AttributeUse>, SyntaxError> {
        let mut attrs = ct.attributes.clone();
        for gref in &ct.attr_group_refs {
            let group = self
                .schema
                .attribute_groups
                .iter()
                .find(|(n, _)| n == gref)
                .ok_or_else(|| SyntaxError::new(format!("unknown attribute group {gref}")))?;
            attrs.extend(group.1.iter().cloned());
        }
        Ok(attrs)
    }

    fn lower_particle(
        &mut self,
        p: &Particle,
        type_name: &str,
        bindings: &mut BTreeMap<Sym, TypeId>,
        group_stack: &mut Vec<String>,
    ) -> Result<Regex, SyntaxError> {
        match p {
            Particle::Element { decl, occurs } => {
                let t = self.resolve(&decl.type_ref, &decl.name)?;
                let sym = self.builder.ename.intern(&decl.name);
                if let Some(&prev) = bindings.get(&sym) {
                    if prev != t {
                        return Err(SyntaxError::new(format!(
                            "EDC violation in type {type_name}: element {} used with two different types",
                            decl.name
                        )));
                    }
                } else {
                    bindings.insert(sym, t);
                }
                Ok(apply_occurs(Regex::sym(sym), *occurs))
            }
            Particle::Sequence { items, occurs } => {
                let parts = items
                    .iter()
                    .map(|i| self.lower_particle(i, type_name, bindings, group_stack))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(apply_occurs(Regex::concat(parts), *occurs))
            }
            Particle::Choice { items, occurs } => {
                let parts = items
                    .iter()
                    .map(|i| self.lower_particle(i, type_name, bindings, group_stack))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(apply_occurs(Regex::alt(parts), *occurs))
            }
            Particle::All { items } => {
                let parts = items
                    .iter()
                    .map(|i| self.lower_particle(i, type_name, bindings, group_stack))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Regex::interleave(parts))
            }
            Particle::GroupRef { name, occurs } => {
                if group_stack.contains(name) {
                    return Err(SyntaxError::new(format!(
                        "cyclic group reference through {name}"
                    )));
                }
                let group = self
                    .schema
                    .groups
                    .iter()
                    .find(|(n, _)| n == name)
                    .ok_or_else(|| SyntaxError::new(format!("unknown group {name}")))?
                    .1
                    .clone();
                group_stack.push(name.clone());
                let r = self.lower_particle(&group, type_name, bindings, group_stack)?;
                group_stack.pop();
                Ok(apply_occurs(r, *occurs))
            }
        }
    }
}

fn apply_occurs(r: Regex, occurs: Occurs) -> Regex {
    if occurs.is_once() {
        r
    } else {
        Regex::repeat(r, occurs.min, occurs.max)
    }
}
